//! Property-based tests for the graph substrate.

use gpm_graph::{orient, partition::PartitionedGraph, set_ops, GraphBuilder, VertexId};
use proptest::prelude::*;

fn arb_edges(max_v: u32, max_e: usize) -> impl Strategy<Value = Vec<(VertexId, VertexId)>> {
    prop::collection::vec((0..max_v, 0..max_v), 0..max_e)
}

fn arb_sorted_set(max: u32) -> impl Strategy<Value = Vec<VertexId>> {
    prop::collection::btree_set(0..max, 0..64).prop_map(|s| s.into_iter().collect())
}

proptest! {
    #[test]
    fn builder_output_is_canonical(edges in arb_edges(64, 200)) {
        let g = edges.iter().copied().collect::<GraphBuilder>().build();
        // Sorted, no duplicates, no self-loops, symmetric.
        for v in g.vertices() {
            let n = g.neighbors(v);
            prop_assert!(n.windows(2).all(|w| w[0] < w[1]));
            prop_assert!(!n.contains(&v));
            for &u in n {
                prop_assert!(g.has_edge(u, v));
            }
        }
        // Every input edge (non-loop) is present.
        for (u, v) in edges {
            if u != v {
                prop_assert!(g.has_edge(u, v));
            }
        }
    }

    #[test]
    fn intersection_equals_naive(a in arb_sorted_set(128), b in arb_sorted_set(128)) {
        let mut out = Vec::new();
        set_ops::intersect_into(&a, &b, &mut out);
        let naive: Vec<VertexId> =
            a.iter().copied().filter(|x| b.contains(x)).collect();
        prop_assert_eq!(&out, &naive);
        prop_assert_eq!(set_ops::intersect_count(&a, &b), naive.len());
    }

    #[test]
    fn subtraction_equals_naive(a in arb_sorted_set(128), b in arb_sorted_set(128)) {
        let mut out = Vec::new();
        set_ops::subtract_into(&a, &b, &mut out);
        let naive: Vec<VertexId> =
            a.iter().copied().filter(|x| !b.contains(x)).collect();
        prop_assert_eq!(out, naive);
    }

    #[test]
    fn many_way_intersection_equals_pairwise(
        a in arb_sorted_set(64),
        b in arb_sorted_set(64),
        c in arb_sorted_set(64),
    ) {
        let mut expect = Vec::new();
        set_ops::intersect_into(&a, &b, &mut expect);
        let mut expect2 = Vec::new();
        set_ops::intersect_into(&expect, &c, &mut expect2);
        let mut out = Vec::new();
        set_ops::intersect_many_into(&[&a, &b, &c], &mut out);
        prop_assert_eq!(out, expect2);
    }

    #[test]
    fn partition_covers_all_edge_lists(
        edges in arb_edges(48, 150),
        machines in 1usize..5,
        sockets in 1usize..3,
    ) {
        let g = edges.into_iter().collect::<GraphBuilder>().build();
        if g.vertex_count() == 0 { return Ok(()); }
        let pg = PartitionedGraph::new(&g, machines, sockets);
        for v in g.vertices() {
            let owner = pg.owner(v);
            prop_assert!(owner < pg.part_count());
            prop_assert_eq!(pg.part(owner).edge_list(v).unwrap(), g.neighbors(v));
        }
        let total: usize = (0..pg.part_count()).map(|p| pg.part(p).owned_count()).sum();
        prop_assert_eq!(total, g.vertex_count());
    }

    #[test]
    fn orientation_preserves_edge_multiset(edges in arb_edges(40, 120)) {
        let g = edges.into_iter().collect::<GraphBuilder>().build();
        if g.vertex_count() == 0 { return Ok(()); }
        let dag = orient::orient_by_degree(&g);
        prop_assert_eq!(dag.edge_count(), g.edge_count());
        let mut from_dag: Vec<(VertexId, VertexId)> =
            dag.arcs().map(|(u, v)| (u.min(v), u.max(v))).collect();
        from_dag.sort_unstable();
        let mut from_g: Vec<(VertexId, VertexId)> = g.edges().collect();
        from_g.sort_unstable();
        prop_assert_eq!(from_dag, from_g);
    }

    #[test]
    fn text_io_roundtrip(edges in arb_edges(40, 100)) {
        let g = edges.into_iter().collect::<GraphBuilder>().build();
        let mut buf = Vec::new();
        gpm_graph::io::write_edge_list_text(&g, &mut buf).unwrap();
        let g2 = gpm_graph::io::read_edge_list_text(&buf[..]).unwrap();
        // Roundtrip may shrink vertex count if trailing vertices are
        // isolated; compare edge sets.
        let e1: Vec<_> = g.edges().collect();
        let e2: Vec<_> = g2.edges().collect();
        prop_assert_eq!(e1, e2);
    }
}
