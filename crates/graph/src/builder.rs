//! Edge-list ingestion with the paper's preprocessing (§7.1): self-loops
//! and duplicate edges are removed, and directed inputs are symmetrized.

use crate::csr::{Graph, GraphKind};
use crate::{Label, VertexId};

/// Incremental builder producing a deduplicated, sorted [`Graph`].
///
/// Edges may be added in any order and either direction; the builder
/// symmetrizes, removes self-loops and duplicates, and sorts adjacency
/// lists.
///
/// # Example
///
/// ```
/// use gpm_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(3);
/// b.add_edge(0, 1);
/// b.add_edge(1, 0); // duplicate, ignored
/// b.add_edge(1, 1); // self-loop, ignored
/// b.add_edge(1, 2);
/// let g = b.build();
/// assert_eq!(g.edge_count(), 2);
/// ```
#[derive(Debug, Clone, Default)]
pub struct GraphBuilder {
    n: usize,
    edges: Vec<(VertexId, VertexId)>,
    labels: Option<Vec<Label>>,
}

impl GraphBuilder {
    /// A builder for a graph with `n` vertices (ids `0..n`).
    pub fn new(n: usize) -> Self {
        GraphBuilder { n, edges: Vec::new(), labels: None }
    }

    /// A builder that grows the vertex set to cover every endpoint seen.
    pub fn growable() -> Self {
        GraphBuilder::new(0)
    }

    /// Number of vertices the built graph will have.
    pub fn vertex_count(&self) -> usize {
        self.n
    }

    /// Number of raw (pre-deduplication) edge insertions so far.
    pub fn raw_edge_count(&self) -> usize {
        self.edges.len()
    }

    /// Adds the undirected edge `{u, v}`. Self-loops are dropped silently;
    /// duplicates are eliminated at [`GraphBuilder::build`] time.
    pub fn add_edge(&mut self, u: VertexId, v: VertexId) -> &mut Self {
        if u != v {
            self.n = self.n.max(u.max(v) as usize + 1);
            self.edges.push((u.min(v), u.max(v)));
        }
        self
    }

    /// Adds every edge from an iterator of endpoint pairs.
    pub fn extend_edges<I: IntoIterator<Item = (VertexId, VertexId)>>(
        &mut self,
        iter: I,
    ) -> &mut Self {
        for (u, v) in iter {
            self.add_edge(u, v);
        }
        self
    }

    /// Attaches per-vertex labels; the slice is indexed by vertex id and
    /// must cover every vertex present at build time.
    pub fn labels(&mut self, labels: Vec<Label>) -> &mut Self {
        self.n = self.n.max(labels.len());
        self.labels = Some(labels);
        self
    }

    /// Builds the immutable CSR graph.
    ///
    /// # Panics
    ///
    /// Panics if labels were provided but do not cover every vertex.
    pub fn build(&self) -> Graph {
        let mut edges = self.edges.clone();
        edges.sort_unstable();
        edges.dedup();

        let n = self.n;
        let mut degree = vec![0u64; n];
        for &(u, v) in &edges {
            degree[u as usize] += 1;
            degree[v as usize] += 1;
        }
        let mut offsets = vec![0u64; n + 1];
        for i in 0..n {
            offsets[i + 1] = offsets[i] + degree[i];
        }
        let mut cursor: Vec<u64> = offsets[..n].to_vec();
        let mut neighbors = vec![0 as VertexId; offsets[n] as usize];
        for &(u, v) in &edges {
            neighbors[cursor[u as usize] as usize] = v;
            cursor[u as usize] += 1;
            neighbors[cursor[v as usize] as usize] = u;
            cursor[v as usize] += 1;
        }
        // Each vertex's slice was filled in ascending order of the *other*
        // endpoint only for the min-endpoint copies; sort each list.
        for v in 0..n {
            let lo = offsets[v] as usize;
            let hi = offsets[v + 1] as usize;
            neighbors[lo..hi].sort_unstable();
        }

        let labels = self.labels.clone();
        if let Some(l) = &labels {
            assert!(l.len() >= n, "labels must cover every vertex ({} < {n})", l.len());
        }
        let labels = labels.map(|mut l| {
            l.truncate(n);
            l
        });
        Graph::from_parts(GraphKind::Undirected, offsets, neighbors, labels)
    }
}

impl FromIterator<(VertexId, VertexId)> for GraphBuilder {
    fn from_iter<I: IntoIterator<Item = (VertexId, VertexId)>>(iter: I) -> Self {
        let mut b = GraphBuilder::growable();
        b.extend_edges(iter);
        b
    }
}

impl Extend<(VertexId, VertexId)> for GraphBuilder {
    fn extend<I: IntoIterator<Item = (VertexId, VertexId)>>(&mut self, iter: I) {
        self.extend_edges(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn dedup_and_self_loop_removal() {
        let mut b = GraphBuilder::new(3);
        b.add_edge(0, 1).add_edge(1, 0).add_edge(0, 1).add_edge(2, 2);
        let g = b.build();
        assert_eq!(g.edge_count(), 1);
        assert_eq!(g.neighbors(0), &[1]);
        assert_eq!(g.neighbors(2), &[] as &[VertexId]);
    }

    #[test]
    fn growable_tracks_max_vertex() {
        let b: GraphBuilder = [(0, 5), (2, 3)].into_iter().collect();
        let g = b.build();
        assert_eq!(g.vertex_count(), 6);
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn adjacency_sorted_regardless_of_insertion_order() {
        let mut b = GraphBuilder::new(6);
        b.add_edge(0, 5).add_edge(0, 2).add_edge(0, 4).add_edge(0, 1);
        let g = b.build();
        assert_eq!(g.neighbors(0), &[1, 2, 4, 5]);
    }

    #[test]
    fn labels_truncated_to_vertex_count() {
        let mut b = GraphBuilder::new(2);
        b.add_edge(0, 1);
        b.labels(vec![3, 4]);
        let g = b.build();
        assert_eq!(g.labels().unwrap(), &[3, 4]);
    }

    #[test]
    #[should_panic(expected = "labels must cover")]
    fn short_labels_panic() {
        let mut b = GraphBuilder::new(0);
        b.add_edge(0, 3);
        b.labels(vec![1]);
        // add another edge after labels to force n > labels.len()
        b.add_edge(4, 5);
        b.build();
    }

    #[test]
    fn extend_trait() {
        let mut b = GraphBuilder::new(0);
        b.extend([(0, 1), (1, 2)]);
        assert_eq!(b.build().edge_count(), 2);
    }
}
