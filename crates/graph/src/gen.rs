//! Deterministic synthetic graph generators.
//!
//! These are the stand-ins for the paper's datasets (see `DESIGN.md` §1):
//! [`barabasi_albert`] and [`rmat`] produce the skewed, power-law degree
//! distributions of web/social graphs (LiveJournal, UK, Twitter, …), while
//! [`erdos_renyi`] produces the flat degree profile of the Patents graph.
//! All generators are deterministic given the seed.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::{Label, VertexId};
use rand::rngs::StdRng;
use rand::{RngExt, SeedableRng};

/// G(n, m) Erdős–Rényi graph: `m` distinct uniform random edges.
///
/// Duplicate samples are rejected, so the result has exactly
/// `min(m, n*(n-1)/2)` edges. Degree distribution is binomial — the
/// "less-skewed, Patents-like" regime of the paper (§7.2, §7.5).
pub fn erdos_renyi(n: usize, m: usize, seed: u64) -> Graph {
    assert!(n >= 2, "need at least two vertices");
    let mut rng = StdRng::seed_from_u64(seed);
    let max_edges = n * (n - 1) / 2;
    let m = m.min(max_edges);
    let mut seen = std::collections::HashSet::with_capacity(m * 2);
    let mut b = GraphBuilder::new(n);
    while seen.len() < m {
        let u = rng.random_range(0..n) as VertexId;
        let v = rng.random_range(0..n) as VertexId;
        if u == v {
            continue;
        }
        let key = (u.min(v), u.max(v));
        if seen.insert(key) {
            b.add_edge(key.0, key.1);
        }
    }
    b.build()
}

/// Barabási–Albert preferential attachment: each new vertex attaches to
/// `m_attach` existing vertices chosen proportionally to degree.
///
/// Produces a power-law degree distribution ("rich get richer") — the
/// skewed regime where Khuzdul's static cache and horizontal sharing shine.
pub fn barabasi_albert(n: usize, m_attach: usize, seed: u64) -> Graph {
    assert!(m_attach >= 1, "attachment count must be positive");
    assert!(n > m_attach, "need more vertices than the attachment count");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    // Repeated-endpoint list: sampling an element uniformly is sampling a
    // vertex proportionally to its degree.
    let mut endpoints: Vec<VertexId> = Vec::with_capacity(2 * n * m_attach);
    // Seed clique over the first m_attach + 1 vertices.
    for u in 0..=m_attach as VertexId {
        for v in 0..u {
            b.add_edge(u, v);
            endpoints.push(u);
            endpoints.push(v);
        }
    }
    let mut targets = Vec::with_capacity(m_attach);
    for u in (m_attach + 1) as VertexId..n as VertexId {
        targets.clear();
        while targets.len() < m_attach {
            let t = endpoints[rng.random_range(0..endpoints.len())];
            if t != u && !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            b.add_edge(u, t);
            endpoints.push(u);
            endpoints.push(t);
        }
    }
    b.build()
}

/// R-MAT recursive-matrix generator (`2^scale` vertices,
/// `edge_factor * 2^scale` sampled edges before deduplication).
///
/// The `(a, b, c)` probabilities (with `d = 1 - a - b - c`) control skew;
/// the classic Graph500 parameters `(0.57, 0.19, 0.19)` give a heavy-tailed
/// distribution comparable to web crawls (uk/tw stand-ins).
pub fn rmat(scale: u32, edge_factor: usize, probs: (f64, f64, f64), seed: u64) -> Graph {
    let (a, bb, c) = probs;
    let d = 1.0 - a - bb - c;
    assert!(a > 0.0 && bb >= 0.0 && c >= 0.0 && d >= 0.0, "invalid R-MAT probabilities");
    let n = 1usize << scale;
    let m = edge_factor * n;
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for _ in 0..m {
        let (mut u, mut v) = (0usize, 0usize);
        for _ in 0..scale {
            let r: f64 = rng.random();
            let (du, dv) = if r < a {
                (0, 0)
            } else if r < a + bb {
                (0, 1)
            } else if r < a + bb + c {
                (1, 0)
            } else {
                (1, 1)
            };
            u = (u << 1) | du;
            v = (v << 1) | dv;
        }
        b.add_edge(u as VertexId, v as VertexId);
    }
    b.build()
}

/// Watts–Strogatz small-world graph: a ring lattice where each vertex
/// connects to its `k` nearest neighbors (k even), with each edge rewired
/// to a uniform random endpoint with probability `beta`.
///
/// Small-world graphs have high clustering with near-uniform degree — a
/// third degree regime between ER and the power-law generators, used by
/// tests that need triangle-rich but unskewed inputs.
pub fn watts_strogatz(n: usize, k: usize, beta: f64, seed: u64) -> Graph {
    assert!(k >= 2 && k.is_multiple_of(2), "k must be even and >= 2");
    assert!(n > k, "need more vertices than the ring degree");
    assert!((0.0..=1.0).contains(&beta), "beta must be a probability");
    let mut rng = StdRng::seed_from_u64(seed);
    let mut b = GraphBuilder::new(n);
    for v in 0..n {
        for d in 1..=(k / 2) {
            let mut u = (v + d) % n;
            if rng.random::<f64>() < beta {
                // Rewire to a random endpoint (avoiding self-loops; the
                // builder drops any duplicate that results).
                let r = rng.random_range(0..n);
                if r != v {
                    u = r;
                }
            }
            b.add_edge(v as VertexId, u as VertexId);
        }
    }
    b.build()
}

/// Complete graph on `n` vertices.
pub fn complete(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for u in 0..n as VertexId {
        for v in 0..u {
            b.add_edge(u, v);
        }
    }
    b.build()
}

/// Star with one center (vertex 0) and `n - 1` leaves.
pub fn star(n: usize) -> Graph {
    assert!(n >= 2);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(0, v);
    }
    b.build()
}

/// Simple path `0 - 1 - … - (n-1)`.
pub fn path(n: usize) -> Graph {
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.build()
}

/// Cycle on `n >= 3` vertices.
pub fn cycle(n: usize) -> Graph {
    assert!(n >= 3);
    let mut b = GraphBuilder::new(n);
    for v in 1..n as VertexId {
        b.add_edge(v - 1, v);
    }
    b.add_edge(n as VertexId - 1, 0);
    b.build()
}

/// `w × h` grid graph.
pub fn grid(w: usize, h: usize) -> Graph {
    let mut b = GraphBuilder::new(w * h);
    let id = |x: usize, y: usize| (y * w + x) as VertexId;
    for y in 0..h {
        for x in 0..w {
            if x + 1 < w {
                b.add_edge(id(x, y), id(x + 1, y));
            }
            if y + 1 < h {
                b.add_edge(id(x, y), id(x, y + 1));
            }
        }
    }
    b.build()
}

/// Complete bipartite graph `K_{a,b}`.
pub fn complete_bipartite(a: usize, b_size: usize) -> Graph {
    let mut b = GraphBuilder::new(a + b_size);
    for u in 0..a as VertexId {
        for v in 0..b_size as VertexId {
            b.add_edge(u, a as VertexId + v);
        }
    }
    b.build()
}

/// Attaches uniform random labels from `0..label_count` to `g`.
///
/// This mirrors the paper's FSM methodology: "for unlabeled datasets like
/// lj, we randomly synthesized their labels" (§7.2).
pub fn with_random_labels(g: &Graph, label_count: Label, seed: u64) -> Graph {
    assert!(label_count >= 1);
    let mut rng = StdRng::seed_from_u64(seed);
    let labels: Vec<Label> =
        (0..g.vertex_count()).map(|_| rng.random_range(0..label_count)).collect();
    g.with_labels(labels)
}

/// Attaches uniform random **edge** labels from `0..label_count` to `g`,
/// deterministic in the seed and symmetric across edge directions.
pub fn with_random_edge_labels(g: &Graph, label_count: Label, seed: u64) -> Graph {
    assert!(label_count >= 1);
    g.with_edge_labels_by(|u, v| {
        let h = gpm_hash(u as u64) ^ gpm_hash((v as u64) << 20) ^ gpm_hash(seed << 40);
        (h % label_count as u64) as Label
    })
}

fn gpm_hash(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x ^ (x >> 27)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn er_exact_edge_count_and_determinism() {
        let g1 = erdos_renyi(100, 300, 7);
        let g2 = erdos_renyi(100, 300, 7);
        assert_eq!(g1.edge_count(), 300);
        assert_eq!(g1, g2);
        let g3 = erdos_renyi(100, 300, 8);
        assert_ne!(g1, g3);
    }

    #[test]
    fn er_caps_at_complete() {
        let g = erdos_renyi(5, 1000, 1);
        assert_eq!(g.edge_count(), 10);
    }

    #[test]
    fn ba_is_connected_and_skewed() {
        let g = barabasi_albert(500, 3, 11);
        assert_eq!(g.vertex_count(), 500);
        // Every non-seed vertex has degree >= m_attach.
        for v in g.vertices() {
            assert!(g.degree(v) >= 3, "vertex {v} under-attached");
        }
        // Power-law: max degree far above the mean.
        let mean = g.adjacency_len() as f64 / 500.0;
        assert!(g.max_degree() as f64 > 4.0 * mean, "expected a skewed hub");
    }

    #[test]
    fn rmat_shape() {
        let g = rmat(8, 8, (0.57, 0.19, 0.19), 3);
        assert_eq!(g.vertex_count(), 256);
        assert!(g.edge_count() > 0);
        assert!(g.edge_count() <= 8 * 256);
        let mean = g.adjacency_len() as f64 / 256.0;
        assert!(g.max_degree() as f64 > 3.0 * mean, "R-MAT should be skewed");
    }

    #[test]
    fn watts_strogatz_ring_and_rewired() {
        // beta = 0: pure ring lattice, exactly n*k/2 edges, degree k.
        let ring = watts_strogatz(50, 4, 0.0, 1);
        assert_eq!(ring.edge_count(), 100);
        for v in ring.vertices() {
            assert_eq!(ring.degree(v), 4);
        }
        // beta = 0.3: deterministic, similar edge count, degrees vary.
        let sw = watts_strogatz(50, 4, 0.3, 1);
        assert_eq!(sw, watts_strogatz(50, 4, 0.3, 1));
        assert!(sw.edge_count() <= 100 && sw.edge_count() > 80);
        // Clustered: the ring lattice has triangles.
        let mut tri = 0u64;
        for u in ring.vertices() {
            for &v in ring.neighbors(u) {
                if v > u {
                    tri += crate::set_ops::intersect_count(ring.neighbors(u), ring.neighbors(v))
                        as u64;
                }
            }
        }
        assert!(tri > 0);
    }

    #[test]
    #[should_panic(expected = "k must be even")]
    fn watts_strogatz_odd_k_panics() {
        watts_strogatz(10, 3, 0.1, 1);
    }

    #[test]
    fn structured_fixtures() {
        assert_eq!(complete(5).edge_count(), 10);
        assert_eq!(star(6).edge_count(), 5);
        assert_eq!(star(6).degree(0), 5);
        assert_eq!(path(4).edge_count(), 3);
        assert_eq!(cycle(5).edge_count(), 5);
        assert_eq!(grid(3, 2).edge_count(), 7);
        assert_eq!(complete_bipartite(2, 3).edge_count(), 6);
    }

    #[test]
    fn random_edge_labels_symmetric_and_bounded() {
        let g = with_random_edge_labels(&erdos_renyi(60, 200, 1), 3, 9);
        assert!(g.has_edge_labels());
        for (u, v) in g.edges() {
            let l = g.edge_label(u, v).unwrap();
            assert!(l < 3);
            assert_eq!(g.edge_label(v, u), Some(l));
        }
        // Deterministic.
        let g2 = with_random_edge_labels(&erdos_renyi(60, 200, 1), 3, 9);
        assert_eq!(g, g2);
    }

    #[test]
    fn random_labels_cover_range() {
        let g = with_random_labels(&complete(50), 4, 5);
        let labels = g.labels().unwrap();
        assert!(labels.iter().all(|&l| l < 4));
        // With 50 draws and 4 labels, each should almost surely appear.
        for l in 0..4 {
            assert!(labels.contains(&l), "label {l} missing");
        }
    }
}
