//! 1-D hash graph partitioning (paper §2.2) with NUMA sub-partitioning
//! (§5.4).
//!
//! The vertex set is divided among `machines × sockets` *parts* by a mixing
//! hash; part `p` stores the full (sorted) edge list of every vertex it
//! owns — "all edges with at least one endpoint in V_i". Vertex labels are
//! replicated to every part: they cost 2 bytes per vertex and labeled
//! matching must test the label of arbitrary candidate vertices, so
//! replication is the standard choice.

use crate::csr::{Graph, GraphKind};
use crate::{Label, VertexId};
use std::sync::Arc;

/// SplitMix64-style mixing hash used to assign vertices to parts.
///
/// Deterministic and well-mixed so that consecutively-numbered hub
/// vertices (e.g. Barabási–Albert seeds) spread across machines, the
/// "balanced data distribution" requirement of §2.2.
#[inline]
pub fn vertex_hash(v: VertexId) -> u64 {
    let mut x = (v as u64).wrapping_add(0x9E37_79B9_7F4A_7C15);
    x = (x ^ (x >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    x ^ (x >> 31)
}

/// Vertex-to-part assignment strategy.
///
/// The paper uses hash partitioning "to ensure balanced data
/// distribution" (§2.2); the range strategy exists to demonstrate why —
/// on graphs whose vertex numbering correlates with degree (e.g.
/// Barabási–Albert seeds) ranges concentrate the hubs on one machine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum Partitioner {
    /// Mixing-hash assignment (the paper's choice).
    #[default]
    Hash,
    /// Contiguous ranges of vertex ids.
    Range,
}

/// A copyable resolver from vertex to owning part, shared by the engine
/// and the message layers so the owner computation is defined in exactly
/// one place.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OwnerMap {
    strategy: Partitioner,
    parts: usize,
    vertices: usize,
}

impl OwnerMap {
    /// Resolver for `parts` parts over `vertices` vertices.
    pub fn new(strategy: Partitioner, parts: usize, vertices: usize) -> Self {
        assert!(parts >= 1, "need at least one part");
        OwnerMap { strategy, parts, vertices }
    }

    /// Number of parts.
    pub fn parts(&self) -> usize {
        self.parts
    }

    /// The part owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        match self.strategy {
            Partitioner::Hash => (vertex_hash(v) % self.parts as u64) as usize,
            Partitioner::Range => {
                let span = self.vertices.div_ceil(self.parts).max(1);
                ((v as usize) / span).min(self.parts - 1)
            }
        }
    }
}

/// The sub-graph owned by one part (one socket of one machine).
#[derive(Debug, Clone)]
pub struct GraphPart {
    part_id: usize,
    owned: Vec<VertexId>,
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
}

impl GraphPart {
    /// Rebuilds a part from raw CSR columns — the receive side of a
    /// slice transfer (replica re-replication streams exactly these
    /// three arrays). The columns must describe a well-formed CSR:
    /// sorted owned vertices, `owned.len() + 1` monotone offsets starting
    /// at 0, and a neighbor array whose length matches the last offset.
    ///
    /// # Panics
    ///
    /// Panics when the columns are inconsistent — a corrupted transfer
    /// must never install a slice that panics later at serve time.
    pub fn from_csr(
        part_id: usize,
        owned: Vec<VertexId>,
        offsets: Vec<u64>,
        neighbors: Vec<VertexId>,
    ) -> GraphPart {
        assert_eq!(offsets.len(), owned.len() + 1, "offset column length mismatch");
        assert_eq!(offsets.first(), Some(&0), "offset column must start at 0");
        assert!(offsets.windows(2).all(|w| w[0] <= w[1]), "offset column must be monotone");
        assert_eq!(
            *offsets.last().unwrap() as usize,
            neighbors.len(),
            "neighbor column length mismatch"
        );
        assert!(owned.windows(2).all(|w| w[0] < w[1]), "owned column must be strictly sorted");
        GraphPart { part_id, owned, offsets, neighbors }
    }

    /// Identifier of this part within its [`PartitionedGraph`].
    pub fn part_id(&self) -> usize {
        self.part_id
    }

    /// Sorted list of vertices owned by this part.
    pub fn owned(&self) -> &[VertexId] {
        &self.owned
    }

    /// The raw CSR offset column (`owned_count() + 1` entries) — the
    /// send side of a slice transfer.
    pub fn offsets(&self) -> &[u64] {
        &self.offsets
    }

    /// The raw CSR adjacency column — the send side of a slice transfer.
    pub fn neighbors(&self) -> &[VertexId] {
        &self.neighbors
    }

    /// Number of owned vertices.
    pub fn owned_count(&self) -> usize {
        self.owned.len()
    }

    /// Edge list of `v` if this part owns it, `None` otherwise.
    #[inline]
    pub fn edge_list(&self, v: VertexId) -> Option<&[VertexId]> {
        let rank = self.owned.binary_search(&v).ok()?;
        Some(self.edge_list_by_rank(rank))
    }

    /// Edge list of the `rank`-th owned vertex.
    ///
    /// # Panics
    ///
    /// Panics if `rank >= self.owned_count()`.
    #[inline]
    pub fn edge_list_by_rank(&self, rank: usize) -> &[VertexId] {
        let lo = self.offsets[rank] as usize;
        let hi = self.offsets[rank + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Number of adjacency entries stored by this part.
    pub fn adjacency_len(&self) -> usize {
        self.neighbors.len()
    }

    /// In-memory size of this part's CSR arrays in bytes.
    pub fn size_bytes(&self) -> usize {
        self.owned.len() * std::mem::size_of::<VertexId>()
            + self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
    }
}

/// A graph hash-partitioned across `machines × sockets_per_machine` parts.
///
/// # Example
///
/// ```
/// use gpm_graph::{gen, partition::PartitionedGraph};
///
/// let g = gen::erdos_renyi(100, 400, 1);
/// let pg = PartitionedGraph::new(&g, 2, 2); // 2 machines, 2 sockets each
/// assert_eq!(pg.part_count(), 4);
/// let v = 42;
/// let p = pg.owner(v);
/// assert_eq!(pg.part(p).edge_list(v).unwrap(), g.neighbors(v));
/// ```
#[derive(Debug, Clone)]
pub struct PartitionedGraph {
    machines: usize,
    sockets_per_machine: usize,
    vertex_count: usize,
    kind: GraphKind,
    owner_map: OwnerMap,
    parts: Vec<Arc<GraphPart>>,
    labels: Option<Arc<Vec<Label>>>,
    /// Replication factor `r`: every part's edge lists are also hosted
    /// by its `r - 1` hash predecessors, so `r = 1` means no replicas.
    replication: usize,
    /// `replicas[host]` = the parts whose edge-list slices `host` stores
    /// in addition to its own: its hash successors
    /// `host+1 … host+r-1 (mod n)`. Replica slices are separate from the
    /// primary (`part(p).edge_list` still answers only for owned
    /// vertices); in this in-process simulation they share the primary's
    /// CSR arrays through the `Arc`.
    replicas: Vec<Vec<Arc<GraphPart>>>,
}

impl PartitionedGraph {
    /// Partitions `g` across `machines` machines with
    /// `sockets_per_machine` NUMA sockets each, using hash assignment
    /// (the paper's strategy).
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn new(g: &Graph, machines: usize, sockets_per_machine: usize) -> Self {
        PartitionedGraph::with_partitioner(g, machines, sockets_per_machine, Partitioner::Hash)
    }

    /// Partitions with an explicit [`Partitioner`] strategy.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero.
    pub fn with_partitioner(
        g: &Graph,
        machines: usize,
        sockets_per_machine: usize,
        strategy: Partitioner,
    ) -> Self {
        assert!(machines >= 1 && sockets_per_machine >= 1, "need at least one part");
        let part_count = machines * sockets_per_machine;
        let owner_map = OwnerMap::new(strategy, part_count, g.vertex_count());
        let mut owned: Vec<Vec<VertexId>> = vec![Vec::new(); part_count];
        for v in g.vertices() {
            owned[owner_map.owner(v)].push(v);
        }
        let parts = owned
            .into_iter()
            .enumerate()
            .map(|(part_id, owned)| {
                let mut offsets = Vec::with_capacity(owned.len() + 1);
                offsets.push(0u64);
                let mut neighbors = Vec::new();
                for &v in &owned {
                    neighbors.extend_from_slice(g.neighbors(v));
                    offsets.push(neighbors.len() as u64);
                }
                Arc::new(GraphPart { part_id, owned, offsets, neighbors })
            })
            .collect();
        PartitionedGraph {
            machines,
            sockets_per_machine,
            vertex_count: g.vertex_count(),
            kind: g.kind(),
            owner_map,
            parts,
            labels: g.labels().map(|l| Arc::new(l.to_vec())),
            replication: 1,
            replicas: vec![Vec::new(); part_count],
        }
    }

    /// Partitions with hash assignment and replication factor `r`:
    /// besides its own slice, every part hosts the edge-list slices of
    /// its `r - 1` hash successors, so any single fail-stop part failure
    /// leaves every slice reachable whenever `r ≥ 2`.
    ///
    /// # Panics
    ///
    /// Panics if either count is zero or `r` is zero or exceeds the part
    /// count.
    pub fn with_replication(
        g: &Graph,
        machines: usize,
        sockets_per_machine: usize,
        r: usize,
    ) -> Self {
        let mut pg = PartitionedGraph::new(g, machines, sockets_per_machine);
        pg.set_replication(r);
        pg
    }

    /// (Re)assigns the replication factor, rebuilding the replica
    /// placement: part `p` hosts the slices of parts
    /// `p+1 … p+r-1 (mod n)`.
    ///
    /// # Panics
    ///
    /// Panics if `r` is zero or exceeds the part count.
    pub fn set_replication(&mut self, r: usize) {
        let n = self.parts.len();
        assert!(r >= 1, "replication factor must be at least 1");
        assert!(r <= n, "replication factor {r} exceeds part count {n}");
        self.replication = r;
        self.replicas = (0..n)
            .map(|host| (1..r).map(|k| Arc::clone(&self.parts[(host + k) % n])).collect())
            .collect();
    }

    /// The copyable vertex→part resolver used by all message layers.
    pub fn owner_map(&self) -> OwnerMap {
        self.owner_map
    }

    /// Number of machines.
    pub fn machines(&self) -> usize {
        self.machines
    }

    /// NUMA sockets per machine.
    pub fn sockets_per_machine(&self) -> usize {
        self.sockets_per_machine
    }

    /// Total number of parts (`machines × sockets_per_machine`).
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Number of vertices in the whole graph.
    pub fn vertex_count(&self) -> usize {
        self.vertex_count
    }

    /// Whether the partitioned graph is undirected or oriented.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// The part owning vertex `v`.
    #[inline]
    pub fn owner(&self, v: VertexId) -> usize {
        self.owner_map.owner(v)
    }

    /// The machine a part belongs to.
    #[inline]
    pub fn machine_of_part(&self, part: usize) -> usize {
        part / self.sockets_per_machine
    }

    /// The socket (within its machine) a part belongs to.
    #[inline]
    pub fn socket_of_part(&self, part: usize) -> usize {
        part % self.sockets_per_machine
    }

    /// Borrow a part.
    ///
    /// # Panics
    ///
    /// Panics if `id` is out of range.
    pub fn part(&self, id: usize) -> &GraphPart {
        &self.parts[id]
    }

    /// Shared handle to a part, for moving into a machine thread.
    pub fn part_arc(&self, id: usize) -> Arc<GraphPart> {
        Arc::clone(&self.parts[id])
    }

    /// Replicated label array (present iff the input graph was labeled).
    pub fn labels(&self) -> Option<Arc<Vec<Label>>> {
        self.labels.clone()
    }

    /// Label of `v`, if the graph is labeled.
    #[inline]
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.as_ref().map(|l| l[v as usize])
    }

    /// Sum of all parts' CSR bytes — the partitioned memory footprint.
    pub fn total_size_bytes(&self) -> usize {
        self.parts.iter().map(|p| p.size_bytes()).sum()
    }

    /// Replication factor `r` (1 = no replicas).
    pub fn replication(&self) -> usize {
        self.replication
    }

    /// The replica slices hosted by `host` besides its own: the parts
    /// `host+1 … host+r-1 (mod n)`, in placement order.
    ///
    /// # Panics
    ///
    /// Panics if `host` is out of range.
    pub fn hosted_replicas(&self, host: usize) -> &[Arc<GraphPart>] {
        &self.replicas[host]
    }

    /// The parts hosting a replica of `source`'s slice, nearest
    /// (hash-predecessor) first: `source-1 … source-(r-1) (mod n)`.
    /// Empty when `r = 1`. A fetch for a dead `source` fails over to the
    /// first live entry.
    pub fn replica_holders(&self, source: usize) -> Vec<usize> {
        let n = self.parts.len();
        (1..self.replication).map(|k| (source + n - k) % n).collect()
    }

    /// Bytes of CSR data hosted as replicas across all parts — the
    /// memory cost of the replication factor on top of
    /// [`PartitionedGraph::total_size_bytes`].
    pub fn replica_size_bytes(&self) -> usize {
        self.replicas.iter().flatten().map(|p| p.size_bytes()).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn parts_cover_and_partition_vertices() {
        let g = gen::erdos_renyi(500, 2000, 4);
        let pg = PartitionedGraph::new(&g, 3, 2);
        let mut seen = vec![false; 500];
        for p in 0..pg.part_count() {
            for &v in pg.part(p).owned() {
                assert!(!seen[v as usize], "vertex {v} owned twice");
                seen[v as usize] = true;
                assert_eq!(pg.owner(v), p, "owner() disagrees with membership");
            }
        }
        assert!(seen.iter().all(|&s| s), "some vertex unowned");
    }

    #[test]
    fn edge_lists_match_source_graph() {
        let g = gen::barabasi_albert(300, 3, 8);
        let pg = PartitionedGraph::new(&g, 4, 1);
        for v in g.vertices() {
            let part = pg.part(pg.owner(v));
            assert_eq!(part.edge_list(v).unwrap(), g.neighbors(v));
        }
    }

    #[test]
    fn non_owner_returns_none() {
        let g = gen::complete(16);
        let pg = PartitionedGraph::new(&g, 4, 1);
        for v in g.vertices() {
            for p in 0..4 {
                if p != pg.owner(v) {
                    assert!(pg.part(p).edge_list(v).is_none());
                }
            }
        }
    }

    #[test]
    fn partition_is_reasonably_balanced() {
        let g = gen::erdos_renyi(4000, 16000, 2);
        let pg = PartitionedGraph::new(&g, 8, 1);
        let expected = 4000 / 8;
        for p in 0..8 {
            let c = pg.part(p).owned_count();
            assert!(
                c > expected / 2 && c < expected * 2,
                "part {p} owns {c}, expected around {expected}"
            );
        }
    }

    #[test]
    fn machine_socket_mapping() {
        let g = gen::complete(10);
        let pg = PartitionedGraph::new(&g, 2, 2);
        assert_eq!(pg.machine_of_part(0), 0);
        assert_eq!(pg.machine_of_part(1), 0);
        assert_eq!(pg.machine_of_part(2), 1);
        assert_eq!(pg.socket_of_part(1), 1);
        assert_eq!(pg.socket_of_part(2), 0);
    }

    #[test]
    fn labels_replicated() {
        let g = gen::with_random_labels(&gen::complete(20), 5, 3);
        let pg = PartitionedGraph::new(&g, 3, 1);
        for v in g.vertices() {
            assert_eq!(pg.label(v), g.label(v));
        }
    }

    #[test]
    fn single_part_owns_everything() {
        let g = gen::complete(7);
        let pg = PartitionedGraph::new(&g, 1, 1);
        assert_eq!(pg.part(0).owned_count(), 7);
        assert_eq!(pg.part(0).adjacency_len(), g.adjacency_len());
    }

    #[test]
    #[should_panic(expected = "at least one part")]
    fn zero_machines_panics() {
        PartitionedGraph::new(&gen::complete(3), 0, 1);
    }

    #[test]
    fn range_partitioning_assigns_contiguous_blocks() {
        let g = gen::erdos_renyi(100, 300, 1);
        let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
        for v in g.vertices() {
            assert_eq!(pg.owner(v), (v as usize) / 25);
            let part = pg.part(pg.owner(v));
            assert_eq!(part.edge_list(v).unwrap(), g.neighbors(v));
        }
    }

    #[test]
    fn range_partitioning_concentrates_ba_hubs() {
        // BA numbering correlates with degree: range partitioning puts
        // the heavy adjacency mass on part 0 — the imbalance hash
        // partitioning exists to avoid (§2.2).
        let g = gen::barabasi_albert(4000, 8, 3);
        let range = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
        let hash = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Hash);
        let load = |pg: &PartitionedGraph| -> (usize, usize) {
            let loads: Vec<usize> = (0..4).map(|p| pg.part(p).adjacency_len()).collect();
            (*loads.iter().max().unwrap(), *loads.iter().min().unwrap())
        };
        let (range_max, range_min) = load(&range);
        let (hash_max, hash_min) = load(&hash);
        let range_skew = range_max as f64 / range_min.max(1) as f64;
        let hash_skew = hash_max as f64 / hash_min.max(1) as f64;
        assert!(
            range_skew > 2.0 * hash_skew,
            "expected range skew ({range_skew:.2}) >> hash skew ({hash_skew:.2})"
        );
    }

    #[test]
    fn owner_map_is_copyable_and_consistent() {
        let g = gen::complete(30);
        let pg = PartitionedGraph::with_partitioner(&g, 3, 2, Partitioner::Hash);
        let map = pg.owner_map();
        assert_eq!(map.parts(), 6);
        for v in g.vertices() {
            assert_eq!(map.owner(v), pg.owner(v));
        }
    }

    #[test]
    fn replication_places_successor_slices() {
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 4, 1, 2);
        assert_eq!(pg.replication(), 2);
        for host in 0..4 {
            let hosted = pg.hosted_replicas(host);
            assert_eq!(hosted.len(), 1);
            assert_eq!(hosted[0].part_id(), (host + 1) % 4);
        }
        // Holder list is the inverse mapping, nearest predecessor first.
        for source in 0..4 {
            assert_eq!(pg.replica_holders(source), vec![(source + 4 - 1) % 4]);
        }
        // Replica slices answer exactly what the primary answers.
        for v in g.vertices() {
            let owner = pg.owner(v);
            let holder = pg.replica_holders(owner)[0];
            let replica = pg
                .hosted_replicas(holder)
                .iter()
                .find_map(|p| p.edge_list(v))
                .expect("replica must hold the slice");
            assert_eq!(replica, g.neighbors(v));
        }
        assert_eq!(pg.replica_size_bytes(), pg.total_size_bytes());
    }

    #[test]
    fn no_replication_by_default() {
        let g = gen::complete(12);
        let pg = PartitionedGraph::new(&g, 3, 1);
        assert_eq!(pg.replication(), 1);
        assert!(pg.replica_holders(0).is_empty());
        assert!(pg.hosted_replicas(2).is_empty());
        assert_eq!(pg.replica_size_bytes(), 0);
    }

    #[test]
    fn full_replication_covers_all_other_parts() {
        let g = gen::complete(12);
        let mut pg = PartitionedGraph::new(&g, 3, 1);
        pg.set_replication(3);
        for source in 0..3 {
            let holders = pg.replica_holders(source);
            assert_eq!(holders.len(), 2);
            assert!(!holders.contains(&source), "a part never replicates itself");
        }
    }

    #[test]
    #[should_panic(expected = "exceeds part count")]
    fn over_replication_panics() {
        let g = gen::complete(6);
        PartitionedGraph::with_replication(&g, 2, 1, 3);
    }

    #[test]
    fn from_csr_roundtrips_a_part() {
        let g = gen::erdos_renyi(120, 500, 5);
        let pg = PartitionedGraph::new(&g, 3, 1);
        let src = pg.part(1);
        let rebuilt = GraphPart::from_csr(
            src.part_id(),
            src.owned().to_vec(),
            src.offsets().to_vec(),
            src.neighbors().to_vec(),
        );
        assert_eq!(rebuilt.part_id(), 1);
        assert_eq!(rebuilt.owned_count(), src.owned_count());
        for &v in src.owned() {
            assert_eq!(rebuilt.edge_list(v), src.edge_list(v));
        }
    }

    #[test]
    #[should_panic(expected = "neighbor column length mismatch")]
    fn from_csr_rejects_truncated_columns() {
        GraphPart::from_csr(0, vec![1, 2], vec![0, 2, 4], vec![3]);
    }

    #[test]
    fn range_owner_stays_in_bounds() {
        // div_ceil rounding must never produce an out-of-range part.
        let map = OwnerMap::new(Partitioner::Range, 7, 100);
        for v in 0..100u32 {
            assert!(map.owner(v) < 7);
        }
        let tiny = OwnerMap::new(Partitioner::Range, 4, 2);
        for v in 0..2u32 {
            assert!(tiny.owner(v) < 4);
        }
    }
}
