//! Orientation preprocessing: convert an undirected graph into a DAG.
//!
//! The paper adopts this triangle/clique-specific optimization from
//! Pangolin for the large-scale experiments (Table 5): rank vertices by
//! `(degree, id)` and keep each edge only in the direction of increasing
//! rank. Every k-clique of the undirected graph then appears exactly once
//! as a directed k-clique, removing the `k!` symmetry without any runtime
//! ordering checks, and the maximum out-degree drops to O(sqrt(|E|)) on
//! real-world graphs.

use crate::csr::{Graph, GraphKind};
use crate::VertexId;

/// Degree-ordered orientation of an undirected graph.
///
/// The edge `{u, v}` is kept as `u -> v` iff
/// `(degree(u), u) < (degree(v), v)`.
///
/// # Panics
///
/// Panics if `g` is already oriented.
///
/// # Example
///
/// ```
/// use gpm_graph::{gen, orient::orient_by_degree, GraphKind};
///
/// let g = gen::complete(4);
/// let dag = orient_by_degree(&g);
/// assert_eq!(dag.kind(), GraphKind::Oriented);
/// assert_eq!(dag.edge_count(), 6); // each edge stored once
/// assert!(dag.max_degree() <= g.max_degree());
/// ```
pub fn orient_by_degree(g: &Graph) -> Graph {
    assert_eq!(g.kind(), GraphKind::Undirected, "graph is already oriented");
    let n = g.vertex_count();
    let rank_less = |u: VertexId, v: VertexId| (g.degree(u), u) < (g.degree(v), v);
    let mut offsets = vec![0u64; n + 1];
    for v in g.vertices() {
        let out = g.neighbors(v).iter().filter(|&&w| rank_less(v, w)).count() as u64;
        offsets[v as usize + 1] = out;
    }
    for i in 0..n {
        offsets[i + 1] += offsets[i];
    }
    let mut neighbors = Vec::with_capacity(offsets[n] as usize);
    for v in g.vertices() {
        // CSR order preserves sortedness of each out-list.
        neighbors.extend(g.neighbors(v).iter().copied().filter(|&w| rank_less(v, w)));
    }
    Graph::from_parts(GraphKind::Oriented, offsets, neighbors, g.labels().map(<[_]>::to_vec))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn keeps_each_edge_once() {
        let g = gen::erdos_renyi(200, 800, 3);
        let dag = orient_by_degree(&g);
        assert_eq!(dag.edge_count(), g.edge_count());
        // No edge in both directions.
        for (u, v) in dag.arcs() {
            assert!(!dag.has_edge(v, u), "edge {u}->{v} stored twice");
        }
    }

    #[test]
    fn is_acyclic_by_rank() {
        let g = gen::barabasi_albert(300, 4, 9);
        let dag = orient_by_degree(&g);
        for (u, v) in dag.arcs() {
            assert!((g.degree(u), u) < (g.degree(v), v), "arc {u}->{v} violates rank order");
        }
    }

    #[test]
    fn triangle_count_preserved() {
        // Triangles in the DAG (u->v, u->w, v->w) == undirected triangles.
        let g = gen::erdos_renyi(100, 600, 5);
        let undirected = {
            let mut count = 0u64;
            for u in g.vertices() {
                for &v in g.neighbors(u) {
                    if v <= u {
                        continue;
                    }
                    count += crate::set_ops::intersect_count(g.neighbors(u), g.neighbors(v)) as u64;
                }
            }
            count / 3 // each triangle counted for 3 of its edges...
        };
        // Each undirected triangle {a,b,c} is counted once per edge with
        // both endpoints above... simpler: count via w > max(u,v) filter.
        let undirected_exact = {
            let mut count = 0u64;
            for u in g.vertices() {
                for &v in g.neighbors(u) {
                    if v <= u {
                        continue;
                    }
                    let mut common = Vec::new();
                    crate::set_ops::intersect_into(g.neighbors(u), g.neighbors(v), &mut common);
                    count += common.iter().filter(|&&w| w > v).count() as u64;
                }
            }
            count
        };
        let dag = orient_by_degree(&g);
        let mut oriented = 0u64;
        for u in dag.vertices() {
            let out = dag.neighbors(u);
            for &v in out {
                oriented += crate::set_ops::intersect_count(out, dag.neighbors(v)) as u64;
            }
        }
        assert_eq!(oriented, undirected_exact);
        let _ = undirected;
    }

    #[test]
    fn max_out_degree_shrinks_on_skewed_graph() {
        let g = gen::barabasi_albert(1000, 5, 2);
        let dag = orient_by_degree(&g);
        assert!(dag.max_degree() < g.max_degree() / 2);
    }

    #[test]
    #[should_panic(expected = "already oriented")]
    fn double_orientation_panics() {
        let dag = orient_by_degree(&gen::complete(3));
        orient_by_degree(&dag);
    }

    #[test]
    fn labels_survive_orientation() {
        let g = gen::with_random_labels(&gen::complete(5), 3, 1);
        let dag = orient_by_degree(&g);
        assert_eq!(dag.labels(), g.labels());
    }
}
