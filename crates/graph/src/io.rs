//! Edge-list readers and writers.
//!
//! Two formats are supported:
//!
//! * **Text**: one `u v` pair per line, whitespace-separated, `#`-prefixed
//!   comment lines ignored — the SNAP dataset format the paper's graphs
//!   ship in.
//! * **Binary**: a little-endian `u64` edge count followed by `(u32, u32)`
//!   pairs — fast reload for generated benchmark graphs.

use crate::builder::GraphBuilder;
use crate::csr::Graph;
use crate::VertexId;
use std::io::{self, BufRead, BufReader, BufWriter, Read, Write};
use std::path::Path;

/// Parses a SNAP-style text edge list from any reader.
///
/// The input may contain comment lines starting with `#`. Self-loops and
/// duplicate edges are removed, directed inputs are symmetrized.
///
/// # Errors
///
/// Returns an error on I/O failure or if a line is not two integers.
///
/// # Example
///
/// ```
/// # fn main() -> std::io::Result<()> {
/// let text = "# a comment\n0 1\n1 2\n2 0\n";
/// let g = gpm_graph::io::read_edge_list_text(text.as_bytes())?;
/// assert_eq!(g.edge_count(), 3);
/// # Ok(())
/// # }
/// ```
pub fn read_edge_list_text<R: Read>(reader: R) -> io::Result<Graph> {
    let mut b = GraphBuilder::growable();
    for (lineno, line) in BufReader::new(reader).lines().enumerate() {
        let line = line?;
        let line = line.trim();
        if line.is_empty() || line.starts_with('#') {
            continue;
        }
        let mut it = line.split_whitespace();
        let parse = |tok: Option<&str>| -> io::Result<VertexId> {
            tok.ok_or_else(|| bad_line(lineno))?.parse::<VertexId>().map_err(|_| bad_line(lineno))
        };
        let u = parse(it.next())?;
        let v = parse(it.next())?;
        b.add_edge(u, v);
    }
    Ok(b.build())
}

fn bad_line(lineno: usize) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, format!("malformed edge list line {}", lineno + 1))
}

/// Writes `g` as a text edge list (one line per undirected edge).
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_edge_list_text<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    writeln!(w, "# {} vertices, {} edges", g.vertex_count(), g.edge_count())?;
    for (u, v) in g.edges() {
        writeln!(w, "{u} {v}")?;
    }
    w.flush()
}

/// Reads the binary edge-list format written by [`write_edge_list_binary`].
///
/// # Errors
///
/// Returns an error on I/O failure or truncated input.
pub fn read_edge_list_binary<R: Read>(mut reader: R) -> io::Result<Graph> {
    let mut count_buf = [0u8; 8];
    reader.read_exact(&mut count_buf)?;
    let m = u64::from_le_bytes(count_buf) as usize;
    let mut b = GraphBuilder::growable();
    let mut buf = [0u8; 8];
    for _ in 0..m {
        reader.read_exact(&mut buf)?;
        let u = u32::from_le_bytes(buf[0..4].try_into().unwrap());
        let v = u32::from_le_bytes(buf[4..8].try_into().unwrap());
        b.add_edge(u, v);
    }
    Ok(b.build())
}

/// Writes `g` in a compact binary format: `u64` edge count, then
/// little-endian `(u32, u32)` pairs.
///
/// # Errors
///
/// Returns any underlying I/O error.
pub fn write_edge_list_binary<W: Write>(g: &Graph, writer: W) -> io::Result<()> {
    let mut w = BufWriter::new(writer);
    w.write_all(&(g.edge_count() as u64).to_le_bytes())?;
    for (u, v) in g.edges() {
        w.write_all(&u.to_le_bytes())?;
        w.write_all(&v.to_le_bytes())?;
    }
    w.flush()
}

/// Loads a graph from a path, choosing the format by extension:
/// `.bin` → binary, anything else → text.
///
/// # Errors
///
/// Returns an error if the file cannot be read or parsed.
pub fn load_graph<P: AsRef<Path>>(path: P) -> io::Result<Graph> {
    let path = path.as_ref();
    let file = std::fs::File::open(path)?;
    if path.extension().is_some_and(|e| e == "bin") {
        read_edge_list_binary(file)
    } else {
        read_edge_list_text(file)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gen;

    #[test]
    fn text_roundtrip() {
        let g = gen::erdos_renyi(50, 120, 1);
        let mut buf = Vec::new();
        write_edge_list_text(&g, &mut buf).unwrap();
        let g2 = read_edge_list_text(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn binary_roundtrip() {
        let g = gen::barabasi_albert(80, 3, 2);
        let mut buf = Vec::new();
        write_edge_list_binary(&g, &mut buf).unwrap();
        let g2 = read_edge_list_binary(&buf[..]).unwrap();
        assert_eq!(g, g2);
    }

    #[test]
    fn comments_and_blank_lines_skipped() {
        let text = "# header\n\n0 1\n# middle\n1 2\n";
        let g = read_edge_list_text(text.as_bytes()).unwrap();
        assert_eq!(g.edge_count(), 2);
    }

    #[test]
    fn malformed_line_reports_position() {
        let text = "0 1\nnot numbers\n";
        let err = read_edge_list_text(text.as_bytes()).unwrap_err();
        assert_eq!(err.kind(), io::ErrorKind::InvalidData);
        assert!(err.to_string().contains("line 2"));
    }

    #[test]
    fn truncated_binary_fails() {
        let g = gen::complete(4);
        let mut buf = Vec::new();
        write_edge_list_binary(&g, &mut buf).unwrap();
        buf.truncate(buf.len() - 3);
        assert!(read_edge_list_binary(&buf[..]).is_err());
    }

    #[test]
    fn load_graph_by_extension() {
        let dir = std::env::temp_dir();
        let g = gen::cycle(6);
        let text_path = dir.join("gpm_io_test.txt");
        let bin_path = dir.join("gpm_io_test.bin");
        write_edge_list_text(&g, std::fs::File::create(&text_path).unwrap()).unwrap();
        write_edge_list_binary(&g, std::fs::File::create(&bin_path).unwrap()).unwrap();
        assert_eq!(load_graph(&text_path).unwrap(), g);
        assert_eq!(load_graph(&bin_path).unwrap(), g);
        let _ = std::fs::remove_file(text_path);
        let _ = std::fs::remove_file(bin_path);
    }
}
