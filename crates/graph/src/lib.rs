//! Graph substrate for the Khuzdul reproduction.
//!
//! This crate provides everything the distributed GPM engine needs from the
//! input graph side:
//!
//! * [`Graph`] — an immutable, undirected (or degree-oriented) graph in CSR
//!   form with sorted adjacency lists and optional vertex labels;
//! * [`GraphBuilder`] — edge-list ingestion with self-loop removal and
//!   duplicate-edge elimination (the paper's preprocessing, §7.1);
//! * [`gen`] — deterministic synthetic generators (Erdős–Rényi,
//!   Barabási–Albert, R-MAT, and structured fixtures) used as stand-ins for
//!   the paper's datasets;
//! * [`datasets`] — a registry mapping the paper's dataset names (Table 1)
//!   to scaled-down synthetic equivalents with the same skew class;
//! * [`partition`] — 1-D hash graph partitioning (§2.2) with NUMA
//!   sub-partitioning (§5.4);
//! * [`orient`] — the orientation (degree-ordered DAG) preprocessing used
//!   for triangle/clique workloads on skewed graphs (§7.2, Table 5);
//! * [`set_ops`] — the sorted-set kernels (intersection, subtraction,
//!   galloping search) that embedding extension is built from;
//! * [`io`] — plain-text and binary edge-list readers/writers.
//!
//! # Example
//!
//! ```
//! use gpm_graph::{gen, partition::PartitionedGraph};
//!
//! let g = gen::barabasi_albert(1_000, 4, 42);
//! let parts = PartitionedGraph::new(&g, 4, 1);
//! assert_eq!(parts.part_count(), 4);
//! // Every vertex is owned by exactly one part.
//! let total: usize = (0..parts.part_count())
//!     .map(|p| parts.part(p).owned_count())
//!     .sum();
//! assert_eq!(total, g.vertex_count());
//! ```

#![warn(missing_docs)]

pub mod analysis;
mod builder;
mod csr;
pub mod datasets;
pub mod gen;
pub mod io;
pub mod orient;
pub mod partition;
pub mod set_ops;

pub use builder::GraphBuilder;
pub use csr::{Graph, GraphKind};

/// Identifier of a vertex in an input graph.
///
/// 32 bits comfortably covers the scaled-down synthetic datasets this
/// reproduction runs on (the paper's largest graph has 3.5 B vertices and
/// would need 64 bits; see `DESIGN.md` §1 for the scaling substitution).
pub type VertexId = u32;

/// Vertex label used by labeled workloads such as frequent subgraph mining.
pub type Label = u16;

/// Degree of a vertex.
pub type Degree = u32;
