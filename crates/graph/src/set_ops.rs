//! Sorted-set kernels used by embedding extension.
//!
//! All inputs are strictly-ascending `VertexId` slices (the invariant CSR
//! adjacency lists maintain). These kernels are the computational core of
//! pattern-aware enumeration: every extension step is one or more
//! intersections plus candidate filtering (paper Fig 1).

use crate::VertexId;

/// Merge-based intersection of two sorted slices, appended to `out`.
///
/// Switches to galloping (exponential) search when one input is much
/// shorter, which is the common case when intersecting a hot vertex's long
/// list with a short one.
///
/// # Example
///
/// ```
/// let mut out = Vec::new();
/// gpm_graph::set_ops::intersect_into(&[1, 3, 5, 7], &[2, 3, 4, 7, 9], &mut out);
/// assert_eq!(out, vec![3, 7]);
/// ```
pub fn intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return;
    }
    if long.len() / short.len().max(1) >= 16 {
        gallop_intersect_into(short, long, out);
    } else {
        merge_intersect_into(a, b, out);
    }
}

fn merge_intersect_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() && j < b.len() {
        match a[i].cmp(&b[j]) {
            std::cmp::Ordering::Less => i += 1,
            std::cmp::Ordering::Greater => j += 1,
            std::cmp::Ordering::Equal => {
                out.push(a[i]);
                i += 1;
                j += 1;
            }
        }
    }
}

fn gallop_intersect_into(short: &[VertexId], long: &[VertexId], out: &mut Vec<VertexId>) {
    let mut base = 0usize;
    for &x in short {
        let rest = &long[base..];
        let pos = gallop(rest, x);
        if pos < rest.len() && rest[pos] == x {
            out.push(x);
        }
        base += pos;
        if base >= long.len() {
            break;
        }
    }
}

/// Index of the first element `>= x` in sorted `s`, found by exponential
/// probing followed by binary search.
pub fn gallop(s: &[VertexId], x: VertexId) -> usize {
    if s.is_empty() || s[0] >= x {
        return 0;
    }
    let mut hi = 1usize;
    while hi < s.len() && s[hi] < x {
        hi *= 2;
    }
    let lo = hi / 2;
    let hi = hi.min(s.len());
    lo + s[lo..hi].partition_point(|&v| v < x)
}

/// Number of common elements of two sorted slices (no allocation).
///
/// # Example
///
/// ```
/// assert_eq!(gpm_graph::set_ops::intersect_count(&[1, 2, 3], &[2, 3, 4]), 2);
/// ```
pub fn intersect_count(a: &[VertexId], b: &[VertexId]) -> usize {
    let (short, long) = if a.len() <= b.len() { (a, b) } else { (b, a) };
    if short.is_empty() {
        return 0;
    }
    if long.len() / short.len().max(1) >= 16 {
        let mut base = 0usize;
        let mut count = 0usize;
        for &x in short {
            let rest = &long[base..];
            let pos = gallop(rest, x);
            if pos < rest.len() && rest[pos] == x {
                count += 1;
            }
            base += pos;
            if base >= long.len() {
                break;
            }
        }
        count
    } else {
        let (mut i, mut j, mut count) = (0, 0, 0);
        while i < a.len() && j < b.len() {
            match a[i].cmp(&b[j]) {
                std::cmp::Ordering::Less => i += 1,
                std::cmp::Ordering::Greater => j += 1,
                std::cmp::Ordering::Equal => {
                    count += 1;
                    i += 1;
                    j += 1;
                }
            }
        }
        count
    }
}

/// Intersection of `k >= 1` sorted slices, appended to `out`.
///
/// Lists are intersected smallest-first to keep intermediates small.
///
/// # Panics
///
/// Panics if `lists` is empty (an empty intersection is ill-defined: it
/// would be "all vertices").
pub fn intersect_many_into(lists: &[&[VertexId]], out: &mut Vec<VertexId>) {
    assert!(!lists.is_empty(), "intersect_many_into requires at least one list");
    if lists.len() == 1 {
        out.extend_from_slice(lists[0]);
        return;
    }
    let mut order: Vec<usize> = (0..lists.len()).collect();
    order.sort_unstable_by_key(|&i| lists[i].len());
    let mut cur: Vec<VertexId> = Vec::new();
    intersect_into(lists[order[0]], lists[order[1]], &mut cur);
    let mut next: Vec<VertexId> = Vec::new();
    for &i in &order[2..] {
        if cur.is_empty() {
            break;
        }
        next.clear();
        intersect_into(&cur, lists[i], &mut next);
        std::mem::swap(&mut cur, &mut next);
    }
    out.append(&mut cur);
}

/// Elements of sorted `a` not present in sorted `b`, appended to `out`.
///
/// # Example
///
/// ```
/// let mut out = Vec::new();
/// gpm_graph::set_ops::subtract_into(&[1, 2, 3, 4], &[2, 4], &mut out);
/// assert_eq!(out, vec![1, 3]);
/// ```
pub fn subtract_into(a: &[VertexId], b: &[VertexId], out: &mut Vec<VertexId>) {
    let (mut i, mut j) = (0, 0);
    while i < a.len() {
        if j >= b.len() || a[i] < b[j] {
            out.push(a[i]);
            i += 1;
        } else if a[i] > b[j] {
            j += 1;
        } else {
            i += 1;
            j += 1;
        }
    }
}

/// Whether sorted slice `s` contains `x` (binary search).
#[inline]
pub fn contains(s: &[VertexId], x: VertexId) -> bool {
    s.binary_search(&x).is_ok()
}

/// Number of elements of sorted `s` strictly below `x`.
#[inline]
pub fn count_below(s: &[VertexId], x: VertexId) -> usize {
    s.partition_point(|&v| v < x)
}

/// Number of elements of sorted `s` strictly above `x`.
#[inline]
pub fn count_above(s: &[VertexId], x: VertexId) -> usize {
    s.len() - s.partition_point(|&v| v <= x)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn intersect_basic() {
        let mut out = Vec::new();
        intersect_into(&[1, 2, 3, 5, 8], &[2, 3, 4, 8], &mut out);
        assert_eq!(out, vec![2, 3, 8]);
    }

    #[test]
    fn intersect_disjoint_and_empty() {
        let mut out = Vec::new();
        intersect_into(&[1, 3], &[2, 4], &mut out);
        assert!(out.is_empty());
        intersect_into(&[], &[1, 2], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn galloping_path_matches_merge_path() {
        // Force the galloping branch with a 1:1000 size ratio.
        let long: Vec<VertexId> = (0..1000).map(|i| i * 3).collect();
        let short = vec![0, 2997, 1500, 7];
        let mut short_sorted = short.clone();
        short_sorted.sort_unstable();
        let mut fast = Vec::new();
        intersect_into(&short_sorted, &long, &mut fast);
        let mut slow = Vec::new();
        merge_intersect_into(&short_sorted, &long, &mut slow);
        assert_eq!(fast, slow);
        assert_eq!(fast, vec![0, 1500, 2997]);
    }

    #[test]
    fn gallop_boundaries() {
        let s = &[10, 20, 30];
        assert_eq!(gallop(s, 5), 0);
        assert_eq!(gallop(s, 10), 0);
        assert_eq!(gallop(s, 11), 1);
        assert_eq!(gallop(s, 30), 2);
        assert_eq!(gallop(s, 31), 3);
        assert_eq!(gallop(&[], 1), 0);
    }

    #[test]
    fn count_matches_materialized() {
        let a = &[1, 4, 6, 9, 12];
        let b = &[2, 4, 9, 10, 12, 14];
        let mut out = Vec::new();
        intersect_into(a, b, &mut out);
        assert_eq!(intersect_count(a, b), out.len());
    }

    #[test]
    fn many_way_intersection() {
        let a: &[VertexId] = &[1, 2, 3, 4, 5, 6];
        let b: &[VertexId] = &[2, 4, 6, 8];
        let c: &[VertexId] = &[4, 5, 6];
        let mut out = Vec::new();
        intersect_many_into(&[a, b, c], &mut out);
        assert_eq!(out, vec![4, 6]);
    }

    #[test]
    fn single_list_intersection_is_copy() {
        let mut out = Vec::new();
        intersect_many_into(&[&[3, 1 + 1, 7][..]], &mut out);
        assert_eq!(out, vec![3, 2, 7]); // copied verbatim
    }

    #[test]
    #[should_panic(expected = "at least one list")]
    fn empty_list_set_panics() {
        intersect_many_into(&[], &mut Vec::new());
    }

    #[test]
    fn subtraction() {
        let mut out = Vec::new();
        subtract_into(&[1, 2, 3], &[], &mut out);
        assert_eq!(out, vec![1, 2, 3]);
        out.clear();
        subtract_into(&[1, 2, 3], &[1, 2, 3, 4], &mut out);
        assert!(out.is_empty());
    }

    #[test]
    fn bounds_counting() {
        let s = &[2, 4, 6, 8];
        assert_eq!(count_below(s, 5), 2);
        assert_eq!(count_below(s, 2), 0);
        assert_eq!(count_above(s, 5), 2);
        assert_eq!(count_above(s, 8), 0);
        assert!(contains(s, 6));
        assert!(!contains(s, 5));
    }
}
