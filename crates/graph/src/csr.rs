//! Compressed sparse row (CSR) graph representation.

use crate::{Degree, Label, VertexId};

/// Whether a [`Graph`] stores both directions of every edge or only the
/// degree-oriented direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum GraphKind {
    /// Every undirected edge `{u, v}` appears in both `neighbors(u)` and
    /// `neighbors(v)`.
    Undirected,
    /// The graph has been converted to a DAG by the orientation
    /// preprocessing ([`crate::orient::orient_by_degree`]); each edge
    /// appears exactly once, from the lower-ranked to the higher-ranked
    /// endpoint.
    Oriented,
}

/// An immutable graph in CSR form with sorted adjacency lists.
///
/// Adjacency lists are sorted in ascending vertex order, which the engine
/// relies on for merge-based intersection during embedding extension.
///
/// # Example
///
/// ```
/// use gpm_graph::GraphBuilder;
///
/// let mut b = GraphBuilder::new(4);
/// b.add_edge(0, 1);
/// b.add_edge(1, 2);
/// b.add_edge(2, 0);
/// b.add_edge(2, 3);
/// let g = b.build();
/// assert_eq!(g.vertex_count(), 4);
/// assert_eq!(g.edge_count(), 4);
/// assert_eq!(g.neighbors(2), &[0, 1, 3]);
/// assert!(g.has_edge(0, 2));
/// assert!(!g.has_edge(0, 3));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Graph {
    kind: GraphKind,
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    labels: Option<Vec<Label>>,
    /// Per-adjacency-entry edge labels, aligned with `neighbors`.
    edge_labels: Option<Vec<Label>>,
}

impl Graph {
    pub(crate) fn from_parts(
        kind: GraphKind,
        offsets: Vec<u64>,
        neighbors: Vec<VertexId>,
        labels: Option<Vec<Label>>,
    ) -> Self {
        debug_assert!(!offsets.is_empty());
        debug_assert_eq!(*offsets.last().unwrap() as usize, neighbors.len());
        if let Some(l) = &labels {
            debug_assert_eq!(l.len() + 1, offsets.len());
        }
        Graph { kind, offsets, neighbors, labels, edge_labels: None }
    }

    /// An empty graph with `n` isolated vertices.
    pub fn empty(n: usize) -> Self {
        Graph::from_parts(GraphKind::Undirected, vec![0; n + 1], Vec::new(), None)
    }

    /// Whether this graph is undirected or degree-oriented.
    pub fn kind(&self) -> GraphKind {
        self.kind
    }

    /// Number of vertices.
    pub fn vertex_count(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Number of edges. For [`GraphKind::Undirected`] graphs each edge
    /// `{u, v}` is counted once even though it is stored twice; for
    /// [`GraphKind::Oriented`] graphs this is the stored arc count.
    pub fn edge_count(&self) -> usize {
        match self.kind {
            GraphKind::Undirected => self.neighbors.len() / 2,
            GraphKind::Oriented => self.neighbors.len(),
        }
    }

    /// Total number of stored adjacency entries (`2|E|` for undirected).
    pub fn adjacency_len(&self) -> usize {
        self.neighbors.len()
    }

    /// The sorted neighbor list of `v`.
    ///
    /// # Panics
    ///
    /// Panics if `v` is out of range.
    #[inline]
    pub fn neighbors(&self, v: VertexId) -> &[VertexId] {
        let lo = self.offsets[v as usize] as usize;
        let hi = self.offsets[v as usize + 1] as usize;
        &self.neighbors[lo..hi]
    }

    /// Degree of `v` (out-degree for oriented graphs).
    #[inline]
    pub fn degree(&self, v: VertexId) -> Degree {
        (self.offsets[v as usize + 1] - self.offsets[v as usize]) as Degree
    }

    /// Largest degree over all vertices (0 for an empty graph).
    pub fn max_degree(&self) -> Degree {
        (0..self.vertex_count() as VertexId).map(|v| self.degree(v)).max().unwrap_or(0)
    }

    /// Whether the edge `(u, v)` is stored, via binary search on `u`'s list.
    ///
    /// For oriented graphs this checks the stored direction only.
    pub fn has_edge(&self, u: VertexId, v: VertexId) -> bool {
        self.neighbors(u).binary_search(&v).is_ok()
    }

    /// The label of `v`, or `None` if the graph is unlabeled.
    #[inline]
    pub fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.as_ref().map(|l| l[v as usize])
    }

    /// The full label array, if present.
    pub fn labels(&self) -> Option<&[Label]> {
        self.labels.as_deref()
    }

    /// Whether the graph carries vertex labels.
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// Returns a copy of this graph with the given labels attached.
    ///
    /// # Panics
    ///
    /// Panics if `labels.len() != self.vertex_count()`.
    pub fn with_labels(&self, labels: Vec<Label>) -> Graph {
        assert_eq!(labels.len(), self.vertex_count(), "label array size mismatch");
        Graph { labels: Some(labels), ..self.clone() }
    }

    /// Whether the graph carries per-edge labels (the paper's named
    /// extension — "edge label support can be added without fundamental
    /// difficulty", §2.1).
    pub fn has_edge_labels(&self) -> bool {
        self.edge_labels.is_some()
    }

    /// Label of the edge `{u, v}`: `None` if the graph has no edge labels
    /// or the edge does not exist.
    pub fn edge_label(&self, u: VertexId, v: VertexId) -> Option<Label> {
        let el = self.edge_labels.as_ref()?;
        let lo = self.offsets[u as usize] as usize;
        let pos = self.neighbors(u).binary_search(&v).ok()?;
        Some(el[lo + pos])
    }

    /// Attaches edge labels via a function of the (unordered) endpoints.
    /// Both stored directions of an edge receive the same label.
    pub fn with_edge_labels_by(&self, f: impl Fn(VertexId, VertexId) -> Label) -> Graph {
        let mut el = Vec::with_capacity(self.neighbors.len());
        for u in self.vertices() {
            for &v in self.neighbors(u) {
                el.push(f(u.min(v), u.max(v)));
            }
        }
        Graph { edge_labels: Some(el), ..self.clone() }
    }

    /// Iterator over all vertices.
    pub fn vertices(&self) -> impl Iterator<Item = VertexId> + '_ {
        0..self.vertex_count() as VertexId
    }

    /// Iterator over every stored arc `(u, v)`.
    ///
    /// For undirected graphs each edge is yielded twice (once per
    /// direction); use [`Graph::edges`] for the deduplicated view.
    pub fn arcs(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        self.vertices().flat_map(move |u| self.neighbors(u).iter().map(move |&v| (u, v)))
    }

    /// Iterator over undirected edges with `u <= v` (or all arcs if
    /// oriented).
    pub fn edges(&self) -> impl Iterator<Item = (VertexId, VertexId)> + '_ {
        let oriented = self.kind == GraphKind::Oriented;
        self.arcs().filter(move |&(u, v)| oriented || u <= v)
    }

    /// In-memory size of the CSR arrays in bytes, the paper's "graph size"
    /// notion used to express cache capacities as a fraction of graph size.
    pub fn size_bytes(&self) -> usize {
        self.offsets.len() * std::mem::size_of::<u64>()
            + self.neighbors.len() * std::mem::size_of::<VertexId>()
            + self.labels.as_ref().map_or(0, |l| l.len() * std::mem::size_of::<Label>())
            + self.edge_labels.as_ref().map_or(0, |l| l.len() * std::mem::size_of::<Label>())
    }

    /// Sum of degrees of `v`'s neighborhood; a cheap skew indicator used by
    /// tests and dataset descriptions.
    pub fn neighborhood_weight(&self, v: VertexId) -> u64 {
        self.neighbors(v).iter().map(|&u| self.degree(u) as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::GraphBuilder;

    fn triangle_plus_tail() -> Graph {
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1);
        b.add_edge(1, 2);
        b.add_edge(2, 0);
        b.add_edge(2, 3);
        b.build()
    }

    #[test]
    fn counts_and_degrees() {
        let g = triangle_plus_tail();
        assert_eq!(g.vertex_count(), 4);
        assert_eq!(g.edge_count(), 4);
        assert_eq!(g.adjacency_len(), 8);
        assert_eq!(g.degree(2), 3);
        assert_eq!(g.degree(3), 1);
        assert_eq!(g.max_degree(), 3);
    }

    #[test]
    fn neighbor_lists_are_sorted() {
        let g = triangle_plus_tail();
        for v in g.vertices() {
            let n = g.neighbors(v);
            assert!(n.windows(2).all(|w| w[0] < w[1]), "unsorted list for {v}");
        }
    }

    #[test]
    fn has_edge_is_symmetric_for_undirected() {
        let g = triangle_plus_tail();
        for u in g.vertices() {
            for v in g.vertices() {
                assert_eq!(g.has_edge(u, v), g.has_edge(v, u));
            }
        }
    }

    #[test]
    fn edges_yields_each_edge_once() {
        let g = triangle_plus_tail();
        let mut e: Vec<_> = g.edges().collect();
        e.sort_unstable();
        assert_eq!(e, vec![(0, 1), (0, 2), (1, 2), (2, 3)]);
    }

    #[test]
    fn empty_graph() {
        let g = Graph::empty(5);
        assert_eq!(g.vertex_count(), 5);
        assert_eq!(g.edge_count(), 0);
        assert_eq!(g.max_degree(), 0);
        assert!(g.neighbors(4).is_empty());
    }

    #[test]
    fn labels_roundtrip() {
        let g = triangle_plus_tail();
        assert!(!g.is_labeled());
        assert_eq!(g.label(0), None);
        let g = g.with_labels(vec![7, 7, 9, 3]);
        assert!(g.is_labeled());
        assert_eq!(g.label(2), Some(9));
        assert_eq!(g.labels().unwrap(), &[7, 7, 9, 3]);
    }

    #[test]
    #[should_panic(expected = "label array size mismatch")]
    fn wrong_label_len_panics() {
        triangle_plus_tail().with_labels(vec![1, 2]);
    }

    #[test]
    fn size_bytes_counts_all_arrays() {
        let g = triangle_plus_tail();
        let base = 5 * 8 + 8 * 4;
        assert_eq!(g.size_bytes(), base);
        let gl = g.with_labels(vec![0; 4]);
        assert_eq!(gl.size_bytes(), base + 4 * 2);
    }

    #[test]
    fn edge_labels_by_function() {
        let g = triangle_plus_tail();
        assert!(!g.has_edge_labels());
        assert_eq!(g.edge_label(0, 1), None);
        let gl = g.with_edge_labels_by(|u, v| (u + v) as crate::Label);
        assert!(gl.has_edge_labels());
        // Symmetric lookup, same value from either direction.
        assert_eq!(gl.edge_label(0, 1), Some(1));
        assert_eq!(gl.edge_label(1, 0), Some(1));
        assert_eq!(gl.edge_label(2, 3), Some(5));
        // Missing edges have no label.
        assert_eq!(gl.edge_label(0, 3), None);
        // Size accounting includes the edge-label array.
        assert_eq!(gl.size_bytes(), g.size_bytes() + 8 * 2);
    }
}
