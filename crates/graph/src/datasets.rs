//! Registry of scaled-down synthetic stand-ins for the paper's datasets.
//!
//! The paper evaluates on nine real graphs (Table 1). Those graphs (and the
//! cluster to hold them) are not available here, so each is replaced by a
//! deterministic synthetic graph of the same *skew class* at laptop scale:
//!
//! * less-skewed graphs (Patents) → Erdős–Rényi;
//! * social networks (MiCo, LiveJournal, Friendster, Orkut, Skitter) →
//!   Barabási–Albert with a matching edge/vertex ratio;
//! * web crawls with extreme hubs (UK, Twitter, Clueweb, UK-2014, WDC) →
//!   R-MAT with skew-heavy probabilities.
//!
//! The experiments in the paper are driven by skew (hot-spot edge lists →
//! cache and sharing effectiveness) and by scale class (small / medium /
//! large); both are preserved. See `DESIGN.md` §1.

use crate::csr::Graph;
use crate::gen;

/// Identifier of a dataset stand-in, named after the paper's abbreviations
/// (Table 1) plus the three aDFS-comparison graphs of Figure 10.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
#[allow(missing_docs)]
pub enum DatasetId {
    Mico,
    Patents,
    LiveJournal,
    Uk2005,
    Twitter2010,
    Friendster,
    Clueweb12,
    Uk2014,
    Wdc12,
    Skitter,
    Orkut,
}

impl DatasetId {
    /// All datasets, in the paper's Table 1 order followed by the Figure 10
    /// extras.
    pub const ALL: [DatasetId; 11] = [
        DatasetId::Mico,
        DatasetId::Patents,
        DatasetId::LiveJournal,
        DatasetId::Uk2005,
        DatasetId::Twitter2010,
        DatasetId::Friendster,
        DatasetId::Clueweb12,
        DatasetId::Uk2014,
        DatasetId::Wdc12,
        DatasetId::Skitter,
        DatasetId::Orkut,
    ];

    /// The "small" graphs used by the densest workloads (Table 2 upper rows).
    pub const SMALL: [DatasetId; 3] = [DatasetId::Mico, DatasetId::Patents, DatasetId::LiveJournal];

    /// The paper's abbreviation (Table 1 "Abbr." column).
    pub fn abbr(self) -> &'static str {
        match self {
            DatasetId::Mico => "mc",
            DatasetId::Patents => "pt",
            DatasetId::LiveJournal => "lj",
            DatasetId::Uk2005 => "uk",
            DatasetId::Twitter2010 => "tw",
            DatasetId::Friendster => "fr",
            DatasetId::Clueweb12 => "cl",
            DatasetId::Uk2014 => "uk14",
            DatasetId::Wdc12 => "wdc",
            DatasetId::Skitter => "sk",
            DatasetId::Orkut => "or",
        }
    }

    /// Full dataset name as in the paper.
    pub fn name(self) -> &'static str {
        match self {
            DatasetId::Mico => "MiCo",
            DatasetId::Patents => "Patents",
            DatasetId::LiveJournal => "LiveJournal",
            DatasetId::Uk2005 => "UK-2005",
            DatasetId::Twitter2010 => "Twitter-2010",
            DatasetId::Friendster => "Friendster",
            DatasetId::Clueweb12 => "Clueweb12",
            DatasetId::Uk2014 => "UK-2014",
            DatasetId::Wdc12 => "WDC12",
            DatasetId::Skitter => "Skitter",
            DatasetId::Orkut => "Orkut",
        }
    }

    /// How the stand-in is generated (shape class + parameters).
    pub fn recipe(self) -> &'static str {
        match self {
            DatasetId::Mico => "BA(n=9600, m=11), social, moderately skewed",
            DatasetId::Patents => "ER(n=20000, m=300000), less-skewed",
            DatasetId::LiveJournal => "BA(n=48000, m=9), social, skewed",
            DatasetId::Uk2005 => "RMAT(s=15, ef=24, a=0.65), web, highly skewed",
            DatasetId::Twitter2010 => "RMAT(s=15, ef=36, a=0.57), social, highly skewed",
            DatasetId::Friendster => "BA(n=65000, m=27), social",
            DatasetId::Clueweb12 => "RMAT(s=17, ef=40, a=0.65), web, huge",
            DatasetId::Uk2014 => "RMAT(s=17, ef=55, a=0.66), web, huge",
            DatasetId::Wdc12 => "RMAT(s=18, ef=36, a=0.65), web, largest",
            DatasetId::Skitter => "BA(n=17000, m=6), internet topology",
            DatasetId::Orkut => "BA(n=30000, m=20), social, dense",
        }
    }

    /// Generates the stand-in graph (deterministic).
    pub fn build(self) -> Graph {
        match self {
            DatasetId::Mico => gen::barabasi_albert(9_600, 11, 0x6d63),
            DatasetId::Patents => gen::erdos_renyi(20_000, 300_000, 0x7074),
            DatasetId::LiveJournal => gen::barabasi_albert(48_000, 9, 0x6c6a),
            DatasetId::Uk2005 => gen::rmat(15, 24, (0.65, 0.15, 0.15), 0x756b),
            DatasetId::Twitter2010 => gen::rmat(15, 36, (0.57, 0.19, 0.19), 0x7477),
            DatasetId::Friendster => gen::barabasi_albert(65_000, 27, 0x6672),
            DatasetId::Clueweb12 => gen::rmat(17, 40, (0.65, 0.15, 0.15), 0x636c),
            DatasetId::Uk2014 => gen::rmat(17, 55, (0.66, 0.15, 0.14), 0x3134),
            DatasetId::Wdc12 => gen::rmat(18, 36, (0.65, 0.15, 0.15), 0x7764),
            DatasetId::Skitter => gen::barabasi_albert(17_000, 6, 0x736b),
            DatasetId::Orkut => gen::barabasi_albert(30_000, 20, 0x6f72),
        }
    }

    /// Generates the stand-in with random labels attached (for FSM).
    pub fn build_labeled(self, label_count: crate::Label) -> Graph {
        gen::with_random_labels(&self.build(), label_count, 0x4c41_4245_4c53)
    }
}

/// Summary statistics for a dataset (the columns of Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DatasetStats {
    /// Number of vertices.
    pub vertices: usize,
    /// Number of undirected edges.
    pub edges: usize,
    /// Maximum degree.
    pub max_degree: u32,
    /// In-memory CSR size in bytes.
    pub size_bytes: usize,
}

/// Computes the Table 1 statistics columns for a graph.
pub fn stats(g: &Graph) -> DatasetStats {
    DatasetStats {
        vertices: g.vertex_count(),
        edges: g.edge_count(),
        max_degree: g.max_degree(),
        size_bytes: g.size_bytes(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_datasets_build_deterministically() {
        for id in DatasetId::SMALL {
            let a = id.build();
            let b = id.build();
            assert_eq!(a, b, "{} not deterministic", id.abbr());
            assert!(a.edge_count() > 0);
        }
    }

    #[test]
    fn skew_classes_hold() {
        let pt = DatasetId::Patents.build();
        let lj = DatasetId::LiveJournal.build();
        let mean_pt = pt.adjacency_len() as f64 / pt.vertex_count() as f64;
        let mean_lj = lj.adjacency_len() as f64 / lj.vertex_count() as f64;
        // Patents stand-in: flat profile; LiveJournal stand-in: heavy hub.
        assert!((pt.max_degree() as f64) < 5.0 * mean_pt, "patents should be flat");
        assert!((lj.max_degree() as f64) > 20.0 * mean_lj, "lj should be skewed");
    }

    #[test]
    fn abbr_and_name_unique() {
        let mut abbrs: Vec<_> = DatasetId::ALL.iter().map(|d| d.abbr()).collect();
        abbrs.sort_unstable();
        abbrs.dedup();
        assert_eq!(abbrs.len(), DatasetId::ALL.len());
    }

    #[test]
    fn stats_columns() {
        let g = DatasetId::Mico.build();
        let s = stats(&g);
        assert_eq!(s.vertices, 9_600);
        assert_eq!(s.edges, g.edge_count());
        assert_eq!(s.max_degree, g.max_degree());
        assert!(s.size_bytes > 0);
    }

    #[test]
    fn labeled_build_has_labels() {
        let g = DatasetId::Mico.build_labeled(4);
        assert!(g.is_labeled());
        assert!(g.labels().unwrap().iter().all(|&l| l < 4));
    }
}
