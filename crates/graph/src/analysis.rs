//! Graph analysis utilities: degree distributions, clustering, and
//! connectivity — used to characterize dataset stand-ins (skew class) and
//! by tests that need structural ground truth.

use crate::csr::Graph;
use crate::VertexId;

/// Histogram of vertex degrees in log2 buckets: `buckets[i]` counts
/// vertices with degree in `[2^i, 2^(i+1))` (`buckets[0]` includes degree
/// 0 and 1).
///
/// Power-law graphs show a long, slowly-decaying tail; ER graphs
/// concentrate in two or three buckets — the skew classes the dataset
/// registry is built around.
pub fn degree_histogram_log2(g: &Graph) -> Vec<usize> {
    let mut buckets: Vec<usize> = Vec::new();
    for v in g.vertices() {
        let d = g.degree(v);
        let b = if d <= 1 { 0 } else { (u32::BITS - d.leading_zeros() - 1) as usize };
        if b >= buckets.len() {
            buckets.resize(b + 1, 0);
        }
        buckets[b] += 1;
    }
    buckets
}

/// Gini coefficient of the degree distribution, in `[0, 1)`: 0 is
/// perfectly uniform, larger is more skewed. A compact single-number
/// skew indicator for the dataset registry.
pub fn degree_gini(g: &Graph) -> f64 {
    let n = g.vertex_count();
    if n == 0 {
        return 0.0;
    }
    let mut degrees: Vec<u64> = g.vertices().map(|v| g.degree(v) as u64).collect();
    degrees.sort_unstable();
    let total: u64 = degrees.iter().sum();
    if total == 0 {
        return 0.0;
    }
    // Gini = (2 * sum(i * d_i) / (n * total)) - (n + 1) / n, 1-indexed.
    let weighted: u128 =
        degrees.iter().enumerate().map(|(i, &d)| (i as u128 + 1) * d as u128).sum();
    (2.0 * weighted as f64) / (n as f64 * total as f64) - (n as f64 + 1.0) / n as f64
}

/// Global clustering coefficient: `3 × triangles / open wedges`.
/// Returns `None` when the graph has no wedge (no vertex of degree ≥ 2).
pub fn global_clustering(g: &Graph) -> Option<f64> {
    let mut triangles = 0u64;
    let mut wedges = 0u64;
    for v in g.vertices() {
        let d = g.degree(v) as u64;
        wedges += d * d.saturating_sub(1) / 2;
        for &u in g.neighbors(v) {
            if u > v {
                triangles += crate::set_ops::intersect_count(g.neighbors(v), g.neighbors(u)) as u64;
            }
        }
    }
    // Each triangle was counted once per edge with u > v => 3 times total.
    (wedges > 0).then(|| triangles as f64 / wedges as f64)
}

/// Connected components: returns `(component_count, component_id)` with
/// ids in `0..count`, assigned in order of each component's smallest
/// vertex.
pub fn connected_components(g: &Graph) -> (usize, Vec<u32>) {
    let n = g.vertex_count();
    let mut comp = vec![u32::MAX; n];
    let mut count = 0u32;
    let mut stack: Vec<VertexId> = Vec::new();
    for v in g.vertices() {
        if comp[v as usize] != u32::MAX {
            continue;
        }
        comp[v as usize] = count;
        stack.push(v);
        while let Some(u) = stack.pop() {
            for &w in g.neighbors(u) {
                if comp[w as usize] == u32::MAX {
                    comp[w as usize] = count;
                    stack.push(w);
                }
            }
        }
        count += 1;
    }
    (count as usize, comp)
}

/// Size of the largest connected component.
pub fn largest_component_size(g: &Graph) -> usize {
    let (count, comp) = connected_components(g);
    let mut sizes = vec![0usize; count];
    for c in comp {
        sizes[c as usize] += 1;
    }
    sizes.into_iter().max().unwrap_or(0)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{gen, GraphBuilder};

    #[test]
    fn histogram_buckets() {
        // Star(9): center degree 8 (bucket 3), leaves degree 1 (bucket 0).
        let h = degree_histogram_log2(&gen::star(9));
        assert_eq!(h[0], 8);
        assert_eq!(h[3], 1);
        assert_eq!(h.iter().sum::<usize>(), 9);
    }

    #[test]
    fn gini_orders_skew_classes() {
        let er = gen::erdos_renyi(2000, 16000, 1);
        let ba = gen::barabasi_albert(2000, 8, 1);
        let regular = gen::cycle(2000);
        let g_er = degree_gini(&er);
        let g_ba = degree_gini(&ba);
        let g_reg = degree_gini(&regular);
        assert!(g_reg < 1e-9, "regular graph has zero Gini, got {g_reg}");
        assert!(g_ba > g_er, "BA ({g_ba:.3}) must be more skewed than ER ({g_er:.3})");
        assert!(g_ba > 0.2);
    }

    #[test]
    fn clustering_known_values() {
        // Complete graph: every wedge closes.
        assert!((global_clustering(&gen::complete(6)).unwrap() - 1.0).abs() < 1e-9);
        // Star: no triangles.
        assert_eq!(global_clustering(&gen::star(6)).unwrap(), 0.0);
        // Edgeless / wedge-less.
        assert_eq!(global_clustering(&crate::Graph::empty(5)), None);
        // Triangle plus pendant: 1 triangle, wedges = 3*1 + C(3,2)=3 at
        // the degree-3 vertex => v degrees [2,2,3,1]: wedges=1+1+3+0=5.
        let mut b = GraphBuilder::new(4);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(2, 0).add_edge(2, 3);
        let c = global_clustering(&b.build()).unwrap();
        assert!((c - 3.0 / 5.0).abs() < 1e-9, "{c}");
    }

    #[test]
    fn components() {
        let mut b = GraphBuilder::new(7);
        b.add_edge(0, 1).add_edge(1, 2).add_edge(3, 4);
        // 5, 6 isolated.
        let g = b.build();
        let (count, comp) = connected_components(&g);
        assert_eq!(count, 4);
        assert_eq!(comp[0], comp[1]);
        assert_eq!(comp[1], comp[2]);
        assert_eq!(comp[3], comp[4]);
        assert_ne!(comp[0], comp[3]);
        assert_ne!(comp[5], comp[6]);
        assert_eq!(largest_component_size(&g), 3);
    }

    #[test]
    fn ba_graphs_are_connected() {
        let g = gen::barabasi_albert(500, 3, 9);
        assert_eq!(largest_component_size(&g), 500);
    }
}
