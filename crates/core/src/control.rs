//! The message-based carrier of the [`ControlPlane`] trait.
//!
//! [`MsgLedger`] keeps **no shared coordination state**: every claim,
//! steal, donation, retirement, starvation signal, quiescence vote, and
//! recovery-log query is a typed [`gpm_cluster::CtrlOp`] sent through a
//! per-part [`gpm_cluster::ControlClient`] to the run's single
//! [`gpm_cluster::ControlLedgerService`] responder thread, with the data
//! fabric's retry/backoff discipline and deterministic fault injection.
//! The shared-memory carrier ([`crate::scheduler::SharedLedger`]) and
//! this one are interchangeable per run and produce bit-identical counts;
//! `EngineConfig::control` picks between them.

use crate::incident::{ledger_json, CaptureSections, IncidentManager, Trigger, TriggerKind};
use crate::scheduler::{ClaimSource, ControlPlane, LedgerStateSummary};
use gpm_cluster::{
    ClusterMetrics, ControlClient, ControlLedgerConfig, ControlLedgerService, CtrlClaimSource,
    CtrlOp, CtrlPayload, FaultPlan, FetchError, RetryPolicy,
};
use gpm_graph::partition::GraphPart;
use gpm_graph::VertexId;
use gpm_obs::Recorder;
use parking_lot::Mutex;
use std::sync::Arc;
use std::time::Duration;

/// Which carrier runs the cross-part work-coordination protocol.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ControlMode {
    /// Shared-memory atomics inside the process (the original
    /// `RootLedger`; the default).
    #[default]
    Shared,
    /// Typed control messages over the cluster's channel layer, with
    /// retry/backoff and fault injection — the carrier that can stretch
    /// over a real multi-process transport.
    Msg,
}

/// Control-plane selection and, for the message carrier, its wire knobs.
#[derive(Debug, Clone, PartialEq, Default)]
pub struct ControlConfig {
    /// Which carrier coordinates cross-part work.
    pub mode: ControlMode,
    /// Timeout/retry policy of control messages (message carrier only).
    pub retry: RetryPolicy,
    /// Optional deterministic fault plan applied to control messages —
    /// *not* to data fetches, which have their own plan in
    /// `EngineConfig::fault` (message carrier only).
    pub fault: Option<FaultPlan>,
}

/// The message-based [`ControlPlane`]: per-part clients in front of one
/// run-scoped responder thread owning all coordination state.
///
/// The fire-and-forget trait operations (`batch_done`, `donate`,
/// `set_starving`) cannot surface wire errors through their signatures;
/// losing one would corrupt the protocol (a never-retired batch wedges
/// quiescence), so a failure **poisons** the ledger and the next fallible
/// call (`claim`, `finished`, `lost_roots`) reports it — the run fails
/// typed instead of hanging or miscounting.
pub(crate) struct MsgLedger {
    /// Owns the responder thread; dropped (and joined) with the ledger.
    _service: ControlLedgerService,
    clients: Vec<ControlClient>,
    stealing: bool,
    poisoned: Mutex<Option<FetchError>>,
    /// Query this ledger coordinates, stamped into poison incidents.
    query: u64,
    /// Incident sink; the first poison captures a `control_poison`
    /// bundle here before the run fails typed.
    incidents: Option<Arc<IncidentManager>>,
}

impl MsgLedger {
    /// A message ledger over each part's owned roots (the normal pass).
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn start(
        parts: &[Arc<GraphPart>],
        stealing: bool,
        batch: usize,
        numa: Option<usize>,
        control: &ControlConfig,
        query: u64,
        metrics: &ClusterMetrics,
        obs: Arc<Recorder>,
        incidents: Option<Arc<IncidentManager>>,
    ) -> MsgLedger {
        let roots = parts.iter().map(|p| p.owned().to_vec()).collect();
        MsgLedger::boot(
            roots,
            Vec::new(),
            stealing,
            batch,
            numa,
            control,
            query,
            metrics,
            obs,
            incidents,
        )
    }

    /// A message ledger for a *placed* recovery pass: each part's share
    /// of the lost roots (from the load-weighted placement) becomes its
    /// own root range on the responder, and the spill starts empty —
    /// recovery work lands where the placement decided, and parts that
    /// drain their share early steal the rest through the ordinary
    /// victim path. No cluster-side protocol change: the responder
    /// already coordinates arbitrary per-part root ranges.
    #[allow(clippy::too_many_arguments)]
    pub(crate) fn placed_recovery(
        assignments: Vec<Vec<VertexId>>,
        batch: usize,
        control: &ControlConfig,
        query: u64,
        metrics: &ClusterMetrics,
        obs: Arc<Recorder>,
        incidents: Option<Arc<IncidentManager>>,
    ) -> MsgLedger {
        MsgLedger::boot(
            assignments,
            Vec::new(),
            true,
            batch,
            None,
            control,
            query,
            metrics,
            obs,
            incidents,
        )
    }

    #[allow(clippy::too_many_arguments)]
    fn boot(
        roots: Vec<Vec<VertexId>>,
        spill: Vec<VertexId>,
        stealing: bool,
        batch: usize,
        numa: Option<usize>,
        control: &ControlConfig,
        query: u64,
        metrics: &ClusterMetrics,
        obs: Arc<Recorder>,
        incidents: Option<Arc<IncidentManager>>,
    ) -> MsgLedger {
        let n = roots.len();
        let cfg = ControlLedgerConfig {
            stealing,
            batch: batch.max(1),
            numa,
            retry: control.retry,
            fault: control.fault.clone(),
            query,
        };
        let service = ControlLedgerService::start(roots, spill, cfg, metrics, obs);
        let clients = (0..n).map(|p| service.client(p)).collect();
        MsgLedger {
            _service: service,
            clients,
            stealing,
            poisoned: Mutex::new(None),
            query,
            incidents,
        }
    }

    /// Records the first wire failure of a fire-and-forget operation and
    /// captures a `control_poison` incident bundle for it — the moment
    /// the protocol degrades, not when the next fallible call notices.
    fn poison(&self, e: FetchError) {
        {
            let mut guard = self.poisoned.lock();
            if guard.is_some() {
                return;
            }
            *guard = Some(e.clone());
        }
        if let Some(m) = &self.incidents {
            m.capture(
                Trigger {
                    kind: TriggerKind::ControlPoison,
                    query_id: self.query,
                    part: None,
                    value: 0,
                    detail: format!("control-plane poisoned by a fire-and-forget failure: {e:?}"),
                },
                CaptureSections {
                    progress: Vec::new(),
                    counters: None,
                    ledger: Some(ledger_json(&ControlPlane::state_summary(self))),
                },
            );
        }
    }

    fn check_poison(&self) -> Result<(), FetchError> {
        match self.poisoned.lock().clone() {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}

impl ControlPlane for MsgLedger {
    fn stealing(&self) -> bool {
        self.stealing
    }

    fn claim(
        &self,
        me: usize,
        own_batch: usize,
    ) -> Result<Option<(ClaimSource, Vec<VertexId>)>, FetchError> {
        self.check_poison()?;
        match self.clients[me].call(CtrlOp::Claim { own_batch })? {
            CtrlPayload::Claimed { source, roots } => {
                let source = match source {
                    CtrlClaimSource::Own => ClaimSource::Own,
                    CtrlClaimSource::Spill => ClaimSource::Spill,
                    CtrlClaimSource::Stolen(v) => ClaimSource::Stolen(v),
                };
                Ok(Some((source, roots)))
            }
            CtrlPayload::NoWork => Ok(None),
            other => {
                debug_assert!(false, "claim answered with {other:?}");
                Err(FetchError::Shutdown)
            }
        }
    }

    fn batch_done(&self, me: usize) {
        if let Err(e) = self.clients[me].call(CtrlOp::BatchDone) {
            self.poison(e);
        }
    }

    fn donate(&self, donor: usize, roots: Vec<VertexId>) {
        if roots.is_empty() {
            return;
        }
        if let Err(e) = self.clients[donor].call(CtrlOp::Donate { roots }) {
            self.poison(e);
        }
    }

    fn set_starving(&self, me: usize, on: bool) {
        if let Err(e) = self.clients[me].call(CtrlOp::Starving { on }) {
            self.poison(e);
        }
    }

    fn starving(&self, me: usize) -> usize {
        match self.clients[me].call(CtrlOp::Poll) {
            Ok(CtrlPayload::Status { starving, .. }) => starving,
            Ok(_) => 0,
            Err(e) => {
                self.poison(e);
                0
            }
        }
    }

    fn finished(&self, me: usize) -> Result<bool, FetchError> {
        self.check_poison()?;
        match self.clients[me].call(CtrlOp::Poll)? {
            CtrlPayload::Status { finished, .. } => Ok(finished),
            other => {
                debug_assert!(false, "poll answered with {other:?}");
                Err(FetchError::Shutdown)
            }
        }
    }

    fn wait_for_work(&self, _me: usize) {
        // No condvar spans the wire; a short timed park matches the
        // shared ledger's 1 ms idle slice and keeps the poll loop from
        // hammering the responder.
        std::thread::sleep(Duration::from_millis(1));
    }

    fn lost_roots(&self, dead: &[usize]) -> Result<Vec<VertexId>, FetchError> {
        self.check_poison()?;
        match self.clients[0].call(CtrlOp::CloseDead { dead: dead.to_vec() })? {
            CtrlPayload::Lost { roots } => Ok(roots),
            other => {
                debug_assert!(false, "close-dead answered with {other:?}");
                Err(FetchError::Shutdown)
            }
        }
    }

    /// Deliberately wire-free: incident capture runs exactly when the
    /// wire is suspect (poison, stall), so this reports only what the
    /// client side knows — carrier, availability, and the poison cause —
    /// rather than risking a retry storm mid-bundle.
    fn state_summary(&self) -> LedgerStateSummary {
        let poisoned = self.poisoned.lock().as_ref().map(|e| format!("{e:?}"));
        LedgerStateSummary {
            carrier: "msg",
            available: poisoned.is_none(),
            quiescent: false,
            starving: 0,
            spill_len: 0,
            per_part_remaining: Vec::new(),
            poisoned,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;
    use gpm_graph::partition::PartitionedGraph;

    fn msg_ledger(stealing: bool) -> MsgLedger {
        let g = gen::complete(12);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let parts: Vec<_> = (0..2).map(|p| pg.part_arc(p)).collect();
        MsgLedger::start(
            &parts,
            stealing,
            4,
            None,
            &ControlConfig::default(),
            0,
            &ClusterMetrics::new(2, 1),
            Recorder::disabled(),
            None,
        )
    }

    #[test]
    fn msg_ledger_claims_and_quiesces_like_the_shared_one() {
        let ledger = msg_ledger(true);
        let mut claimed = 0usize;
        let mut batches = 0usize;
        while let Some((_, roots)) = ledger.claim(0, 4).unwrap() {
            claimed += roots.len();
            batches += 1;
        }
        assert_eq!(claimed, 12, "part 0 drains everything via own range + steals");
        assert!(!ledger.finished(0).unwrap(), "outstanding batches block quiescence");
        for _ in 0..batches {
            ledger.batch_done(0);
        }
        assert!(ledger.finished(0).unwrap());
        assert_eq!(ledger.lost_roots(&[1]).unwrap(), Vec::<VertexId>::new());
    }

    #[test]
    fn msg_ledger_without_stealing_serves_only_own_roots() {
        let ledger = msg_ledger(false);
        let (source, roots) = ledger.claim(0, 64).unwrap().expect("own range");
        assert_eq!(source, ClaimSource::Own);
        assert!(!roots.is_empty());
        assert!(ledger.claim(0, 64).unwrap().is_none(), "no stealing, no spill");
    }

    #[test]
    fn msg_placed_recovery_serves_each_parts_share() {
        let ledger = MsgLedger::placed_recovery(
            vec![vec![7, 8], vec![9]],
            4,
            &ControlConfig::default(),
            0,
            &ClusterMetrics::new(2, 1),
            Recorder::disabled(),
            None,
        );
        assert!(ledger.stealing(), "placed recovery forces stealing on");
        let (src, roots) = ledger.claim(0, 4).unwrap().expect("own share");
        assert_eq!(src, ClaimSource::Own);
        assert_eq!(roots, vec![7, 8]);
        let (src, roots) = ledger.claim(0, 4).unwrap().expect("steal part 1's share");
        assert_eq!(src, ClaimSource::Stolen(1));
        assert_eq!(roots, vec![9]);
        assert!(ledger.claim(1, 4).unwrap().is_none());
    }

    #[test]
    fn first_poison_captures_a_control_poison_bundle() {
        use crate::incident::IncidentConfig;
        use gpm_obs::FlightRecorder;
        let dir = std::env::temp_dir().join(format!("khuzdul-ctrl-poison-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let cfg = IncidentConfig { dir: Some(dir.clone()), ..IncidentConfig::default() };
        let incidents = IncidentManager::new(&cfg, FlightRecorder::new(64), "t".to_string());
        let g = gen::complete(8);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let parts: Vec<_> = (0..2).map(|p| pg.part_arc(p)).collect();
        let control = ControlConfig {
            mode: ControlMode::Msg,
            retry: RetryPolicy {
                max_attempts: 2,
                timeout: Duration::from_millis(5),
                backoff: Duration::from_millis(1),
            },
            fault: Some(FaultPlan::drops(1.0)),
        };
        let ledger = MsgLedger::start(
            &parts,
            true,
            4,
            None,
            &control,
            3,
            &ClusterMetrics::new(2, 1),
            Recorder::disabled(),
            Some(Arc::clone(&incidents)),
        );
        // Fire-and-forget ops fail on the all-drops wire and poison the
        // ledger; only the FIRST failure captures a bundle.
        ledger.batch_done(0);
        ledger.set_starving(0, true);
        let captured = incidents.incidents();
        assert_eq!(captured.len(), 1, "exactly one bundle per poisoning");
        assert_eq!(captured[0].trigger, "control_poison");
        assert_eq!(captured[0].query_id, 3);
        let json = std::fs::read_to_string(&captured[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("poison bundle validates");
        assert!(json.contains("\"msg\""), "bundle names the msg carrier");
        assert!(
            json.contains("\"available\": false") || json.contains("\"available\":false"),
            "poisoned ledger reports unavailable"
        );
        assert!(ledger.claim(0, 4).is_err(), "poison surfaces on the next fallible call");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn starving_counts_round_trip() {
        let ledger = msg_ledger(true);
        assert_eq!(ledger.starving(0), 0);
        ledger.set_starving(1, true);
        assert_eq!(ledger.starving(0), 1);
        ledger.set_starving(1, false);
        assert_eq!(ledger.starving(0), 0);
    }
}
