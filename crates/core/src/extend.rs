//! The extend (computation) phase: running a level's extension program
//! over the claimable ranges of a chunk.
//!
//! Split out of the per-part coordinator (`runtime.rs`): this module owns
//! everything that executes *inside* a phase — the [`Worker`] claim loop
//! over the phase's [`TaskPool`], single-embedding extension, and the
//! set-algebra helpers for candidate generation. Phases are dispatched to
//! the engine's persistent worker pool through the part's
//! [`Gate`](crate::scheduler::Gate); no threads are spawned here.

use crate::chunk::{Chunk, Emb, ListRef, PushOutcome, Resume, StagedChild};
use crate::runtime::{PartCtx, PartRun};
use crate::scheduler::{Task, TaskPool};
use gpm_graph::{set_ops, VertexId};
use gpm_obs::{Metric, SpanKind};
use gpm_pattern::plan::{CandidateSource, LevelPlan, PairMode};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Instant;

impl PartRun<'_> {
    /// Extend phase: run the level's extension program over the chunk's
    /// unprocessed embeddings until the work is exhausted or the
    /// next-level chunk fills. Work is drained as mini-batch range tasks;
    /// multi-threaded phases run on the persistent pool's parked workers.
    pub(crate) fn extend(&mut self, cur: usize) {
        let t0 = Instant::now();
        let ets = self.obs.start();
        let next_before = self.levels.get(cur + 1).map_or(0, |c| c.embs.len());
        let plan = self.ctx.plan;
        let lp = &plan.levels()[cur];
        let terminal = cur + 1 == plan.levels().len();
        // IEP pair shortcut (counting only): the second-to-last level
        // counts pairs instead of materializing the final two loops.
        let pair = if self.ctx.visitor.is_none() && cur + 2 == plan.levels().len() {
            plan.pair_count_mode()
        } else {
            None
        };

        let start_cursor = self.levels[cur].cursor;
        let old_resumes = std::mem::take(&mut self.levels[cur].resumes);
        let leftovers = std::mem::take(&mut self.levels[cur].leftovers);
        let (read, rest) = self.levels.split_at_mut(cur + 1);
        let read: &[Chunk] = read;
        let next: Option<Mutex<&mut Chunk>> = if terminal {
            None
        } else {
            Some(Mutex::new(rest.first_mut().expect("next level chunk exists")))
        };

        let total = read[cur].embs.len();
        let full = AtomicBool::new(false);
        let new_resumes: Mutex<Vec<Resume>> = Mutex::new(Vec::new());
        let counter = AtomicU64::new(0);
        let threads = self.ctx.cfg.compute_threads.max(1);
        let mini = self.ctx.cfg.mini_batch.max(1) as u32;

        let pending_work = old_resumes.len()
            + leftovers.iter().map(|&(s, e)| (e - s) as usize).sum::<usize>()
            + total.saturating_sub(start_cursor);
        let tasks = TaskPool::new(threads, Arc::clone(&self.ctx.queue_depth));
        tasks.seed(
            old_resumes.len() as u32,
            &leftovers,
            (start_cursor as u32, total as u32),
            threads as u32,
        );

        {
            let worker = Worker {
                ctx: &self.ctx,
                read,
                cur,
                lp,
                terminal,
                pair,
                next: &next,
                old_resumes: &old_resumes,
                tasks: &tasks,
                mini,
                full: &full,
                new_resumes: &new_resumes,
                counter: &counter,
            };
            match &self.ctx.gate {
                Some(gate) if threads > 1 && pending_work > self.ctx.cfg.mini_batch => {
                    gate.run_phase(threads, &|w| worker.run(w));
                }
                // Small phases (and single-threaded configs) run inline on
                // the coordinator; the pool workers stay parked.
                _ => worker.run(0),
            }
        }

        // Write back scheduling state: paused embeddings plus every range
        // the pool still held unclaimed when the phase ended.
        let mut resumes = new_resumes.into_inner();
        let mut leftover_ranges: Vec<(u32, u32)> = Vec::new();
        let mut overclaim = 0u64;
        for task in tasks.drain() {
            match task {
                Task::Resumes { start, end } => {
                    // An end past the captured resume list would mean a
                    // worker fabricated resume indices. The clamp keeps the
                    // write-back memory-safe, but the bug must not hide:
                    // debug builds assert, release builds bump a counter.
                    debug_assert!(
                        (end as usize) <= old_resumes.len(),
                        "resume task outruns the captured resume list"
                    );
                    let end_c = (end as usize).min(old_resumes.len());
                    let start_c = (start as usize).min(end_c);
                    overclaim += (end as usize - end_c) as u64;
                    resumes.extend_from_slice(&old_resumes[start_c..end_c]);
                }
                Task::Fresh { start, end } => leftover_ranges.push((start, end)),
            }
        }
        if overclaim > 0 {
            self.obs.observe(Metric::ResumeOverclaim, overclaim);
        }
        // End `next`'s mutable borrow of self.levels before re-borrowing.
        #[allow(clippy::drop_non_drop)]
        drop(next);
        let chunk = &mut self.levels[cur];
        chunk.cursor = total;
        leftover_ranges.sort_unstable();
        chunk.leftovers = leftover_ranges;
        chunk.resumes = resumes;
        let grown =
            self.levels.get(cur + 1).map_or(0, |c| c.embs.len()).saturating_sub(next_before);
        if !terminal {
            self.obs.observe(Metric::ChunkFanout, grown as u64);
        }
        self.obs.span(SpanKind::Extend, ets, grown as u64);
        self.count += counter.load(Ordering::SeqCst);
        self.compute += t0.elapsed();
    }
}

/// Shared state of one extend phase; each claimant (pooled worker or the
/// inline coordinator) runs [`Worker::run`] with its worker index.
struct Worker<'a, 'c, 'e> {
    ctx: &'a PartCtx<'e>,
    read: &'a [Chunk],
    cur: usize,
    lp: &'a LevelPlan,
    terminal: bool,
    pair: Option<PairMode>,
    next: &'a Option<Mutex<&'c mut Chunk>>,
    old_resumes: &'a [Resume],
    tasks: &'a TaskPool,
    mini: u32,
    full: &'a AtomicBool,
    new_resumes: &'a Mutex<Vec<Resume>>,
    counter: &'a AtomicU64,
}

impl Worker<'_, '_, '_> {
    /// Whether the phase must stop claiming: the next-level chunk filled,
    /// or the run was cooperatively cancelled.
    fn halted(&self) -> bool {
        self.full.load(Ordering::Acquire)
            || self.ctx.stop.is_some_and(|s| s.load(Ordering::Relaxed))
    }

    fn run(&self, w: usize) {
        let mut scratch = Scratch::default();
        let mut local_count = 0u64;
        'claim: while !self.halted() {
            let Some(task) = self.tasks.claim(w, self.mini) else { break };
            match task {
                // Paused embeddings first: task seeding orders resume
                // ranges ahead of fresh ones in the injector.
                Task::Resumes { start, end } => {
                    for r in start..end {
                        if self.halted() {
                            self.tasks.give_back(w, Task::Resumes { start: r, end });
                            break 'claim;
                        }
                        let Resume { emb, cand_offset } = self.old_resumes[r as usize];
                        if let Some(paused_at) =
                            self.extend_one(emb, cand_offset, &mut scratch, &mut local_count)
                        {
                            self.new_resumes.lock().push(Resume { emb, cand_offset: paused_at });
                            self.full.store(true, Ordering::Release);
                            self.tasks.give_back(w, Task::Resumes { start: r + 1, end });
                            break 'claim;
                        }
                    }
                }
                Task::Fresh { start, end } => {
                    for i in start..end {
                        if self.halted() {
                            self.tasks.give_back(w, Task::Fresh { start: i, end });
                            break 'claim;
                        }
                        if let Some(paused_at) =
                            self.extend_one(i, 0, &mut scratch, &mut local_count)
                        {
                            self.new_resumes.lock().push(Resume { emb: i, cand_offset: paused_at });
                            self.full.store(true, Ordering::Release);
                            self.tasks.give_back(w, Task::Fresh { start: i + 1, end });
                            break 'claim;
                        }
                    }
                }
            }
        }
        self.counter.fetch_add(local_count, Ordering::Relaxed);
    }

    /// Extends one embedding from raw-candidate offset `from`. Returns
    /// `Some(offset)` if the next chunk filled before all candidates were
    /// consumed.
    fn extend_one(
        &self,
        emb: u32,
        from: u32,
        scratch: &mut Scratch,
        local_count: &mut u64,
    ) -> Option<u32> {
        let ctx = self.ctx;
        let lp = self.lp;
        let mut matched = [0 as VertexId; gpm_pattern::MAX_PATTERN_VERTICES];
        matched_chain(self.read, self.cur, emb, &mut matched);
        raw_candidates(ctx, self.read, self.cur, emb, lp, &matched, scratch);

        if self.terminal {
            debug_assert_eq!(from, 0, "terminal levels never pause");
            if let Some(visit) = ctx.visitor {
                let mut tuple = [0 as VertexId; gpm_pattern::MAX_PATTERN_VERTICES];
                tuple[..=self.cur].copy_from_slice(&matched[..=self.cur]);
                for &cand in &scratch.raw {
                    if passes_filters(ctx, lp, &matched, cand) {
                        *local_count += 1;
                        tuple[self.cur + 1] = cand;
                        visit(&tuple[..self.cur + 2]);
                    }
                }
            } else {
                *local_count += count_final(ctx, lp, &matched, &scratch.raw);
            }
            return None;
        }

        if let Some(mode) = self.pair {
            debug_assert_eq!(from, 0, "pair-counted levels never pause");
            let k = count_final(ctx, lp, &matched, &scratch.raw);
            *local_count += match mode {
                PairMode::Unordered => k * k.saturating_sub(1) / 2,
                PairMode::Ordered => k * k.saturating_sub(1),
            };
            return None;
        }

        scratch.staged.clear();
        for (i, &cand) in scratch.raw.iter().enumerate().skip(from as usize) {
            if passes_filters(ctx, lp, &matched, cand) {
                scratch.staged.push(StagedChild { vertex: cand, raw_index: i as u32 });
            }
        }
        if scratch.staged.is_empty() {
            return None;
        }
        let inter: Option<&[VertexId]> =
            if lp.store_intermediate { Some(&scratch.raw) } else { None };
        let mut next = self.next.as_ref().expect("non-terminal extension has a next chunk").lock();
        match next.try_push_children(emb, &scratch.staged, lp.new_vertex_active, inter) {
            PushOutcome::All => None,
            PushOutcome::Partial(n) => Some(scratch.staged[n].raw_index),
        }
    }
}

/// Per-thread scratch buffers.
#[derive(Default)]
struct Scratch {
    raw: Vec<VertexId>,
    tmp: Vec<VertexId>,
    staged: Vec<StagedChild>,
}

/// Reconstructs the matched vertices along the parent chain.
fn matched_chain(read: &[Chunk], level: usize, emb: u32, out: &mut [VertexId]) {
    let (mut l, mut e) = (level, emb);
    loop {
        out[l] = read[l].embs[e as usize].vertex;
        if l == 0 {
            break;
        }
        e = read[l].embs[e as usize].parent;
        l -= 1;
    }
}

/// The edge list of the vertex at `pos` along `emb`'s chain — vertical
/// data reuse by parent-pointer chasing (§5.1).
fn list_for<'a>(
    ctx: &'a PartCtx<'_>,
    read: &'a [Chunk],
    mut level: usize,
    mut emb: u32,
    pos: usize,
) -> &'a [VertexId] {
    while level > pos {
        emb = read[level].embs[emb as usize].parent;
        level -= 1;
    }
    resolve_ref(ctx, &read[level], &read[level].embs[emb as usize])
}

fn resolve_ref<'a>(ctx: &'a PartCtx<'_>, chunk: &'a Chunk, e: &'a Emb) -> &'a [VertexId] {
    match &e.list {
        ListRef::Local => ctx.part.edge_list(e.vertex).expect("local vertex owned by this part"),
        ListRef::Cached(list) => list,
        ListRef::Fetched { start, len } => chunk.fetched(*start, *len),
        ListRef::Peer(j) => {
            let peer = &chunk.embs[*j as usize];
            debug_assert!(!matches!(peer.list, ListRef::Peer(_)), "peer chains are length 1");
            resolve_ref(ctx, chunk, peer)
        }
        ListRef::Pending => panic!("extension reached an unresolved edge list"),
        ListRef::None => panic!("extension requested an inactive vertex's list"),
    }
}

/// Computes the raw candidate set for extending `emb` at level `cur` into
/// `scratch.raw`, honoring the plan's candidate source (vertical
/// computation reuse, §5.1).
fn raw_candidates(
    ctx: &PartCtx<'_>,
    read: &[Chunk],
    cur: usize,
    emb: u32,
    lp: &LevelPlan,
    _matched: &[VertexId],
    scratch: &mut Scratch,
) {
    scratch.raw.clear();
    let e = &read[cur].embs[emb as usize];
    match lp.source {
        CandidateSource::Scratch => {
            let mut lists: [&[VertexId]; gpm_pattern::MAX_PATTERN_VERTICES] =
                [&[]; gpm_pattern::MAX_PATTERN_VERTICES];
            for (k, &pos) in lp.intersect.iter().enumerate() {
                lists[k] = list_for(ctx, read, cur, emb, pos);
            }
            set_ops::intersect_many_into(&lists[..lp.intersect.len()], &mut scratch.raw);
        }
        CandidateSource::ParentIntermediate => {
            let span = e.inter.expect("plan guarantees a stored intermediate");
            scratch.raw.extend_from_slice(read[cur].inter(span));
        }
        CandidateSource::ParentIntermediateAndNew => {
            let span = e.inter.expect("plan guarantees a stored intermediate");
            let own = resolve_ref(ctx, &read[cur], e);
            set_ops::intersect_into(read[cur].inter(span), own, &mut scratch.raw);
        }
    }
    if !lp.subtract.is_empty() {
        for &pos in &lp.subtract {
            let list = list_for(ctx, read, cur, emb, pos);
            scratch.tmp.clear();
            set_ops::subtract_into(&scratch.raw, list, &mut scratch.tmp);
            std::mem::swap(&mut scratch.raw, &mut scratch.tmp);
        }
    }
}

/// Order/injectivity/label filters for one candidate.
#[inline]
fn passes_filters(ctx: &PartCtx<'_>, lp: &LevelPlan, matched: &[VertexId], cand: VertexId) -> bool {
    for &p in &lp.lower {
        if cand <= matched[p] {
            return false;
        }
    }
    for &p in &lp.upper {
        if cand >= matched[p] {
            return false;
        }
    }
    for &p in &lp.distinct {
        if cand == matched[p] {
            return false;
        }
    }
    if let Some(required) = lp.label {
        if ctx.label(cand) != Some(required) {
            return false;
        }
    }
    true
}

/// Final-level counting shortcut: order statistics instead of iteration
/// where the filters allow it.
fn count_final(ctx: &PartCtx<'_>, lp: &LevelPlan, matched: &[VertexId], raw: &[VertexId]) -> u64 {
    if lp.label.is_some() {
        return raw.iter().filter(|&&c| passes_filters(ctx, lp, matched, c)).count() as u64;
    }
    let lo: Option<VertexId> = lp.lower.iter().map(|&p| matched[p]).max();
    let hi: Option<VertexId> = lp.upper.iter().map(|&p| matched[p]).min();
    let begin = lo.map_or(0, |b| raw.partition_point(|&c| c <= b));
    let end = hi.map_or(raw.len(), |b| raw.partition_point(|&c| c < b));
    if begin >= end {
        return 0;
    }
    let mut count = (end - begin) as u64;
    for &p in &lp.distinct {
        let m = matched[p];
        let in_range = lo.is_none_or(|b| m > b) && hi.is_none_or(|b| m < b);
        if in_range && set_ops::contains(raw, m) {
            count -= 1;
        }
    }
    count
}
