//! Chunks: per-level arenas of extendable embeddings.
//!
//! A chunk stores every embedding of one tree level currently alive on a
//! part, back-to-back (§4.2): `(parent index, new vertex, edge-list slot,
//! intermediate-result span)`. Chunks are allocated and released as whole
//! levels — the paper's answer to BFS fragmentation — and parents always
//! outlive children (DFS over levels), so vertical sharing is plain index
//! chasing.

use gpm_graph::VertexId;
use std::sync::Arc;

/// Where an embedding's (new vertex's) active edge list lives.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) enum ListRef {
    /// The vertex is not active: no list is ever needed (anti-monotone
    /// inactive case, §3.1).
    #[default]
    None,
    /// Active but not yet resolved; fixed during the chunk's resolve
    /// phase, before any extension reads it.
    Pending,
    /// Owned by the local part; read directly from the graph partition.
    Local,
    /// Served from the software cache; the `Arc` keeps evicted entries
    /// alive while referenced.
    Cached(Arc<[VertexId]>),
    /// Fetched from a remote part into this chunk's fetch arena.
    Fetched {
        /// Offset into [`Chunk::fetch_data`].
        start: u32,
        /// List length.
        len: u32,
    },
    /// Horizontal sharing (§5.2): the embedding at this index in the same
    /// chunk holds the list (never itself a `Peer`).
    Peer(u32),
}

/// One extendable embedding inside a chunk.
#[derive(Debug, Clone, Default)]
pub(crate) struct Emb {
    /// Index of the parent embedding in the previous level's chunk
    /// (`u32::MAX` for roots).
    pub parent: u32,
    /// The vertex this embedding added to its parent.
    pub vertex: VertexId,
    /// Where this vertex's active edge list lives.
    pub list: ListRef,
    /// Span of this embedding's stored intermediate result (raw candidate
    /// set) in [`Chunk::inter_data`], for vertical computation reuse.
    pub inter: Option<(u32, u32)>,
}

/// Sentinel parent index for root embeddings.
pub(crate) const NO_PARENT: u32 = u32::MAX;

/// A paused extension: `emb` was being extended and the next raw
/// candidate to consume is at index `cand_offset`.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) struct Resume {
    pub emb: u32,
    pub cand_offset: u32,
}

/// Horizontal-sharing hash table: open addressing, **no collision
/// chains** — on a slot conflict the insertion is simply dropped (§5.2).
#[derive(Debug, Default)]
pub(crate) struct ShareTable {
    slots: Vec<(VertexId, u32)>, // (vertex, emb index), epoch-tagged by clearing
    mask: usize,
}

const EMPTY_SLOT: (VertexId, u32) = (VertexId::MAX, u32::MAX);

impl ShareTable {
    /// Prepares the table for a chunk of `capacity` embeddings.
    pub fn reset(&mut self, capacity: usize) {
        let want = (capacity * 2).next_power_of_two().max(16);
        if self.slots.len() != want {
            self.slots = vec![EMPTY_SLOT; want];
            self.mask = want - 1;
        } else {
            self.slots.fill(EMPTY_SLOT);
        }
    }

    #[inline]
    fn slot(&self, v: VertexId) -> usize {
        (gpm_graph::partition::vertex_hash(v) as usize) & self.mask
    }

    /// Returns the embedding already registered for `v`, or registers
    /// `emb` and returns `None`. A slot occupied by a *different* vertex
    /// drops the registration (no chain), returning `None`.
    pub fn lookup_or_claim(&mut self, v: VertexId, emb: u32) -> Option<u32> {
        if self.slots.is_empty() {
            return None;
        }
        let s = self.slot(v);
        let (sv, se) = self.slots[s];
        if (sv, se) == EMPTY_SLOT {
            self.slots[s] = (v, emb);
            None
        } else if sv == v {
            Some(se)
        } else {
            None // collision: drop, accept redundant fetch
        }
    }
}

/// A per-level chunk of extendable embeddings with its data arenas and
/// BFS-DFS bookkeeping.
#[derive(Debug, Default)]
pub(crate) struct Chunk {
    /// Embeddings of this level.
    pub embs: Vec<Emb>,
    /// Arena of remotely fetched edge lists.
    pub fetch_data: Vec<VertexId>,
    /// Arena of stored intermediate results.
    pub inter_data: Vec<VertexId>,
    /// `embs[..cursor]` have been offered to an extend phase.
    pub cursor: usize,
    /// Partially-extended embeddings to resume first.
    pub resumes: Vec<Resume>,
    /// Never-started `embs` ranges handed back by an extend phase (the
    /// next-level chunk filled, or the run stopped, before any worker
    /// claimed them). Half-open, sorted, disjoint. At level 0 these are
    /// the unit of cross-part donation: whole ranges can be moved to the
    /// steal ledger's spill because no worker has touched them.
    pub leftovers: Vec<(u32, u32)>,
    /// `embs[..resolved_upto]` have had their edge lists resolved.
    pub resolved_upto: usize,
    /// Maximum number of embeddings (the chunk size knob, §4.2/§7.7).
    pub capacity: usize,
    /// Horizontal-sharing table for the current fill.
    pub share: ShareTable,
}

impl Chunk {
    /// An empty chunk bounded to `capacity` embeddings.
    pub fn new(capacity: usize) -> Self {
        Chunk { capacity, ..Chunk::default() }
    }

    /// Whether any embeddings remain to extend (fresh, paused, or handed
    /// back unstarted).
    pub fn has_work(&self) -> bool {
        self.cursor < self.embs.len() || !self.resumes.is_empty() || !self.leftovers.is_empty()
    }

    /// Whether the chunk holds no embeddings at all.
    pub fn is_empty(&self) -> bool {
        self.embs.is_empty()
    }

    /// Remaining room in embeddings.
    pub fn room(&self) -> usize {
        self.capacity.saturating_sub(self.embs.len())
    }

    /// Releases the whole level at once (the "terminated" transition of
    /// Figure 6, done chunk-wise).
    pub fn clear(&mut self) {
        self.embs.clear();
        self.fetch_data.clear();
        self.inter_data.clear();
        self.cursor = 0;
        self.resumes.clear();
        self.leftovers.clear();
        self.resolved_upto = 0;
        // `share` is reset lazily at the next resolve.
    }

    /// Appends a fetched list to the arena, returning its `ListRef`.
    pub fn push_fetched(&mut self, list: &[VertexId]) -> ListRef {
        let start = self.fetch_data.len() as u32;
        self.fetch_data.extend_from_slice(list);
        ListRef::Fetched { start, len: list.len() as u32 }
    }

    /// Stores an intermediate result, returning its span.
    pub fn push_inter(&mut self, data: &[VertexId]) -> (u32, u32) {
        let start = self.inter_data.len() as u32;
        self.inter_data.extend_from_slice(data);
        (start, data.len() as u32)
    }

    /// Resolves a `Fetched` span.
    #[inline]
    pub fn fetched(&self, start: u32, len: u32) -> &[VertexId] {
        &self.fetch_data[start as usize..(start + len) as usize]
    }

    /// Resolves an intermediate span.
    #[inline]
    pub fn inter(&self, span: (u32, u32)) -> &[VertexId] {
        &self.inter_data[span.0 as usize..(span.0 + span.1) as usize]
    }
}

/// Result of pushing children into the next-level chunk.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum PushOutcome {
    /// All children fit.
    All,
    /// Only the first `n` children fit; the chunk is now full.
    Partial(usize),
}

/// A child embedding staged for pushing: `(vertex, raw candidate index)`.
#[derive(Debug, Clone, Copy)]
pub(crate) struct StagedChild {
    pub vertex: VertexId,
    pub raw_index: u32,
}

impl Chunk {
    /// Pushes the children of `parent` (staged in raw-candidate order)
    /// into this chunk, honoring capacity. If `inter` is provided and at
    /// least one child is pushed, the intermediate result is stored once
    /// and shared by every pushed child. `needs_list` marks the new
    /// vertex active (list fetch required later).
    pub fn try_push_children(
        &mut self,
        parent: u32,
        children: &[StagedChild],
        needs_list: bool,
        inter: Option<&[VertexId]>,
    ) -> PushOutcome {
        let n = children.len().min(self.room());
        if n > 0 {
            let span = inter.map(|d| self.push_inter(d));
            for c in &children[..n] {
                self.embs.push(Emb {
                    parent,
                    vertex: c.vertex,
                    list: if needs_list { ListRef::Pending } else { ListRef::None },
                    inter: span,
                });
            }
        }
        if n == children.len() {
            PushOutcome::All
        } else {
            PushOutcome::Partial(n)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn staged(vs: &[VertexId]) -> Vec<StagedChild> {
        vs.iter()
            .enumerate()
            .map(|(i, &v)| StagedChild { vertex: v, raw_index: i as u32 })
            .collect()
    }

    #[test]
    fn push_within_capacity() {
        let mut c = Chunk::new(10);
        let out = c.try_push_children(NO_PARENT, &staged(&[1, 2, 3]), true, None);
        assert_eq!(out, PushOutcome::All);
        assert_eq!(c.embs.len(), 3);
        assert!(c.embs.iter().all(|e| e.list == ListRef::Pending));
        assert!(c.has_work());
    }

    #[test]
    fn push_truncates_at_capacity() {
        let mut c = Chunk::new(2);
        let out = c.try_push_children(0, &staged(&[1, 2, 3, 4]), false, None);
        assert_eq!(out, PushOutcome::Partial(2));
        assert_eq!(c.embs.len(), 2);
        assert_eq!(c.room(), 0);
        let out2 = c.try_push_children(0, &staged(&[9]), false, None);
        assert_eq!(out2, PushOutcome::Partial(0));
    }

    #[test]
    fn inter_shared_among_siblings() {
        let mut c = Chunk::new(10);
        c.try_push_children(0, &staged(&[5, 6]), false, Some(&[7, 8, 9]));
        let s0 = c.embs[0].inter.unwrap();
        let s1 = c.embs[1].inter.unwrap();
        assert_eq!(s0, s1);
        assert_eq!(c.inter(s0), &[7, 8, 9]);
    }

    #[test]
    fn inter_not_stored_when_nothing_pushed() {
        let mut c = Chunk::new(0);
        c.try_push_children(0, &staged(&[5]), false, Some(&[1, 2]));
        assert!(c.inter_data.is_empty());
    }

    #[test]
    fn fetch_arena_roundtrip() {
        let mut c = Chunk::new(4);
        let r = c.push_fetched(&[10, 20, 30]);
        match r {
            ListRef::Fetched { start, len } => assert_eq!(c.fetched(start, len), &[10, 20, 30]),
            other => panic!("unexpected {other:?}"),
        }
    }

    #[test]
    fn clear_releases_everything() {
        let mut c = Chunk::new(4);
        c.try_push_children(0, &staged(&[1]), true, Some(&[2]));
        c.push_fetched(&[3]);
        c.cursor = 1;
        c.resumes.push(Resume { emb: 0, cand_offset: 2 });
        c.resolved_upto = 1;
        c.clear();
        assert!(c.is_empty());
        assert!(!c.has_work());
        assert_eq!(c.fetch_data.len(), 0);
        assert_eq!(c.inter_data.len(), 0);
        assert_eq!(c.resolved_upto, 0);
    }

    #[test]
    fn share_table_claim_and_hit() {
        let mut t = ShareTable::default();
        t.reset(8);
        assert_eq!(t.lookup_or_claim(42, 0), None); // claimed
        assert_eq!(t.lookup_or_claim(42, 1), Some(0)); // shared
        assert_eq!(t.lookup_or_claim(42, 2), Some(0));
    }

    #[test]
    fn share_table_drops_collisions() {
        // Tiny table to force collisions.
        let mut t = ShareTable::default();
        t.reset(1); // 16 slots
        let mut dropped = 0;
        let mut claimed = 0;
        for v in 0..64u32 {
            match t.lookup_or_claim(v, v) {
                None => {
                    // Either claimed or dropped; re-query distinguishes.
                    if t.lookup_or_claim(v, 999) == Some(v) {
                        claimed += 1;
                    } else {
                        dropped += 1;
                    }
                }
                Some(_) => panic!("distinct vertices cannot hit"),
            }
        }
        assert!(claimed <= 16);
        assert!(dropped > 0, "collisions should drop on a saturated table");
    }

    #[test]
    fn share_table_reset_clears_epoch() {
        let mut t = ShareTable::default();
        t.reset(8);
        t.lookup_or_claim(7, 3);
        t.reset(8);
        assert_eq!(t.lookup_or_claim(7, 5), None, "stale entry survived reset");
        assert_eq!(t.lookup_or_claim(7, 6), Some(5));
    }
}
