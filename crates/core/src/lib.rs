//! **Khuzdul** — a distributed graph pattern mining (GPM) execution engine.
//!
//! This crate is a from-scratch Rust reproduction of the system described
//! in *"Khuzdul: Efficient and Scalable Distributed Graph Pattern Mining
//! Engine"* (Chen & Qian, ASPLOS 2023). It executes pattern enumeration
//! programs — compiled [`MatchingPlan`]s, the reified form of the paper's
//! generated `EXTEND` functions — over a 1-D hash-partitioned graph spread
//! across the machines (and NUMA sockets) of a simulated cluster.
//!
//! The engine implements the paper's full mechanism stack:
//!
//! * **Extendable embeddings** (§3): each fine-grained task is one
//!   extension of a partially-constructed embedding whose *active edge
//!   lists* are locally available; activeness is anti-monotone, so an
//!   embedding stores at most one new edge list beyond its parent's.
//! * **BFS-DFS hybrid exploration** (§4.2): embeddings live in per-level
//!   fixed-capacity *chunks*; exploration is BFS within a chunk and DFS
//!   across chunks, bounding memory to `depth × chunk` while keeping
//!   enough concurrent tasks for batched communication.
//! * **Circulant scheduling** (§4.3): a chunk's missing edge lists are
//!   bucketed by owner machine and fetched in circulant order, pipelined
//!   with extension by a dedicated communication thread.
//! * **Low-cost data sharing** (§5): vertical data reuse via parent
//!   pointers, vertical *computation* reuse via stored intermediate
//!   intersection results, horizontal sharing via a collision-dropping
//!   hash table per chunk, and a never-evicting static cache
//!   (plus FIFO/LIFO/LRU/MRU variants for the paper's Figure 16 study).
//! * **NUMA awareness** (§5.4): each socket runs the hybrid exploration
//!   independently on its sub-partition.
//!
//! # Quick start
//!
//! ```
//! use gpm_graph::{gen, partition::PartitionedGraph};
//! use gpm_pattern::{plan::{MatchingPlan, PlanOptions}, Pattern};
//! use khuzdul::{Engine, EngineConfig};
//!
//! let g = gen::erdos_renyi(300, 1500, 7);
//! let pg = PartitionedGraph::new(&g, 4, 1); // 4 machines
//! let engine = Engine::new(pg, EngineConfig::default());
//! let plan = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::automine()).unwrap();
//! let run = engine.count(&plan);
//! assert_eq!(run.count, gpm_pattern::oracle::count_subgraphs(&g, &Pattern::triangle(), false));
//! engine.shutdown();
//! ```

#![warn(missing_docs)]

pub mod cache;
mod chunk;
mod control;
mod engine;
mod extend;
pub mod incident;
pub mod rebalance;
mod runtime;
mod scheduler;
pub mod service;
pub mod stats;
pub mod status;

pub use cache::{CacheConfig, CachePolicy};
pub use control::{ControlConfig, ControlMode};
pub use engine::{Engine, EngineConfig, EngineError, PartHealth, QueryCtx, DEFAULT_ROOT_BUDGET};
pub use incident::{list_bundles, validate_bundle, IncidentConfig, IncidentManager};
pub use rebalance::{RebalanceConfig, RebalanceStats};
pub use scheduler::{QueryArbiter, StealConfig};
pub use service::{Completion, MiningService, QueryHandle, QueryOutcome, ServiceConfig};
pub use stats::{Breakdown, ControlSummary, FailureSummary, PartStats, RunStats, TrafficSummary};
pub use status::{StatusConfig, StatusServer};

// Fabric knobs and errors surface through `EngineConfig` / `try_count`,
// so re-export them for downstream callers.
pub use gpm_cluster::{CrashAt, FabricConfig, FaultPlan, FetchError, RetryPolicy};

// Observability surfaces through `EngineConfig::obs` / `Engine::report`;
// re-export the types callers hold or write out.
pub use gpm_obs::{ObsConfig, Recorder, RunReport};

// Re-export the plan types that form the engine's EXTEND-level interface.
pub use gpm_pattern::plan::MatchingPlan;
