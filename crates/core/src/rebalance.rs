//! Background re-replication: the self-healing half of the fault story.
//!
//! The fail-stop machinery (liveness promotion, failover routing, lost-
//! root recovery) keeps a run *correct* after a crash, but it leaves the
//! cluster degraded: every slice the dead part owned or hosted is one
//! copy short, so a second crash of the wrong part turns survivable into
//! `PartLost`. The [`Rebalancer`] closes that gap. A background thread
//! watches [`EdgeListService::dead_parts`]; when a part is promoted
//! dead, it walks every slice whose effective replication dropped below
//! the configured factor, picks a replacement host in hash-successor
//! order (the same ring the static placement uses, skipping dead hosts
//! and existing holders), and streams the slice's CSR columns to the
//! host's responder as chunked `ReplicaPush` ops over the regular
//! transport. Each completed transfer atomically republishes the routing
//! table (epoch bump), so subsequent dead-owner fetches fail over to the
//! restored holder — and a later crash of a *different* part at
//! replication 2 still yields bit-identical counts instead of a loss.
//!
//! The transfer source is the in-process slice handle
//! ([`GraphPart`]): in a real deployment the bytes would stream from a
//! surviving holder's copy, but the copies are bit-identical by
//! construction, so the wire path — chunking, per-chunk acks, abort on
//! incoherent transfer, routing republish — exercises exactly what a
//! holder-to-holder stream would.
//!
//! A slice whose every copy died before a transfer could land is
//! unrepairable: it is marked lost ([`EdgeListService::mark_slice_lost`])
//! so armed grace-waiters fail `PartDead` immediately and the engine
//! reports the typed `PartLost` instead of running out the clock.
//!
//! Observability: each transfer advances a byte-progress counter that a
//! watchdog thread (started only with incident capture + a stall window
//! configured, like the engine's scheduler watchdog) checks — a transfer
//! that makes no byte progress for the window captures one
//! `rebalance_stuck` incident bundle. Each healed death records a
//! `rebalance_done` flight event, and cumulative counters feed the run
//! report's `rebalance` section.

use crate::incident::{CaptureSections, IncidentManager, Trigger, TriggerKind};
use gpm_cluster::EdgeListService;
use gpm_graph::partition::GraphPart;
use gpm_obs::FlightKind;
use parking_lot::{Condvar, Mutex};
use std::collections::HashSet;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Background re-replication knobs (`EngineConfig::rebalance`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct RebalanceConfig {
    /// Whether the engine runs a rebalancer at all. On by default; the
    /// CLI's `--rebalance off` turns it off, reproducing the pre-healing
    /// envelope (a crash outliving the replicas is `PartLost`).
    pub enabled: bool,
    /// Adjacency entries per `ReplicaPush` chunk. Smaller chunks bound
    /// the responder's per-message service time; larger ones amortize
    /// the per-chunk ack round trip.
    pub chunk_entries: usize,
    /// Poll interval of the death-watch loop.
    pub tick: Duration,
    /// Artificial pause between streamed chunks — a test knob for
    /// exercising the stuck-transfer watchdog and mid-transfer races.
    /// `Duration::ZERO` (the default) in production.
    pub chunk_delay: Duration,
}

impl Default for RebalanceConfig {
    fn default() -> Self {
        RebalanceConfig {
            enabled: true,
            chunk_entries: 64 * 1024,
            tick: Duration::from_millis(1),
            chunk_delay: Duration::ZERO,
        }
    }
}

/// Bound on how long the engine's recovery gate waits for the repairs
/// of one death event to settle before consulting per-slice liveness
/// anyway. Generous: a wedged transfer is surfaced by the watchdog, not
/// by wedging the recovery pass.
const WAIT_CAP: Duration = Duration::from_secs(30);

/// Cumulative re-replication counters, monotone over the engine's life.
#[derive(Debug, Default)]
pub struct RebalanceStats {
    transfers: AtomicU64,
    bytes: AtomicU64,
    restored: AtomicU64,
    lost: AtomicU64,
}

impl RebalanceStats {
    /// Completed slice transfers.
    pub fn transfers(&self) -> u64 {
        self.transfers.load(Ordering::Relaxed)
    }

    /// Total wire bytes streamed by completed transfers.
    pub fn bytes(&self) -> u64 {
        self.bytes.load(Ordering::Relaxed)
    }

    /// Slice copies restored (one per completed transfer that published
    /// a new holder).
    pub fn restored(&self) -> u64 {
        self.restored.load(Ordering::Relaxed)
    }

    /// Slices declared unrepairable (every copy died first).
    pub fn lost(&self) -> u64 {
        self.lost.load(Ordering::Relaxed)
    }
}

/// State shared between the repair thread, the watchdog, and callers.
struct Shared {
    /// Dead parts whose repairs have fully settled (every short slice
    /// either restored or marked lost).
    handled: Mutex<HashSet<usize>>,
    cv: Condvar,
    stats: RebalanceStats,
    /// Wire bytes acked across all transfers; the watchdog's heartbeat.
    progress: AtomicU64,
    /// Whether a repair (and therefore possibly a transfer) is in
    /// flight; the watchdog only counts stillness against this.
    repairing: AtomicBool,
}

/// The background re-replication service of one engine. Started by
/// `Engine::new` when rebalance is enabled, replication ≥ 2, and the
/// cluster has more than one part; stopped and joined on drop.
pub(crate) struct Rebalancer {
    shared: Arc<Shared>,
    stop: Arc<AtomicBool>,
    handles: Vec<std::thread::JoinHandle<()>>,
}

impl std::fmt::Debug for Rebalancer {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Rebalancer")
            .field("handled", &self.shared.handled.lock().len())
            .field("transfers", &self.shared.stats.transfers())
            .finish()
    }
}

impl Rebalancer {
    /// Starts the death-watch thread (and, with incident capture plus a
    /// stall window configured, the stuck-transfer watchdog) over
    /// `service`. `parts` are the in-process slice handles used as
    /// transfer sources; `replication` is the configured factor to
    /// restore toward.
    pub(crate) fn start(
        service: EdgeListService,
        parts: Vec<Arc<GraphPart>>,
        replication: usize,
        cfg: RebalanceConfig,
        incidents: Arc<IncidentManager>,
    ) -> Rebalancer {
        let shared = Arc::new(Shared {
            handled: Mutex::new(HashSet::new()),
            cv: Condvar::new(),
            stats: RebalanceStats::default(),
            progress: AtomicU64::new(0),
            repairing: AtomicBool::new(false),
        });
        let stop = Arc::new(AtomicBool::new(false));
        let mut handles = Vec::new();
        {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            let tick = cfg.tick.max(Duration::from_micros(100));
            handles.push(
                std::thread::Builder::new()
                    .name("khuzdul-rebalance".to_string())
                    .spawn(move || {
                        while !stop.load(Ordering::Relaxed) {
                            let fresh: Vec<usize> = {
                                let handled = shared.handled.lock();
                                service
                                    .dead_parts()
                                    .into_iter()
                                    .filter(|d| !handled.contains(d))
                                    .collect()
                            };
                            if fresh.is_empty() {
                                std::thread::sleep(tick);
                                continue;
                            }
                            shared.repairing.store(true, Ordering::SeqCst);
                            for d in fresh {
                                let restored = repair_after(&service, &parts, replication, &cfg, &shared);
                                service.recorder().flight().record(
                                    FlightKind::RebalanceDone,
                                    0,
                                    d as u64,
                                    restored,
                                );
                                shared.handled.lock().insert(d);
                                shared.cv.notify_all();
                            }
                            shared.repairing.store(false, Ordering::SeqCst);
                        }
                    })
                    .expect("spawn rebalancer"),
            );
        }
        if let (Some(window), true) = (incidents.stall_window(), incidents.enabled()) {
            let shared = Arc::clone(&shared);
            let stop = Arc::clone(&stop);
            handles.push(
                std::thread::Builder::new()
                    .name("khuzdul-rebalance-watchdog".to_string())
                    .spawn(move || watchdog_loop(&shared, &stop, &incidents, window))
                    .expect("spawn rebalance watchdog"),
            );
        }
        Rebalancer { shared, stop, handles }
    }

    /// Blocks until the repairs triggered by every death in `dead` have
    /// settled (each short slice restored or marked lost), or the wait
    /// cap expires. Called by the engine's recovery gate before it
    /// consults per-slice liveness.
    pub(crate) fn wait_for(&self, dead: &[usize]) {
        let deadline = Instant::now() + WAIT_CAP;
        let mut handled = self.shared.handled.lock();
        while !dead.iter().all(|d| handled.contains(d)) {
            let Some(left) = deadline.checked_duration_since(Instant::now()).filter(|d| !d.is_zero())
            else {
                break;
            };
            self.shared.cv.wait_for(&mut handled, left);
        }
    }

    /// Cumulative transfer counters, for the report's `rebalance`
    /// section and the status exporter.
    pub(crate) fn stats(&self) -> &RebalanceStats {
        &self.shared.stats
    }
}

impl Drop for Rebalancer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

/// Repairs every slice whose effective replication dropped below the
/// reachable target (`replication`, capped by the live-part count).
/// Returns the number of copies restored. Scanning all slices instead of
/// just the newly dead part's is deliberate: slices already at target
/// cost one liveness read each, and the scan stays correct when several
/// parts died faster than the poll tick.
fn repair_after(
    service: &EdgeListService,
    parts: &[Arc<GraphPart>],
    replication: usize,
    cfg: &RebalanceConfig,
    shared: &Shared,
) -> u64 {
    let n = parts.len();
    let mut restored = 0u64;
    for s in 0..n {
        // A host that dies mid-repair shrinks the target and fails the
        // in-flight transfer; both re-resolve on the next loop turn, and
        // every turn either restores a copy, marks the slice lost, or
        // runs out of candidate hosts, so the loop terminates.
        loop {
            let target = replication.min(n - service.dead_parts().len());
            let copies = service.live_copies(s);
            if copies >= target || target == 0 {
                break;
            }
            if copies == 0 {
                // Every copy died before a transfer could land: the
                // slice is unrepairable and waiters must fail typed
                // instead of running out the grace clock.
                service.mark_slice_lost(s);
                shared.stats.lost.fetch_add(1, Ordering::Relaxed);
                break;
            }
            let holders = service.live_holders(s);
            let host = (1..n)
                .map(|off| (s + off) % n)
                .find(|&h| !service.is_part_dead(h) && !holders.contains(&h));
            let Some(host) = host else { break };
            match service.replicate_slice(
                &parts[s],
                host,
                cfg.chunk_entries,
                &shared.progress,
                cfg.chunk_delay,
            ) {
                Ok(bytes) => {
                    shared.stats.transfers.fetch_add(1, Ordering::Relaxed);
                    shared.stats.bytes.fetch_add(bytes, Ordering::Relaxed);
                    shared.stats.restored.fetch_add(1, Ordering::Relaxed);
                    restored += 1;
                }
                Err(_) if service.is_part_dead(host) => {
                    // The chosen host died mid-transfer; the next turn
                    // re-resolves target and candidates without it.
                }
                Err(_) => break,
            }
        }
    }
    restored
}

/// Fires one `rebalance_stuck` bundle if a repair is in flight but the
/// byte-progress counter has not moved for `window`. Mirrors the
/// engine's scheduler stall watchdog: tick at window/8, fire once.
fn watchdog_loop(
    shared: &Shared,
    stop: &AtomicBool,
    incidents: &Arc<IncidentManager>,
    window: Duration,
) {
    let tick = (window / 8).max(Duration::from_millis(1));
    let mut last = shared.progress.load(Ordering::Relaxed);
    let mut last_change = Instant::now();
    while !stop.load(Ordering::Relaxed) {
        std::thread::sleep(tick);
        let p = shared.progress.load(Ordering::Relaxed);
        if p != last || !shared.repairing.load(Ordering::SeqCst) {
            last = p;
            last_change = Instant::now();
            continue;
        }
        let stalled = last_change.elapsed();
        if stalled < window {
            continue;
        }
        incidents.capture(
            Trigger {
                kind: TriggerKind::RebalanceStuck,
                query_id: 0,
                part: None,
                value: stalled.as_nanos() as u64,
                detail: format!(
                    "re-replication transfer made no byte progress for {stalled:?} \
                     ({p} bytes streamed so far)"
                ),
            },
            CaptureSections::default(),
        );
        // One bundle per engine: a stuck transfer does not get less
        // stuck, and repeated captures would only spam the directory.
        break;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::incident::IncidentConfig;
    use gpm_cluster::{CrashAt, FabricConfig, FaultPlan, RetryPolicy};
    use gpm_graph::gen;
    use gpm_graph::partition::PartitionedGraph;
    use gpm_obs::FlightRecorder;

    fn manager(dir: Option<std::path::PathBuf>, stall: Option<Duration>) -> Arc<IncidentManager> {
        let cfg = IncidentConfig { dir, stall, ..IncidentConfig::default() };
        IncidentManager::new(&cfg, FlightRecorder::new(256), "rb-test".to_string())
    }

    fn crashy_service(pg: &PartitionedGraph, crashes: Vec<CrashAt>) -> EdgeListService {
        let fabric = FabricConfig {
            retry: RetryPolicy {
                max_attempts: 4,
                timeout: Duration::from_millis(100),
                backoff: Duration::from_millis(1),
            },
            fault: Some(FaultPlan { crashes, ..FaultPlan::default() }),
            ..FabricConfig::default()
        };
        EdgeListService::start_with(pg, None, fabric)
    }

    #[test]
    fn a_death_is_repaired_back_to_full_replication() {
        let g = gen::erdos_renyi(64, 256, 21);
        let pg = PartitionedGraph::with_replication(&g, 4, 1, 2);
        let service = crashy_service(&pg, vec![CrashAt { part: 0, after_requests: 0 }]);
        service.arm_rebalance();
        let parts: Vec<_> = (0..4).map(|p| pg.part_arc(p)).collect();
        let rb = Rebalancer::start(
            service.clone(),
            parts.clone(),
            2,
            RebalanceConfig::default(),
            manager(None, None),
        );
        // Trigger the crash: the first fetch touching part 0 kills it
        // and fails over to its holder.
        let client = service.client(1);
        let v = parts[0].owned()[0];
        let epoch0 = service.routing_epoch();
        client.fetch(0, &[v]).expect("failover masks the crash");
        rb.wait_for(&[0]);
        assert_eq!(service.dead_parts(), vec![0]);
        // Every slice is back at the reachable target (r = 2, 3 live
        // parts), including the dead part's own slice.
        for s in 0..4 {
            assert!(
                service.live_copies(s) >= 2,
                "slice {s} still short: {} copies",
                service.live_copies(s)
            );
        }
        assert!(service.routing_epoch() > epoch0, "repairs must republish routing");
        assert!(rb.stats().transfers() >= 1);
        assert!(rb.stats().bytes() > 0);
        assert_eq!(rb.stats().lost(), 0);
        service.shutdown();
    }

    #[test]
    fn stuck_transfer_fires_one_rebalance_stuck_bundle() {
        let dir = std::env::temp_dir()
            .join(format!("khuzdul-rb-stuck-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = gen::erdos_renyi(48, 120, 22);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let service = crashy_service(&pg, vec![CrashAt { part: 0, after_requests: 0 }]);
        service.arm_rebalance();
        let parts: Vec<_> = (0..3).map(|p| pg.part_arc(p)).collect();
        let incidents = manager(Some(dir.clone()), Some(Duration::from_millis(20)));
        // Tiny chunks + a long per-chunk delay: the transfer's byte
        // progress freezes between chunks far past the stall window.
        let cfg = RebalanceConfig {
            chunk_entries: 8,
            chunk_delay: Duration::from_millis(120),
            ..RebalanceConfig::default()
        };
        let rb = Rebalancer::start(
            service.clone(),
            parts.clone(),
            2,
            cfg,
            Arc::clone(&incidents),
        );
        let client = service.client(1);
        let v = parts[0].owned()[0];
        client.fetch(0, &[v]).expect("failover masks the crash");
        let deadline = Instant::now() + Duration::from_secs(10);
        while incidents.incidents().is_empty() && Instant::now() < deadline {
            std::thread::sleep(Duration::from_millis(5));
        }
        let captured = incidents.incidents();
        assert_eq!(captured.len(), 1, "exactly one stuck bundle");
        assert_eq!(captured[0].trigger, "rebalance_stuck");
        let json = std::fs::read_to_string(&captured[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("stuck bundle validates");
        drop(rb);
        service.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn total_copy_loss_marks_the_slice_lost() {
        let g = gen::erdos_renyi(48, 128, 23);
        // r = 2 on 3 parts: slice 0's only holder is part 2. Killing
        // both before any repair leaves slice 0 unrepairable.
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let service = crashy_service(
            &pg,
            vec![
                CrashAt { part: 0, after_requests: 0 },
                CrashAt { part: 2, after_requests: 0 },
            ],
        );
        let parts: Vec<_> = (0..3).map(|p| pg.part_arc(p)).collect();
        let client = service.client(1);
        let v = parts[0].owned()[0];
        // First fetch kills part 0, fails over to holder 2, which the
        // chained crash entry then kills too; disarmed routing fails
        // typed immediately. The rebalancer starts only afterwards so
        // no repair can race the chained kill.
        let err = client.fetch(0, &[v]).expect_err("both copies are gone");
        assert!(matches!(err, gpm_cluster::FetchError::PartDead { .. }), "{err:?}");
        let rb = Rebalancer::start(
            service.clone(),
            parts.clone(),
            2,
            RebalanceConfig::default(),
            manager(None, None),
        );
        rb.wait_for(&[0, 2]);
        assert_eq!(service.live_copies(0), 0);
        assert!(rb.stats().lost() >= 1);
        service.shutdown();
    }
}
