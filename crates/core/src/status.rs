//! The scrapeable status plane of a resident [`MiningService`].
//!
//! [`StatusServer`] binds a plain-`std` blocking HTTP listener (no new
//! dependencies — one line of request parsing is all a scraper needs)
//! and serves:
//!
//! * `GET /metrics` — Prometheus text exposition (format 0.0.4). The
//!   counters are computed from the **same sources**
//!   [`MiningService::report`] sums — the completed, non-memoized query
//!   outcomes — so the final scrape reconciles *exactly* with the
//!   schema-v4 `RunReport`, sample for sample.
//! * `GET /status` — a JSON document for humans and `gpm top`: service
//!   state, admission queue, live per-query progress with ETA, the
//!   recent-completions ring, the slow-query log, and the rolling
//!   windows of a [`Rollup`] fed from the live [`ClusterMetrics`]
//!   counters (these show *rates*, and deliberately live outside the
//!   reconciliation contract — in-flight queries move them before any
//!   outcome exists).
//! * `GET /incidents` — the incident bundles captured so far, in
//!   capture order, mirroring the report's `incidents[]` section. Each
//!   entry carries the on-disk path of its full schema-validated
//!   bundle; `gpm incident show <path>` renders it.
//! * `GET /quit` — flags quit; `gpm serve --status-linger-ms` polls
//!   [`StatusServer::quit_requested`] so CI can end a linger cleanly.
//!
//! The server thread owns the rollup and does all rendering; the
//! mining hot path is never touched — scrapes read the same atomics
//! and brief locks the report path already reads.
//!
//! [`ClusterMetrics`]: gpm_cluster::ClusterMetrics

use crate::service::{Completion, MiningService};
use gpm_cluster::CounterSnapshot;
use gpm_obs::{render_prometheus, PromKind, PromMetric, QueryProgress, Rollup};
use serde::Value;
use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Service-level counters appended after the cluster counters in the
/// rollup's counter vector.
const SERVICE_COUNTERS: [&str; 3] = ["memo_hits", "memo_evictions", "queries_completed"];
/// Gauges sampled into every rollup window.
const ROLLUP_GAUGES: [&str; 4] =
    ["queue_depth", "active_queries", "active_executors", "memo_entries"];

/// Knobs of a [`StatusServer`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StatusConfig {
    /// Listen address; port 0 picks a free port (see
    /// [`StatusServer::local_addr`]).
    pub addr: String,
    /// Rollup sampling interval.
    pub tick: Duration,
    /// Rolling windows retained (older deltas fold into the evicted
    /// totals, conserving the cumulative counts).
    pub windows: usize,
}

impl Default for StatusConfig {
    fn default() -> Self {
        StatusConfig {
            addr: "127.0.0.1:0".to_string(),
            tick: Duration::from_millis(250),
            windows: 120,
        }
    }
}

/// A background HTTP exporter over one [`MiningService`]. Stops and
/// joins on drop.
#[derive(Debug)]
pub struct StatusServer {
    local_addr: SocketAddr,
    stop: Arc<AtomicBool>,
    quit: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StatusServer {
    /// Binds `cfg.addr` and starts serving `svc`. Enables the engine's
    /// live progress tracking (the whole point of scraping) — queries
    /// admitted before the server started report no root progress.
    ///
    /// # Errors
    ///
    /// Returns the bind error if the address is unavailable.
    pub fn start(svc: Arc<MiningService>, cfg: StatusConfig) -> std::io::Result<StatusServer> {
        let listener = TcpListener::bind(&cfg.addr)?;
        listener.set_nonblocking(true)?;
        let local_addr = listener.local_addr()?;
        svc.engine().enable_progress();
        let stop = Arc::new(AtomicBool::new(false));
        let quit = Arc::new(AtomicBool::new(false));
        let thread_stop = Arc::clone(&stop);
        let thread_quit = Arc::clone(&quit);
        let handle = std::thread::Builder::new()
            .name("khuzdul-status".to_string())
            .spawn(move || serve_loop(&listener, &svc, &cfg, &thread_stop, &thread_quit))
            .expect("spawn status server");
        Ok(StatusServer { local_addr, stop, quit, handle: Some(handle) })
    }

    /// The bound address (resolves port 0).
    pub fn local_addr(&self) -> SocketAddr {
        self.local_addr
    }

    /// Whether some client requested `GET /quit`.
    pub fn quit_requested(&self) -> bool {
        self.quit.load(Ordering::SeqCst)
    }
}

impl Drop for StatusServer {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::SeqCst);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

fn serve_loop(
    listener: &TcpListener,
    svc: &Arc<MiningService>,
    cfg: &StatusConfig,
    stop: &AtomicBool,
    quit: &AtomicBool,
) {
    let started = Instant::now();
    let mut counter_names: Vec<&'static str> = CounterSnapshot::NAMES.to_vec();
    counter_names.extend(SERVICE_COUNTERS);
    let mut rollup = Rollup::new(counter_names, ROLLUP_GAUGES.to_vec(), cfg.windows.max(1));
    let mut next_tick = Instant::now();
    while !stop.load(Ordering::SeqCst) {
        if Instant::now() >= next_tick {
            push_sample(&mut rollup, svc, started.elapsed().as_nanos() as u64);
            next_tick = Instant::now() + cfg.tick.max(Duration::from_millis(10));
        }
        match listener.accept() {
            Ok((stream, _)) => handle_conn(stream, svc, &rollup, quit),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => {
                std::thread::sleep(Duration::from_millis(5));
            }
            Err(_) => std::thread::sleep(Duration::from_millis(5)),
        }
    }
}

fn push_sample(rollup: &mut Rollup, svc: &MiningService, t_ns: u64) {
    let engine = svc.engine();
    let cluster = engine.metrics().counter_snapshot();
    let (memo_entries, memo_hits, memo_evictions) = svc.memo_stats();
    let completed = svc.outcomes().len() as u64;
    let mut counters = cluster.as_array().to_vec();
    counters.extend([memo_hits, memo_evictions, completed]);
    let active = engine.active_query_count() as u64;
    let gauges = [
        svc.queue_depth() as u64,
        active,
        active.min(svc.config().max_concurrent as u64),
        memo_entries,
    ];
    rollup.push(t_ns, &counters, &gauges);
}

fn handle_conn(
    mut stream: TcpStream,
    svc: &Arc<MiningService>,
    rollup: &Rollup,
    quit: &AtomicBool,
) {
    let _ = stream.set_read_timeout(Some(Duration::from_millis(250)));
    let _ = stream.set_write_timeout(Some(Duration::from_secs(2)));
    let mut buf = [0u8; 1024];
    let mut req = Vec::new();
    // Read until the request line is complete; a scraper's GET fits in
    // one segment, so one read usually suffices.
    loop {
        match stream.read(&mut buf) {
            Ok(0) => break,
            Ok(n) => {
                req.extend_from_slice(&buf[..n]);
                if req.windows(2).any(|w| w == b"\r\n") || req.len() > 8192 {
                    break;
                }
            }
            Err(_) => break,
        }
    }
    let line = String::from_utf8_lossy(&req);
    let path = line.split_whitespace().nth(1).unwrap_or("/").to_string();
    let (status, ctype, body) = match path.as_str() {
        "/metrics" => ("200 OK", "text/plain; version=0.0.4; charset=utf-8", render_metrics(svc)),
        "/status" => ("200 OK", "application/json", render_status(svc, rollup)),
        "/incidents" => ("200 OK", "application/json", render_incidents(svc)),
        "/quit" => {
            quit.store(true, Ordering::SeqCst);
            ("200 OK", "text/plain; charset=utf-8", "bye\n".to_string())
        }
        _ => ("404 Not Found", "text/plain; charset=utf-8", "not found\n".to_string()),
    };
    let _ = write!(
        stream,
        "HTTP/1.1 {status}\r\nContent-Type: {ctype}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n{body}",
        body.len()
    );
    let _ = stream.flush();
}

/// Builds `/metrics` from the completed outcomes — the exact sources
/// [`MiningService::report`] sums — plus live service gauges.
fn render_metrics(svc: &MiningService) -> String {
    let outcomes = svc.outcomes();
    // Aggregate the completed, non-memoized outcomes, mirroring
    // `MiningService::report` field for field.
    let mut count = 0u64;
    let mut traffic = [0u64; 7]; // requests, net, numa, hits, misses, coalesced, retries
    let mut rerouted_requests = 0u64;
    let mut rerouted_bytes = 0u64;
    let mut reexecuted_roots = 0u64;
    let mut ctrl = [0u64; 3]; // sent, retried, dropped
    for o in &outcomes {
        let Ok(stats) = &o.result else { continue };
        count += stats.count;
        if !o.memoized {
            let t = &stats.traffic;
            traffic[0] += t.requests;
            traffic[1] += t.network_bytes;
            traffic[2] += t.cross_socket_bytes;
            traffic[3] += t.cache_hits;
            traffic[4] += t.cache_misses;
            traffic[5] += t.coalesced;
            traffic[6] += t.retries;
            rerouted_requests += stats.failures.rerouted_requests;
            rerouted_bytes += stats.failures.rerouted_bytes;
            reexecuted_roots += stats.failures.reexecuted_roots;
            ctrl[0] += stats.control.sent;
            ctrl[1] += stats.control.retried;
            ctrl[2] += stats.control.dropped;
        }
    }
    let engine = svc.engine();
    let (memo_entries, memo_hits, memo_evictions) = svc.memo_stats();
    let rebalance = engine.rebalance_section();
    let mut metrics = vec![
        PromMetric::scalar(
            "gpm_embeddings_total",
            "Embeddings counted by completed queries",
            PromKind::Counter,
            count as f64,
        ),
        PromMetric::scalar(
            "gpm_queries_admitted_total",
            "Queries admitted (including memoized duplicates)",
            PromKind::Counter,
            svc.admitted_count() as f64,
        ),
        PromMetric::scalar(
            "gpm_queries_completed_total",
            "Queries completed (including memoized duplicates)",
            PromKind::Counter,
            outcomes.len() as f64,
        ),
        PromMetric::scalar(
            "gpm_fetch_requests_total",
            "Remote edge-list fetch requests of completed queries",
            PromKind::Counter,
            traffic[0] as f64,
        ),
        PromMetric::scalar(
            "gpm_network_bytes_total",
            "Cross-machine bytes of completed queries",
            PromKind::Counter,
            traffic[1] as f64,
        ),
        PromMetric::scalar(
            "gpm_numa_bytes_total",
            "Cross-socket bytes of completed queries",
            PromKind::Counter,
            traffic[2] as f64,
        ),
        PromMetric::scalar(
            "gpm_cache_hits_total",
            "Edge-list cache hits of completed queries",
            PromKind::Counter,
            traffic[3] as f64,
        ),
        PromMetric::scalar(
            "gpm_cache_misses_total",
            "Edge-list cache misses of completed queries",
            PromKind::Counter,
            traffic[4] as f64,
        ),
        PromMetric::scalar(
            "gpm_coalesced_requests_total",
            "Fetches coalesced into an identical in-flight request",
            PromKind::Counter,
            traffic[5] as f64,
        ),
        PromMetric::scalar(
            "gpm_retries_total",
            "Fetch retries of completed queries",
            PromKind::Counter,
            traffic[6] as f64,
        ),
        // The rerouted families carry the query-attributed aggregate as
        // the bare sample plus one `holder`-labelled sample per replica
        // that actually served rerouted traffic — the spread-failover
        // split. Summing across label sets double-counts; read the bare
        // sample for totals and the labelled ones for the split.
        PromMetric {
            name: "gpm_rerouted_requests_total",
            help: "Fetches rerouted to a replica after a part death \
                   (holder label: the split per serving replica)",
            kind: PromKind::Counter,
            samples: std::iter::once((Vec::new(), rerouted_requests as f64))
                .chain(rebalance.per_holder_rerouted.iter().map(|h| {
                    (vec![("holder", h.part.to_string())], h.requests as f64)
                }))
                .collect(),
        },
        PromMetric {
            name: "gpm_rerouted_bytes_total",
            help: "Bytes served by replicas after a part death \
                   (holder label: the split per serving replica)",
            kind: PromKind::Counter,
            samples: std::iter::once((Vec::new(), rerouted_bytes as f64))
                .chain(rebalance.per_holder_rerouted.iter().map(|h| {
                    (vec![("holder", h.part.to_string())], h.bytes as f64)
                }))
                .collect(),
        },
        PromMetric::scalar(
            "gpm_rebalance_transfers_total",
            "Slices re-replicated to a new holder by the background rebalancer",
            PromKind::Counter,
            rebalance.transfers as f64,
        ),
        PromMetric::scalar(
            "gpm_rebalance_bytes_total",
            "CSR bytes streamed by background re-replication",
            PromKind::Counter,
            rebalance.bytes as f64,
        ),
        PromMetric::scalar(
            "gpm_slices_lost_total",
            "Slices whose every copy died before a repair landed",
            PromKind::Counter,
            rebalance.slices_lost as f64,
        ),
        PromMetric::scalar(
            "gpm_effective_replication_min",
            "Minimum live copy count over all slices right now",
            PromKind::Gauge,
            rebalance.min_effective_replication as f64,
        ),
        PromMetric::scalar(
            "gpm_reexecuted_roots_total",
            "Roots re-executed by recovery passes",
            PromKind::Counter,
            reexecuted_roots as f64,
        ),
        PromMetric::scalar(
            "gpm_parts_failed_total",
            "Parts that fail-stopped since the engine started",
            PromKind::Counter,
            engine.metrics().parts_failed() as f64,
        ),
        PromMetric::scalar(
            "gpm_incidents_total",
            "Incident bundles captured since the engine started",
            PromKind::Counter,
            engine.incidents().incidents().len() as f64,
        ),
        PromMetric::scalar(
            "gpm_ctrl_sent_total",
            "Control-plane messages sent by completed queries, retries included",
            PromKind::Counter,
            ctrl[0] as f64,
        ),
        PromMetric::scalar(
            "gpm_ctrl_retried_total",
            "Control-plane message retries of completed queries",
            PromKind::Counter,
            ctrl[1] as f64,
        ),
        PromMetric::scalar(
            "gpm_ctrl_dropped_total",
            "Control-plane messages dropped by fault injection",
            PromKind::Counter,
            ctrl[2] as f64,
        ),
        PromMetric::scalar(
            "gpm_memo_entries",
            "Memo entries currently resident",
            PromKind::Gauge,
            memo_entries as f64,
        ),
        PromMetric::scalar(
            "gpm_memo_hits_total",
            "Submissions served from the memo",
            PromKind::Counter,
            memo_hits as f64,
        ),
        PromMetric::scalar(
            "gpm_memo_evictions_total",
            "Memo entries evicted by the LRU capacity cap",
            PromKind::Counter,
            memo_evictions as f64,
        ),
        PromMetric::scalar(
            "gpm_admission_queue_depth",
            "Jobs admitted but not yet executing",
            PromKind::Gauge,
            svc.queue_depth() as f64,
        ),
        PromMetric::scalar(
            "gpm_active_queries",
            "Queries currently executing on the engine",
            PromKind::Gauge,
            engine.active_query_count() as f64,
        ),
        PromMetric::scalar(
            "gpm_uptime_seconds",
            "Seconds since the service started",
            PromKind::Gauge,
            svc.uptime().as_secs_f64(),
        ),
    ];
    // Claim round-trip latency of the message control plane. The
    // exporter has no native histogram kind, so the recorder snapshot's
    // percentiles go out as a quantile-labelled gauge; the Prometheus
    // summary convention spells the observed maximum `quantile="1"`.
    let rtt = engine.recorder().hist_snapshot(gpm_obs::Metric::CtrlRttNs);
    if rtt.count > 0 {
        let mut quantiles = PromMetric {
            name: "gpm_ctrl_claim_rtt_ns",
            help: "Claim round-trip latency of the message control plane",
            kind: PromKind::Gauge,
            samples: Vec::new(),
        };
        for (q, v) in [
            ("0.5", rtt.p50),
            ("0.95", rtt.p95),
            ("0.99", rtt.p99),
            ("0.999", rtt.p999),
            ("1", rtt.max),
        ] {
            quantiles.samples.push((vec![("quantile", q.to_string())], v as f64));
        }
        metrics.push(quantiles);
    }
    // Per-query embedding counts of completed queries (memoized ones
    // repeat their original's count, as in the report).
    let mut per_query = PromMetric {
        name: "gpm_query_embeddings_total",
        help: "Embeddings counted, per completed query",
        kind: PromKind::Counter,
        samples: Vec::new(),
    };
    for o in &outcomes {
        if let Ok(stats) = &o.result {
            per_query
                .samples
                .push((vec![("query_id", o.query_id.to_string())], stats.count as f64));
        }
    }
    metrics.push(per_query);
    // Live progress of in-flight queries.
    let mut fractions = PromMetric {
        name: "gpm_query_progress_fraction",
        help: "Monotonic completion fraction of in-flight queries",
        kind: PromKind::Gauge,
        samples: Vec::new(),
    };
    for p in engine.active_progress() {
        fractions.samples.push((vec![("query_id", p.query_id().to_string())], p.fraction()));
    }
    metrics.push(fractions);
    render_prometheus(&metrics)
}

/// Builds `/incidents`: the capture-order incident summaries, exactly
/// the list [`MiningService::report`] attaches as `incidents[]`. The
/// full bundles live on disk at each entry's `path`.
fn render_incidents(svc: &MiningService) -> String {
    let entries: Vec<Value> = svc
        .engine()
        .incidents()
        .incidents()
        .iter()
        .map(|i| {
            Value::Map(vec![
                ("id".into(), Value::Str(i.id.clone())),
                ("trigger".into(), Value::Str(i.trigger.clone())),
                ("query_id".into(), Value::UInt(i.query_id)),
                ("at_ns".into(), Value::UInt(i.at_ns)),
                ("path".into(), Value::Str(i.path.clone())),
            ])
        })
        .collect();
    serde_json::to_string(&Value::Seq(entries)).expect("incident JSON renders")
}

fn render_status(svc: &MiningService, rollup: &Rollup) -> String {
    let engine = svc.engine();
    let (memo_entries, memo_hits, memo_evictions) = svc.memo_stats();
    let active: Vec<Value> = {
        let mut ps = engine.active_progress();
        ps.sort_by_key(|p| p.query_id());
        ps.iter().map(|p| progress_json(p)).collect()
    };
    let max_concurrent = svc.config().max_concurrent.max(1);
    let busy = engine.active_query_count().min(max_concurrent);
    let doc = Value::Map(vec![
        ("uptime_ns".into(), Value::UInt(svc.uptime().as_nanos() as u64)),
        ("max_concurrent".into(), Value::UInt(max_concurrent as u64)),
        ("queue_depth".into(), Value::UInt(svc.queue_depth() as u64)),
        ("admitted".into(), Value::UInt(svc.admitted_count() as u64)),
        ("completed".into(), Value::UInt(svc.outcomes().len() as u64)),
        ("busy_fraction".into(), Value::Float(busy as f64 / max_concurrent as f64)),
        ("active_queries".into(), Value::Seq(active)),
        (
            "memo".into(),
            Value::Map(vec![
                ("entries".into(), Value::UInt(memo_entries)),
                ("hits".into(), Value::UInt(memo_hits)),
                ("evictions".into(), Value::UInt(memo_evictions)),
            ]),
        ),
        ("replicas".into(), replicas_json(svc)),
        (
            "recent_completions".into(),
            Value::Seq(svc.recent_completions().iter().map(completion_json).collect()),
        ),
        (
            "slow_queries".into(),
            Value::Seq(svc.slow_queries().iter().map(completion_json).collect()),
        ),
        ("rollup".into(), rollup_json(rollup)),
    ]);
    serde_json::to_string(&doc).expect("status JSON renders")
}

/// The replica-placement/health section of `/status`: the rebalancer's
/// cumulative totals plus one row per part (liveness, hosted slices,
/// live copies of its own slice, rerouted traffic served) — the table
/// `gpm top` renders.
fn replicas_json(svc: &MiningService) -> Value {
    let engine = svc.engine();
    let reb = engine.rebalance_section();
    let parts: Vec<Value> = engine
        .part_health()
        .iter()
        .map(|h| {
            Value::Map(vec![
                ("part".into(), Value::UInt(h.part as u64)),
                ("alive".into(), Value::Bool(h.alive)),
                (
                    "hosted_slices".into(),
                    Value::Seq(h.hosted_slices.iter().map(|&s| Value::UInt(s as u64)).collect()),
                ),
                ("live_copies".into(), Value::UInt(h.live_copies as u64)),
                ("rerouted_served_requests".into(), Value::UInt(h.rerouted_served_requests)),
                ("rerouted_served_bytes".into(), Value::UInt(h.rerouted_served_bytes)),
            ])
        })
        .collect();
    Value::Map(vec![
        ("enabled".into(), Value::Bool(reb.enabled)),
        ("configured_replication".into(), Value::UInt(reb.configured_replication)),
        ("min_effective_replication".into(), Value::UInt(reb.min_effective_replication)),
        ("routing_epoch".into(), Value::UInt(reb.routing_epoch)),
        ("transfers".into(), Value::UInt(reb.transfers)),
        ("bytes".into(), Value::UInt(reb.bytes)),
        ("slices_restored".into(), Value::UInt(reb.slices_restored)),
        ("slices_lost".into(), Value::UInt(reb.slices_lost)),
        ("parts".into(), Value::Seq(parts)),
    ])
}

fn progress_json(p: &QueryProgress) -> Value {
    Value::Map(vec![
        ("query_id".into(), Value::UInt(p.query_id())),
        ("roots_total".into(), Value::UInt(p.total())),
        ("claimed".into(), Value::UInt(p.claimed())),
        ("completed".into(), Value::UInt(p.completed())),
        ("stolen".into(), Value::UInt(p.stolen())),
        ("recovered".into(), Value::UInt(p.recovered())),
        ("fraction".into(), Value::Float(p.fraction())),
        ("eta_ns".into(), p.eta_ns().map(Value::UInt).unwrap_or(Value::Null)),
        ("elapsed_ns".into(), Value::UInt(p.elapsed_ns())),
        (
            "per_part".into(),
            Value::Seq(
                p.per_part()
                    .iter()
                    .map(|pp| {
                        Value::Map(vec![
                            ("part".into(), Value::UInt(pp.part)),
                            ("claimed".into(), Value::UInt(pp.claimed)),
                            ("completed".into(), Value::UInt(pp.completed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

fn completion_json(c: &Completion) -> Value {
    Value::Map(vec![
        ("query_id".into(), Value::UInt(c.query_id)),
        ("pattern".into(), Value::Str(c.pattern.clone())),
        ("count".into(), c.count.map(Value::UInt).unwrap_or(Value::Null)),
        ("elapsed_ns".into(), Value::UInt(c.elapsed.as_nanos() as u64)),
    ])
}

fn rollup_json(r: &Rollup) -> Value {
    let names =
        |ns: &[&'static str]| Value::Seq(ns.iter().map(|n| Value::Str((*n).to_string())).collect());
    let windows: Vec<Value> = r
        .windows()
        .map(|w| {
            Value::Map(vec![
                ("t_ns".into(), Value::UInt(w.t_ns)),
                ("dt_ns".into(), Value::UInt(w.dt_ns)),
                ("deltas".into(), Value::Seq(w.deltas.iter().map(|&d| Value::UInt(d)).collect())),
                ("gauges".into(), Value::Seq(w.gauges.iter().map(|&g| Value::UInt(g)).collect())),
            ])
        })
        .collect();
    let rates = Value::Map(
        r.counter_names()
            .iter()
            .enumerate()
            .map(|(i, n)| ((*n).to_string(), Value::Float(r.rate_per_sec(i))))
            .collect(),
    );
    Value::Map(vec![
        ("counter_names".into(), names(r.counter_names())),
        ("gauge_names".into(), names(r.gauge_names())),
        ("windows".into(), Value::Seq(windows)),
        (
            "evicted_totals".into(),
            Value::Seq(r.evicted_totals().iter().map(|&e| Value::UInt(e)).collect()),
        ),
        (
            "cumulative".into(),
            Value::Seq(r.latest_cumulative().iter().map(|&c| Value::UInt(c)).collect()),
        ),
        ("rates_per_sec".into(), rates),
    ])
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::{Engine, EngineConfig};
    use crate::service::ServiceConfig;
    use gpm_graph::gen;
    use gpm_graph::partition::PartitionedGraph;
    use gpm_pattern::plan::PlanOptions;
    use gpm_pattern::Pattern;

    fn http_get(addr: SocketAddr, path: &str) -> String {
        let mut s = TcpStream::connect(addr).expect("connect status server");
        write!(s, "GET {path} HTTP/1.1\r\nHost: x\r\nConnection: close\r\n\r\n").unwrap();
        let mut out = String::new();
        s.read_to_string(&mut out).expect("read response");
        let (_, body) = out.split_once("\r\n\r\n").expect("header/body split");
        body.to_string()
    }

    #[test]
    fn serves_metrics_status_and_quit() {
        let g = gen::barabasi_albert(150, 4, 11);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Arc::new(Engine::new(pg, EngineConfig::default()));
        let svc = Arc::new(MiningService::start(engine, ServiceConfig::default()));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        assert!(svc.engine().progress_enabled(), "starting the server enables progress");
        let h = svc.submit(&Pattern::triangle(), &PlanOptions::automine()).unwrap();
        h.wait().unwrap();
        let metrics = http_get(server.local_addr(), "/metrics");
        gpm_obs::validate_exposition(&metrics).expect("exposition must be well-formed");
        let completed = gpm_obs::sample_value(&metrics, "gpm_queries_completed_total", None);
        assert_eq!(completed, Some(1.0));
        let report = svc.report("khuzdul-service");
        assert_eq!(
            gpm_obs::sample_value(&metrics, "gpm_embeddings_total", None),
            Some(report.count as f64),
            "scrape must reconcile with the report"
        );
        // The shared ledger sends no control messages, and the scrape
        // says so explicitly rather than omitting the family.
        assert_eq!(gpm_obs::sample_value(&metrics, "gpm_ctrl_sent_total", None), Some(0.0));
        let status = http_get(server.local_addr(), "/status");
        let doc = gpm_obs::parse_json(&status).expect("status must be valid JSON");
        let serde::Value::Map(fields) = &doc else { panic!("status root is an object") };
        assert!(fields.iter().any(|(k, _)| k == "rollup"));
        // The replica table is always present; at r=1 every part hosts
        // only its own slice and has exactly one live copy.
        let replicas = fields.iter().find(|(k, _)| k == "replicas").map(|(_, v)| v);
        let Some(serde::Value::Map(reb)) = replicas else { panic!("replicas section missing") };
        let parts = reb.iter().find(|(k, _)| k == "parts").map(|(_, v)| v);
        let Some(serde::Value::Seq(rows)) = parts else { panic!("replica parts missing") };
        assert_eq!(rows.len(), 2);
        for row in rows {
            let serde::Value::Map(r) = row else { panic!("replica row is an object") };
            assert!(r.iter().any(|(k, v)| k == "alive" && *v == serde::Value::Bool(true)));
            assert!(r.iter().any(|(k, v)| k == "live_copies" && *v == serde::Value::UInt(1)));
        }
        assert_eq!(
            gpm_obs::sample_value(&metrics, "gpm_effective_replication_min", None),
            Some(1.0),
            "r=1 run scrapes an effective replication of 1"
        );
        assert!(!server.quit_requested());
        assert_eq!(http_get(server.local_addr(), "/quit"), "bye\n");
        assert!(server.quit_requested());
        assert!(http_get(server.local_addr(), "/nope").contains("not found"));
    }

    /// Under the message control plane, `/metrics` exposes the control
    /// counters and the claim-RTT quantile gauge, and the counter
    /// reconciles exactly with the aggregate report section.
    #[test]
    fn metrics_expose_control_plane_under_msg_mode() {
        use crate::control::{ControlConfig, ControlMode};
        use crate::scheduler::StealConfig;
        let g = gen::barabasi_albert(200, 4, 29);
        let pg = PartitionedGraph::new(&g, 3, 1);
        let engine = Arc::new(Engine::new(
            pg,
            EngineConfig {
                steal: StealConfig { enabled: true, batch: 8, ..StealConfig::default() },
                control: ControlConfig { mode: ControlMode::Msg, ..ControlConfig::default() },
                // The RTT histogram records through the obs recorder,
                // which is off by default.
                obs: gpm_obs::ObsConfig::enabled(),
                ..EngineConfig::default()
            },
        ));
        let svc = Arc::new(MiningService::start(engine, ServiceConfig::default()));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        for p in [Pattern::triangle(), Pattern::cycle(4)] {
            svc.submit(&p, &PlanOptions::automine()).unwrap().wait().unwrap();
        }
        let metrics = http_get(server.local_addr(), "/metrics");
        gpm_obs::validate_exposition(&metrics).expect("exposition must be well-formed");
        let report = svc.report("khuzdul-service");
        assert!(report.control.sent > 0, "message mode must have coordinated via messages");
        assert_eq!(
            gpm_obs::sample_value(&metrics, "gpm_ctrl_sent_total", None),
            Some(report.control.sent as f64),
            "scrape must reconcile with the report's control section"
        );
        assert_eq!(
            gpm_obs::sample_value(&metrics, "gpm_ctrl_retried_total", None),
            Some(report.control.retried as f64),
        );
        assert_eq!(
            gpm_obs::sample_value(&metrics, "gpm_ctrl_dropped_total", None),
            Some(report.control.dropped as f64),
        );
        // Every claim acked means an RTT sample, so the quantile gauge
        // must be present with ordered percentiles, tail quantile and
        // observed max (`quantile="1"`) included.
        // `sample_value` matches the fragment against the whole rest of
        // the line, value included — a bare "1" would match the *digit*
        // in an earlier quantile's value, so match the full label.
        let q = |q: &str| {
            let label = format!("quantile=\"{q}\"");
            gpm_obs::sample_value(&metrics, "gpm_ctrl_claim_rtt_ns", Some(&label))
        };
        let (Some(p50), Some(p99), Some(p999), Some(max)) =
            (q("0.5"), q("0.99"), q("0.999"), q("1"))
        else {
            panic!("claim RTT gauge missing a quantile")
        };
        assert!(
            p50 <= p99 && p99 <= p999 && p999 <= max,
            "quantiles must be ordered and capped by the observed max: \
             p50={p50} p99={p99} p999={p999} max={max}"
        );
        assert!(max > 0.0, "observed max must be a real sample");
    }

    fn http_raw(addr: SocketAddr, payload: &[u8]) -> String {
        let mut s = TcpStream::connect(addr).expect("connect status server");
        s.write_all(payload).unwrap();
        let mut out = String::new();
        let _ = s.read_to_string(&mut out);
        out
    }

    /// Unknown routes must answer with a real 404 status line — a
    /// scraper probing the wrong path should see an HTTP error, not a
    /// hang or a dropped connection.
    #[test]
    fn unknown_routes_get_a_404_status_line() {
        let g = gen::barabasi_albert(80, 3, 7);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Arc::new(Engine::new(pg, EngineConfig::default()));
        let svc = Arc::new(MiningService::start(engine, ServiceConfig::default()));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        let resp = http_raw(server.local_addr(), b"GET /definitely/not/a/route HTTP/1.1\r\n\r\n");
        assert!(
            resp.starts_with("HTTP/1.1 404 Not Found"),
            "expected a 404 status line, got: {resp:?}"
        );
        assert!(resp.contains("not found"));
    }

    /// A malformed request line (no method, no path, or plain garbage)
    /// must not wedge or kill the server: it answers 404 and keeps
    /// serving well-formed scrapes afterwards.
    #[test]
    fn malformed_requests_are_answered_and_the_server_survives() {
        let g = gen::barabasi_albert(80, 3, 13);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Arc::new(Engine::new(pg, EngineConfig::default()));
        let svc = Arc::new(MiningService::start(engine, ServiceConfig::default()));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        for payload in
            [&b"garbage\r\n"[..], &b"\r\n"[..], &b"GET\r\n"[..], &b"\x00\x01\x02\xff\r\n"[..]]
        {
            let resp = http_raw(server.local_addr(), payload);
            assert!(
                resp.starts_with("HTTP/1.1 404"),
                "malformed request must get a 404, got: {resp:?}"
            );
        }
        // The listener is still healthy after the abuse.
        let metrics = http_get(server.local_addr(), "/metrics");
        gpm_obs::validate_exposition(&metrics).expect("server must keep serving after abuse");
    }

    /// Concurrent scrapers during an active workload all get complete,
    /// well-formed responses — the accept loop serves them one at a
    /// time, but nobody is dropped or handed a torn document.
    #[test]
    fn concurrent_scrapers_see_well_formed_output() {
        let g = gen::barabasi_albert(200, 4, 17);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Arc::new(Engine::new(pg, EngineConfig::default()));
        let svc = Arc::new(MiningService::start(engine, ServiceConfig::default()));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        let addr = server.local_addr();
        let handles: Vec<_> = [Pattern::triangle(), Pattern::cycle(4), Pattern::clique(4)]
            .iter()
            .map(|p| svc.submit(p, &PlanOptions::automine()).unwrap())
            .collect();
        let scrapers: Vec<_> = (0..6)
            .map(|i| {
                std::thread::spawn(move || {
                    for _ in 0..4 {
                        let path = if i % 3 == 0 {
                            "/metrics"
                        } else if i % 3 == 1 {
                            "/status"
                        } else {
                            "/incidents"
                        };
                        let mut s = TcpStream::connect(addr).expect("connect");
                        write!(s, "GET {path} HTTP/1.1\r\nConnection: close\r\n\r\n").unwrap();
                        let mut out = String::new();
                        s.read_to_string(&mut out).expect("read");
                        let (_, body) = out.split_once("\r\n\r\n").expect("split");
                        match path {
                            "/metrics" => {
                                gpm_obs::validate_exposition(body).expect("torn exposition");
                            }
                            _ => {
                                gpm_obs::parse_json(body).expect("torn JSON");
                            }
                        }
                    }
                })
            })
            .collect();
        for h in handles {
            h.wait().unwrap();
        }
        for s in scrapers {
            s.join().expect("scraper thread must not panic");
        }
    }

    /// `/incidents` serves the capture-order summaries and `/metrics`
    /// counts them, reconciling with the report's `incidents[]`.
    #[test]
    fn incidents_route_lists_captured_bundles() {
        use crate::incident::IncidentConfig;
        let dir =
            std::env::temp_dir().join(format!("khuzdul-status-incidents-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = gen::barabasi_albert(120, 3, 19);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Arc::new(Engine::new(
            pg,
            EngineConfig {
                incident: IncidentConfig { dir: Some(dir.clone()), ..IncidentConfig::default() },
                ..EngineConfig::default()
            },
        ));
        let svc = Arc::new(MiningService::start(
            engine,
            ServiceConfig { slow_query: Some(Duration::ZERO), ..ServiceConfig::default() },
        ));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        svc.submit(&Pattern::triangle(), &PlanOptions::automine()).unwrap().wait().unwrap();
        let body = http_get(server.local_addr(), "/incidents");
        let doc = gpm_obs::parse_json(&body).expect("incidents must be valid JSON");
        let Value::Seq(entries) = &doc else { panic!("incidents root is an array") };
        assert_eq!(entries.len(), 1, "the zero-threshold slow-query log captures once");
        let Value::Map(fields) = &entries[0] else { panic!("entry is an object") };
        let trigger = fields.iter().find(|(k, _)| k == "trigger").map(|(_, v)| v);
        assert_eq!(trigger, Some(&Value::Str("slow_query".to_string())));
        let path = fields.iter().find_map(|(k, v)| match (k.as_str(), v) {
            ("path", Value::Str(p)) => Some(p.clone()),
            _ => None,
        });
        let path = path.expect("entry carries the bundle path");
        let raw = std::fs::read_to_string(&path).expect("bundle exists on disk");
        crate::incident::validate_bundle(&raw).expect("bundle validates");
        let metrics = http_get(server.local_addr(), "/metrics");
        assert_eq!(
            gpm_obs::sample_value(&metrics, "gpm_incidents_total", None),
            Some(1.0),
            "the scrape counts the captured bundle"
        );
        let report = svc.report("khuzdul-service");
        assert_eq!(report.incidents.len(), 1, "the report carries the same capture list");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
