//! The resident multi-tenant mining service: first-class queries over
//! one shared [`Engine`].
//!
//! `Engine::count` is one-shot: the caller owns the run from admission
//! to report. [`MiningService`] instead keeps the engine resident and
//! treats each submission as a *query* — admitted FIFO under a
//! concurrency cap, executed on the engine's shared worker pool and
//! fabric with its own query-scoped ledger, traffic accounting, and
//! failure recovery, and reported as one `queries[]` section of a
//! schema-v4 aggregate [`RunReport`].
//!
//! Identical submissions (same pattern up to isomorphism, same graph,
//! same plan options) are **memoized**: the duplicate never claims a
//! root — it shares the original's result slot, waiting on it if the
//! original is still in flight. Failed runs are evicted from the memo so
//! a resubmission retries instead of replaying the error forever.

use crate::engine::{Engine, EngineError, QueryCtx, DEFAULT_ROOT_BUDGET};
use crate::incident::{counters_json, progress_json, CaptureSections, Trigger, TriggerKind};
use crate::stats::RunStats;
use gpm_obs::{
    critical_path, ControlSection, FailureSection, QueryReport, RunReport, Span, TrafficTotals,
};
use gpm_pattern::iso::canonical_code;
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::Pattern;
use parking_lot::{Condvar, Mutex};
use std::collections::{HashMap, VecDeque};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Admission and fairness knobs of a [`MiningService`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ServiceConfig {
    /// Queries executing concurrently; further admissions queue FIFO.
    pub max_concurrent: usize,
    /// Per-query fairness quantum (claimed roots a query may race ahead
    /// of the least-served active query). Delays claims, never truncates
    /// them — see [`QueryCtx::root_budget`].
    pub root_budget: u64,
    /// Serve duplicate submissions from the memo instead of
    /// re-enumerating.
    pub memoize: bool,
    /// Most memo entries retained; inserting past the cap evicts the
    /// least-recently-used entry (in-flight entries stay valid — their
    /// slots are `Arc`-shared with every waiting handle).
    pub memo_capacity: usize,
    /// Queries slower than this land in the slow-query log exposed by
    /// the status plane. `None` disables the log.
    pub slow_query: Option<Duration>,
}

impl Default for ServiceConfig {
    fn default() -> Self {
        ServiceConfig {
            max_concurrent: 2,
            root_budget: DEFAULT_ROOT_BUDGET,
            memoize: true,
            memo_capacity: 256,
            slow_query: None,
        }
    }
}

/// Result slot shared between a query's executor and every handle (the
/// submitter's and any memoized duplicates').
#[derive(Debug)]
struct QuerySlot {
    state: Mutex<Option<Result<Arc<RunStats>, EngineError>>>,
    cv: Condvar,
}

impl QuerySlot {
    fn new() -> Arc<QuerySlot> {
        Arc::new(QuerySlot { state: Mutex::new(None), cv: Condvar::new() })
    }

    fn fulfill(&self, result: Result<Arc<RunStats>, EngineError>) {
        *self.state.lock() = Some(result);
        self.cv.notify_all();
    }

    fn wait(&self) -> Result<Arc<RunStats>, EngineError> {
        let mut st = self.state.lock();
        while st.is_none() {
            self.cv.wait(&mut st);
        }
        st.as_ref().expect("slot fulfilled").clone()
    }

    fn peek(&self) -> Option<Result<Arc<RunStats>, EngineError>> {
        self.state.lock().clone()
    }
}

/// The submitter's side of one admitted query.
#[derive(Debug)]
pub struct QueryHandle {
    query_id: u64,
    pattern: String,
    memoized: bool,
    slot: Arc<QuerySlot>,
}

impl QueryHandle {
    /// The engine-assigned query id (tags this query's spans, wire
    /// requests, and report section).
    pub fn query_id(&self) -> u64 {
        self.query_id
    }

    /// Whether this submission was served from the memo (no enumeration
    /// of its own).
    pub fn memoized(&self) -> bool {
        self.memoized
    }

    /// Display form of the pattern this query was submitted with.
    pub fn pattern(&self) -> &str {
        &self.pattern
    }

    /// Blocks until the query completes and returns its run statistics
    /// (shared with any memoized duplicates) or the failure.
    pub fn wait(&self) -> Result<Arc<RunStats>, EngineError> {
        self.slot.wait()
    }
}

/// What one admitted query came to: recorded per query for the
/// aggregate report.
#[derive(Debug, Clone)]
pub struct QueryOutcome {
    /// Engine-assigned query id.
    pub query_id: u64,
    /// Display form of the submitted pattern.
    pub pattern: String,
    /// Served from the memo instead of enumerated.
    pub memoized: bool,
    /// The result (shared with the memo), or the typed failure.
    pub result: Result<Arc<RunStats>, EngineError>,
    /// Wall clock from admission to completion.
    pub elapsed: Duration,
    /// Size of the root multiset this query enumerated (0 when progress
    /// tracking is off or the query was memoized).
    pub roots_total: u64,
    /// Roots retired by the time the query finished (can exceed
    /// `roots_total` after a recovery pass).
    pub roots_completed: u64,
    /// Memo entries resident when this query completed.
    pub memo_entries: u64,
    /// Cumulative LRU evictions by the time this query completed.
    pub memo_evictions: u64,
}

/// One entry of the status plane's recent-completions ring and
/// slow-query log.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Engine-assigned query id.
    pub query_id: u64,
    /// Display form of the submitted pattern.
    pub pattern: String,
    /// The embedding count, `None` if the query failed.
    pub count: Option<u64>,
    /// Wall clock from admission to completion.
    pub elapsed: Duration,
}

type MemoKey = (Vec<u8>, String, u64);

/// The memo map plus its LRU clock and counters, all under one lock.
#[derive(Default)]
struct MemoState {
    map: HashMap<MemoKey, MemoEntry>,
    /// Logical clock bumped on every touch; orders entries for LRU.
    tick: u64,
    hits: u64,
    evictions: u64,
}

struct MemoEntry {
    slot: Arc<QuerySlot>,
    last_used: u64,
}

impl MemoState {
    fn touch(&mut self, key: &MemoKey) -> Option<Arc<QuerySlot>> {
        self.tick += 1;
        let tick = self.tick;
        let e = self.map.get_mut(key)?;
        e.last_used = tick;
        self.hits += 1;
        Some(Arc::clone(&e.slot))
    }

    /// Inserts under the capacity cap, evicting least-recently-used
    /// entries first. A zero capacity admits nothing.
    fn insert(&mut self, key: MemoKey, slot: Arc<QuerySlot>, capacity: usize) {
        if capacity == 0 {
            return;
        }
        while self.map.len() >= capacity {
            let Some(lru) =
                self.map.iter().min_by_key(|(_, e)| e.last_used).map(|(k, _)| k.clone())
            else {
                break;
            };
            self.map.remove(&lru);
            self.evictions += 1;
        }
        self.tick += 1;
        self.map.insert(key, MemoEntry { slot, last_used: self.tick });
    }
}

/// One queued execution.
struct Job {
    query_id: u64,
    plan: MatchingPlan,
    key: MemoKey,
    slot: Arc<QuerySlot>,
    admitted: Instant,
}

/// Everything admitted so far, in admission order.
struct Admitted {
    query_id: u64,
    pattern: String,
    memoized: bool,
    slot: Arc<QuerySlot>,
}

/// Recent completions kept for the status plane.
const COMPLETIONS_CAP: usize = 128;
/// Slow-query log entries kept for the status plane.
const SLOW_LOG_CAP: usize = 32;

struct ServiceInner {
    queue: Mutex<VecDeque<Job>>,
    queue_cv: Condvar,
    stop: AtomicBool,
    memo: Mutex<MemoState>,
    admitted: Mutex<Vec<Admitted>>,
    outcomes: Mutex<HashMap<u64, QueryOutcome>>,
    /// Recently completed queries, oldest first (bounded ring).
    completions: Mutex<VecDeque<Completion>>,
    /// Completions slower than the configured threshold, oldest first.
    slow_log: Mutex<VecDeque<Completion>>,
}

impl ServiceInner {
    fn record_completion(&self, c: Completion, slow_query: Option<Duration>) {
        if slow_query.is_some_and(|t| c.elapsed >= t) {
            let mut log = self.slow_log.lock();
            log.push_back(c.clone());
            while log.len() > SLOW_LOG_CAP {
                log.pop_front();
            }
        }
        let mut ring = self.completions.lock();
        ring.push_back(c);
        while ring.len() > COMPLETIONS_CAP {
            ring.pop_front();
        }
    }
}

/// A resident multi-tenant query engine over one [`Engine`]: FIFO
/// admission with a concurrency cap, per-query fairness budgets, and
/// memoization of identical submissions.
pub struct MiningService {
    engine: Arc<Engine>,
    cfg: ServiceConfig,
    graph_id: u64,
    inner: Arc<ServiceInner>,
    workers: Vec<std::thread::JoinHandle<()>>,
    started: Instant,
}

impl std::fmt::Debug for MiningService {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("MiningService")
            .field("cfg", &self.cfg)
            .field("workers", &self.workers.len())
            .finish()
    }
}

impl MiningService {
    /// Starts `cfg.max_concurrent` resident executor threads over
    /// `engine`.
    pub fn start(engine: Arc<Engine>, cfg: ServiceConfig) -> MiningService {
        let inner = Arc::new(ServiceInner {
            queue: Mutex::new(VecDeque::new()),
            queue_cv: Condvar::new(),
            stop: AtomicBool::new(false),
            memo: Mutex::new(MemoState::default()),
            admitted: Mutex::new(Vec::new()),
            outcomes: Mutex::new(HashMap::new()),
            completions: Mutex::new(VecDeque::new()),
            slow_log: Mutex::new(VecDeque::new()),
        });
        // Cheap fingerprint of the graph this service serves; keys the
        // memo so a future multi-graph registry can share one memo map.
        let pg = engine.partitioned_graph();
        let graph_id = (0..pg.part_count()).fold(pg.part_count() as u64, |acc, p| {
            acc.wrapping_mul(0x100000001b3).wrapping_add(pg.part(p).owned().len() as u64)
        });
        let workers = (0..cfg.max_concurrent.max(1))
            .map(|i| {
                let engine = Arc::clone(&engine);
                let inner = Arc::clone(&inner);
                let budget = cfg.root_budget;
                let slow = cfg.slow_query;
                std::thread::Builder::new()
                    .name(format!("khuzdul-query-{i}"))
                    .spawn(move || executor_loop(&engine, &inner, budget, slow))
                    .expect("spawn query executor")
            })
            .collect();
        MiningService { engine, cfg, graph_id, inner, workers, started: Instant::now() }
    }

    /// The shared engine this service executes on.
    pub fn engine(&self) -> &Arc<Engine> {
        &self.engine
    }

    /// Admits one query: compiles `pattern` under `opts` and queues it
    /// FIFO behind earlier submissions (bounded by the concurrency cap).
    /// An identical earlier submission (isomorphic pattern, same graph,
    /// same options) returns a memoized handle sharing its result slot —
    /// in flight or finished — without claiming a single root.
    ///
    /// # Errors
    ///
    /// Returns the plan compiler's error message if `pattern` cannot be
    /// compiled under `opts`.
    pub fn submit(&self, pattern: &Pattern, opts: &PlanOptions) -> Result<QueryHandle, String> {
        let plan = MatchingPlan::compile(pattern, opts)?;
        let key: MemoKey = (canonical_code(pattern), format!("{opts:?}"), self.graph_id);
        let query_id = self.engine.next_query_id();
        // One lock for the memo-or-admit decision keeps admission order
        // well-defined under concurrent submitters.
        let mut memo = self.inner.memo.lock();
        if self.cfg.memoize {
            if let Some(slot) = memo.touch(&key) {
                let handle = QueryHandle {
                    query_id,
                    pattern: pattern.to_string(),
                    memoized: true,
                    slot: Arc::clone(&slot),
                };
                self.inner.admitted.lock().push(Admitted {
                    query_id,
                    pattern: pattern.to_string(),
                    memoized: true,
                    slot,
                });
                return Ok(handle);
            }
        }
        let slot = QuerySlot::new();
        if self.cfg.memoize {
            memo.insert(key.clone(), Arc::clone(&slot), self.cfg.memo_capacity);
        }
        self.inner.admitted.lock().push(Admitted {
            query_id,
            pattern: pattern.to_string(),
            memoized: false,
            slot: Arc::clone(&slot),
        });
        drop(memo);
        let job = Job { query_id, plan, key, slot: Arc::clone(&slot), admitted: Instant::now() };
        self.inner.queue.lock().push_back(job);
        self.inner.queue_cv.notify_one();
        Ok(QueryHandle { query_id, pattern: pattern.to_string(), memoized: false, slot })
    }

    /// Blocks until every admitted query has completed and returns their
    /// outcomes in admission order.
    pub fn drain(&self) -> Vec<QueryOutcome> {
        let admitted: Vec<(u64, Arc<QuerySlot>)> =
            self.inner.admitted.lock().iter().map(|a| (a.query_id, Arc::clone(&a.slot))).collect();
        for (_, slot) in &admitted {
            let _ = slot.wait();
        }
        self.outcomes()
    }

    /// Outcomes of every *completed* query so far, in admission order.
    /// Memoized queries resolve as soon as their original does.
    pub fn outcomes(&self) -> Vec<QueryOutcome> {
        let outcomes = self.inner.outcomes.lock();
        self.inner
            .admitted
            .lock()
            .iter()
            .filter_map(|a| {
                if a.memoized {
                    // A duplicate completes when its original does; it
                    // spent no engine time of its own.
                    a.slot.peek().map(|result| QueryOutcome {
                        query_id: a.query_id,
                        pattern: a.pattern.clone(),
                        memoized: true,
                        result,
                        elapsed: Duration::ZERO,
                        roots_total: 0,
                        roots_completed: 0,
                        memo_entries: 0,
                        memo_evictions: 0,
                    })
                } else {
                    outcomes.get(&a.query_id).cloned()
                }
            })
            .collect()
    }

    /// The service-level aggregate report (schema v4): totals summed
    /// over every completed query, the recorder's histograms / series /
    /// span accounting, and one `queries[]` section per completed query
    /// in admission order — each with its own traffic, failure, and
    /// critical-path attribution (computed over that query's spans
    /// only).
    pub fn report(&self, system: &str) -> RunReport {
        let outcomes = self.outcomes();
        let mut agg = RunStats { elapsed: self.started.elapsed(), ..RunStats::default() };
        for o in &outcomes {
            let Ok(stats) = &o.result else { continue };
            agg.count += stats.count;
            if !o.memoized {
                let t = &stats.traffic;
                agg.traffic.network_bytes += t.network_bytes;
                agg.traffic.cross_socket_bytes += t.cross_socket_bytes;
                agg.traffic.requests += t.requests;
                agg.traffic.cache_hits += t.cache_hits;
                agg.traffic.cache_misses += t.cache_misses;
                agg.traffic.coalesced += t.coalesced;
                agg.traffic.retries += t.retries;
                agg.failures.rerouted_requests += stats.failures.rerouted_requests;
                agg.failures.rerouted_bytes += stats.failures.rerouted_bytes;
                agg.failures.reexecuted_roots += stats.failures.reexecuted_roots;
                agg.control.sent += stats.control.sent;
                agg.control.retried += stats.control.retried;
                agg.control.dropped += stats.control.dropped;
            }
        }
        // Service-level failure count: parts that fail-stopped, counted
        // once, not once per query that observed them.
        agg.failures.parts_failed = self.engine.metrics().parts_failed();
        let mut report = agg.to_report(system);
        self.engine.recorder().augment_report(&mut report);
        report.incidents = self.engine.incidents().incidents();
        report.rebalance = self.engine.rebalance_section();
        let spans = self.engine.recorder().spans();
        report.queries = outcomes.iter().map(|o| query_report(o, &spans)).collect();
        report
    }

    /// The service configuration.
    pub fn config(&self) -> &ServiceConfig {
        &self.cfg
    }

    /// Wall clock since the service started.
    pub fn uptime(&self) -> Duration {
        self.started.elapsed()
    }

    /// Jobs admitted but not yet picked up by an executor.
    pub fn queue_depth(&self) -> usize {
        self.inner.queue.lock().len()
    }

    /// Queries admitted so far (including memoized duplicates).
    pub fn admitted_count(&self) -> usize {
        self.inner.admitted.lock().len()
    }

    /// `(entries, hits, evictions)` of the memo: resident entry count,
    /// cumulative memo hits, and cumulative LRU evictions.
    pub fn memo_stats(&self) -> (u64, u64, u64) {
        let m = self.inner.memo.lock();
        (m.map.len() as u64, m.hits, m.evictions)
    }

    /// Recently *executed* queries, oldest first (bounded ring).
    /// Memoized duplicates spend no engine time and are not recorded.
    pub fn recent_completions(&self) -> Vec<Completion> {
        self.inner.completions.lock().iter().cloned().collect()
    }

    /// Completions slower than [`ServiceConfig::slow_query`], oldest
    /// first (empty when the threshold is unset).
    pub fn slow_queries(&self) -> Vec<Completion> {
        self.inner.slow_log.lock().iter().cloned().collect()
    }
}

impl Drop for MiningService {
    fn drop(&mut self) {
        self.inner.stop.store(true, Ordering::SeqCst);
        self.inner.queue_cv.notify_all();
        for h in self.workers.drain(..) {
            let _ = h.join();
        }
    }
}

/// One query's section of the aggregate report.
fn query_report(o: &QueryOutcome, spans: &[Span]) -> QueryReport {
    let mut qr = QueryReport {
        query_id: o.query_id,
        pattern: o.pattern.clone(),
        memoized: o.memoized,
        elapsed_ns: o.elapsed.as_nanos() as u64,
        roots_total: o.roots_total,
        roots_completed: o.roots_completed,
        memo_entries: o.memo_entries,
        memo_evictions: o.memo_evictions,
        ..QueryReport::default()
    };
    // A failed query keeps the zeroed section (count 0, no traffic).
    if let Ok(stats) = &o.result {
        qr.count = stats.count;
        if !o.memoized {
            qr.traffic = TrafficTotals {
                fetch_requests: stats.traffic.requests,
                cache_hits: stats.traffic.cache_hits,
                cache_misses: stats.traffic.cache_misses,
                coalesced_requests: stats.traffic.coalesced,
                retries: stats.traffic.retries,
                network_bytes: stats.traffic.network_bytes,
                numa_bytes: stats.traffic.cross_socket_bytes,
            };
            qr.failures = FailureSection {
                parts_failed: stats.failures.parts_failed,
                rerouted_requests: stats.failures.rerouted_requests,
                rerouted_bytes: stats.failures.rerouted_bytes,
                reexecuted_roots: stats.failures.reexecuted_roots,
            };
            qr.control = ControlSection {
                sent: stats.control.sent,
                retried: stats.control.retried,
                dropped: stats.control.dropped,
            };
            let mine: Vec<Span> = spans.iter().filter(|s| s.query == o.query_id).cloned().collect();
            qr.critical_path = critical_path(&mine);
        }
    }
    qr
}

fn executor_loop(engine: &Engine, inner: &ServiceInner, budget: u64, slow_query: Option<Duration>) {
    loop {
        let job = {
            let mut q = inner.queue.lock();
            loop {
                if let Some(job) = q.pop_front() {
                    break job;
                }
                if inner.stop.load(Ordering::SeqCst) {
                    return;
                }
                inner.queue_cv.wait(&mut q);
            }
        };
        let query = QueryCtx { query_id: job.query_id, root_budget: budget, deadline: None };
        let result = engine.try_count_query(&job.plan, &query).map(Arc::new);
        if result.is_err() {
            // Never memoize a failure: a resubmission should retry.
            inner.memo.lock().map.remove(&job.key);
        }
        // The run's guard parked its progress tracker (if tracking is
        // on) in the engine's finished ring; fold it into the outcome.
        let (roots_total, roots_completed) = engine
            .take_finished_progress(job.query_id)
            .map(|p| (p.total(), p.completed()))
            .unwrap_or((0, 0));
        let (memo_entries, _, memo_evictions) = {
            let m = inner.memo.lock();
            (m.map.len() as u64, m.hits, m.evictions)
        };
        let elapsed = job.admitted.elapsed();
        let outcome = QueryOutcome {
            query_id: job.query_id,
            pattern: String::new(),
            memoized: false,
            result: result.clone(),
            elapsed,
            roots_total,
            roots_completed,
            memo_entries,
            memo_evictions,
        };
        let pattern = inner
            .admitted
            .lock()
            .iter()
            .find(|a| a.query_id == job.query_id)
            .map(|a| a.pattern.clone())
            .unwrap_or_default();
        // A completion over the slow-query threshold is an incident, not
        // just a log line: capture the bundle while the engine still has
        // the live context (concurrent queries' progress, counter totals).
        if slow_query.is_some_and(|t| elapsed >= t) {
            let incidents = engine.incidents();
            let sections = if incidents.enabled() {
                CaptureSections {
                    progress: engine.active_progress().iter().map(|p| progress_json(p)).collect(),
                    counters: Some(counters_json(&engine.metrics().counter_snapshot())),
                    ledger: None,
                }
            } else {
                CaptureSections::default()
            };
            incidents.capture(
                Trigger {
                    kind: TriggerKind::SlowQuery,
                    query_id: job.query_id,
                    part: None,
                    value: elapsed.as_nanos() as u64,
                    detail: format!(
                        "query {} ({pattern}) took {elapsed:?}, over the slow-query threshold",
                        job.query_id
                    ),
                },
                sections,
            );
        }
        inner.record_completion(
            Completion {
                query_id: job.query_id,
                pattern: pattern.clone(),
                count: result.as_ref().ok().map(|s| s.count),
                elapsed,
            },
            slow_query,
        );
        inner.outcomes.lock().insert(job.query_id, QueryOutcome { pattern, ..outcome });
        job.slot.fulfill(result);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::EngineConfig;
    use gpm_graph::gen;
    use gpm_graph::partition::PartitionedGraph;
    use gpm_pattern::oracle;

    fn service(machines: usize) -> (gpm_graph::Graph, MiningService) {
        let g = gen::barabasi_albert(200, 5, 7);
        let pg = PartitionedGraph::new(&g, machines, 1);
        let engine = Arc::new(Engine::new(pg, EngineConfig::default()));
        (g, MiningService::start(engine, ServiceConfig::default()))
    }

    #[test]
    fn submissions_complete_with_exact_counts() {
        let (g, svc) = service(3);
        let opts = PlanOptions::automine();
        let h1 = svc.submit(&Pattern::triangle(), &opts).unwrap();
        let h2 = svc.submit(&Pattern::path(3), &opts).unwrap();
        assert!(!h1.memoized() && !h2.memoized());
        assert_ne!(h1.query_id(), h2.query_id());
        let r1 = h1.wait().unwrap();
        let r2 = h2.wait().unwrap();
        assert_eq!(r1.count, oracle::count_subgraphs(&g, &Pattern::triangle(), false));
        assert_eq!(r2.count, oracle::count_subgraphs(&g, &Pattern::path(3), false));
    }

    #[test]
    fn duplicates_are_memoized_even_isomorphic_ones() {
        let (g, svc) = service(3);
        let opts = PlanOptions::automine();
        let h1 = svc.submit(&Pattern::triangle(), &opts).unwrap();
        // Clique(3) is isomorphic to the triangle: the canonical form
        // keys the memo, so it must hit.
        let h2 = svc.submit(&Pattern::clique(3), &opts).unwrap();
        assert!(!h1.memoized());
        assert!(h2.memoized(), "isomorphic resubmission must memoize");
        let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
        assert_eq!(h1.wait().unwrap().count, expect);
        assert_eq!(h2.wait().unwrap().count, expect);
        // Different options miss the memo.
        let induced = PlanOptions { induced: true, ..PlanOptions::automine() };
        let h3 = svc.submit(&Pattern::triangle(), &induced).unwrap();
        assert!(!h3.memoized(), "different plan options are a different query");
        h3.wait().unwrap();
        let outcomes = svc.drain();
        assert_eq!(outcomes.len(), 3);
        assert_eq!(outcomes.iter().filter(|o| o.memoized).count(), 1);
    }

    #[test]
    fn aggregate_report_has_one_section_per_query_and_validates() {
        let (g, svc) = service(3);
        let opts = PlanOptions::automine();
        let patterns = [Pattern::triangle(), Pattern::path(3), Pattern::triangle()];
        let handles: Vec<QueryHandle> =
            patterns.iter().map(|p| svc.submit(p, &opts).unwrap()).collect();
        for h in &handles {
            h.wait().unwrap();
        }
        let report = svc.report("khuzdul-service");
        assert_eq!(report.queries.len(), 3);
        let expect_tri = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
        assert_eq!(report.queries[0].count, expect_tri);
        assert!(report.queries[2].memoized);
        assert_eq!(report.queries[2].count, expect_tri);
        assert_eq!(report.queries[2].traffic.fetch_requests, 0, "memo hit does no traffic");
        assert_eq!(
            report.count,
            report.queries.iter().map(|q| q.count).sum::<u64>(),
            "aggregate count sums the per-query counts"
        );
        gpm_obs::validate_report(&report.to_json()).expect("service report must validate");
    }

    #[test]
    fn slow_queries_capture_incident_bundles_into_the_report() {
        use crate::incident::IncidentConfig;
        let dir = std::env::temp_dir().join(format!("khuzdul-svc-slow-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let g = gen::barabasi_albert(150, 4, 9);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Arc::new(Engine::new(
            pg,
            EngineConfig {
                incident: IncidentConfig { dir: Some(dir.clone()), ..IncidentConfig::default() },
                ..EngineConfig::default()
            },
        ));
        engine.enable_progress();
        // Threshold zero: every executed query is "slow".
        let svc = MiningService::start(
            engine,
            ServiceConfig { slow_query: Some(Duration::ZERO), ..ServiceConfig::default() },
        );
        let opts = PlanOptions::automine();
        let h1 = svc.submit(&Pattern::triangle(), &opts).unwrap();
        let h2 = svc.submit(&Pattern::clique(3), &opts).unwrap(); // memo hit
        h1.wait().unwrap();
        h2.wait().unwrap();
        svc.drain();
        let incidents = svc.engine().incidents().incidents();
        assert_eq!(incidents.len(), 1, "executed query captures; memo hit does not");
        assert_eq!(incidents[0].trigger, "slow_query");
        assert_eq!(incidents[0].query_id, h1.query_id());
        let json = std::fs::read_to_string(&incidents[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("slow-query bundle validates");
        let report = svc.report("khuzdul-service");
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].trigger, "slow_query");
        gpm_obs::validate_report(&report.to_json()).expect("report with incidents validates");
        drop(svc);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn failed_queries_are_evicted_from_the_memo() {
        use crate::engine::EngineConfig;
        use gpm_cluster::{FabricConfig, FaultPlan, RetryPolicy};
        let g = gen::barabasi_albert(150, 4, 5);
        let pg = PartitionedGraph::new(&g, 3, 1);
        // Every reply dropped, two attempts: the run must fail.
        let engine = Arc::new(Engine::new(
            pg,
            EngineConfig {
                fabric: FabricConfig {
                    retry: RetryPolicy {
                        max_attempts: 2,
                        timeout: Duration::from_millis(5),
                        backoff: Duration::from_micros(100),
                    },
                    fault: Some(FaultPlan::drops(1.0)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        ));
        let svc = MiningService::start(engine, ServiceConfig::default());
        let opts = PlanOptions::automine();
        let h1 = svc.submit(&Pattern::triangle(), &opts).unwrap();
        assert!(h1.wait().is_err(), "all-drops fabric must fail the query");
        // The failure must have been evicted: a resubmission is a fresh
        // (non-memoized) query, not a replay of the stored error.
        let h2 = svc.submit(&Pattern::triangle(), &opts).unwrap();
        assert!(!h2.memoized(), "failed query must not serve from the memo");
        assert!(h2.wait().is_err());
    }
}
