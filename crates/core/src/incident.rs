//! Incident detection and automatic bundle capture.
//!
//! When something goes wrong — a part fail-stops, a deadline fires, a
//! query blows the slow threshold, the control plane poisons itself, or
//! a run wedges entirely — a post-hoc `RunReport` is too late and too
//! aggregated to debug from. This module captures an **incident bundle**
//! at the moment of the trigger: a JSON file holding the flight-ring
//! slice around the event ([`gpm_obs::FlightRecorder`]), every in-flight
//! query's progress snapshot, a cluster counter snapshot, a scheduler /
//! ledger state summary (per-part cursors, spill depth, quiescence,
//! starvation, poison), a config fingerprint, and the trigger record
//! itself.
//!
//! Six triggers exist, mirroring `gpm_obs`'s `INCIDENT_TRIGGERS`
//! taxonomy: `part_failed`, `part_lost`, `deadline_exceeded`,
//! `slow_query`, `control_poison`, and `stall`. The first five wire into
//! existing engine/service/control choke points; the last comes from the
//! [`StallWatchdog`] — a per-run thread that fires when the run is still
//! in flight but no root claim or batch retirement has happened for a
//! configurable window, dumping scheduler state instead of letting a
//! wedged run hang silently.
//!
//! Capture is **off by default**: with no [`IncidentConfig::dir`] the
//! manager records nothing and every trigger site costs one `Option`
//! branch. Bundles are schema-checked by [`validate_bundle`] — the same
//! check `gpm incident show` and the chaos CI job run.

use crate::scheduler::{ControlPlane, LedgerStateSummary};
use gpm_obs::{FlightKind, FlightRecorder, IncidentSummary, QueryProgress};
use parking_lot::Mutex;
use serde::Value;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Version stamped into every bundle; bump on breaking layout changes.
pub const BUNDLE_SCHEMA_VERSION: u64 = 1;

/// Incident capture knobs, threaded through `EngineConfig::incident`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IncidentConfig {
    /// Directory bundles are written to. `None` (the default) disables
    /// capture entirely — triggers cost one branch and write nothing.
    pub dir: Option<PathBuf>,
    /// Flight-ring slots. The ring is allocated per engine and enabled
    /// whenever capture is configured (or span tracing is on), so coarse
    /// events are recorded even with full tracing off.
    pub flight_capacity: usize,
    /// Stall-watchdog window: a run with no root claim or batch
    /// retirement for this long triggers a `stall` bundle. `None`
    /// disables the watchdog.
    pub stall: Option<Duration>,
    /// Most bundle files retained in `dir`; the oldest (by bundle
    /// sequence) are deleted past this.
    pub max_bundles: usize,
}

impl Default for IncidentConfig {
    fn default() -> Self {
        IncidentConfig {
            dir: None,
            flight_capacity: gpm_obs::FLIGHT_CAPACITY,
            stall: None,
            max_bundles: 64,
        }
    }
}

/// What fired. Each variant maps 1:1 onto a stable bundle trigger name
/// and a [`FlightKind`] recorded into the ring alongside the capture.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TriggerKind {
    /// A part fail-stopped and a recovery pass re-executed its roots.
    PartFailed,
    /// A part fail-stopped with no replica to recover from.
    PartLost,
    /// A query's cooperative deadline expired.
    DeadlineExceeded,
    /// A completed query exceeded the slow-query threshold.
    SlowQuery,
    /// The control-plane ledger lost a fire-and-forget operation.
    ControlPoison,
    /// The stall watchdog saw no scheduler progress for its window.
    Stall,
    /// A re-replication transfer made no byte progress for the stall
    /// window.
    RebalanceStuck,
}

impl TriggerKind {
    /// Every trigger, in taxonomy order.
    pub const ALL: [TriggerKind; 7] = [
        TriggerKind::PartFailed,
        TriggerKind::PartLost,
        TriggerKind::DeadlineExceeded,
        TriggerKind::SlowQuery,
        TriggerKind::ControlPoison,
        TriggerKind::Stall,
        TriggerKind::RebalanceStuck,
    ];

    /// Stable machine-readable name (matches the report validator's
    /// `INCIDENT_TRIGGERS` list).
    pub fn name(self) -> &'static str {
        match self {
            TriggerKind::PartFailed => "part_failed",
            TriggerKind::PartLost => "part_lost",
            TriggerKind::DeadlineExceeded => "deadline_exceeded",
            TriggerKind::SlowQuery => "slow_query",
            TriggerKind::ControlPoison => "control_poison",
            TriggerKind::Stall => "stall",
            TriggerKind::RebalanceStuck => "rebalance_stuck",
        }
    }

    fn flight(self) -> FlightKind {
        match self {
            TriggerKind::PartFailed | TriggerKind::PartLost => FlightKind::PartCrash,
            TriggerKind::DeadlineExceeded => FlightKind::DeadlineMiss,
            TriggerKind::SlowQuery => FlightKind::SlowQuery,
            TriggerKind::ControlPoison => FlightKind::ControlPoison,
            TriggerKind::Stall | TriggerKind::RebalanceStuck => FlightKind::Stall,
        }
    }
}

/// One trigger record, written verbatim into the bundle.
#[derive(Debug, Clone)]
pub(crate) struct Trigger {
    pub kind: TriggerKind,
    /// Query the trigger belongs to (0 when not query-scoped).
    pub query_id: u64,
    /// Part involved, if any.
    pub part: Option<u64>,
    /// Kind-specific payload: lost roots re-executed, elapsed ns,
    /// stalled ns.
    pub value: u64,
    /// Human-readable one-liner.
    pub detail: String,
}

/// Optional context sections a trigger site attaches to its bundle.
/// Every field may be degraded to nothing — a bundle with just the
/// flight slice and the trigger is still worth having.
#[derive(Debug, Default)]
pub(crate) struct CaptureSections {
    /// Per-query progress snapshots (live queries at capture time).
    pub progress: Vec<Value>,
    /// Cluster counter snapshot, as a name → value map.
    pub counters: Option<Value>,
    /// Scheduler/ledger state summary.
    pub ledger: Option<Value>,
}

/// The per-engine incident sink: owns the flight ring, the bundle
/// directory, and the list of captures for the report's `incidents[]`
/// section and the `/incidents` status route.
#[derive(Debug)]
pub struct IncidentManager {
    dir: Option<PathBuf>,
    stall: Option<Duration>,
    max_bundles: usize,
    flight: Arc<FlightRecorder>,
    fingerprint: String,
    seq: AtomicU64,
    captured: Mutex<Vec<IncidentSummary>>,
}

impl IncidentManager {
    /// A manager over `flight`, capturing per `cfg`. `fingerprint`
    /// identifies the engine configuration that produced the bundles
    /// (see [`config_fingerprint`]). The capture sequence resumes past
    /// any bundles already in the directory, so repeated runs into one
    /// `--incident-dir` accumulate instead of overwriting.
    pub(crate) fn new(
        cfg: &IncidentConfig,
        flight: Arc<FlightRecorder>,
        fingerprint: String,
    ) -> Arc<IncidentManager> {
        let seq = cfg
            .dir
            .as_deref()
            .and_then(|d| list_bundles(d).ok())
            .and_then(|bundles| {
                bundles
                    .iter()
                    .filter_map(|p| {
                        let stem = p.file_stem()?.to_str()?;
                        stem.strip_prefix("incident-")?.get(..6)?.parse::<u64>().ok()
                    })
                    .max()
            })
            .unwrap_or(0);
        Arc::new(IncidentManager {
            dir: cfg.dir.clone(),
            stall: cfg.stall,
            max_bundles: cfg.max_bundles.max(1),
            flight,
            fingerprint,
            seq: AtomicU64::new(seq),
            captured: Mutex::new(Vec::new()),
        })
    }

    /// Whether captures write bundles (a directory is configured).
    pub fn enabled(&self) -> bool {
        self.dir.is_some()
    }

    /// The bundle directory, if configured.
    pub fn dir(&self) -> Option<&Path> {
        self.dir.as_deref()
    }

    /// The coarse-event flight ring bundles snapshot from.
    pub fn flight(&self) -> &Arc<FlightRecorder> {
        &self.flight
    }

    /// The configured stall-watchdog window, if any.
    pub(crate) fn stall_window(&self) -> Option<Duration> {
        self.stall
    }

    /// Summaries of every bundle captured by this manager, in capture
    /// order — the source of the report's `incidents[]` section.
    pub fn incidents(&self) -> Vec<IncidentSummary> {
        self.captured.lock().clone()
    }

    /// Captures one bundle: records the trigger into the flight ring,
    /// snapshots it, writes the schema-validated JSON file, enforces
    /// retention, and remembers the summary. Returns `None` when capture
    /// is disabled or the write failed (a broken incident sink must
    /// never fail the run it is describing).
    pub(crate) fn capture(
        &self,
        trigger: Trigger,
        sections: CaptureSections,
    ) -> Option<IncidentSummary> {
        let at_ns = self.flight.now_ns();
        self.flight.record(
            trigger.kind.flight(),
            trigger.query_id,
            trigger.part.unwrap_or(u64::MAX),
            trigger.value,
        );
        let dir = self.dir.as_ref()?;
        let n = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let id = format!("incident-{n:06}-{}", trigger.kind.name());
        let path = dir.join(format!("{id}.json"));
        let doc = self.bundle_json(&id, &trigger, at_ns, &sections);
        std::fs::create_dir_all(dir).ok()?;
        std::fs::write(&path, serde_json::to_string(&doc).expect("bundle renders")).ok()?;
        self.enforce_retention(dir);
        let summary = IncidentSummary {
            id,
            trigger: trigger.kind.name().to_string(),
            query_id: trigger.query_id,
            at_ns,
            path: path.display().to_string(),
        };
        self.captured.lock().push(summary.clone());
        Some(summary)
    }

    fn bundle_json(
        &self,
        id: &str,
        trigger: &Trigger,
        at_ns: u64,
        sections: &CaptureSections,
    ) -> Value {
        let events: Vec<Value> = self
            .flight
            .snapshot()
            .iter()
            .map(|e| {
                Value::Map(vec![
                    ("seq".into(), Value::UInt(e.seq)),
                    ("at_ns".into(), Value::UInt(e.at_ns)),
                    ("kind".into(), Value::Str(e.kind.name().to_string())),
                    ("query".into(), Value::UInt(e.query)),
                    ("part".into(), Value::UInt(e.part)),
                    ("a".into(), Value::UInt(e.a)),
                ])
            })
            .collect();
        Value::Map(vec![
            ("bundle_schema".into(), Value::UInt(BUNDLE_SCHEMA_VERSION)),
            ("id".into(), Value::Str(id.to_string())),
            (
                "trigger".into(),
                Value::Map(vec![
                    ("kind".into(), Value::Str(trigger.kind.name().to_string())),
                    ("query_id".into(), Value::UInt(trigger.query_id)),
                    ("part".into(), trigger.part.map(Value::UInt).unwrap_or(Value::Null)),
                    ("value".into(), Value::UInt(trigger.value)),
                    ("detail".into(), Value::Str(trigger.detail.clone())),
                    ("at_ns".into(), Value::UInt(at_ns)),
                ]),
            ),
            (
                "config".into(),
                Value::Map(vec![
                    ("fingerprint".into(), Value::Str(self.fingerprint.clone())),
                    (
                        "stall_ms".into(),
                        self.stall
                            .map(|w| Value::UInt(w.as_millis() as u64))
                            .unwrap_or(Value::Null),
                    ),
                ]),
            ),
            (
                "flight".into(),
                Value::Map(vec![
                    ("capacity".into(), Value::UInt(self.flight.capacity() as u64)),
                    ("recorded".into(), Value::UInt(self.flight.recorded())),
                    ("events".into(), Value::Seq(events)),
                ]),
            ),
            ("progress".into(), Value::Seq(sections.progress.clone())),
            ("counters".into(), sections.counters.clone().unwrap_or(Value::Null)),
            ("ledger".into(), sections.ledger.clone().unwrap_or(Value::Null)),
        ])
    }

    /// Deletes the oldest bundles past `max_bundles`. Bundle filenames
    /// embed a zero-padded sequence, so lexicographic order is capture
    /// order.
    fn enforce_retention(&self, dir: &Path) {
        let Ok(mut bundles) = list_bundles(dir) else { return };
        while bundles.len() > self.max_bundles {
            let oldest = bundles.remove(0);
            let _ = std::fs::remove_file(oldest);
        }
    }
}

/// Bundle files in `dir`, oldest first (lexicographic — filenames embed
/// a zero-padded capture sequence).
pub fn list_bundles(dir: &Path) -> std::io::Result<Vec<PathBuf>> {
    let mut out: Vec<PathBuf> = std::fs::read_dir(dir)?
        .filter_map(|e| e.ok())
        .map(|e| e.path())
        .filter(|p| {
            p.extension().is_some_and(|x| x == "json")
                && p.file_name()
                    .and_then(|n| n.to_str())
                    .is_some_and(|n| n.starts_with("incident-"))
        })
        .collect();
    out.sort();
    Ok(out)
}

/// A short FNV-1a fingerprint of the engine configuration, stamped into
/// every bundle so `incident diff` can flag config drift between runs.
pub(crate) fn config_fingerprint(desc: &str) -> String {
    let mut h: u64 = 0xcbf29ce484222325;
    for b in desc.bytes() {
        h ^= b as u64;
        h = h.wrapping_mul(0x100000001b3);
    }
    format!("{h:016x}")
}

/// JSON snapshot of one query's live progress for the bundle's
/// `progress` section.
pub(crate) fn progress_json(p: &QueryProgress) -> Value {
    Value::Map(vec![
        ("query_id".into(), Value::UInt(p.query_id())),
        ("roots_total".into(), Value::UInt(p.total())),
        ("claimed".into(), Value::UInt(p.claimed())),
        ("completed".into(), Value::UInt(p.completed())),
        ("stolen".into(), Value::UInt(p.stolen())),
        ("recovered".into(), Value::UInt(p.recovered())),
        ("done".into(), Value::Bool(p.is_done())),
        ("elapsed_ns".into(), Value::UInt(p.elapsed_ns())),
        (
            "per_part".into(),
            Value::Seq(
                p.per_part()
                    .iter()
                    .map(|pp| {
                        Value::Map(vec![
                            ("part".into(), Value::UInt(pp.part)),
                            ("claimed".into(), Value::UInt(pp.claimed)),
                            ("completed".into(), Value::UInt(pp.completed)),
                        ])
                    })
                    .collect(),
            ),
        ),
    ])
}

/// JSON map of a cluster counter snapshot, name for value, for the
/// bundle's `counters` section.
pub(crate) fn counters_json(snap: &gpm_cluster::CounterSnapshot) -> Value {
    Value::Map(
        gpm_cluster::CounterSnapshot::NAMES
            .iter()
            .zip(snap.as_array())
            .map(|(n, v)| ((*n).to_string(), Value::UInt(v)))
            .collect(),
    )
}

/// JSON form of a [`LedgerStateSummary`] for the bundle's `ledger`
/// section.
pub(crate) fn ledger_json(s: &LedgerStateSummary) -> Value {
    Value::Map(vec![
        ("carrier".into(), Value::Str(s.carrier.to_string())),
        ("available".into(), Value::Bool(s.available)),
        ("quiescent".into(), Value::Bool(s.quiescent)),
        ("starving".into(), Value::UInt(s.starving)),
        ("spill_len".into(), Value::UInt(s.spill_len)),
        (
            "per_part_remaining".into(),
            Value::Seq(s.per_part_remaining.iter().map(|&r| Value::UInt(r)).collect()),
        ),
        (
            "poisoned".into(),
            s.poisoned.as_ref().map(|e| Value::Str(e.clone())).unwrap_or(Value::Null),
        ),
    ])
}

fn get<'v>(map: &'v [(String, Value)], key: &str) -> Option<&'v Value> {
    map.iter().find(|(k, _)| k == key).map(|(_, v)| v)
}

fn require_uint(map: &[(String, Value)], key: &str, ctx: &str) -> Result<u64, String> {
    match get(map, key) {
        Some(Value::UInt(v)) => Ok(*v),
        Some(Value::Int(v)) if *v >= 0 => Ok(*v as u64),
        Some(other) => Err(format!("{ctx}: '{key}' must be an unsigned integer, got {other:?}")),
        None => Err(format!("{ctx}: missing '{key}'")),
    }
}

fn require_str<'v>(map: &'v [(String, Value)], key: &str, ctx: &str) -> Result<&'v str, String> {
    match get(map, key) {
        Some(Value::Str(s)) => Ok(s),
        Some(other) => Err(format!("{ctx}: '{key}' must be a string, got {other:?}")),
        None => Err(format!("{ctx}: missing '{key}'")),
    }
}

fn require_map<'v>(
    map: &'v [(String, Value)],
    key: &str,
    ctx: &str,
) -> Result<&'v [(String, Value)], String> {
    match get(map, key) {
        Some(Value::Map(m)) => Ok(m),
        Some(other) => Err(format!("{ctx}: '{key}' must be an object, got {other:?}")),
        None => Err(format!("{ctx}: missing '{key}'")),
    }
}

/// Validates one incident bundle: schema version, trigger taxonomy,
/// flight-slice shape, and the optional context sections. `gpm incident
/// show` refuses to render a bundle this rejects, and the chaos CI job
/// runs it over every bundle a crash run emits.
///
/// # Errors
///
/// Returns a message naming the first offending field.
pub fn validate_bundle(json: &str) -> Result<(), String> {
    let doc = gpm_obs::parse_json(json)?;
    let Value::Map(top) = &doc else {
        return Err("bundle: root must be an object".to_string());
    };
    let schema = require_uint(top, "bundle_schema", "bundle")?;
    if schema != BUNDLE_SCHEMA_VERSION {
        return Err(format!(
            "bundle: schema version {schema} unsupported (expected {BUNDLE_SCHEMA_VERSION})"
        ));
    }
    if require_str(top, "id", "bundle")?.is_empty() {
        return Err("bundle: 'id' must be non-empty".to_string());
    }
    let trigger = require_map(top, "trigger", "bundle")?;
    let kind = require_str(trigger, "kind", "trigger")?;
    if !TriggerKind::ALL.iter().any(|t| t.name() == kind) {
        return Err(format!("trigger: unknown kind '{kind}'"));
    }
    require_uint(trigger, "query_id", "trigger")?;
    require_uint(trigger, "value", "trigger")?;
    require_uint(trigger, "at_ns", "trigger")?;
    require_str(trigger, "detail", "trigger")?;
    let config = require_map(top, "config", "bundle")?;
    require_str(config, "fingerprint", "config")?;
    let flight = require_map(top, "flight", "bundle")?;
    let capacity = require_uint(flight, "capacity", "flight")?;
    require_uint(flight, "recorded", "flight")?;
    let Some(Value::Seq(events)) = get(flight, "events") else {
        return Err("flight: missing 'events' array".to_string());
    };
    if events.len() as u64 > capacity {
        return Err(format!(
            "flight: {} events exceed the declared capacity {capacity}",
            events.len()
        ));
    }
    let mut last_seq = None;
    for (i, ev) in events.iter().enumerate() {
        let ctx = format!("flight.events[{i}]");
        let Value::Map(ev) = ev else {
            return Err(format!("{ctx}: must be an object"));
        };
        let seq = require_uint(ev, "seq", &ctx)?;
        if last_seq.is_some_and(|p| seq <= p) {
            return Err(format!("{ctx}: seq {seq} not strictly increasing"));
        }
        last_seq = Some(seq);
        require_uint(ev, "at_ns", &ctx)?;
        require_uint(ev, "query", &ctx)?;
        require_uint(ev, "part", &ctx)?;
        require_uint(ev, "a", &ctx)?;
        let k = require_str(ev, "kind", &ctx)?;
        if !FlightKind::ALL.iter().any(|f| f.name() == k) {
            return Err(format!("{ctx}: unknown event kind '{k}'"));
        }
    }
    match get(top, "progress") {
        Some(Value::Seq(ps)) => {
            for (i, p) in ps.iter().enumerate() {
                let ctx = format!("progress[{i}]");
                let Value::Map(p) = p else {
                    return Err(format!("{ctx}: must be an object"));
                };
                require_uint(p, "query_id", &ctx)?;
                require_uint(p, "roots_total", &ctx)?;
                require_uint(p, "claimed", &ctx)?;
                require_uint(p, "completed", &ctx)?;
            }
        }
        Some(other) => return Err(format!("bundle: 'progress' must be an array, got {other:?}")),
        None => return Err("bundle: missing 'progress'".to_string()),
    }
    match get(top, "ledger") {
        Some(Value::Null) | None => {}
        Some(Value::Map(l)) => {
            require_str(l, "carrier", "ledger")?;
            require_uint(l, "spill_len", "ledger")?;
            require_uint(l, "starving", "ledger")?;
        }
        Some(other) => return Err(format!("bundle: 'ledger' must be an object, got {other:?}")),
    }
    Ok(())
}

/// Per-run watchdog against wedged runs: fires one `stall` bundle when
/// the run's claim/retire heartbeat has not moved for the configured
/// window, dumping the live scheduler state and progress snapshots.
/// Started by the engine per `try_run` alongside the gauge sampler and
/// — like it — stopped and joined on drop, so no thread outlives the
/// run (or the engine).
pub(crate) struct StallWatchdog {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl StallWatchdog {
    /// Starts the watchdog if a window is configured and capture is
    /// enabled. `heartbeat` is bumped by the runtime on every root claim
    /// and batch retirement; no movement for the window means the
    /// scheduler is wedged (or the run is pathologically starved —
    /// either way worth a bundle).
    pub(crate) fn start(
        manager: &Arc<IncidentManager>,
        heartbeat: Arc<AtomicU64>,
        query_id: u64,
        ledger: Arc<dyn ControlPlane>,
        progress: Option<Arc<QueryProgress>>,
    ) -> Option<StallWatchdog> {
        let window = manager.stall_window()?;
        if !manager.enabled() {
            return None;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let mgr = Arc::clone(manager);
        let handle = std::thread::Builder::new()
            .name("khuzdul-stall-watchdog".to_string())
            .spawn(move || {
                let tick = (window / 8).max(Duration::from_millis(1));
                let mut last_hb = heartbeat.load(Ordering::Relaxed);
                let mut last_change = Instant::now();
                while !flag.load(Ordering::Relaxed) {
                    std::thread::sleep(tick);
                    let hb = heartbeat.load(Ordering::Relaxed);
                    if hb != last_hb {
                        last_hb = hb;
                        last_change = Instant::now();
                        continue;
                    }
                    let stalled = last_change.elapsed();
                    if stalled < window || flag.load(Ordering::Relaxed) {
                        continue;
                    }
                    let sections = CaptureSections {
                        progress: progress.iter().map(|p| progress_json(p)).collect(),
                        counters: None,
                        ledger: Some(ledger_json(&ledger.state_summary())),
                    };
                    mgr.capture(
                        Trigger {
                            kind: TriggerKind::Stall,
                            query_id,
                            part: None,
                            value: stalled.as_nanos() as u64,
                            detail: format!(
                                "no root claim or batch retirement for {stalled:?} \
                                 (heartbeat stuck at {hb})"
                            ),
                        },
                        sections,
                    );
                    // One bundle per run: keep watching would only spam
                    // near-identical captures.
                    break;
                }
            })
            .expect("spawn stall watchdog");
        Some(StallWatchdog { stop, handle: Some(handle) })
    }
}

impl Drop for StallWatchdog {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir =
            std::env::temp_dir().join(format!("khuzdul-incident-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    fn manager(dir: Option<PathBuf>, max_bundles: usize) -> Arc<IncidentManager> {
        let cfg = IncidentConfig { dir, max_bundles, ..IncidentConfig::default() };
        IncidentManager::new(&cfg, FlightRecorder::new(64), config_fingerprint("test"))
    }

    fn trigger(kind: TriggerKind) -> Trigger {
        Trigger { kind, query_id: 7, part: Some(2), value: 42, detail: "test trigger".to_string() }
    }

    #[test]
    fn disabled_manager_captures_nothing_but_still_marks_the_ring() {
        let m = manager(None, 8);
        assert!(!m.enabled());
        assert!(m.capture(trigger(TriggerKind::PartFailed), CaptureSections::default()).is_none());
        assert!(m.incidents().is_empty());
        // The trigger still left its mark in the flight ring — the next
        // enabled capture (or a live scrape) sees the history.
        assert_eq!(m.flight().snapshot().len(), 1);
    }

    #[test]
    fn captured_bundle_validates_and_lists() {
        let dir = temp_dir("roundtrip");
        let m = manager(Some(dir.clone()), 8);
        m.flight().record(FlightKind::QueryAdmit, 7, u64::MAX, 0);
        m.flight().record(FlightKind::Steal, 7, 1, 0);
        let s = m
            .capture(
                trigger(TriggerKind::DeadlineExceeded),
                CaptureSections {
                    progress: vec![progress_json(&QueryProgress::new(7, 100, 2))],
                    counters: Some(Value::Map(vec![("x".into(), Value::UInt(1))])),
                    ledger: Some(ledger_json(&LedgerStateSummary {
                        carrier: "shared",
                        available: true,
                        quiescent: false,
                        starving: 1,
                        spill_len: 3,
                        per_part_remaining: vec![10, 0],
                        poisoned: None,
                    })),
                },
            )
            .expect("enabled manager captures");
        assert_eq!(s.trigger, "deadline_exceeded");
        assert_eq!(s.query_id, 7);
        assert!(s.id.starts_with("incident-000001-"));
        let listed = list_bundles(&dir).unwrap();
        assert_eq!(listed.len(), 1);
        let json = std::fs::read_to_string(&listed[0]).unwrap();
        validate_bundle(&json).expect("bundle must validate");
        assert!(json.contains("\"deadline_exceeded\""));
        assert!(json.contains("\"per_part_remaining\""));
        // The trigger itself landed in the flight slice.
        assert!(json.contains("\"deadline_miss\""));
        assert_eq!(m.incidents().len(), 1);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn retention_keeps_only_the_newest_bundles() {
        let dir = temp_dir("retention");
        let m = manager(Some(dir.clone()), 3);
        for _ in 0..5 {
            m.capture(trigger(TriggerKind::SlowQuery), CaptureSections::default()).unwrap();
        }
        let listed = list_bundles(&dir).unwrap();
        assert_eq!(listed.len(), 3);
        let names: Vec<String> =
            listed.iter().map(|p| p.file_name().unwrap().to_str().unwrap().to_string()).collect();
        assert!(names[0].starts_with("incident-000003-"), "oldest kept: {names:?}");
        assert!(names[2].starts_with("incident-000005-"), "newest kept: {names:?}");
        // The in-memory summary list still remembers all five.
        assert_eq!(m.incidents().len(), 5);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn validate_bundle_rejects_malformed_documents() {
        for (json, needle) in [
            ("[]", "root must be an object"),
            ("{}", "missing 'bundle_schema'"),
            (r#"{"bundle_schema": 9}"#, "schema version 9"),
            (
                r#"{"bundle_schema": 1, "id": "x", "trigger": {"kind": "meteor", "query_id": 1, "value": 0, "at_ns": 0, "detail": ""}}"#,
                "unknown kind 'meteor'",
            ),
        ] {
            let err = validate_bundle(json).expect_err(json);
            assert!(err.contains(needle), "{json}: {err}");
        }
    }

    #[test]
    fn stall_watchdog_fires_once_on_a_dead_heartbeat() {
        use crate::scheduler::SharedLedger;
        let dir = temp_dir("stall");
        let cfg = IncidentConfig {
            dir: Some(dir.clone()),
            stall: Some(Duration::from_millis(30)),
            ..IncidentConfig::default()
        };
        let m = IncidentManager::new(&cfg, FlightRecorder::new(64), config_fingerprint("t"));
        let heartbeat = Arc::new(AtomicU64::new(0));
        let ledger: Arc<dyn ControlPlane> = Arc::new(SharedLedger::new(Vec::new(), false, 1, None));
        let progress = Some(Arc::new(QueryProgress::new(9, 50, 1)));
        let wd =
            StallWatchdog::start(&m, Arc::clone(&heartbeat), 9, ledger, progress).expect("starts");
        // Keep the heartbeat moving: no bundle may fire.
        for _ in 0..10 {
            heartbeat.fetch_add(1, Ordering::Relaxed);
            std::thread::sleep(Duration::from_millis(5));
        }
        assert!(m.incidents().is_empty(), "a moving heartbeat must not trip the watchdog");
        // Now wedge: the heartbeat freezes past the window.
        std::thread::sleep(Duration::from_millis(120));
        let incidents = m.incidents();
        assert_eq!(incidents.len(), 1, "a dead heartbeat must fire exactly once");
        assert_eq!(incidents[0].trigger, "stall");
        assert_eq!(incidents[0].query_id, 9);
        let json = std::fs::read_to_string(&incidents[0].path).unwrap();
        validate_bundle(&json).expect("stall bundle validates");
        assert!(json.contains("\"carrier\""), "stall bundle must dump the ledger state");
        drop(wd);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn stall_watchdog_declines_without_window_or_dir() {
        let heartbeat = Arc::new(AtomicU64::new(0));
        let mk_ledger = || -> Arc<dyn ControlPlane> {
            Arc::new(crate::scheduler::SharedLedger::new(Vec::new(), false, 1, None))
        };
        // No window.
        let m = manager(Some(temp_dir("nowindow")), 8);
        assert!(StallWatchdog::start(&m, Arc::clone(&heartbeat), 1, mk_ledger(), None).is_none());
        // Window but no dir.
        let cfg =
            IncidentConfig { stall: Some(Duration::from_millis(10)), ..IncidentConfig::default() };
        let m = IncidentManager::new(&cfg, FlightRecorder::disabled(), String::new());
        assert!(StallWatchdog::start(&m, heartbeat, 1, mk_ledger(), None).is_none());
    }

    #[test]
    fn fingerprints_are_stable_and_distinguish_configs() {
        assert_eq!(config_fingerprint("a"), config_fingerprint("a"));
        assert_ne!(config_fingerprint("a"), config_fingerprint("b"));
        assert_eq!(config_fingerprint("a").len(), 16);
    }
}
