//! Per-part execution: the BFS-DFS hybrid loop with its resolve
//! (communication) and extend (computation) phases.
//!
//! Each part (machine × socket) runs [`run_part`] independently over its
//! owned vertices (§5.4). The loop keeps a stack of per-level [`Chunk`]s:
//! the deepest chunk with unprocessed embeddings is always processed next
//! (DFS over chunks), and each chunk's embeddings are extended breadth-
//! first until the next level's chunk fills (§4.2). Before extension, a
//! chunk's unresolved edge lists are fetched in circulant owner order,
//! pipelined through a dedicated communication thread (§4.3).

use crate::cache::SharedCache;
use crate::chunk::{Chunk, Emb, ListRef, PushOutcome, Resume, StagedChild, NO_PARENT};
use crate::engine::EngineConfig;
use crate::stats::PartStats;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use gpm_cluster::{EdgeListClient, FetchError, PendingFetch};
use gpm_graph::partition::GraphPart;
use gpm_graph::{set_ops, Label, VertexId};
use gpm_obs::{Metric, ObsHandle, Recorder, SpanKind};
use gpm_pattern::plan::{CandidateSource, LevelPlan, MatchingPlan, PairMode};
use parking_lot::Mutex;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Embedding visitor used by `Engine::enumerate`.
pub(crate) type Visitor<'a> = &'a (dyn Fn(&[VertexId]) + Sync);

/// Everything a part needs to run one plan.
pub(crate) struct PartCtx<'e> {
    pub part: Arc<GraphPart>,
    pub labels: Option<Arc<Vec<Label>>>,
    pub client: EdgeListClient,
    pub cache: Arc<SharedCache>,
    pub plan: &'e MatchingPlan,
    pub cfg: &'e EngineConfig,
    pub my_part: usize,
    pub part_count: usize,
    pub owner: gpm_graph::partition::OwnerMap,
    pub visitor: Option<Visitor<'e>>,
    /// Cooperative cancellation: set by `Engine::enumerate_until` when the
    /// caller has seen enough embeddings. Checked between scheduling steps
    /// and work claims, so some in-flight extensions may still complete.
    pub stop: Option<&'e AtomicBool>,
    /// The engine's observability recorder; the part coordinator buffers
    /// its spans in a thread-local [`ObsHandle`] made from this.
    pub obs: Arc<Recorder>,
}

impl PartCtx<'_> {
    #[inline]
    fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.as_ref().map(|l| l[v as usize])
    }
}

/// A fetch job handed to the part's communication thread. The reply is
/// the *completion handle* of an issued request, not the data itself —
/// the engine thread collects replies in submission order while the comm
/// thread keeps submitting within the fabric's request window.
struct CommJob {
    target: usize,
    vertices: Vec<VertexId>,
    reply: Sender<Result<PendingFetch, FetchError>>,
}

/// Runs the whole plan on one part, returning its statistics, or the
/// first fetch failure encountered.
pub(crate) fn run_part(ctx: PartCtx<'_>) -> Result<PartStats, FetchError> {
    // Dedicated communication (submission) thread (§6): requests are
    // issued asynchronously through the fabric, so up to `window`
    // transfers are in flight while the engine thread integrates earlier
    // replies. `fetch_async` blocks *here* when the window is full —
    // backpressure throttles submission without stalling integration.
    let (comm_tx, comm_rx) = unbounded::<CommJob>();
    let comm_client = ctx.client.clone();
    let comm_handle = std::thread::Builder::new()
        .name(format!("khuzdul-comm-{}", ctx.my_part))
        .spawn(move || {
            while let Ok(job) = comm_rx.recv() {
                let pending = comm_client.fetch_async(job.target, &job.vertices);
                let _ = job.reply.send(pending);
            }
        })
        .expect("spawn comm thread");

    let mut run = PartRun::new(ctx, comm_tx);
    let stats = run.run();
    drop(run); // closes the comm queue
    let _ = comm_handle.join();
    stats
}

struct PartRun<'e> {
    ctx: PartCtx<'e>,
    levels: Vec<Chunk>,
    root_next: usize,
    count: u64,
    compute: Duration,
    network: Duration,
    scheduler: Duration,
    peak_embeddings: usize,
    comm_tx: Sender<CommJob>,
    // Kept as its own field (not inside `ctx`) so span recording can
    // borrow it mutably while `self.levels` chunks are also borrowed.
    obs: ObsHandle,
}

impl<'e> PartRun<'e> {
    fn new(ctx: PartCtx<'e>, comm_tx: Sender<CommJob>) -> Self {
        let depth = ctx.plan.depth();
        let levels =
            (0..depth.saturating_sub(1)).map(|_| Chunk::new(ctx.cfg.chunk_capacity)).collect();
        let obs = ctx.obs.handle(ctx.my_part as u32);
        PartRun {
            ctx,
            levels,
            root_next: 0,
            count: 0,
            compute: Duration::ZERO,
            network: Duration::ZERO,
            scheduler: Duration::ZERO,
            peak_embeddings: 0,
            comm_tx,
            obs,
        }
    }

    fn run(&mut self) -> Result<PartStats, FetchError> {
        if self.ctx.plan.depth() == 1 {
            self.count_single_vertices();
        } else {
            self.hybrid_loop()?;
        }
        Ok(PartStats {
            count: self.count,
            compute: self.compute,
            network: self.network,
            scheduler: self.scheduler,
            cache: Duration::ZERO,
            peak_embeddings: self.peak_embeddings,
        })
    }

    fn count_single_vertices(&mut self) {
        let t0 = Instant::now();
        let required = self.ctx.plan.root_label();
        for &v in self.ctx.part.owned() {
            if required.is_some() && self.ctx.label(v) != required {
                continue;
            }
            self.count += 1;
            if let Some(visit) = self.ctx.visitor {
                visit(&[v]);
            }
        }
        self.compute += t0.elapsed();
    }

    /// The DFS-over-chunks / BFS-within-chunk driver (§4.2, Figure 7).
    fn hybrid_loop(&mut self) -> Result<(), FetchError> {
        let owned_len = self.ctx.part.owned().len();
        loop {
            if self.ctx.stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                break;
            }
            // Bottom-up release: a chunk whose work is done and whose
            // child level is empty can be freed as a whole (the
            // "terminated" transition of Figure 6, per level).
            for l in (0..self.levels.len()).rev() {
                if !self.levels[l].has_work() && !self.levels[l].is_empty() {
                    let child_empty = l + 1 >= self.levels.len() || self.levels[l + 1].is_empty();
                    if child_empty {
                        self.levels[l].clear();
                        self.obs.instant(SpanKind::ChunkRelease, l as u64);
                    }
                }
            }
            let live: usize = self.levels.iter().map(|c| c.embs.len()).sum();
            self.peak_embeddings = self.peak_embeddings.max(live);
            let cur = (0..self.levels.len()).rev().find(|&l| self.levels[l].has_work());
            match cur {
                Some(cur) => {
                    self.resolve(cur)?;
                    self.extend(cur);
                }
                None if self.root_next < owned_len => self.seed_roots(),
                None => break,
            }
        }
        Ok(())
    }

    /// Fills the root chunk with the next batch of owned vertices.
    fn seed_roots(&mut self) {
        let t0 = Instant::now();
        let ts = self.obs.start();
        let required = self.ctx.plan.root_label();
        let owned = self.ctx.part.owned();
        let chunk = &mut self.levels[0];
        debug_assert!(chunk.is_empty(), "root chunk must be clear before reseeding");
        while self.root_next < owned.len() && !chunk.is_full() {
            let v = owned[self.root_next];
            self.root_next += 1;
            if required.is_some() && self.ctx.labels.as_ref().map(|l| l[v as usize]) != required {
                continue;
            }
            chunk.embs.push(Emb {
                parent: NO_PARENT,
                vertex: v,
                // Roots are always locally owned.
                list: if self.ctx.plan.root_active() { ListRef::Local } else { ListRef::None },
                inter: None,
            });
        }
        let seeded = chunk.embs.len();
        chunk.resolved_upto = seeded;
        self.obs.span(SpanKind::SeedRoots, ts, seeded as u64);
        self.scheduler += t0.elapsed();
    }

    /// Resolve phase: make every pending edge list of the current chunk
    /// locally available — local partition, cache, horizontal sharing, or
    /// batched remote fetch in circulant order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FetchError`] of the round (after draining
    /// every outstanding completion, so the fabric unwinds cleanly).
    fn resolve(&mut self, cur: usize) -> Result<(), FetchError> {
        let t0 = Instant::now();
        let rts = self.obs.start();
        let part_count = self.ctx.part_count;
        let my_part = self.ctx.my_part;
        let metrics = Arc::clone(self.ctx.client.metrics().part(my_part));
        let cache_enabled = self.ctx.cache.is_enabled();

        let chunk = &mut self.levels[cur];
        if chunk.resolved_upto >= chunk.embs.len() {
            return Ok(());
        }
        if chunk.resolved_upto == 0 && self.ctx.cfg.horizontal_sharing {
            chunk.share.reset(chunk.capacity);
        }
        let mut buckets: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); part_count];
        {
            let Chunk { embs, share, .. } = chunk;
            // Index loop: `share` and `embs` are disjoint borrows of the
            // same chunk, so an iterator over `embs` would lock out the
            // share-table lookups.
            #[allow(clippy::needless_range_loop)]
            for i in chunk.resolved_upto..embs.len() {
                if embs[i].list != ListRef::Pending {
                    continue;
                }
                let v = embs[i].vertex;
                let owner = self.ctx.owner.owner(v);
                if owner == my_part {
                    embs[i].list = ListRef::Local;
                    continue;
                }
                if cache_enabled {
                    if let Some(list) = self.ctx.cache.lookup(v) {
                        metrics.record_cache_hit();
                        self.obs.instant(SpanKind::CacheLookup, 1);
                        embs[i].list = ListRef::Cached(list);
                        continue;
                    }
                    metrics.record_cache_miss();
                    self.obs.instant(SpanKind::CacheLookup, 0);
                }
                if self.ctx.cfg.horizontal_sharing {
                    if let Some(peer) = share.lookup_or_claim(v, i as u32) {
                        embs[i].list = ListRef::Peer(peer);
                        continue;
                    }
                }
                buckets[owner].push((i as u32, v));
            }
        }
        chunk.resolved_upto = chunk.embs.len();

        // Circulant owner order: (K+1) % N, (K+2) % N, … (§4.3). The
        // ablation switch reverts to natural order.
        let mut order: Vec<usize> = (1..part_count)
            .map(|r| (my_part + r) % part_count)
            .filter(|&t| !buckets[t].is_empty())
            .collect();
        if !self.ctx.cfg.circulant {
            order.sort_unstable();
        }
        // Enqueue every batch up front. The comm thread turns each job
        // into an async fabric request (bounded by the in-flight window)
        // and hands back completion handles in submission order, so
        // batch i+1's transfer is in flight while we integrate batch i.
        type CommReply = Result<PendingFetch, FetchError>;
        let mut pending: Vec<(usize, Receiver<CommReply>)> = Vec::with_capacity(order.len());
        for &t in &order {
            let vertices: Vec<VertexId> = buckets[t].iter().map(|&(_, v)| v).collect();
            let (tx, rx) = bounded(1);
            self.comm_tx
                .send(CommJob { target: t, vertices, reply: tx })
                .map_err(|_| FetchError::Shutdown)?;
            pending.push((t, rx));
        }
        let remote: u64 = buckets.iter().map(|b| b.len() as u64).sum();
        let mut network_wait = Duration::ZERO;
        let mut failure: Option<FetchError> = None;
        for (t, rx) in pending {
            let bts = self.obs.start();
            let tw = Instant::now();
            let outcome = rx
                .recv()
                .map_err(|_| FetchError::Shutdown)
                .and_then(|issued| issued)
                .and_then(PendingFetch::wait);
            network_wait += tw.elapsed();
            self.obs.span(SpanKind::BucketRound, bts, t as u64);
            let lists = match outcome {
                Ok(lists) => lists,
                // Keep draining the remaining completions so every
                // window slot retires, then report the first failure.
                Err(e) => {
                    failure.get_or_insert(e);
                    continue;
                }
            };
            let chunk = &mut self.levels[cur];
            for (k, &(emb_i, v)) in buckets[t].iter().enumerate() {
                let list = lists.list(k);
                let lr = chunk.push_fetched(list);
                chunk.embs[emb_i as usize].list = lr;
                if cache_enabled {
                    self.ctx.cache.maybe_insert(v, list);
                }
            }
            if cache_enabled {
                self.obs.instant(SpanKind::CacheInsert, buckets[t].len() as u64);
            }
        }
        self.network += network_wait;
        self.scheduler += t0.elapsed().saturating_sub(network_wait);
        self.obs.span(SpanKind::Resolve, rts, remote);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }

    /// Extend phase: run the level's extension program over the chunk's
    /// unprocessed embeddings, in parallel, until the chunk is exhausted
    /// or the next-level chunk fills.
    fn extend(&mut self, cur: usize) {
        let t0 = Instant::now();
        let ets = self.obs.start();
        let next_before = self.levels.get(cur + 1).map_or(0, |c| c.embs.len());
        let plan = self.ctx.plan;
        let lp = &plan.levels()[cur];
        let terminal = cur + 1 == plan.levels().len();
        // IEP pair shortcut (counting only): the second-to-last level
        // counts pairs instead of materializing the final two loops.
        let pair = if self.ctx.visitor.is_none() && cur + 2 == plan.levels().len() {
            plan.pair_count_mode()
        } else {
            None
        };

        let start_cursor = self.levels[cur].cursor;
        let old_resumes = std::mem::take(&mut self.levels[cur].resumes);
        let (read, rest) = self.levels.split_at_mut(cur + 1);
        let read: &[Chunk] = read;
        let next: Option<Mutex<&mut Chunk>> = if terminal {
            None
        } else {
            Some(Mutex::new(rest.first_mut().expect("next level chunk exists")))
        };

        let total = read[cur].embs.len();
        let resume_idx = AtomicUsize::new(0);
        let cursor = AtomicUsize::new(start_cursor);
        let full = AtomicBool::new(false);
        let new_resumes: Mutex<Vec<Resume>> = Mutex::new(Vec::new());
        let counter = AtomicU64::new(0);

        {
            let work = Worker {
                ctx: &self.ctx,
                read,
                cur,
                lp,
                terminal,
                pair,
                next: &next,
                old_resumes: &old_resumes,
                resume_idx: &resume_idx,
                cursor: &cursor,
                full: &full,
                new_resumes: &new_resumes,
                counter: &counter,
            };

            let pending_work = old_resumes.len() + total.saturating_sub(start_cursor);
            let threads = self.ctx.cfg.compute_threads.max(1);
            if threads == 1 || pending_work <= self.ctx.cfg.mini_batch {
                work.run();
            } else {
                crossbeam::thread::scope(|s| {
                    for t in 0..threads {
                        let w = &work;
                        s.builder()
                            .name(format!("khuzdul-compute-{}-{t}", self.ctx.my_part))
                            .spawn(move |_| w.run())
                            .expect("spawn compute thread");
                    }
                })
                .expect("compute scope");
            }
        }

        // Write back scheduling state.
        let consumed_resumes = resume_idx.load(Ordering::SeqCst).min(old_resumes.len());
        let mut resumes = new_resumes.into_inner();
        resumes.extend_from_slice(&old_resumes[consumed_resumes..]);
        // End `next`'s mutable borrow of self.levels before re-borrowing.
        #[allow(clippy::drop_non_drop)]
        drop(next);
        let chunk = &mut self.levels[cur];
        chunk.cursor = cursor.load(Ordering::SeqCst).min(total);
        chunk.resumes = resumes;
        let grown =
            self.levels.get(cur + 1).map_or(0, |c| c.embs.len()).saturating_sub(next_before);
        if !terminal {
            self.obs.observe(Metric::ChunkFanout, grown as u64);
        }
        self.obs.span(SpanKind::Extend, ets, grown as u64);
        self.count += counter.load(Ordering::SeqCst);
        self.compute += t0.elapsed();
    }
}

/// Shared state of one extend phase; each compute thread runs
/// [`Worker::run`].
struct Worker<'a, 'c, 'e> {
    ctx: &'a PartCtx<'e>,
    read: &'a [Chunk],
    cur: usize,
    lp: &'a LevelPlan,
    terminal: bool,
    pair: Option<PairMode>,
    next: &'a Option<Mutex<&'c mut Chunk>>,
    old_resumes: &'a [Resume],
    resume_idx: &'a AtomicUsize,
    cursor: &'a AtomicUsize,
    full: &'a AtomicBool,
    new_resumes: &'a Mutex<Vec<Resume>>,
    counter: &'a AtomicU64,
}

impl Worker<'_, '_, '_> {
    fn run(&self) {
        let total = self.read[self.cur].embs.len();
        let mut scratch = Scratch::default();
        let mut local_count = 0u64;
        loop {
            if self.full.load(Ordering::Acquire)
                || self.ctx.stop.is_some_and(|s| s.load(Ordering::Relaxed))
            {
                break;
            }
            // Paused embeddings first, then fresh ones.
            let r = self.resume_idx.fetch_add(1, Ordering::Relaxed);
            let (emb, from) = if r < self.old_resumes.len() {
                (self.old_resumes[r].emb, self.old_resumes[r].cand_offset)
            } else {
                let i = self.cursor.fetch_add(1, Ordering::Relaxed);
                if i >= total {
                    break;
                }
                (i as u32, 0)
            };
            if let Some(paused_at) = self.extend_one(emb, from, &mut scratch, &mut local_count) {
                self.new_resumes.lock().push(Resume { emb, cand_offset: paused_at });
                self.full.store(true, Ordering::Release);
                break;
            }
        }
        self.counter.fetch_add(local_count, Ordering::Relaxed);
    }

    /// Extends one embedding from raw-candidate offset `from`. Returns
    /// `Some(offset)` if the next chunk filled before all candidates were
    /// consumed.
    fn extend_one(
        &self,
        emb: u32,
        from: u32,
        scratch: &mut Scratch,
        local_count: &mut u64,
    ) -> Option<u32> {
        let ctx = self.ctx;
        let lp = self.lp;
        let mut matched = [0 as VertexId; gpm_pattern::MAX_PATTERN_VERTICES];
        matched_chain(self.read, self.cur, emb, &mut matched);
        raw_candidates(ctx, self.read, self.cur, emb, lp, &matched, scratch);

        if self.terminal {
            debug_assert_eq!(from, 0, "terminal levels never pause");
            if let Some(visit) = ctx.visitor {
                let mut tuple = [0 as VertexId; gpm_pattern::MAX_PATTERN_VERTICES];
                tuple[..=self.cur].copy_from_slice(&matched[..=self.cur]);
                for &cand in &scratch.raw {
                    if passes_filters(ctx, lp, &matched, cand) {
                        *local_count += 1;
                        tuple[self.cur + 1] = cand;
                        visit(&tuple[..self.cur + 2]);
                    }
                }
            } else {
                *local_count += count_final(ctx, lp, &matched, &scratch.raw);
            }
            return None;
        }

        if let Some(mode) = self.pair {
            debug_assert_eq!(from, 0, "pair-counted levels never pause");
            let k = count_final(ctx, lp, &matched, &scratch.raw);
            *local_count += match mode {
                PairMode::Unordered => k * k.saturating_sub(1) / 2,
                PairMode::Ordered => k * k.saturating_sub(1),
            };
            return None;
        }

        scratch.staged.clear();
        for (i, &cand) in scratch.raw.iter().enumerate().skip(from as usize) {
            if passes_filters(ctx, lp, &matched, cand) {
                scratch.staged.push(StagedChild { vertex: cand, raw_index: i as u32 });
            }
        }
        if scratch.staged.is_empty() {
            return None;
        }
        let inter: Option<&[VertexId]> =
            if lp.store_intermediate { Some(&scratch.raw) } else { None };
        let mut next = self.next.as_ref().expect("non-terminal extension has a next chunk").lock();
        match next.try_push_children(emb, &scratch.staged, lp.new_vertex_active, inter) {
            PushOutcome::All => None,
            PushOutcome::Partial(n) => Some(scratch.staged[n].raw_index),
        }
    }
}

/// Per-thread scratch buffers.
#[derive(Default)]
struct Scratch {
    raw: Vec<VertexId>,
    tmp: Vec<VertexId>,
    staged: Vec<StagedChild>,
}

/// Reconstructs the matched vertices along the parent chain.
fn matched_chain(read: &[Chunk], level: usize, emb: u32, out: &mut [VertexId]) {
    let (mut l, mut e) = (level, emb);
    loop {
        out[l] = read[l].embs[e as usize].vertex;
        if l == 0 {
            break;
        }
        e = read[l].embs[e as usize].parent;
        l -= 1;
    }
}

/// The edge list of the vertex at `pos` along `emb`'s chain — vertical
/// data reuse by parent-pointer chasing (§5.1).
fn list_for<'a>(
    ctx: &'a PartCtx<'_>,
    read: &'a [Chunk],
    mut level: usize,
    mut emb: u32,
    pos: usize,
) -> &'a [VertexId] {
    while level > pos {
        emb = read[level].embs[emb as usize].parent;
        level -= 1;
    }
    resolve_ref(ctx, &read[level], &read[level].embs[emb as usize])
}

fn resolve_ref<'a>(ctx: &'a PartCtx<'_>, chunk: &'a Chunk, e: &'a Emb) -> &'a [VertexId] {
    match &e.list {
        ListRef::Local => ctx.part.edge_list(e.vertex).expect("local vertex owned by this part"),
        ListRef::Cached(list) => list,
        ListRef::Fetched { start, len } => chunk.fetched(*start, *len),
        ListRef::Peer(j) => {
            let peer = &chunk.embs[*j as usize];
            debug_assert!(!matches!(peer.list, ListRef::Peer(_)), "peer chains are length 1");
            resolve_ref(ctx, chunk, peer)
        }
        ListRef::Pending => panic!("extension reached an unresolved edge list"),
        ListRef::None => panic!("extension requested an inactive vertex's list"),
    }
}

/// Computes the raw candidate set for extending `emb` at level `cur` into
/// `scratch.raw`, honoring the plan's candidate source (vertical
/// computation reuse, §5.1).
fn raw_candidates(
    ctx: &PartCtx<'_>,
    read: &[Chunk],
    cur: usize,
    emb: u32,
    lp: &LevelPlan,
    _matched: &[VertexId],
    scratch: &mut Scratch,
) {
    scratch.raw.clear();
    let e = &read[cur].embs[emb as usize];
    match lp.source {
        CandidateSource::Scratch => {
            let mut lists: [&[VertexId]; gpm_pattern::MAX_PATTERN_VERTICES] =
                [&[]; gpm_pattern::MAX_PATTERN_VERTICES];
            for (k, &pos) in lp.intersect.iter().enumerate() {
                lists[k] = list_for(ctx, read, cur, emb, pos);
            }
            set_ops::intersect_many_into(&lists[..lp.intersect.len()], &mut scratch.raw);
        }
        CandidateSource::ParentIntermediate => {
            let span = e.inter.expect("plan guarantees a stored intermediate");
            scratch.raw.extend_from_slice(read[cur].inter(span));
        }
        CandidateSource::ParentIntermediateAndNew => {
            let span = e.inter.expect("plan guarantees a stored intermediate");
            let own = resolve_ref(ctx, &read[cur], e);
            set_ops::intersect_into(read[cur].inter(span), own, &mut scratch.raw);
        }
    }
    if !lp.subtract.is_empty() {
        for &pos in &lp.subtract {
            let list = list_for(ctx, read, cur, emb, pos);
            scratch.tmp.clear();
            set_ops::subtract_into(&scratch.raw, list, &mut scratch.tmp);
            std::mem::swap(&mut scratch.raw, &mut scratch.tmp);
        }
    }
}

/// Order/injectivity/label filters for one candidate.
#[inline]
fn passes_filters(ctx: &PartCtx<'_>, lp: &LevelPlan, matched: &[VertexId], cand: VertexId) -> bool {
    for &p in &lp.lower {
        if cand <= matched[p] {
            return false;
        }
    }
    for &p in &lp.upper {
        if cand >= matched[p] {
            return false;
        }
    }
    for &p in &lp.distinct {
        if cand == matched[p] {
            return false;
        }
    }
    if let Some(required) = lp.label {
        if ctx.label(cand) != Some(required) {
            return false;
        }
    }
    true
}

/// Final-level counting shortcut: order statistics instead of iteration
/// where the filters allow it.
fn count_final(ctx: &PartCtx<'_>, lp: &LevelPlan, matched: &[VertexId], raw: &[VertexId]) -> u64 {
    if lp.label.is_some() {
        return raw.iter().filter(|&&c| passes_filters(ctx, lp, matched, c)).count() as u64;
    }
    let lo: Option<VertexId> = lp.lower.iter().map(|&p| matched[p]).max();
    let hi: Option<VertexId> = lp.upper.iter().map(|&p| matched[p]).min();
    let begin = lo.map_or(0, |b| raw.partition_point(|&c| c <= b));
    let end = hi.map_or(raw.len(), |b| raw.partition_point(|&c| c < b));
    if begin >= end {
        return 0;
    }
    let mut count = (end - begin) as u64;
    for &p in &lp.distinct {
        let m = matched[p];
        let in_range = lo.is_none_or(|b| m > b) && hi.is_none_or(|b| m < b);
        if in_range && set_ops::contains(raw, m) {
            count -= 1;
        }
    }
    count
}
