//! Per-part coordination: the BFS-DFS hybrid loop with its resolve
//! (communication) phase, root seeding from the cross-part ledger, and
//! donation of never-started level-0 work to starving parts.
//!
//! Each part (machine × socket) runs [`run_part`] independently. The loop
//! keeps a stack of per-level [`Chunk`]s: the deepest chunk with
//! unprocessed embeddings is always processed next (DFS over chunks), and
//! each chunk's embeddings are extended breadth-first until the next
//! level's chunk fills (§4.2). Before extension, a chunk's unresolved
//! edge lists are fetched in circulant owner order, pipelined through a
//! dedicated communication thread (§4.3).
//!
//! The compute half of the phase lives in [`crate::extend`]; the worker
//! pool, task model, and stealing ledger live in [`crate::scheduler`].

use crate::cache::SharedCache;
use crate::chunk::{Chunk, Emb, ListRef, NO_PARENT};
use crate::engine::EngineConfig;
use crate::scheduler::{ClaimSource, ControlPlane, Gate, QueryArbiter};
use crate::stats::PartStats;
use crossbeam::channel::{bounded, unbounded, Receiver, Sender};
use gpm_cluster::{EdgeListClient, FetchError, PendingFetch};
use gpm_graph::partition::GraphPart;
use gpm_graph::{Label, VertexId};
use gpm_obs::{FlightKind, ObsHandle, Recorder, SpanKind};
use gpm_pattern::plan::MatchingPlan;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Embedding visitor used by `Engine::enumerate`.
pub(crate) type Visitor<'a> = &'a (dyn Fn(&[VertexId]) + Sync);

/// Everything a part needs to run one plan.
pub(crate) struct PartCtx<'e> {
    pub part: Arc<GraphPart>,
    pub labels: Option<Arc<Vec<Label>>>,
    pub client: EdgeListClient,
    pub cache: Arc<SharedCache>,
    pub plan: &'e MatchingPlan,
    pub cfg: &'e EngineConfig,
    pub my_part: usize,
    pub part_count: usize,
    pub owner: gpm_graph::partition::OwnerMap,
    pub visitor: Option<Visitor<'e>>,
    /// Cooperative cancellation: set by `Engine::enumerate_until` when the
    /// caller has seen enough embeddings. Checked between scheduling steps
    /// and work claims, so some in-flight extensions may still complete.
    pub stop: Option<&'e AtomicBool>,
    /// The engine's observability recorder; the part coordinator buffers
    /// its spans in a thread-local [`ObsHandle`] made from this.
    pub obs: Arc<Recorder>,
    /// Run-scoped control plane all parts claim their seed batches from
    /// (shared-memory ledger or message-based, per `EngineConfig`).
    pub ledger: Arc<dyn ControlPlane>,
    /// This part's gate into the engine's persistent worker pool; `None`
    /// for single-threaded configs, which extend inline.
    pub gate: Option<Arc<Gate>>,
    /// Unclaimed embedding volume of the currently-executing extend
    /// phase's task pool, sampled by the engine's gauge thread.
    pub queue_depth: Arc<AtomicUsize>,
    /// Cross-query fairness arbiter shared by every resident query; root
    /// claims are paced through it (never truncated).
    pub arbiter: Arc<QueryArbiter>,
    /// This query's fairness quantum: how far (in claimed roots) it may
    /// race ahead of the least-served active query before pacing.
    pub root_budget: u64,
    /// Optional cooperative deadline; parts stop claiming and extending
    /// once it passes, and flag `deadline_fired` for the engine.
    pub deadline: Option<Instant>,
    /// Set by any part that observed `deadline` expiring mid-run.
    pub deadline_fired: Arc<AtomicBool>,
    /// Live progress tracker for this query; `None` unless the engine
    /// has progress tracking enabled (the default), in which case every
    /// hook below is a single untaken branch.
    pub progress: Option<Arc<gpm_obs::QueryProgress>>,
    /// Run-wide scheduler heartbeat, bumped on every claimed batch and
    /// every batch retirement. The engine's stall watchdog fires an
    /// incident bundle when it freezes; without a watchdog the bumps are
    /// uncontended relaxed adds.
    pub heartbeat: Arc<AtomicU64>,
}

impl PartCtx<'_> {
    #[inline]
    pub(crate) fn label(&self, v: VertexId) -> Option<Label> {
        self.labels.as_ref().map(|l| l[v as usize])
    }
}

/// A fetch job handed to the part's communication thread. The reply is
/// the *completion handle* of an issued request, not the data itself —
/// the engine thread collects replies in submission order while the comm
/// thread keeps submitting within the fabric's request window.
struct CommJob {
    target: usize,
    vertices: Vec<VertexId>,
    reply: Sender<Result<PendingFetch, FetchError>>,
}

/// Runs the whole plan on one part, returning its statistics, or the
/// first fetch failure encountered.
pub(crate) fn run_part(ctx: PartCtx<'_>) -> Result<PartStats, FetchError> {
    // Dedicated communication (submission) thread (§6): requests are
    // issued asynchronously through the fabric, so up to `window`
    // transfers are in flight while the engine thread integrates earlier
    // replies. `fetch_async` blocks *here* when the window is full —
    // backpressure throttles submission without stalling integration.
    let (comm_tx, comm_rx) = unbounded::<CommJob>();
    let comm_client = ctx.client.clone();
    let comm_handle = std::thread::Builder::new()
        .name(format!("khuzdul-comm-{}", ctx.my_part))
        .spawn(move || {
            while let Ok(job) = comm_rx.recv() {
                let pending = comm_client.fetch_async(job.target, &job.vertices);
                let _ = job.reply.send(pending);
            }
        })
        .expect("spawn comm thread");

    let mut run = PartRun::new(ctx, comm_tx);
    let stats = run.run();
    drop(run); // closes the comm queue
    let _ = comm_handle.join();
    stats
}

pub(crate) struct PartRun<'e> {
    pub(crate) ctx: PartCtx<'e>,
    pub(crate) levels: Vec<Chunk>,
    pub(crate) count: u64,
    pub(crate) compute: Duration,
    pub(crate) network: Duration,
    pub(crate) scheduler: Duration,
    pub(crate) peak_embeddings: usize,
    /// Roots this part obtained from other parts (steals + spill claims).
    roots_stolen: u64,
    /// Roots this part handed to the spill for starving parts.
    roots_donated: u64,
    /// Ledger batches seeded but not yet retired (0 or 1 in practice).
    outstanding: usize,
    /// Roots inside those outstanding batches, for progress accounting:
    /// retired as "completed" when the batches are.
    outstanding_roots: usize,
    /// Roots claimed per seeding round: bounded when stealing (so loaded
    /// parts keep a stealable tail), a whole chunk otherwise.
    seed_batch: usize,
    comm_tx: Sender<CommJob>,
    // Kept as its own field (not inside `ctx`) so span recording can
    // borrow it mutably while `self.levels` chunks are also borrowed.
    pub(crate) obs: ObsHandle,
}

impl<'e> PartRun<'e> {
    fn new(ctx: PartCtx<'e>, comm_tx: Sender<CommJob>) -> Self {
        let depth = ctx.plan.depth();
        let levels =
            (0..depth.saturating_sub(1)).map(|_| Chunk::new(ctx.cfg.chunk_capacity)).collect();
        let obs = ctx.obs.handle_for_query(ctx.my_part as u32, ctx.client.query_id());
        let seed_batch = if ctx.ledger.stealing() {
            ctx.cfg.steal.batch.max(ctx.cfg.mini_batch).max(1).min(ctx.cfg.chunk_capacity.max(1))
        } else {
            ctx.cfg.chunk_capacity.max(1)
        };
        PartRun {
            ctx,
            levels,
            count: 0,
            compute: Duration::ZERO,
            network: Duration::ZERO,
            scheduler: Duration::ZERO,
            peak_embeddings: 0,
            roots_stolen: 0,
            roots_donated: 0,
            outstanding: 0,
            outstanding_roots: 0,
            seed_batch,
            comm_tx,
            obs,
        }
    }

    fn run(&mut self) -> Result<PartStats, FetchError> {
        if self.ctx.plan.depth() == 1 {
            self.count_single_vertices();
        } else {
            self.hybrid_loop()?;
        }
        Ok(PartStats {
            count: self.count,
            compute: self.compute,
            network: self.network,
            scheduler: self.scheduler,
            cache: Duration::ZERO,
            peak_embeddings: self.peak_embeddings,
            roots_stolen: self.roots_stolen,
            roots_donated: self.roots_donated,
        })
    }

    fn count_single_vertices(&mut self) {
        let t0 = Instant::now();
        let required = self.ctx.plan.root_label();
        for &v in self.ctx.part.owned() {
            if required.is_some() && self.ctx.label(v) != required {
                continue;
            }
            self.count += 1;
            if let Some(visit) = self.ctx.visitor {
                visit(&[v]);
            }
        }
        // Single-vertex plans never touch the ledger; report the whole
        // owned range as claimed-and-completed in one step.
        if let Some(p) = &self.ctx.progress {
            let n = self.ctx.part.owned().len() as u64;
            p.record_claimed(self.ctx.my_part, n, false);
            p.record_completed(self.ctx.my_part, n);
        }
        self.compute += t0.elapsed();
    }

    /// The DFS-over-chunks / BFS-within-chunk driver (§4.2, Figure 7).
    fn hybrid_loop(&mut self) -> Result<(), FetchError> {
        let result = self.hybrid_loop_inner();
        // Retire any batch still on the books (stop or fetch error), so
        // peers waiting on quiescence are never wedged by this part.
        self.retire_batches();
        self.ctx.queue_depth.store(0, Ordering::Relaxed);
        result
    }

    fn hybrid_loop_inner(&mut self) -> Result<(), FetchError> {
        loop {
            if self.ctx.stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                return Ok(());
            }
            // Cooperative deadline: past it, stop claiming and extending.
            // The engine sees the flag and reports the run as expired —
            // partial counts are never returned as results.
            if self.ctx.deadline.is_some_and(|d| Instant::now() >= d) {
                self.ctx.deadline_fired.store(true, Ordering::Relaxed);
                return Ok(());
            }
            // Fail-stop self-check: once this part's own death is
            // detected anywhere in the cluster, stop producing results —
            // the engine discards this part's stats wholesale and the
            // recovery pass re-executes every root it ever claimed.
            if self.ctx.client.is_part_dead(self.ctx.my_part) {
                return Err(FetchError::PartDead { part: self.ctx.my_part });
            }
            // Bottom-up release: a chunk whose work is done and whose
            // child level is empty can be freed as a whole (the
            // "terminated" transition of Figure 6, per level).
            for l in (0..self.levels.len()).rev() {
                if !self.levels[l].has_work() && !self.levels[l].is_empty() {
                    let child_empty = l + 1 >= self.levels.len() || self.levels[l + 1].is_empty();
                    if child_empty {
                        self.levels[l].clear();
                        self.obs.instant(SpanKind::ChunkRelease, l as u64);
                    }
                }
            }
            let live: usize = self.levels.iter().map(|c| c.embs.len()).sum();
            self.peak_embeddings = self.peak_embeddings.max(live);
            let cur = (0..self.levels.len()).rev().find(|&l| self.levels[l].has_work());
            match cur {
                Some(cur) => {
                    if cur == 0 {
                        self.maybe_donate();
                        if !self.levels[0].has_work() {
                            continue;
                        }
                    }
                    self.resolve(cur)?;
                    self.extend(cur);
                }
                None => {
                    // The whole stack drained: every seeded batch is done.
                    self.retire_batches();
                    if !self.seed_roots()? {
                        return Ok(());
                    }
                }
            }
        }
    }

    fn retire_batches(&mut self) {
        for _ in 0..self.outstanding {
            self.ctx.ledger.batch_done(self.ctx.my_part);
        }
        if self.outstanding > 0 {
            self.ctx.heartbeat.fetch_add(1, Ordering::Relaxed);
        }
        self.outstanding = 0;
        if self.outstanding_roots > 0 {
            if let Some(p) = &self.ctx.progress {
                p.record_completed(self.ctx.my_part, self.outstanding_roots as u64);
            }
            self.outstanding_roots = 0;
        }
    }

    /// Claims the next root batch from the ledger and seeds the root
    /// chunk. With stealing enabled this may block (in 1 ms slices) until
    /// work appears somewhere; returns `Ok(false)` once the whole run has
    /// quiesced or this part was stopped, and `Err` if a message-based
    /// control plane lost an operation past its retry budget (the part
    /// must abort rather than spin or silently quiesce).
    fn seed_roots(&mut self) -> Result<bool, FetchError> {
        let t0 = Instant::now();
        let mut starving = false;
        let mut failure: Option<FetchError> = None;
        let seeded = loop {
            if self.ctx.stop.is_some_and(|s| s.load(Ordering::Relaxed)) {
                break false;
            }
            // Fairness pacing: yield the pool to less-served resident
            // queries before claiming more roots for this one.
            self.ctx.arbiter.pace(self.ctx.client.query_id(), self.ctx.root_budget);
            match self.ctx.ledger.claim(self.ctx.my_part, self.seed_batch) {
                Ok(Some((source, roots))) => {
                    self.ctx.arbiter.note_claimed(self.ctx.client.query_id(), roots.len() as u64);
                    self.seed_batch_into_chunk(source, &roots);
                    break true;
                }
                Ok(None) => {
                    if !self.ctx.ledger.stealing() {
                        break false;
                    }
                    match self.ctx.ledger.finished(self.ctx.my_part) {
                        Ok(true) => break false,
                        Ok(false) => {}
                        Err(e) => {
                            failure = Some(e);
                            break false;
                        }
                    }
                    // A failed run can never quiesce: the dead part's
                    // outstanding batches are never retired. Once a
                    // failure is known and nothing is claimable, stop
                    // waiting — the engine's recovery pass re-executes
                    // whatever the dead part took with it.
                    if (0..self.ctx.part_count).any(|p| self.ctx.client.is_part_dead(p)) {
                        break false;
                    }
                    if !starving {
                        starving = true;
                        self.ctx.ledger.set_starving(self.ctx.my_part, true);
                    }
                    let its = self.obs.start();
                    self.ctx.ledger.wait_for_work(self.ctx.my_part);
                    self.obs.span(SpanKind::Idle, its, 0);
                }
                Err(e) => {
                    failure = Some(e);
                    break false;
                }
            }
        };
        if starving {
            self.ctx.ledger.set_starving(self.ctx.my_part, false);
        }
        self.scheduler += t0.elapsed();
        match failure {
            Some(e) => Err(e),
            None => Ok(seeded),
        }
    }

    /// Fills the root chunk with one claimed batch. Stolen or spilled
    /// roots are usually owned elsewhere: they seed as [`ListRef::Pending`]
    /// and their edge lists flow through the fabric during resolve — data
    /// moves, computation does not.
    fn seed_batch_into_chunk(&mut self, source: ClaimSource, roots: &[VertexId]) {
        let ts = self.obs.start();
        self.ctx.heartbeat.fetch_add(1, Ordering::Relaxed);
        if let ClaimSource::Stolen(victim) = source {
            self.obs.instant(SpanKind::Steal, victim as u64);
            self.ctx.obs.flight().record(
                FlightKind::Steal,
                self.ctx.client.query_id(),
                self.ctx.my_part as u64,
                victim as u64,
            );
        }
        let required = self.ctx.plan.root_label();
        let root_active = self.ctx.plan.root_active();
        let my_part = self.ctx.my_part;
        let chunk = &mut self.levels[0];
        debug_assert!(chunk.is_empty(), "root chunk must be clear before reseeding");
        let mut any_pending = false;
        for &v in roots {
            if required.is_some() && self.ctx.labels.as_ref().map(|l| l[v as usize]) != required {
                continue;
            }
            let list = if !root_active {
                ListRef::None
            } else if self.ctx.owner.owner(v) == my_part {
                ListRef::Local
            } else {
                any_pending = true;
                ListRef::Pending
            };
            chunk.embs.push(Emb { parent: NO_PARENT, vertex: v, list, inter: None });
        }
        let seeded = chunk.embs.len();
        chunk.resolved_upto = if any_pending { 0 } else { seeded };
        self.outstanding += 1;
        self.outstanding_roots += roots.len();
        if !matches!(source, ClaimSource::Own) {
            self.roots_stolen += roots.len() as u64;
        }
        if let Some(p) = &self.ctx.progress {
            p.record_claimed(
                self.ctx.my_part,
                roots.len() as u64,
                !matches!(source, ClaimSource::Own),
            );
        }
        self.obs.span(SpanKind::SeedRoots, ts, seeded as u64);
    }

    /// Hands never-started level-0 leftover ranges to the ledger's spill
    /// when other parts are starving. Only roots that no worker has
    /// touched move: their embeddings stay behind as inert entries (the
    /// release pass frees them with the chunk), and the claimant restarts
    /// them from scratch on its own side of the fabric.
    fn maybe_donate(&mut self) {
        if !self.ctx.ledger.stealing() || self.ctx.ledger.starving(self.ctx.my_part) == 0 {
            return;
        }
        let threads = self.ctx.cfg.compute_threads.max(1);
        let keep = (self.ctx.cfg.mini_batch.max(1) * threads) as u32;
        let chunk = &mut self.levels[0];
        let mut volume: u32 = chunk.leftovers.iter().map(|&(s, e)| e - s).sum();
        if volume <= keep {
            return;
        }
        let mut donated: Vec<VertexId> = Vec::new();
        while let Some(&(start, end)) = chunk.leftovers.last() {
            let len = end - start;
            if volume - len < keep {
                break;
            }
            chunk.leftovers.pop();
            volume -= len;
            donated.extend(chunk.embs[start as usize..end as usize].iter().map(|e| e.vertex));
        }
        if donated.is_empty() {
            return;
        }
        self.roots_donated += donated.len() as u64;
        // Donated roots leave this part's responsibility: the claimant
        // records them claimed (and completed) on its own side, so drop
        // them from this part's outstanding-progress tally.
        self.outstanding_roots = self.outstanding_roots.saturating_sub(donated.len());
        self.obs.instant(SpanKind::Donate, donated.len() as u64);
        self.ctx.obs.flight().record(
            FlightKind::Donate,
            self.ctx.client.query_id(),
            self.ctx.my_part as u64,
            donated.len() as u64,
        );
        self.ctx.ledger.donate(self.ctx.my_part, donated);
    }

    /// Resolve phase: make every pending edge list of the current chunk
    /// locally available — local partition, cache, horizontal sharing, or
    /// batched remote fetch in circulant order.
    ///
    /// # Errors
    ///
    /// Propagates the first [`FetchError`] of the round (after draining
    /// every outstanding completion, so the fabric unwinds cleanly).
    fn resolve(&mut self, cur: usize) -> Result<(), FetchError> {
        let t0 = Instant::now();
        let rts = self.obs.start();
        let part_count = self.ctx.part_count;
        let my_part = self.ctx.my_part;
        let metrics = Arc::clone(self.ctx.client.metrics().part(my_part));
        let qmetrics = Arc::clone(self.ctx.client.query_metrics());
        let cache_enabled = self.ctx.cache.is_enabled();

        let chunk = &mut self.levels[cur];
        if chunk.resolved_upto >= chunk.embs.len() {
            return Ok(());
        }
        if chunk.resolved_upto == 0 && self.ctx.cfg.horizontal_sharing {
            chunk.share.reset(chunk.capacity);
        }
        let mut buckets: Vec<Vec<(u32, VertexId)>> = vec![Vec::new(); part_count];
        {
            let Chunk { embs, share, .. } = chunk;
            // Index loop: `share` and `embs` are disjoint borrows of the
            // same chunk, so an iterator over `embs` would lock out the
            // share-table lookups.
            #[allow(clippy::needless_range_loop)]
            for i in chunk.resolved_upto..embs.len() {
                if embs[i].list != ListRef::Pending {
                    continue;
                }
                let v = embs[i].vertex;
                let owner = self.ctx.owner.owner(v);
                if owner == my_part {
                    embs[i].list = ListRef::Local;
                    continue;
                }
                if cache_enabled {
                    if let Some(list) = self.ctx.cache.lookup(v) {
                        metrics.record_cache_hit();
                        qmetrics.record_cache_hit();
                        self.obs.instant(SpanKind::CacheLookup, 1);
                        embs[i].list = ListRef::Cached(list);
                        continue;
                    }
                    metrics.record_cache_miss();
                    qmetrics.record_cache_miss();
                    self.obs.instant(SpanKind::CacheLookup, 0);
                }
                if self.ctx.cfg.horizontal_sharing {
                    if let Some(peer) = share.lookup_or_claim(v, i as u32) {
                        embs[i].list = ListRef::Peer(peer);
                        continue;
                    }
                }
                buckets[owner].push((i as u32, v));
            }
        }
        chunk.resolved_upto = chunk.embs.len();

        // Circulant owner order: (K+1) % N, (K+2) % N, … (§4.3). The
        // ablation switch reverts to natural order.
        let mut order: Vec<usize> = (1..part_count)
            .map(|r| (my_part + r) % part_count)
            .filter(|&t| !buckets[t].is_empty())
            .collect();
        if !self.ctx.cfg.circulant {
            order.sort_unstable();
        }
        // Enqueue every batch up front. The comm thread turns each job
        // into an async fabric request (bounded by the in-flight window)
        // and hands back completion handles in submission order, so
        // batch i+1's transfer is in flight while we integrate batch i.
        type CommReply = Result<PendingFetch, FetchError>;
        let mut pending: Vec<(usize, Receiver<CommReply>)> = Vec::with_capacity(order.len());
        for &t in &order {
            let vertices: Vec<VertexId> = buckets[t].iter().map(|&(_, v)| v).collect();
            let (tx, rx) = bounded(1);
            self.comm_tx
                .send(CommJob { target: t, vertices, reply: tx })
                .map_err(|_| FetchError::Shutdown)?;
            pending.push((t, rx));
        }
        let remote: u64 = buckets.iter().map(|b| b.len() as u64).sum();
        let mut network_wait = Duration::ZERO;
        let mut failure: Option<FetchError> = None;
        for (t, rx) in pending {
            let bts = self.obs.start();
            let tw = Instant::now();
            // Pull the causal request id off the issued fetch before
            // consuming it, so the span covering this blocked wait links
            // to the issue/serve spans of the request it waited on.
            let issued = rx.recv().map_err(|_| FetchError::Shutdown).and_then(|issued| issued);
            let (req_id, outcome) = match issued {
                Ok(p) => (p.request_id(), p.wait()),
                Err(e) => (0, Err(e)),
            };
            network_wait += tw.elapsed();
            self.obs.span_linked(SpanKind::BucketRound, bts, t as u64, req_id);
            let lists = match outcome {
                Ok(lists) => lists,
                // Keep draining the remaining completions so every
                // window slot retires, then report the first failure.
                Err(e) => {
                    failure.get_or_insert(e);
                    continue;
                }
            };
            let chunk = &mut self.levels[cur];
            for (k, &(emb_i, v)) in buckets[t].iter().enumerate() {
                let list = lists.list(k);
                let lr = chunk.push_fetched(list);
                chunk.embs[emb_i as usize].list = lr;
                if cache_enabled {
                    self.ctx.cache.maybe_insert(v, list);
                }
            }
            if cache_enabled {
                self.obs.instant(SpanKind::CacheInsert, buckets[t].len() as u64);
            }
        }
        self.network += network_wait;
        self.scheduler += t0.elapsed().saturating_sub(network_wait);
        self.obs.span(SpanKind::Resolve, rts, remote);
        match failure {
            Some(e) => Err(e),
            None => Ok(()),
        }
    }
}
