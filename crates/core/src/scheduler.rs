//! The layered scheduler underneath per-part execution.
//!
//! Three pieces, bottom-up:
//!
//! 1. [`WorkerPool`] — one persistent pool of compute threads per engine
//!    (`parts × compute_threads`), created lazily on the first run and
//!    parked on a condvar between extend phases. This replaces the old
//!    per-extend-phase `crossbeam::thread::scope` spawn storm: a phase is
//!    dispatched to the already-running threads through a [`Gate`].
//! 2. [`TaskPool`] — the explicit task model of one extend phase. A
//!    [`Task`] is a claimable range of the chunk's embedding cursor (or of
//!    its resume list); coarse tasks are seeded into a per-part injector
//!    queue, workers split `mini_batch`-sized heads off them, keep the
//!    remainder in their own LIFO deque, and steal from sibling deques
//!    when both their deque and the injector run dry.
//! 3. [`RootLedger`] — the cross-part stealing coordinator. Root ranges
//!    are claimed from a shared per-part cursor in bounded batches, so an
//!    idle part can steal the unclaimed tail of a loaded part (and any
//!    level-0 ranges the loaded part donates to the spill). Only *root
//!    vertex ids* move between parts — their edge lists still flow through
//!    the fabric on demand, preserving the paper's "fetch data, never ship
//!    computation" rule. Termination uses a [`WorkCounter`] quiescence
//!    check instead of a per-part "my cursor is exhausted" test.

use gpm_cluster::work::WorkCounter;
use gpm_cluster::FetchError;
use gpm_graph::partition::GraphPart;
use gpm_graph::VertexId;
use gpm_obs::{Recorder, SpanKind};
use parking_lot::{Condvar, Mutex};
use std::collections::VecDeque;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Cross-part work-stealing knobs (`Engine` level).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct StealConfig {
    /// Whether idle parts may steal unclaimed root ranges (and donated
    /// level-0 ranges) from loaded parts. Off by default: stealing trades
    /// extra cross-part fetch traffic for balance, which ablations must
    /// opt into explicitly.
    pub enabled: bool,
    /// Upper bound on roots taken per steal (and per claim once a part is
    /// feeding from the shared ledger). Smaller batches balance better;
    /// larger batches amortize seeding overhead.
    pub batch: usize,
    /// NUMA-aware victim ordering (paper §5.4): a thief prefers the
    /// most-loaded part on its *own machine* before crossing the
    /// simulated network, using the `machine * sockets_per_machine +
    /// socket` part numbering. On by default; turning it off reverts to
    /// flat most-loaded-anywhere selection.
    pub numa: bool,
}

impl Default for StealConfig {
    fn default() -> Self {
        StealConfig { enabled: false, batch: 256, numa: true }
    }
}

// ---------------------------------------------------------------------------
// Persistent worker pool
// ---------------------------------------------------------------------------

/// A phase job: called once per worker with the worker's index.
///
/// The `'static` is a lie told only inside [`Gate::run_phase`], which
/// blocks until every worker has finished the call — the borrowed phase
/// state therefore strictly outlives every dereference.
type Job = &'static (dyn Fn(usize) + Sync);

struct GateState {
    /// Bumped once per dispatched phase; workers run each epoch once.
    epoch: u64,
    job: Option<Job>,
    /// Workers still running (or yet to pick up) the current epoch's job.
    active: usize,
    panicked: bool,
    shutdown: bool,
}

/// Rendezvous point between one part's coordinator and its parked compute
/// workers. All state lives under one mutex, so dispatch and completion
/// cannot miss wakeups.
pub(crate) struct Gate {
    state: Mutex<GateState>,
    work_cv: Condvar,
    done_cv: Condvar,
}

impl Gate {
    fn new() -> Gate {
        Gate {
            state: Mutex::new(GateState {
                epoch: 0,
                job: None,
                active: 0,
                panicked: false,
                shutdown: false,
            }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }
    }

    /// Runs `f(worker_index)` on all `threads` parked workers and blocks
    /// until every one of them has returned.
    ///
    /// Gates are shared: with several resident queries a part has one
    /// coordinator *per query*, all dispatching through the same gate.
    /// A dispatcher therefore first waits for any in-flight phase (another
    /// query's, or a predecessor epoch of its own) to fully retire before
    /// publishing its job — phases serialize per part, queries interleave
    /// at phase granularity.
    ///
    /// # Panics
    ///
    /// Re-panics on the caller if any worker panicked inside `f`, matching
    /// the old scoped-thread behavior.
    pub(crate) fn run_phase(&self, threads: usize, f: &(dyn Fn(usize) + Sync)) {
        // SAFETY: `job` escapes the borrow checker but not this function:
        // workers only call it between the dispatch below and the
        // `active == 0` wait returning, and we do not return (or unwind —
        // the wait loop cannot panic) before that.
        let job: Job = unsafe {
            std::mem::transmute::<&(dyn Fn(usize) + Sync), &'static (dyn Fn(usize) + Sync)>(f)
        };
        let mut st = self.state.lock();
        // Wait out a concurrently dispatched phase: `job` is cleared (and
        // done_cv notified) only after its dispatcher has observed
        // `active == 0`, so `job.is_none() && active == 0` means fully
        // idle and safe to publish a new epoch.
        while st.active != 0 || st.job.is_some() {
            self.done_cv.wait(&mut st);
        }
        st.job = Some(job);
        st.active = threads;
        st.epoch += 1;
        self.work_cv.notify_all();
        while st.active != 0 {
            self.done_cv.wait(&mut st);
        }
        st.job = None;
        let panicked = std::mem::replace(&mut st.panicked, false);
        // Wake dispatchers blocked on the idle wait above — workers only
        // notify when `active` hits 0, at which point `job` is still set.
        self.done_cv.notify_all();
        drop(st);
        if panicked {
            panic!("a compute worker panicked during a dispatched extend phase");
        }
    }
}

fn worker_loop(gate: &Gate, part: u32, w: usize, rec: &Recorder) {
    let mut seen = 0u64;
    loop {
        let parked_at = rec.now_ns();
        let job = {
            let mut st = gate.state.lock();
            loop {
                if st.shutdown {
                    return;
                }
                if st.epoch != seen {
                    seen = st.epoch;
                    break st.job.expect("a dispatched epoch always carries a job");
                }
                gate.work_cv.wait(&mut st);
            }
        };
        rec.record_span(SpanKind::Park, part, parked_at, w as u64);
        // A panicking job must still retire its `active` slot, or the
        // coordinator would wait forever; the panic is re-raised there.
        let ok = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| job(w))).is_ok();
        let mut st = gate.state.lock();
        if !ok {
            st.panicked = true;
        }
        st.active -= 1;
        if st.active == 0 {
            gate.done_cv.notify_all();
        }
    }
}

/// The engine's persistent compute threads: `threads` parked workers per
/// part, spawned once and reused by every subsequent run.
pub(crate) struct WorkerPool {
    gates: Vec<Arc<Gate>>,
    handles: Vec<std::thread::JoinHandle<()>>,
    names: Vec<String>,
    threads: usize,
}

impl WorkerPool {
    pub(crate) fn new(parts: usize, threads: usize, rec: &Arc<Recorder>) -> WorkerPool {
        let gates: Vec<Arc<Gate>> = (0..parts).map(|_| Arc::new(Gate::new())).collect();
        let mut handles = Vec::with_capacity(parts * threads);
        let mut names = Vec::with_capacity(parts * threads);
        for (part, gate) in gates.iter().enumerate() {
            for w in 0..threads {
                let name = format!("khuzdul-compute-{part}-{w}");
                names.push(name.clone());
                let gate = Arc::clone(gate);
                let rec = Arc::clone(rec);
                let handle = std::thread::Builder::new()
                    .name(name)
                    .spawn(move || worker_loop(&gate, part as u32, w, &rec))
                    .expect("spawn pooled compute worker");
                handles.push(handle);
            }
        }
        WorkerPool { gates, handles, names, threads }
    }

    pub(crate) fn gate(&self, part: usize) -> Arc<Gate> {
        Arc::clone(&self.gates[part])
    }

    /// Names of every pooled thread, in spawn order.
    pub(crate) fn thread_names(&self) -> &[String] {
        &self.names
    }
}

impl Drop for WorkerPool {
    fn drop(&mut self) {
        for gate in &self.gates {
            let mut st = gate.state.lock();
            st.shutdown = true;
            gate.work_cv.notify_all();
        }
        for h in self.handles.drain(..) {
            let _ = h.join();
        }
    }
}

impl std::fmt::Debug for WorkerPool {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("WorkerPool")
            .field("parts", &self.gates.len())
            .field("threads", &self.threads)
            .finish()
    }
}

// ---------------------------------------------------------------------------
// Task model of one extend phase
// ---------------------------------------------------------------------------

/// A claimable slice of one extend phase's work: half-open index ranges
/// into either the phase's captured resume list or the chunk's embedding
/// array.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Task {
    /// `old_resumes[start..end]`: paused embeddings, extended first.
    Resumes { start: u32, end: u32 },
    /// `embs[start..end]` from candidate offset 0: fresh embeddings.
    Fresh { start: u32, end: u32 },
}

impl Task {
    pub(crate) fn len(self) -> u32 {
        match self {
            Task::Resumes { start, end } | Task::Fresh { start, end } => end - start,
        }
    }

    /// Splits off at most `n` leading items; the tail (if any) keeps the
    /// same variant.
    fn split_head(self, n: u32) -> (Task, Option<Task>) {
        if self.len() <= n {
            return (self, None);
        }
        match self {
            Task::Resumes { start, end } => (
                Task::Resumes { start, end: start + n },
                Some(Task::Resumes { start: start + n, end }),
            ),
            Task::Fresh { start, end } => {
                (Task::Fresh { start, end: start + n }, Some(Task::Fresh { start: start + n, end }))
            }
        }
    }
}

/// Per-phase work queues: one shared injector plus one LIFO deque per
/// worker. The vendored crossbeam shim has no lock-free deque, so these
/// are short-critical-section mutexed `VecDeque`s — claims move whole
/// range tasks, so the lock is taken once per `mini_batch`, not per
/// embedding.
pub(crate) struct TaskPool {
    injector: Mutex<VecDeque<Task>>,
    deques: Vec<Mutex<VecDeque<Task>>>,
    /// Unclaimed embedding volume, mirrored into the part's queue-depth
    /// gauge so the sampler can record imbalance over time.
    depth: Arc<AtomicUsize>,
}

impl TaskPool {
    pub(crate) fn new(workers: usize, depth: Arc<AtomicUsize>) -> TaskPool {
        depth.store(0, Ordering::Relaxed);
        TaskPool {
            injector: Mutex::new(VecDeque::new()),
            deques: (0..workers.max(1)).map(|_| Mutex::new(VecDeque::new())).collect(),
            depth,
        }
    }

    /// Seeds the phase: `resumes` paused embeddings, any `leftovers`
    /// ranges returned unprocessed by earlier phases, and the unclaimed
    /// cursor range `fresh`. Each source is split into at most `pieces`
    /// coarse tasks so several workers can claim concurrently.
    pub(crate) fn seed(
        &self,
        resumes: u32,
        leftovers: &[(u32, u32)],
        fresh: (u32, u32),
        pieces: u32,
    ) {
        let mut tasks: Vec<Task> = Vec::new();
        push_split(&mut tasks, Task::Resumes { start: 0, end: resumes }, pieces);
        for &(start, end) in leftovers {
            push_split(&mut tasks, Task::Fresh { start, end }, pieces);
        }
        push_split(&mut tasks, Task::Fresh { start: fresh.0, end: fresh.1 }, pieces);
        let volume: usize = tasks.iter().map(|t| t.len() as usize).sum();
        self.depth.store(volume, Ordering::Relaxed);
        self.injector.lock().extend(tasks);
    }

    /// Claims up to `mini` embeddings for worker `w`: own deque newest-
    /// first, then the injector, then the oldest task of a sibling deque.
    /// Oversized claims are split and the tail stays on `w`'s own deque.
    pub(crate) fn claim(&self, w: usize, mini: u32) -> Option<Task> {
        let task = self.pop(w)?;
        let (head, tail) = task.split_head(mini.max(1));
        if let Some(tail) = tail {
            self.deques[w].lock().push_back(tail);
        }
        self.depth.fetch_sub(head.len() as usize, Ordering::Relaxed);
        Some(head)
    }

    /// Returns the unprocessed remainder of a claimed task (chunk filled
    /// or the run was stopped mid-batch).
    pub(crate) fn give_back(&self, w: usize, task: Task) {
        if task.len() == 0 {
            return;
        }
        self.depth.fetch_add(task.len() as usize, Ordering::Relaxed);
        self.deques[w].lock().push_back(task);
    }

    /// Drains every queue after the phase: whatever was never claimed (or
    /// was given back) is written back to the chunk's scheduling state.
    pub(crate) fn drain(&self) -> Vec<Task> {
        let mut out: Vec<Task> = self.injector.lock().drain(..).collect();
        for dq in &self.deques {
            out.extend(dq.lock().drain(..));
        }
        out
    }

    fn pop(&self, w: usize) -> Option<Task> {
        if let Some(t) = self.deques[w].lock().pop_back() {
            return Some(t);
        }
        if let Some(t) = self.injector.lock().pop_front() {
            return Some(t);
        }
        let n = self.deques.len();
        for off in 1..n {
            if let Some(t) = self.deques[(w + off) % n].lock().pop_front() {
                return Some(t);
            }
        }
        None
    }
}

fn push_split(out: &mut Vec<Task>, task: Task, pieces: u32) {
    let len = task.len();
    if len == 0 {
        return;
    }
    let step = len.div_ceil(pieces.max(1));
    let mut rest = task;
    loop {
        let (head, tail) = rest.split_head(step);
        out.push(head);
        match tail {
            Some(t) => rest = t,
            None => break,
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-part root ledger
// ---------------------------------------------------------------------------

/// Where a claimed root batch came from.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum ClaimSource {
    /// This part's own unclaimed root range.
    Own,
    /// The shared spill of donated level-0 ranges.
    Spill,
    /// Stolen from the given part's unclaimed root range.
    Stolen(usize),
}

/// The cross-part work-coordination protocol, abstracted over its
/// carrier: root claims, steals, donations, batch retirements,
/// starvation signals, quiescence votes, and crash recovery.
///
/// Two implementations exist. [`SharedLedger`] keeps the protocol on
/// shared-memory atomics (the default, and the only option before the
/// control plane was lifted out); [`crate::control::MsgLedger`] routes
/// every operation as a typed control message through the cluster
/// transport layer, with its own retry/backoff and fault injection. The
/// engine and runtime only ever see this trait, so the two carriers are
/// interchangeable per run — and must produce bit-identical counts.
///
/// [`claim`], [`finished`], and [`lost_roots`] are fallible: a
/// message-based carrier can exhaust its retries, and the part
/// coordinator must surface that as a run failure instead of spinning
/// forever or silently quiescing (either could strand claimed-but-
/// unprocessed roots). Fire-and-forget operations (`batch_done`,
/// `donate`, `set_starving`) stay infallible at the trait boundary; a
/// carrier that loses one poisons itself and reports the failure from
/// the next fallible call.
///
/// [`claim`]: ControlPlane::claim
/// [`finished`]: ControlPlane::finished
/// [`lost_roots`]: ControlPlane::lost_roots
pub(crate) trait ControlPlane: Send + Sync {
    /// Whether cross-part stealing is enabled for this run.
    fn stealing(&self) -> bool;

    /// Claims the next root batch for `me`: own range first (up to
    /// `own_batch` roots), then — with stealing on — the donation spill,
    /// then the unclaimed tail of a victim part. `Ok(None)` means
    /// nothing was claimable right now; pair every `Ok(Some(..))` with a
    /// later [`ControlPlane::batch_done`].
    fn claim(
        &self,
        me: usize,
        own_batch: usize,
    ) -> Result<Option<(ClaimSource, Vec<VertexId>)>, FetchError>;

    /// Retires one of `me`'s claimed batches (fully processed).
    fn batch_done(&self, me: usize);

    /// Adds never-started level-0 roots from `donor` to the shared
    /// spill, claimable by any part.
    fn donate(&self, donor: usize, roots: Vec<VertexId>);

    /// Marks `me` as idle-and-polling (or no longer so); loaded parts
    /// consult the count to decide whether donating is worthwhile.
    fn set_starving(&self, me: usize, on: bool);

    /// Number of parts currently starving, as observed by `me`.
    fn starving(&self, me: usize) -> usize;

    /// Global termination check for a part that found nothing to claim.
    fn finished(&self, me: usize) -> Result<bool, FetchError>;

    /// Parks `me` briefly until another part may have retired a batch or
    /// donated work; timed, so callers re-check stop flags regardless.
    fn wait_for_work(&self, me: usize);

    /// Reconstructs the exact multiset of roots whose results died with
    /// the `dead` parts (claim log minus donate log, plus unclaimed
    /// cursor tails, plus the orphaned spill). Called by the engine's
    /// recovery pass once no part is claiming anymore.
    fn lost_roots(&self, dead: &[usize]) -> Result<Vec<VertexId>, FetchError>;

    /// A coarse point-in-time state snapshot for incident bundles:
    /// per-part cursor remainders, spill depth, starvation, and
    /// quiescence. Must be safe to call from a watchdog thread while
    /// parts are mid-claim — a torn-but-plausible summary beats blocking
    /// the protocol. The default is a degraded "nothing observable"
    /// summary for carriers whose state lives behind a responder thread.
    fn state_summary(&self) -> LedgerStateSummary {
        LedgerStateSummary::default()
    }
}

/// What [`ControlPlane::state_summary`] reports into an incident bundle.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub(crate) struct LedgerStateSummary {
    /// Carrier name (`"shared"` or `"msg"`; empty for the default).
    pub carrier: &'static str,
    /// Whether the fields below were actually observed (`false` means a
    /// degraded summary: the carrier cannot inspect its state cheaply).
    pub available: bool,
    /// Whether the work counter was quiescent (no outstanding batches).
    pub quiescent: bool,
    /// Parts currently idle-and-polling.
    pub starving: u64,
    /// Donated roots sitting unclaimed in the spill.
    pub spill_len: u64,
    /// Unclaimed roots left on each part's cursor, indexed by part.
    pub per_part_remaining: Vec<u64>,
    /// The poison of a message carrier that lost a fire-and-forget
    /// operation, if any.
    pub poisoned: Option<String>,
}

struct PartCursor {
    part: Arc<GraphPart>,
    /// Next unclaimed index into `part.owned()`. May overshoot the length
    /// after racing claims; overshoot is saturated on read.
    next: AtomicUsize,
}

/// Run-scoped coordinator for cross-part root stealing and termination.
///
/// Every part claims its root work from here in bounded batches instead of
/// walking a private cursor. Each claimed batch registers one unit on the
/// [`WorkCounter`]; the claimant retires it once its chunk stack has fully
/// drained. A part with nothing left to claim is *finished* only when the
/// counter is quiescent, every cursor is exhausted, and the spill is empty
/// — otherwise it parks briefly and retries, because a loaded part may
/// still donate work.
///
/// Early-exit race: a claimant moves a cursor (or empties the spill)
/// *before* registering its counter unit, so a concurrent [`finished`]
/// observer can see "all drained" while that batch is still being seeded.
/// This is benign for correctness — claimed work is never dropped, and the
/// engine still joins every part — the observer merely stops helping a
/// little early. The converse (reporting unfinished forever) cannot
/// happen: counter units strictly outlive their batch's processing.
///
/// [`finished`]: RootLedger::finished
pub(crate) struct RootLedger {
    parts: Vec<PartCursor>,
    /// Per-part *placed* roots: recovery work assigned to a specific
    /// part by the load-weighted placement pass. Served after the
    /// part's own cursor (which a placed-recovery ledger starts
    /// exhausted) and stealable through the same victim path as cursor
    /// tails, so a placement that turns out lopsided still self-heals.
    placed: Vec<Mutex<Vec<VertexId>>>,
    /// Donated level-0 root ranges, claimable by any part.
    spill: Mutex<Vec<VertexId>>,
    /// Per-part multiset of every root the part has claimed (own, spill,
    /// or stolen). Together with `donate_log` this reconstructs exactly
    /// which roots a fail-stop part took to its grave: its claims, minus
    /// what it donated back, were executed (if at all) only by the dead
    /// part, whose partial results the engine discards wholesale.
    claim_log: Vec<Mutex<Vec<VertexId>>>,
    /// Per-part multiset of every root the part donated to the spill.
    donate_log: Vec<Mutex<Vec<VertexId>>>,
    wc: WorkCounter,
    /// Number of parts currently idle and polling for work; loaded parts
    /// consult this to decide whether donating is worthwhile.
    starving: AtomicUsize,
    idle_lock: Mutex<()>,
    idle_cv: Condvar,
    stealing: bool,
    batch: usize,
    /// `Some(sockets_per_machine)` enables NUMA-aware victim ordering:
    /// thieves prefer same-machine victims before crossing the network.
    numa: Option<usize>,
}

/// The shared-memory implementation of [`ControlPlane`]: the original
/// atomics-and-condvar [`RootLedger`], now one carrier behind the trait.
pub(crate) type SharedLedger = RootLedger;

impl RootLedger {
    pub(crate) fn new(
        parts: Vec<Arc<GraphPart>>,
        stealing: bool,
        batch: usize,
        numa: Option<usize>,
    ) -> RootLedger {
        let n = parts.len();
        RootLedger {
            parts: parts
                .into_iter()
                .map(|part| PartCursor { part, next: AtomicUsize::new(0) })
                .collect(),
            placed: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            spill: Mutex::new(Vec::new()),
            claim_log: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            donate_log: (0..n).map(|_| Mutex::new(Vec::new())).collect(),
            wc: WorkCounter::new(),
            starving: AtomicUsize::new(0),
            idle_lock: Mutex::new(()),
            idle_cv: Condvar::new(),
            stealing,
            batch: batch.max(1),
            numa: numa.map(|spm| spm.max(1)),
        }
    }

    pub(crate) fn stealing(&self) -> bool {
        self.stealing
    }

    /// Whether `p` sits on the same simulated machine as `me` under the
    /// configured NUMA ordering; always `false` with NUMA ordering off,
    /// which collapses victim selection back to flat most-loaded.
    fn same_machine(&self, me: usize, p: usize) -> bool {
        match self.numa {
            Some(spm) => p / spm == me / spm,
            None => false,
        }
    }

    /// Claims the next batch of roots for `me`: own cursor first (up to
    /// `own_batch` roots), then — with stealing enabled — the donation
    /// spill, then the unclaimed tail of the most-loaded other part.
    /// Registers one work unit per returned batch; pair every `Some` with
    /// a later [`RootLedger::batch_done`].
    pub(crate) fn claim(
        &self,
        me: usize,
        own_batch: usize,
    ) -> Option<(ClaimSource, Vec<VertexId>)> {
        if let Some(roots) = self.claim_range(me, own_batch) {
            self.wc.add(1);
            self.claim_log[me].lock().extend_from_slice(&roots);
            return Some((ClaimSource::Own, roots));
        }
        if !self.stealing {
            return None;
        }
        {
            let mut spill = self.spill.lock();
            if !spill.is_empty() {
                let take = self.batch.min(spill.len());
                let at = spill.len() - take;
                let roots = spill.split_off(at);
                self.wc.add(1);
                self.claim_log[me].lock().extend_from_slice(&roots);
                return Some((ClaimSource::Spill, roots));
            }
        }
        loop {
            // Victim order: with NUMA ordering on, the most-loaded part
            // of the thief's own machine beats any cross-machine part —
            // stolen roots resolve their edge lists over the fabric, so
            // keeping the victim local keeps that traffic off the
            // simulated network (§5.4). Ties fall back to most-loaded.
            let victim = (0..self.parts.len())
                .filter(|&p| p != me && self.remaining(p) > 0)
                .max_by_key(|&p| (self.same_machine(me, p), self.remaining(p)))?;
            if let Some(roots) = self.claim_range(victim, self.batch) {
                self.wc.add(1);
                self.claim_log[me].lock().extend_from_slice(&roots);
                return Some((ClaimSource::Stolen(victim), roots));
            }
            // Lost the race on that victim's last range; look again.
        }
    }

    /// Retires one claimed batch (its embeddings are fully processed) and
    /// wakes idle parts so they re-check for termination.
    pub(crate) fn batch_done(&self) {
        self.wc.done();
        self.idle_cv.notify_all();
    }

    /// Adds never-started level-0 roots from `donor` to the shared spill.
    /// The donor's own batch unit still covers them until a claimant
    /// re-registers them, and [`RootLedger::finished`] checks the spill
    /// directly, so no donated root can be dropped.
    pub(crate) fn donate(&self, donor: usize, mut roots: Vec<VertexId>) {
        if roots.is_empty() {
            return;
        }
        self.donate_log[donor].lock().extend_from_slice(&roots);
        self.spill.lock().append(&mut roots);
        self.idle_cv.notify_all();
    }

    pub(crate) fn set_starving(&self, on: bool) {
        if on {
            self.starving.fetch_add(1, Ordering::Relaxed);
        } else {
            self.starving.fetch_sub(1, Ordering::Relaxed);
        }
    }

    pub(crate) fn starving(&self) -> usize {
        self.starving.load(Ordering::Relaxed)
    }

    /// Global termination check for a part that found nothing to claim.
    ///
    /// Order matters: the work counter is read *first* (its `Acquire` load
    /// pairs with the `Release` in `done()`), then the cursors, then the
    /// spill. Seeing the counter at zero first means every retired batch's
    /// effects are visible; any work added afterwards would re-populate a
    /// cursor or the spill, which are checked later and would flip the
    /// verdict back to "not finished".
    pub(crate) fn finished(&self) -> bool {
        if !self.wc.is_quiescent() {
            return false;
        }
        if (0..self.parts.len()).any(|p| self.remaining(p) > 0) {
            return false;
        }
        self.spill.lock().is_empty()
    }

    /// Parks briefly until another part retires a batch or donates work.
    /// The wait is timed so callers re-check stop flags and termination
    /// even if a notification slips by.
    pub(crate) fn wait_for_work(&self) {
        let mut guard = self.idle_lock.lock();
        let _ = self.idle_cv.wait_for(&mut guard, Duration::from_millis(1));
    }

    /// Unclaimed roots left on `part`: its cursor tail plus whatever
    /// sits on its placed queue.
    pub(crate) fn remaining(&self, part: usize) -> usize {
        let pc = &self.parts[part];
        // Relaxed everywhere on the cursor: it only partitions an
        // immutable, Arc-shared slice — no claimant-written payload hangs
        // off it, so there is nothing for stronger orderings to publish.
        pc.part.owned().len().saturating_sub(pc.next.load(Ordering::Relaxed))
            + self.placed[part].lock().len()
    }

    fn claim_range(&self, part: usize, n: usize) -> Option<Vec<VertexId>> {
        if n == 0 {
            return None;
        }
        let pc = &self.parts[part];
        let owned = pc.part.owned();
        if pc.next.load(Ordering::Relaxed) < owned.len() {
            let start = pc.next.fetch_add(n, Ordering::Relaxed);
            if start < owned.len() {
                let end = (start + n).min(owned.len());
                return Some(owned[start..end].to_vec());
            }
        }
        // Cursor exhausted: serve the part's placed queue (recovery
        // work assigned by the load-weighted placement pass). The lock
        // makes a placed root land in exactly one claim.
        let mut placed = self.placed[part].lock();
        if placed.is_empty() {
            return None;
        }
        let take = n.min(placed.len());
        Some(placed.drain(..take).collect())
    }

    // -- fail-stop recovery ------------------------------------------------

    /// Drains and returns the unclaimed tail of `part`'s cursor. The
    /// drain uses the same atomic cursor as [`claim`], so every root
    /// lands in exactly one of: a claimant's batch (and its
    /// `claim_log`) or this return value — never both, never neither.
    ///
    /// [`claim`]: RootLedger::claim
    pub(crate) fn close_part(&self, part: usize) -> Vec<VertexId> {
        let mut out = Vec::new();
        loop {
            let n = self.remaining(part);
            if n == 0 {
                return out;
            }
            if let Some(mut roots) = self.claim_range(part, n) {
                out.append(&mut roots);
            }
        }
    }

    /// Reconstructs the exact multiset of roots whose results died with
    /// the `dead` parts, assuming no part is still claiming:
    ///
    /// * every root a dead part claimed (its partial results are
    ///   discarded wholesale), **minus** what it donated back — a
    ///   donated root's fate belongs to whoever claimed it next;
    /// * the unclaimed tail of each dead part's cursor;
    /// * whatever is left in the spill — donated by anyone, claimed by
    ///   no one (survivors may stop claiming once a failure aborts the
    ///   run).
    ///
    /// Re-executing exactly this set on the survivors reproduces the
    /// fault-free counts bit for bit.
    pub(crate) fn lost_roots(&self, dead: &[usize]) -> Vec<VertexId> {
        let mut lost = Vec::new();
        for &d in dead {
            let mut donated: std::collections::HashMap<VertexId, usize> =
                std::collections::HashMap::new();
            for &r in self.donate_log[d].lock().iter() {
                *donated.entry(r).or_insert(0) += 1;
            }
            for &r in self.claim_log[d].lock().iter() {
                match donated.get_mut(&r) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => lost.push(r),
                }
            }
            lost.append(&mut self.close_part(d));
        }
        lost.append(&mut self.spill.lock());
        lost
    }

    /// A ledger for a *placed* recovery pass: every cursor starts
    /// exhausted and each part's share of the lost roots (from
    /// [`place_recovery_roots`]) sits on its own placed queue, so
    /// recovery work lands where the placement decided instead of
    /// wherever polls the spill first. Stealing is forced on: a part
    /// that drains its share early steals the loaded parts' placed
    /// tails through the ordinary victim path, so a placement that
    /// mispredicts load still balances out.
    pub(crate) fn placed_recovery(
        parts: Vec<Arc<GraphPart>>,
        assignments: Vec<Vec<VertexId>>,
        batch: usize,
    ) -> Self {
        let ledger = RootLedger::new(parts, true, batch, None);
        for pc in &ledger.parts {
            pc.next.store(pc.part.owned().len(), Ordering::Relaxed);
        }
        for (p, roots) in assignments.into_iter().enumerate() {
            *ledger.placed[p].lock() = roots;
        }
        ledger
    }
}

/// Splits `lost` roots across the surviving parts in inverse proportion
/// to their current load — the recovery-aware placement pass. `loads`
/// is a per-part service-pressure score (the engine feeds queue depth
/// plus rerouted-fetch service volume); `dead` parts receive nothing.
/// The split is contiguous and deterministic for a given input, and the
/// union of the assignments is exactly `lost`, so counts are unaffected
/// by *where* the roots land.
pub(crate) fn place_recovery_roots(
    lost: Vec<VertexId>,
    loads: &[u64],
    dead: &[usize],
) -> Vec<Vec<VertexId>> {
    let n = loads.len();
    let mut out: Vec<Vec<VertexId>> = (0..n).map(|_| Vec::new()).collect();
    let survivors: Vec<usize> = (0..n).filter(|p| !dead.contains(p)).collect();
    if lost.is_empty() || survivors.is_empty() {
        return out;
    }
    // Capacity score: the least-loaded survivor gets the largest share;
    // +1 keeps every survivor claimable even under a uniform load.
    let max = survivors.iter().map(|&p| loads[p]).max().unwrap_or(0);
    let caps: Vec<u64> = survivors.iter().map(|&p| max - loads[p] + 1).collect();
    let total: u64 = caps.iter().sum();
    let len = lost.len() as u64;
    // Largest-remainder apportionment of `len` roots over `caps`.
    let mut counts: Vec<u64> = caps.iter().map(|&c| len * c / total).collect();
    let mut leftover = len - counts.iter().sum::<u64>();
    let mut by_rem: Vec<usize> = (0..caps.len()).collect();
    by_rem.sort_by_key(|&i| (std::cmp::Reverse(len * caps[i] % total), i));
    for &i in &by_rem {
        if leftover == 0 {
            break;
        }
        counts[i] += 1;
        leftover -= 1;
    }
    let mut rest = lost;
    for (i, &p) in survivors.iter().enumerate() {
        let take = (counts[i] as usize).min(rest.len());
        let tail = rest.split_off(take);
        out[p] = std::mem::replace(&mut rest, tail);
    }
    out
}

/// The trait carrier of the shared-memory ledger: every operation
/// forwards to the inherent method (which tests and the recovery
/// constructors keep calling directly); the fallible signatures are
/// trivially `Ok` because shared memory cannot lose a message.
impl ControlPlane for RootLedger {
    fn stealing(&self) -> bool {
        RootLedger::stealing(self)
    }

    fn claim(
        &self,
        me: usize,
        own_batch: usize,
    ) -> Result<Option<(ClaimSource, Vec<VertexId>)>, FetchError> {
        Ok(RootLedger::claim(self, me, own_batch))
    }

    fn batch_done(&self, _me: usize) {
        RootLedger::batch_done(self)
    }

    fn donate(&self, donor: usize, roots: Vec<VertexId>) {
        RootLedger::donate(self, donor, roots)
    }

    fn set_starving(&self, _me: usize, on: bool) {
        RootLedger::set_starving(self, on)
    }

    fn starving(&self, _me: usize) -> usize {
        RootLedger::starving(self)
    }

    fn finished(&self, _me: usize) -> Result<bool, FetchError> {
        Ok(RootLedger::finished(self))
    }

    fn wait_for_work(&self, _me: usize) {
        RootLedger::wait_for_work(self)
    }

    fn lost_roots(&self, dead: &[usize]) -> Result<Vec<VertexId>, FetchError> {
        Ok(RootLedger::lost_roots(self, dead))
    }

    fn state_summary(&self) -> LedgerStateSummary {
        LedgerStateSummary {
            carrier: "shared",
            available: true,
            quiescent: self.wc.is_quiescent(),
            starving: RootLedger::starving(self) as u64,
            spill_len: self.spill.lock().len() as u64,
            per_part_remaining: (0..self.parts.len()).map(|p| self.remaining(p) as u64).collect(),
            poisoned: None,
        }
    }
}

// ---------------------------------------------------------------------------
// Cross-query fairness arbiter
// ---------------------------------------------------------------------------

/// Pacing coordinator for concurrent queries sharing one worker pool.
///
/// Each active query registers itself and bumps its counter for every
/// root it claims from its own [`RootLedger`]. Before claiming, a part
/// coordinator calls [`QueryArbiter::pace`]: a query that has raced more
/// than `budget` roots ahead of the *least served* active query parks
/// briefly, yielding the part's compute threads to the straggler. The
/// least-served query never waits, so some query always makes progress,
/// and the waits are timed, so a stalled straggler (e.g. blocked on a
/// fetch) cannot wedge the rest of the service.
///
/// The budget is a fairness quantum only — it delays claims, it never
/// truncates them, so per-query counts stay bit-identical to solo runs.
#[derive(Debug, Default)]
pub struct QueryArbiter {
    active: Mutex<std::collections::HashMap<u64, Arc<std::sync::atomic::AtomicU64>>>,
    cv: Condvar,
}

impl QueryArbiter {
    /// Creates an arbiter with no registered queries.
    pub fn new() -> QueryArbiter {
        QueryArbiter::default()
    }

    /// Registers `query` as active with zero claimed roots.
    pub fn register(&self, query: u64) {
        self.active.lock().insert(query, Arc::new(std::sync::atomic::AtomicU64::new(0)));
    }

    /// Removes `query` and wakes paced peers (the minimum may have risen).
    pub fn deregister(&self, query: u64) {
        self.active.lock().remove(&query);
        self.cv.notify_all();
    }

    /// Records `n` roots claimed by `query` and wakes paced peers.
    pub fn note_claimed(&self, query: u64, n: u64) {
        let counter = self.active.lock().get(&query).map(Arc::clone);
        if let Some(c) = counter {
            c.fetch_add(n, Ordering::Relaxed);
            self.cv.notify_all();
        }
    }

    /// Blocks (briefly, in timed slices) while `query` is more than
    /// `budget` claimed roots ahead of the least-served active query.
    pub fn pace(&self, query: u64, budget: u64) {
        let mut active = self.active.lock();
        loop {
            let Some(mine) = active.get(&query).map(|c| c.load(Ordering::Relaxed)) else {
                return;
            };
            let min = active.values().map(|c| c.load(Ordering::Relaxed)).min().unwrap_or(0);
            if mine <= min.saturating_add(budget) {
                return;
            }
            let _ = self.cv.wait_for(&mut active, Duration::from_micros(200));
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;
    use gpm_graph::partition::PartitionedGraph;

    fn depth() -> Arc<AtomicUsize> {
        Arc::new(AtomicUsize::new(0))
    }

    #[test]
    fn task_split_head_partitions_the_range() {
        let t = Task::Fresh { start: 10, end: 30 };
        let (head, tail) = t.split_head(8);
        assert_eq!(head, Task::Fresh { start: 10, end: 18 });
        assert_eq!(tail, Some(Task::Fresh { start: 18, end: 30 }));
        let (head, tail) = Task::Resumes { start: 0, end: 5 }.split_head(8);
        assert_eq!(head, Task::Resumes { start: 0, end: 5 });
        assert_eq!(tail, None);
    }

    #[test]
    fn claims_drain_resumes_before_fresh_work() {
        let pool = TaskPool::new(1, depth());
        pool.seed(4, &[], (0, 12), 1);
        let first = pool.claim(0, 64).expect("work seeded");
        assert_eq!(first, Task::Resumes { start: 0, end: 4 });
        let second = pool.claim(0, 64).expect("fresh range");
        assert_eq!(second, Task::Fresh { start: 0, end: 12 });
        assert!(pool.claim(0, 64).is_none());
    }

    #[test]
    fn oversized_claims_split_and_keep_the_tail_local() {
        let gauge = depth();
        let pool = TaskPool::new(2, Arc::clone(&gauge));
        pool.seed(0, &[], (0, 100), 1);
        assert_eq!(gauge.load(Ordering::Relaxed), 100);
        let head = pool.claim(0, 16).expect("head");
        assert_eq!(head.len(), 16);
        assert_eq!(gauge.load(Ordering::Relaxed), 84);
        // Worker 1 steals the tail parked on worker 0's deque.
        let stolen = pool.claim(1, 16).expect("stolen");
        assert_eq!(stolen, Task::Fresh { start: 16, end: 32 });
    }

    #[test]
    fn give_back_restores_depth_and_is_drained() {
        let gauge = depth();
        let pool = TaskPool::new(1, Arc::clone(&gauge));
        pool.seed(0, &[(5, 9)], (20, 24), 1);
        let t = pool.claim(0, 64).expect("leftover range first");
        assert_eq!(t, Task::Fresh { start: 5, end: 9 });
        pool.give_back(0, Task::Fresh { start: 7, end: 9 });
        assert_eq!(gauge.load(Ordering::Relaxed), 6);
        let mut rest = pool.drain();
        rest.sort_by_key(|t| t.len());
        assert_eq!(
            rest,
            vec![Task::Fresh { start: 7, end: 9 }, Task::Fresh { start: 20, end: 24 }]
        );
    }

    fn ledger(stealing: bool) -> RootLedger {
        let g = gen::erdos_renyi(64, 128, 9);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let parts = (0..pg.part_count()).map(|p| pg.part_arc(p)).collect();
        RootLedger::new(parts, stealing, 8, None)
    }

    #[test]
    fn own_claims_walk_the_cursor_and_quiesce() {
        let ledger = ledger(false);
        let total = ledger.remaining(0);
        let mut seen = 0;
        while let Some((src, roots)) = ledger.claim(0, 10) {
            assert_eq!(src, ClaimSource::Own);
            seen += roots.len();
            ledger.batch_done();
        }
        assert_eq!(seen, total);
        assert_eq!(ledger.remaining(0), 0);
        // Stealing disabled: other parts' roots are out of reach.
        assert!(ledger.claim(0, 10).is_none());
        assert!(ledger.remaining(1) > 0);
    }

    #[test]
    fn steals_target_the_most_loaded_part() {
        let ledger = ledger(true);
        // Drain part 0's own roots in one oversized claim.
        let (src, _) = ledger.claim(0, usize::MAX).expect("own roots first");
        assert_eq!(src, ClaimSource::Own);
        ledger.batch_done();
        let before: Vec<usize> = (0..4).map(|p| ledger.remaining(p)).collect();
        let loaded = (1..4).max_by_key(|&p| before[p]).unwrap();
        let (src, roots) = ledger.claim(0, 10).expect("steal succeeds");
        assert_eq!(src, ClaimSource::Stolen(loaded));
        assert!(!roots.is_empty() && roots.len() <= 8);
        ledger.batch_done();
    }

    #[test]
    fn numa_victim_ordering_prefers_same_machine_parts() {
        // 2 machines x 2 sockets: parts {0, 1} share machine 0, parts
        // {2, 3} share machine 1 (part = machine * spm + socket).
        let g = gen::erdos_renyi(64, 128, 9);
        let pg = PartitionedGraph::new(&g, 2, 2);
        let mk = |numa: Option<usize>| {
            let parts = (0..pg.part_count()).map(|p| pg.part_arc(p)).collect();
            RootLedger::new(parts, true, 4, numa)
        };
        let shape = |ledger: &RootLedger| {
            // Drain part 0's own roots and most of its machine-mate's,
            // leaving part 1 lighter than both cross-machine parts.
            while ledger.claim_range(0, 16).is_some() {}
            let keep = 2;
            let n1 = ledger.remaining(1);
            assert!(ledger.claim_range(1, n1 - keep).is_some());
            assert!(ledger.remaining(1) < ledger.remaining(2));
            assert!(ledger.remaining(1) < ledger.remaining(3));
        };
        // Flat ordering steals from the most-loaded part anywhere.
        let flat = mk(None);
        shape(&flat);
        let loaded = (1..4).max_by_key(|&p| flat.remaining(p)).unwrap();
        let (src, _) = flat.claim(0, 0).expect("flat steal");
        assert_eq!(src, ClaimSource::Stolen(loaded));
        flat.batch_done();
        // NUMA ordering prefers the lighter same-machine part first.
        let numa = mk(Some(2));
        shape(&numa);
        let (src, _) = numa.claim(0, 0).expect("numa steal");
        assert_eq!(src, ClaimSource::Stolen(1));
        numa.batch_done();
        // Once the local machine is drained, it crosses to the most
        // loaded remote part like before.
        while numa.remaining(1) > 0 {
            numa.claim_range(1, 16);
        }
        let remote = (2..4).max_by_key(|&p| numa.remaining(p)).unwrap();
        let (src, _) = numa.claim(0, 0).expect("cross-machine steal");
        assert_eq!(src, ClaimSource::Stolen(remote));
        numa.batch_done();
    }

    #[test]
    fn donated_roots_block_termination_until_claimed() {
        let ledger = ledger(true);
        for p in 0..4 {
            while ledger.claim(p, usize::MAX).is_some() {
                ledger.batch_done();
            }
        }
        assert!(ledger.finished());
        ledger.donate(0, vec![1, 2, 3]);
        assert!(!ledger.finished());
        let (src, roots) = ledger.claim(2, 1).expect("spill is claimable by anyone");
        assert_eq!(src, ClaimSource::Spill);
        assert_eq!(roots.len(), 3);
        assert!(!ledger.finished(), "outstanding batch blocks termination");
        ledger.batch_done();
        assert!(ledger.finished());
    }

    #[test]
    fn close_part_drains_the_unclaimed_tail() {
        let ledger = ledger(false);
        let total = ledger.remaining(1);
        let (_, claimed) = ledger.claim(1, 3).expect("own roots");
        ledger.batch_done();
        let tail = ledger.close_part(1);
        assert_eq!(tail.len(), total - claimed.len());
        assert_eq!(ledger.remaining(1), 0);
        assert!(ledger.close_part(1).is_empty(), "close is idempotent");
        // No root is in both the claim and the tail.
        assert!(claimed.iter().all(|r| !tail.contains(r)));
    }

    #[test]
    fn lost_roots_reconstruct_the_dead_parts_exact_work() {
        let ledger = ledger(true);
        let total1 = ledger.remaining(1);
        // Part 1 claims two batches, donates part of the first back, and
        // then "dies". Part 0 claims the donation (it survives, so those
        // roots are its problem, not the recovery pass's).
        let (_, first) = ledger.claim(1, 4).expect("first batch");
        let (_, _second) = ledger.claim(1, 4).expect("second batch");
        ledger.donate(1, first[..2].to_vec());
        let (src, adopted) = ledger.claim(0, 0).expect("spill claim");
        assert_eq!(src, ClaimSource::Spill);
        assert_eq!(adopted.len(), 2);
        let mut lost = ledger.lost_roots(&[1]);
        // Lost = claimed (8) − donated (2) + unclaimed tail; the two
        // donated-and-adopted roots are excluded.
        assert_eq!(lost.len(), 8 - 2 + (total1 - 8));
        assert!(adopted.iter().all(|r| !lost.contains(r)));
        // Together, part 0's adoption and the lost set cover part 1's
        // owned roots exactly once each.
        lost.extend(adopted);
        lost.sort_unstable();
        let g = gen::erdos_renyi(64, 128, 9);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let mut owned1 = pg.part(1).owned().to_vec();
        owned1.sort_unstable();
        assert_eq!(lost, owned1);
    }

    #[test]
    fn unclaimed_donations_are_lost_roots_even_from_survivors() {
        let ledger = ledger(true);
        let (_, mine) = ledger.claim(0, 4).expect("own roots");
        ledger.donate(0, mine[..3].to_vec());
        // Nobody claims the donation before the run aborts: the roots
        // must surface as lost even though part 0 survived.
        let lost = ledger.lost_roots(&[2]);
        for &r in &mine[..3] {
            assert!(lost.contains(&r), "unclaimed donation {r} dropped");
        }
    }

    #[test]
    fn placed_recovery_serves_shares_locally_and_steals_the_rest() {
        let g = gen::erdos_renyi(64, 128, 9);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let parts: Vec<_> = (0..4).map(|p| pg.part_arc(p)).collect();
        let assignments = vec![vec![10, 11, 12], Vec::new(), vec![20], Vec::new()];
        let ledger = RootLedger::placed_recovery(parts, assignments, 8);
        assert!(ledger.stealing(), "placed recovery forces stealing on");
        assert_eq!(ledger.remaining(0), 3);
        assert_eq!(ledger.remaining(1), 0);
        // A part's placed share claims as its own work.
        let (src, roots) = ledger.claim(0, 8).expect("placed share");
        assert_eq!(src, ClaimSource::Own);
        assert_eq!(roots, vec![10, 11, 12]);
        // An empty-handed part steals a loaded part's placed tail.
        let (src, roots) = ledger.claim(1, 8).expect("steal placed work");
        assert_eq!(src, ClaimSource::Stolen(2));
        assert_eq!(roots, vec![20]);
        assert!(!ledger.finished(), "outstanding batches");
        ledger.batch_done();
        ledger.batch_done();
        assert!(ledger.finished());
        // lost_roots over a placed ledger still reconstructs exactly.
        assert!(ledger.claim(3, 8).is_none());
    }

    #[test]
    fn placement_gives_the_loaded_survivor_fewer_recovery_roots() {
        let lost: Vec<VertexId> = (0..100).collect();
        // Part 1 is busy serving rerouted fetches; part 3 is dead.
        let loads = [0u64, 900, 0, 5];
        let out = place_recovery_roots(lost.clone(), &loads, &[3]);
        assert_eq!(out.len(), 4);
        assert!(out[3].is_empty(), "dead parts receive nothing");
        assert!(
            out[1].len() < out[0].len() && out[1].len() < out[2].len(),
            "loaded survivor must receive fewer roots: {:?}",
            out.iter().map(|v| v.len()).collect::<Vec<_>>()
        );
        // The union of the shares is exactly the lost multiset, in order.
        let union: Vec<VertexId> = out.into_iter().flatten().collect();
        assert_eq!(union, lost);
    }

    #[test]
    fn placement_handles_degenerate_inputs() {
        // Uniform load: shares split evenly.
        let out = place_recovery_roots((0..9).collect(), &[7, 7, 7], &[]);
        assert_eq!(out.iter().map(|v| v.len()).collect::<Vec<_>>(), vec![3, 3, 3]);
        // No lost roots / no survivors: everything empty.
        assert!(place_recovery_roots(Vec::new(), &[1, 2], &[])
            .iter()
            .all(|v| v.is_empty()));
        assert!(place_recovery_roots(vec![1, 2], &[1, 2], &[0, 1])
            .iter()
            .all(|v| v.is_empty()));
    }

    #[test]
    fn pool_runs_phases_and_propagates_panics() {
        let rec = Recorder::disabled();
        let pool = WorkerPool::new(2, 3, &rec);
        assert_eq!(pool.thread_names().len(), 6);
        let hits = AtomicUsize::new(0);
        let gate = pool.gate(1);
        gate.run_phase(3, &|w| {
            assert!(w < 3);
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 3);
        gate.run_phase(3, &|_| {
            hits.fetch_add(1, Ordering::Relaxed);
        });
        assert_eq!(hits.load(Ordering::Relaxed), 6);
        let caught = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            pool.gate(0).run_phase(3, &|w| {
                if w == 1 {
                    panic!("boom");
                }
            });
        }));
        assert!(caught.is_err(), "worker panic surfaces on the coordinator");
        // The pool survives a panicked phase.
        pool.gate(0).run_phase(3, &|_| {});
    }

    #[test]
    fn concurrent_dispatchers_serialize_on_one_gate() {
        // Two "queries" hammer the same part's gate from separate threads;
        // every phase must run to completion without overlap or lost work.
        let rec = Recorder::disabled();
        let pool = WorkerPool::new(1, 2, &rec);
        let gate = pool.gate(0);
        let hits = Arc::new(AtomicUsize::new(0));
        let in_phase = Arc::new(AtomicUsize::new(0));
        std::thread::scope(|s| {
            for _ in 0..2 {
                let gate = Arc::clone(&gate);
                let hits = Arc::clone(&hits);
                let in_phase = Arc::clone(&in_phase);
                s.spawn(move || {
                    for _ in 0..50 {
                        gate.run_phase(2, &|_| {
                            let n = in_phase.fetch_add(1, Ordering::SeqCst);
                            assert!(n < 2, "two phases overlapped on one gate");
                            hits.fetch_add(1, Ordering::SeqCst);
                            in_phase.fetch_sub(1, Ordering::SeqCst);
                        });
                    }
                });
            }
        });
        assert_eq!(hits.load(Ordering::SeqCst), 2 * 50 * 2);
    }

    #[test]
    fn arbiter_paces_the_leader_but_never_the_minimum() {
        let arb = QueryArbiter::new();
        arb.register(1);
        arb.register(2);
        arb.note_claimed(1, 100);
        // Query 2 is the minimum: pace returns immediately.
        let t0 = std::time::Instant::now();
        arb.pace(2, 8);
        assert!(t0.elapsed() < Duration::from_millis(50));
        // Query 1 is 100 ahead with budget 8: it parks until query 2
        // catches up (done here from another thread).
        std::thread::scope(|s| {
            s.spawn(|| {
                std::thread::sleep(Duration::from_millis(10));
                arb.note_claimed(2, 95);
            });
            arb.pace(1, 8);
        });
        // Deregistering the straggler lifts the brake entirely.
        arb.note_claimed(2, 1);
        arb.deregister(2);
        arb.pace(1, 0);
        // Unregistered queries are never paced.
        arb.pace(99, 0);
    }
}
