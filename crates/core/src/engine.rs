//! The [`Engine`]: cluster setup and run orchestration.

use crate::cache::{CacheConfig, SharedCache};
use crate::control::{ControlConfig, ControlMode, MsgLedger};
use crate::incident::{
    config_fingerprint, counters_json, ledger_json, progress_json, CaptureSections, IncidentConfig,
    IncidentManager, StallWatchdog, Trigger, TriggerKind,
};
use crate::rebalance::{RebalanceConfig, Rebalancer};
use crate::runtime::{run_part, PartCtx, Visitor};
use crate::scheduler::{
    place_recovery_roots, ControlPlane, QueryArbiter, SharedLedger, StealConfig, WorkerPool,
};
use crate::stats::{ControlSummary, FailureSummary, PartStats, RunStats, TrafficSummary};
use gpm_cluster::{ClusterMetrics, EdgeListService, FabricConfig, FetchError, NetworkModel};
use gpm_graph::partition::PartitionedGraph;
use gpm_graph::VertexId;
use gpm_obs::{
    FlightKind, FlightRecorder, GaugeSample, HolderReroute, ObsConfig, QueryProgress,
    RebalanceSection, Recorder, RunReport, SpanKind,
};
use gpm_pattern::plan::MatchingPlan;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::{Arc, OnceLock};
use std::time::{Duration, Instant};

/// Finished-progress entries the engine retains for late collectors
/// (the service attaches them to query outcomes); oldest drop first.
const FINISHED_PROGRESS_CAP: usize = 64;

/// One part's replica-placement and health row, as served by `/status`
/// and rendered by `gpm top` (see [`Engine::part_health`]).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PartHealth {
    /// The part this row describes.
    pub part: usize,
    /// Whether the part is live (not promoted dead by the liveness
    /// tracker).
    pub alive: bool,
    /// Slices this part currently hosts a copy of: its own, the
    /// replicas it was configured with, and any the rebalancer
    /// installed after a death.
    pub hosted_slices: Vec<usize>,
    /// Live copies of this part's own slice across the cluster right
    /// now — below the configured replication factor while a repair is
    /// pending, zero when the slice is lost.
    pub live_copies: usize,
    /// Rerouted fetches this part served on behalf of dead owners.
    pub rerouted_served_requests: u64,
    /// Bytes it served for them.
    pub rerouted_served_bytes: u64,
}

/// A failed engine run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// An unrecoverable fabric failure on a live part: a shutdown race,
    /// an ownership violation, or retry exhaustion that failover could
    /// not mask.
    Fetch(FetchError),
    /// A part fail-stopped and no live replica holds its slice
    /// (replication < 2, or the deaths outlived the replicas with
    /// rebalance off): its roots — and any results it produced — are
    /// unrecoverable, so the run's counts cannot be trusted.
    PartLost {
        /// The part that fail-stopped.
        part: usize,
    },
    /// The query's cooperative deadline expired before every part
    /// finished; the partial counts are discarded rather than returned.
    DeadlineExceeded {
        /// The query whose deadline fired.
        query_id: u64,
    },
}

impl std::fmt::Display for EngineError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EngineError::Fetch(e) => write!(f, "fetch failed: {e}"),
            EngineError::PartLost { part } => write!(
                f,
                "part {part} fail-stopped with no live replica to recover from \
                 (raise --replication, or leave --rebalance on so repairs \
                 outpace the next crash)"
            ),
            EngineError::DeadlineExceeded { query_id } => {
                write!(f, "query {query_id} exceeded its deadline before completing")
            }
        }
    }
}

impl std::error::Error for EngineError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            EngineError::Fetch(e) => Some(e),
            EngineError::PartLost { .. } | EngineError::DeadlineExceeded { .. } => None,
        }
    }
}

/// Everything tied to one query submission, as opposed to the engine's
/// process-wide state (graph, fabric, caches, worker pool). Legacy
/// entry points ([`Engine::count`] and friends) synthesize one per call;
/// the resident service constructs them explicitly per tenant.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct QueryCtx {
    /// Unique id of this query; tags spans, wire requests, and per-query
    /// metrics. Must come from [`Engine::next_query_id`] (id 0 is the
    /// conventional unattributed bucket and never a real query).
    pub query_id: u64,
    /// Fairness quantum: how many claimed roots this query may race ahead
    /// of the least-served concurrent query before its claims are paced.
    /// Pacing only delays claims — counts stay bit-identical to a solo
    /// run regardless of the budget.
    pub root_budget: u64,
    /// Optional cooperative deadline; past it the run stops and returns
    /// [`EngineError::DeadlineExceeded`] instead of partial counts.
    pub deadline: Option<Instant>,
}

/// Default fairness quantum for queries that don't specify one.
pub const DEFAULT_ROOT_BUDGET: u64 = 4096;

impl From<FetchError> for EngineError {
    fn from(e: FetchError) -> Self {
        EngineError::Fetch(e)
    }
}

/// Engine configuration (every knob of the paper's §4–§6 has a switch
/// here so ablation benches can toggle it).
#[derive(Debug, Clone, PartialEq)]
pub struct EngineConfig {
    /// Maximum embeddings per chunk (the chunk-size knob of §4.2/§7.7;
    /// the paper expresses it in bytes, which divides by the per-embedding
    /// footprint to the count used here).
    pub chunk_capacity: usize,
    /// Compute threads per part (the paper reserves one core in four for
    /// communication; each part here additionally runs one comm thread).
    pub compute_threads: usize,
    /// Work-claim granularity for the dynamic distribution of extensions
    /// (the paper's 64-embedding mini-batches, §6).
    pub mini_batch: usize,
    /// Horizontal data sharing within a chunk (§5.2; Figure 12 ablation).
    pub horizontal_sharing: bool,
    /// Circulant fetch ordering (§4.3; ablation switch).
    pub circulant: bool,
    /// Software cache configuration (§5.3; Table 6 / Figures 16–17).
    pub cache: CacheConfig,
    /// Optional network cost model applied to cross-machine fetches.
    pub network: Option<NetworkModel>,
    /// Request-fabric tuning: per-part in-flight window, retry policy,
    /// and optional fault injection. `window = 1` with no faults
    /// reproduces the old fully serialized transfer behaviour.
    pub fabric: FabricConfig,
    /// Run the simulated machines one after another instead of
    /// concurrently. On hosts with fewer cores than simulated machines
    /// this removes core-contention noise from the per-part timers, so
    /// [`RunStats::simulated_makespan`] estimates real-cluster runtime
    /// (used by the scalability experiments; see `EXPERIMENTS.md`).
    pub sequential_parts: bool,
    /// Observability: span tracing, histograms, and the gauge sampler.
    /// Disabled by default; every record site then costs one branch on a
    /// relaxed atomic flag.
    pub obs: ObsConfig,
    /// Cross-part work stealing (§6's dynamic distribution generalized
    /// across parts): idle parts claim unvisited root ranges from loaded
    /// parts through a run-scoped ledger. Off by default so traffic
    /// comparisons stay deterministic; the CLI turns it on. Forced off
    /// under `sequential_parts` (an idle sequential part can never be
    /// refilled by a concurrently loaded one).
    pub steal: StealConfig,
    /// Which carrier runs the steal/claim control plane: shared-memory
    /// atomics (the default) or typed control messages over the cluster's
    /// channel layer, with their own retry policy and fault injection.
    /// Both carriers produce bit-identical counts.
    pub control: ControlConfig,
    /// Incident capture: the flight-ring size, the bundle directory (off
    /// by default — no directory, no captures), the stall-watchdog
    /// window, and bundle retention.
    pub incident: IncidentConfig,
    /// Background re-replication after a fail-stop death: restore every
    /// short slice to the configured replication factor so a later
    /// crash of a different part stays survivable. On by default;
    /// effective only with replication ≥ 2 and more than one part.
    pub rebalance: RebalanceConfig,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            chunk_capacity: 16 * 1024,
            compute_threads: 2,
            mini_batch: 64,
            horizontal_sharing: true,
            circulant: true,
            cache: CacheConfig::default(),
            network: None,
            fabric: FabricConfig::default(),
            sequential_parts: false,
            obs: ObsConfig::default(),
            steal: StealConfig::default(),
            control: ControlConfig::default(),
            incident: IncidentConfig::default(),
            rebalance: RebalanceConfig::default(),
        }
    }
}

/// The Khuzdul distributed execution engine.
///
/// Owns the simulated cluster: the partitioned graph, the edge-list
/// service threads, and one software cache per part. A single engine can
/// run many plans (the caches persist across runs, as in the paper's
/// multi-pattern applications); [`Engine::shutdown`] stops the service.
#[derive(Debug)]
pub struct Engine {
    pg: PartitionedGraph,
    service: EdgeListService,
    caches: Vec<Arc<SharedCache>>,
    recorder: Arc<Recorder>,
    /// Flight ring + incident bundle capture (see [`IncidentConfig`]).
    incidents: Arc<IncidentManager>,
    /// Background re-replication service, running whenever rebalance is
    /// enabled, replication ≥ 2, and the cluster has several parts.
    /// `None` otherwise — the disarmed fail-fast envelope is unchanged.
    rebalancer: Option<Rebalancer>,
    cfg: EngineConfig,
    /// The persistent compute pool: `parts × compute_threads` workers,
    /// spawned once on the first multi-threaded run and parked between
    /// extend phases (and between runs) ever after. `None` until then and
    /// forever when `compute_threads <= 1`, which extends inline on the
    /// part coordinator.
    pool: OnceLock<WorkerPool>,
    /// Next query id; ids are unique per engine and never 0 (the
    /// unattributed bucket).
    next_query: AtomicU64,
    /// Cross-query fairness arbiter; every run registers its query here
    /// for the duration of the run.
    arbiter: Arc<QueryArbiter>,
    /// Number of query runs currently in flight (gates
    /// [`Engine::reset_caches`]).
    active_queries: AtomicUsize,
    /// Whether runs allocate a live [`QueryProgress`] tracker. Off by
    /// default: the claim/retire paths then see a `None` and touch
    /// nothing.
    progress_enabled: AtomicBool,
    /// Live progress trackers of in-flight queries, by query id.
    progress: Mutex<HashMap<u64, Arc<QueryProgress>>>,
    /// Recently finished trackers (bounded ring), for collectors that
    /// look the query up after the run returned.
    finished_progress: Mutex<std::collections::VecDeque<Arc<QueryProgress>>>,
}

impl Engine {
    /// Builds an engine over `pg` (which fixes machines × sockets).
    ///
    /// # Panics
    ///
    /// Panics if `cfg.chunk_capacity` is zero (extension could never make
    /// progress).
    pub fn new(pg: PartitionedGraph, cfg: EngineConfig) -> Engine {
        assert!(cfg.chunk_capacity >= 1, "chunk capacity must be positive");
        // The flight ring records coarse events whenever *either* full
        // span tracing or incident capture wants them; with both off it
        // is the disabled stub and every record is one relaxed branch.
        let flight = if cfg.incident.dir.is_some() || cfg.obs.enabled {
            FlightRecorder::new(cfg.incident.flight_capacity)
        } else {
            FlightRecorder::disabled()
        };
        let recorder = Recorder::with_flight(&cfg.obs, Arc::clone(&flight));
        let incidents =
            IncidentManager::new(&cfg.incident, flight, config_fingerprint(&format!("{cfg:?}")));
        let service = EdgeListService::start_observed(
            &pg,
            cfg.network,
            cfg.fabric.clone(),
            Arc::clone(&recorder),
        );
        let caches = (0..pg.part_count())
            .map(|_| Arc::new(SharedCache::for_part(&cfg.cache, pg.sockets_per_machine())))
            .collect();
        // Self-healing: with replicas to restore toward, arm the grace
        // wait (dead-owner fetches briefly wait out an in-flight repair
        // instead of failing) and start the background rebalancer.
        let rebalancer = (cfg.rebalance.enabled && pg.replication() >= 2 && pg.part_count() > 1)
            .then(|| {
                service.arm_rebalance();
                Rebalancer::start(
                    service.clone(),
                    (0..pg.part_count()).map(|p| pg.part_arc(p)).collect(),
                    pg.replication(),
                    cfg.rebalance.clone(),
                    Arc::clone(&incidents),
                )
            });
        Engine {
            pg,
            service,
            caches,
            recorder,
            incidents,
            rebalancer,
            cfg,
            pool: OnceLock::new(),
            next_query: AtomicU64::new(1),
            arbiter: Arc::new(QueryArbiter::new()),
            active_queries: AtomicUsize::new(0),
            progress_enabled: AtomicBool::new(false),
            progress: Mutex::new(HashMap::new()),
            finished_progress: Mutex::new(std::collections::VecDeque::new()),
        }
    }

    /// Turns on live per-query progress tracking for all subsequent runs.
    /// Disabled by default; when off, runs allocate nothing and the
    /// claim/retire hot paths take a single `None` branch.
    pub fn enable_progress(&self) {
        self.progress_enabled.store(true, Ordering::Release);
    }

    /// Whether progress tracking is on (see [`Engine::enable_progress`]).
    pub fn progress_enabled(&self) -> bool {
        self.progress_enabled.load(Ordering::Acquire)
    }

    /// The live progress tracker of an in-flight query, if tracking is on
    /// and the query is currently running.
    pub fn query_progress(&self, query_id: u64) -> Option<Arc<QueryProgress>> {
        self.progress.lock().get(&query_id).cloned()
    }

    /// Progress trackers of all in-flight queries, unordered.
    pub fn active_progress(&self) -> Vec<Arc<QueryProgress>> {
        self.progress.lock().values().cloned().collect()
    }

    /// Removes and returns the finished tracker for `query_id`, if it is
    /// still in the bounded finished ring.
    pub fn take_finished_progress(&self, query_id: u64) -> Option<Arc<QueryProgress>> {
        let mut ring = self.finished_progress.lock();
        let idx = ring.iter().position(|p| p.query_id() == query_id)?;
        ring.remove(idx)
    }

    /// Number of query runs currently in flight.
    pub fn active_query_count(&self) -> usize {
        self.active_queries.load(Ordering::SeqCst)
    }

    /// Allocates a fresh query id (unique per engine, never 0).
    pub fn next_query_id(&self) -> u64 {
        self.next_query.fetch_add(1, Ordering::Relaxed)
    }

    /// A [`QueryCtx`] with a fresh id, the default fairness budget, and
    /// no deadline — what every legacy single-query entry point runs as.
    pub fn default_query(&self) -> QueryCtx {
        QueryCtx {
            query_id: self.next_query_id(),
            root_budget: DEFAULT_ROOT_BUDGET,
            deadline: None,
        }
    }

    /// The partitioned graph the engine runs on.
    pub fn partitioned_graph(&self) -> &PartitionedGraph {
        &self.pg
    }

    /// The engine configuration.
    pub fn config(&self) -> &EngineConfig {
        &self.cfg
    }

    /// Cluster-wide communication metrics (monotonic across runs).
    pub fn metrics(&self) -> &ClusterMetrics {
        self.service.metrics()
    }

    /// The observability recorder (enabled per [`EngineConfig::obs`]).
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.recorder
    }

    /// The incident manager: the flight ring plus every bundle captured
    /// so far (see [`EngineConfig::incident`]).
    pub fn incidents(&self) -> &Arc<IncidentManager> {
        &self.incidents
    }

    /// Chrome trace-event JSON of every span recorded so far; load the
    /// written file in `chrome://tracing` or Perfetto.
    pub fn chrome_trace(&self) -> String {
        self.recorder.chrome_trace()
    }

    /// The versioned machine-readable report for `run`: the run's
    /// counters and breakdown plus the recorder's histograms, gauge
    /// series, and span accounting. `system` names the producer (e.g.
    /// `"khuzdul"`).
    pub fn report(&self, run: &RunStats, system: &str) -> RunReport {
        let mut report = run.to_report(system);
        self.recorder.augment_report(&mut report);
        report.incidents = self.incidents.incidents();
        report.rebalance = self.rebalance_section();
        report
    }

    /// One row per part of the replica-placement/health table served by
    /// `/status` and rendered by `gpm top`: liveness, the slices the
    /// part currently hosts copies of (its own plus replicas, including
    /// any installed by the rebalancer), how many live copies its own
    /// slice has right now, and the rerouted fetch traffic it has
    /// served on behalf of dead owners.
    pub fn part_health(&self) -> Vec<PartHealth> {
        let metrics = self.service.metrics();
        (0..self.pg.part_count())
            .map(|p| {
                let pm = metrics.part(p);
                PartHealth {
                    part: p,
                    alive: !self.service.is_part_dead(p),
                    hosted_slices: self.service.hosted_slices(p),
                    live_copies: self.service.live_copies(p),
                    rerouted_served_requests: pm.rerouted_served_requests(),
                    rerouted_served_bytes: pm.rerouted_served_bytes(),
                }
            })
            .collect()
    }

    /// The report's self-healing section: rebalancer transfer totals,
    /// current routing epoch, the minimum live copy count over all
    /// slices (the "are we back to `r`?" answer), and each holder's
    /// share of the rerouted fetch traffic the spread-failover policy
    /// handed it.
    pub fn rebalance_section(&self) -> RebalanceSection {
        let n = self.pg.part_count();
        let metrics = self.service.metrics();
        let per_holder_rerouted: Vec<HolderReroute> = (0..n)
            .filter_map(|p| {
                let pm = metrics.part(p);
                let (requests, bytes) = (pm.rerouted_served_requests(), pm.rerouted_served_bytes());
                (requests != 0 || bytes != 0).then_some(HolderReroute {
                    part: p as u64,
                    requests,
                    bytes,
                })
            })
            .collect();
        let stats = self.rebalancer.as_ref().map(|r| r.stats());
        RebalanceSection {
            enabled: self.rebalancer.is_some(),
            transfers: stats.map_or(0, |s| s.transfers()),
            bytes: stats.map_or(0, |s| s.bytes()),
            slices_restored: stats.map_or(0, |s| s.restored()),
            slices_lost: stats.map_or(0, |s| s.lost()),
            routing_epoch: self.service.routing_epoch(),
            configured_replication: self.pg.replication() as u64,
            min_effective_replication: (0..n)
                .map(|s| self.service.live_copies(s) as u64)
                .min()
                .unwrap_or(0),
            per_holder_rerouted,
        }
    }

    /// Names of the pooled compute threads, in spawn order (one
    /// `khuzdul-compute-{part}-{worker}` entry per worker). Empty until
    /// the first multi-threaded run spawns the pool, and stable across
    /// subsequent runs — the regression oracle that extend phases reuse
    /// pooled workers instead of spawning fresh threads.
    pub fn compute_thread_names(&self) -> Vec<String> {
        self.pool.get().map(|p| p.thread_names().to_vec()).unwrap_or_default()
    }

    /// Drops all cached edge lists (for between-run isolation in
    /// benchmarks) and returns `true` if the caches were cleared.
    ///
    /// **Invariant**: clearing is only sound while no query is in flight.
    /// A run's resolve phase inserts into the caches concurrently, so a
    /// clear racing it interleaves with those inserts: entries admitted
    /// before the clear survive in [`Engine::cache_bytes`] accounting
    /// while their bytes were subtracted wholesale, undercounting the
    /// total. The method therefore refuses (returns `false`, caches
    /// untouched) unless the engine is query-quiescent; callers retry
    /// after draining their queries.
    pub fn reset_caches(&self) -> bool {
        if self.active_queries.load(Ordering::SeqCst) > 0 {
            return false;
        }
        for c in &self.caches {
            c.clear();
        }
        true
    }

    /// Total bytes currently held by all part caches. Exact only while
    /// query-quiescent (see [`Engine::reset_caches`]); mid-run reads race
    /// concurrent inserts and may transiently lag.
    pub fn cache_bytes(&self) -> usize {
        self.caches.iter().map(|c| c.bytes()).sum()
    }

    /// Counts the embeddings `plan` produces over the whole cluster.
    ///
    /// # Panics
    ///
    /// Panics if the fabric reports an unrecoverable fault (see
    /// [`Engine::try_count`] for the non-panicking form).
    pub fn count(&self, plan: &MatchingPlan) -> RunStats {
        self.run(plan, None, None)
    }

    /// Like [`Engine::count`], but surfaces failures — shutdown races,
    /// ownership violations, retry exhaustion under fault injection, and
    /// unrecoverable part losses — as a typed [`EngineError`] instead of
    /// panicking.
    ///
    /// A fail-stop part failure with replication ≥ 2 is **not** an
    /// error: fetches fail over to replica holders, the dead part's
    /// partial results are discarded, and a recovery pass re-executes
    /// its lost roots on the survivors, so the returned counts are
    /// bit-identical to a fault-free run. The failover and re-execution
    /// volume is reported in [`RunStats::failures`].
    pub fn try_count(&self, plan: &MatchingPlan) -> Result<RunStats, EngineError> {
        self.try_run(plan, None, None, None)
    }

    /// Enumerates embeddings, calling `visit` (possibly concurrently from
    /// many threads) with the matched vertices in matching-order
    /// positions.
    pub fn enumerate<F>(&self, plan: &MatchingPlan, visit: F) -> RunStats
    where
        F: Fn(&[VertexId]) + Sync,
    {
        self.run(plan, Some(&visit), None)
    }

    /// Like [`Engine::enumerate`], but returns failures as typed
    /// [`EngineError`]s instead of panicking.
    ///
    /// Under a fail-stop part failure (with replication ≥ 2) the final
    /// *count* is exact, but `visit` is **at-least-once**: embeddings
    /// the dead part visited before dying are visited again when its
    /// roots are re-executed on survivors.
    pub fn try_enumerate<F>(&self, plan: &MatchingPlan, visit: F) -> Result<RunStats, EngineError>
    where
        F: Fn(&[VertexId]) + Sync,
    {
        self.try_run(plan, Some(&visit), None, None)
    }

    /// Enumerates embeddings with cooperative early termination: when
    /// `visit` returns `false`, the engine stops scheduling new work.
    /// In-flight extensions may still invoke `visit` a bounded number of
    /// times after the first `false` (the cancellation is cooperative,
    /// checked between work claims).
    ///
    /// Used by bounded queries: FSM's "support already above threshold"
    /// cut and exists-a-match queries.
    pub fn enumerate_until<F>(&self, plan: &MatchingPlan, visit: F) -> RunStats
    where
        F: Fn(&[VertexId]) -> bool + Sync,
    {
        let stop = std::sync::atomic::AtomicBool::new(false);
        let wrapped = |m: &[VertexId]| {
            if !visit(m) {
                stop.store(true, std::sync::atomic::Ordering::Relaxed);
            }
        };
        self.run(plan, Some(&wrapped), Some(&stop))
    }

    /// Returns one embedding of `plan` (vertices in matching-order
    /// positions), or `None` if the pattern does not occur. Stops the
    /// exploration as soon as a match is found.
    pub fn find_any(&self, plan: &MatchingPlan) -> Option<Vec<VertexId>> {
        let found = parking_lot::Mutex::new(None);
        self.enumerate_until(plan, |m| {
            let mut f = found.lock();
            if f.is_none() {
                *f = Some(m.to_vec());
            }
            false
        });
        found.into_inner()
    }

    /// Counts `plan` under an explicit [`QueryCtx`] — the resident
    /// service's entry point. Several such runs may execute concurrently
    /// on one engine: they share the worker pool, the fabric, and the
    /// caches, while each keeps its own root ledger, traffic accounting,
    /// and failure recovery.
    pub fn try_count_query(
        &self,
        plan: &MatchingPlan,
        query: &QueryCtx,
    ) -> Result<RunStats, EngineError> {
        self.try_run(plan, None, None, Some(*query))
    }

    fn run(
        &self,
        plan: &MatchingPlan,
        visitor: Option<Visitor<'_>>,
        stop: Option<&std::sync::atomic::AtomicBool>,
    ) -> RunStats {
        self.try_run(plan, visitor, stop, None).unwrap_or_else(|e| panic!("engine run failed: {e}"))
    }

    fn try_run(
        &self,
        plan: &MatchingPlan,
        visitor: Option<Visitor<'_>>,
        stop: Option<&std::sync::atomic::AtomicBool>,
        query: Option<QueryCtx>,
    ) -> Result<RunStats, EngineError> {
        assert!(
            !plan.requires_edge_labels(),
            "the distributed engine supports vertex labels only (like the paper's, §2.1); \
             run edge-labeled plans on gpm_pattern::interp or the single-machine baselines"
        );
        let query = query.unwrap_or_else(|| self.default_query());
        let qid = query.query_id;
        self.incidents.flight().record(FlightKind::QueryAdmit, qid, u64::MAX, 0);
        // Registered for the whole run (and deregistered on every return
        // path, so a failed query never wedges its peers' pacing).
        self.active_queries.fetch_add(1, Ordering::SeqCst);
        self.arbiter.register(qid);
        let _guard = QueryGuard { engine: self, qid };
        let qm = self.service.metrics().query(qid);
        let deadline_fired = Arc::new(AtomicBool::new(false));
        let parts = self.pg.part_count();
        // Run-scoped scheduler state: the root ledger every part claims
        // its seed batches from (and steals through, when enabled) and
        // one queue-depth gauge per part for the sampler.
        let stealing = self.cfg.steal.enabled && !self.cfg.sequential_parts && parts > 1;
        let ledger = self.make_ledger(stealing, qid);
        let gauges: Vec<Arc<AtomicUsize>> =
            (0..parts).map(|_| Arc::new(AtomicUsize::new(0))).collect();
        // Live progress tracker: the root multiset size is known up front
        // (the union of each part's owned vertices), so a monotone
        // completion fraction falls out of the ledger's claim/retire
        // traffic. Allocated only when tracking is enabled; the guard
        // moves it to the finished ring on every return path.
        let progress: Option<Arc<QueryProgress>> = self.progress_enabled().then(|| {
            let total: u64 = (0..parts).map(|p| self.pg.part(p).owned().len() as u64).sum();
            let p = Arc::new(QueryProgress::new(qid, total, parts));
            self.progress.lock().insert(qid, Arc::clone(&p));
            p
        });
        // The persistent pool outlives the run; first multi-threaded run
        // pays the spawn cost, every later one reuses the parked workers.
        let pool = (self.cfg.compute_threads > 1).then(|| {
            self.pool
                .get_or_init(|| WorkerPool::new(parts, self.cfg.compute_threads, &self.recorder))
        });
        // Stops and joins on drop, so both the error and success returns
        // below leave no sampler thread behind.
        let _sampler = GaugeSampler::start(
            &self.recorder,
            self.service.metrics(),
            gauges.clone(),
            self.cfg.obs.tick,
        );
        // Scheduler heartbeat: bumped on every claimed batch and every
        // batch retirement across all parts. The stall watchdog (started
        // only with incident capture + a window configured; joined on
        // every return path like the sampler) fires one `stall` bundle
        // if it freezes — the wedged-run case no error path reaches.
        let heartbeat = Arc::new(AtomicU64::new(0));
        let _watchdog = StallWatchdog::start(
            &self.incidents,
            Arc::clone(&heartbeat),
            qid,
            Arc::clone(&ledger),
            progress.clone(),
        );
        let t0 = Instant::now();
        let make_ctx = |part: usize, ledger: &Arc<dyn ControlPlane>| PartCtx {
            part: self.pg.part_arc(part),
            labels: self.pg.labels(),
            client: self.service.client_for_query(part, qid),
            cache: Arc::clone(&self.caches[part]),
            plan,
            cfg: &self.cfg,
            my_part: part,
            part_count: parts,
            owner: self.pg.owner_map(),
            visitor,
            stop,
            obs: Arc::clone(&self.recorder),
            ledger: Arc::clone(ledger),
            gate: pool.map(|p| p.gate(part)),
            queue_depth: Arc::clone(&gauges[part]),
            arbiter: Arc::clone(&self.arbiter),
            root_budget: query.root_budget,
            deadline: query.deadline,
            deadline_fired: Arc::clone(&deadline_fired),
            progress: progress.clone(),
            heartbeat: Arc::clone(&heartbeat),
        };
        // Per-part result slots: a part that aborts (fail-stop
        // self-check or a fetch error) leaves its slot empty.
        let mut slots: Vec<Option<PartStats>> = (0..parts).map(|_| None).collect();
        // First failure, tagged with the part that reported it: errors
        // from parts that turn out to be dead are the expected fail-stop
        // signal; errors from live parts are real.
        let mut failure: Option<(usize, FetchError)> = None;
        self.run_parts(&mut slots, &mut failure, (0..parts).collect(), |p| make_ctx(p, &ledger));
        // A failure run: every detected-dead part's results are discarded
        // wholesale and its roots re-executed on the survivors, making
        // counts bit-identical to a fault-free run (DESIGN.md §9).
        //
        // The pass itself is failover-capable: a part that crashes
        // *during* a recovery pass starts another round, which re-derives
        // what it took to its grave from the claim/donate logs of every
        // ledger used so far — its main-pass claims live in the original
        // ledger, its recovery-pass claims in that round's recovery
        // ledger. Each round kills at least one more part, so the loop is
        // bounded by `parts` (and exits earlier once the dead outnumber
        // the replicas).
        let mut all_dead: Vec<usize> = Vec::new();
        let mut ledgers: Vec<Arc<dyn ControlPlane>> = vec![Arc::clone(&ledger)];
        let mut reexecuted_roots = 0u64;
        loop {
            let new_dead: Vec<usize> =
                self.service.dead_parts().into_iter().filter(|d| !all_dead.contains(d)).collect();
            if new_dead.is_empty() {
                break;
            }
            // A fail-stopped part's results are never trusted, including
            // whatever it contributed to earlier passes as a survivor.
            for &d in &new_dead {
                slots[d] = None;
            }
            all_dead.extend(&new_dead);
            all_dead.sort_unstable();
            // Survivability gate. With the rebalancer running, a death
            // only loses data if a slice's every copy died before a
            // repair landed: wait for the repairs this death triggered
            // to settle, then ask liveness per dead-owned slice. With
            // rebalance off, the static envelope holds verbatim — once
            // the dead reach the replication factor, some slice has no
            // copy left.
            let lost_part = match &self.rebalancer {
                Some(rb) => {
                    rb.wait_for(&new_dead);
                    all_dead.iter().copied().find(|&d| self.service.live_copies(d) == 0)
                }
                None if self.pg.replication() <= all_dead.len() => Some(new_dead[0]),
                None => None,
            };
            if let Some(part) = lost_part {
                self.capture_incident(
                    TriggerKind::PartLost,
                    qid,
                    Some(part as u64),
                    all_dead.len() as u64,
                    format!(
                        "part {part} fail-stopped with no live replica (replication {}, dead {:?})",
                        self.pg.replication(),
                        all_dead
                    ),
                    &ledger,
                );
                return Err(EngineError::PartLost { part });
            }
            match failure.take() {
                // A dead part aborting itself is expected, not an error.
                Some((from, _)) if all_dead.contains(&from) => {}
                Some((_, e)) => return Err(EngineError::Fetch(e)),
                None => {}
            }
            let mut lost: Vec<VertexId> = Vec::new();
            for l in &ledgers {
                lost.extend(l.lost_roots(&new_dead)?);
            }
            let n_lost = lost.len() as u64;
            reexecuted_roots += n_lost;
            if let Some(p) = &progress {
                p.record_recovered(n_lost);
            }
            // One bundle per recovery round: the crash is survivable
            // (replicas mask it), but the operator still wants the
            // incident — which part died, how many roots re-execute, and
            // what the scheduler looked like at that moment.
            self.capture_incident(
                TriggerKind::PartFailed,
                qid,
                Some(new_dead[0] as u64),
                n_lost,
                format!(
                    "part(s) {new_dead:?} fail-stopped; re-executing {n_lost} lost roots \
                     on the survivors"
                ),
                &ledger,
            );
            let rts = self.recorder.now_ns();
            let recovery = self.make_recovery_ledger(lost, qid, &gauges, &all_dead);
            ledgers.push(Arc::clone(&recovery));
            let survivors: Vec<usize> = (0..parts).filter(|p| !all_dead.contains(p)).collect();
            self.run_parts(&mut slots, &mut failure, survivors, |p| make_ctx(p, &recovery));
            self.recorder.record_span(SpanKind::Recovery, new_dead[0] as u32, rts, n_lost);
            self.incidents.flight().record(FlightKind::Recovery, qid, new_dead[0] as u64, n_lost);
        }
        if let Some((_, e)) = failure {
            return Err(EngineError::Fetch(e));
        }
        // Dead parts report zeroed stats: everything they did was
        // discarded and re-executed elsewhere.
        for &d in &all_dead {
            slots[d] = Some(PartStats::default());
        }
        if deadline_fired.load(Ordering::Relaxed) {
            let elapsed = t0.elapsed();
            self.capture_incident(
                TriggerKind::DeadlineExceeded,
                qid,
                None,
                elapsed.as_nanos() as u64,
                format!(
                    "query {qid} missed its deadline; partial counts discarded after {elapsed:?}"
                ),
                &ledger,
            );
            return Err(EngineError::DeadlineExceeded { query_id: qid });
        }
        let per_part: Vec<PartStats> =
            slots.into_iter().map(|s| s.expect("every live part reports stats")).collect();
        let elapsed = t0.elapsed();
        // Per-query accounting replaces the old before/after snapshots of
        // the global counters: every client this run used was tagged with
        // `qid`, so these counters hold exactly this query's traffic even
        // with other queries running concurrently.
        let stats = RunStats {
            count: per_part.iter().map(|p| p.count).sum(),
            elapsed,
            per_part,
            traffic: TrafficSummary {
                network_bytes: qm.network_bytes(),
                cross_socket_bytes: qm.cross_socket_bytes(),
                requests: qm.requests(),
                cache_hits: qm.cache_hits(),
                cache_misses: qm.cache_misses(),
                coalesced: qm.coalesced_requests(),
                retries: qm.retries(),
            },
            failures: FailureSummary {
                // Dead parts observed by the end of this query's run; a
                // query admitted after a crash still pays the failover
                // and recovery for it, so it reports the failure too.
                parts_failed: all_dead.len() as u64,
                rerouted_requests: qm.rerouted_requests(),
                rerouted_bytes: qm.rerouted_bytes(),
                reexecuted_roots,
            },
            control: ControlSummary {
                sent: qm.ctrl_sent(),
                retried: qm.ctrl_retried(),
                dropped: qm.ctrl_dropped(),
            },
        };
        if let Some(p) = &progress {
            p.mark_done();
        }
        self.incidents.flight().record(FlightKind::QueryComplete, qid, u64::MAX, 1);
        Ok(stats)
    }

    /// Captures one incident bundle with the engine-wide context
    /// sections: every live query's progress snapshot, the cluster
    /// counter totals, and the triggering run's ledger state. The
    /// sections are built only when capture is enabled; the trigger's
    /// flight event is recorded either way.
    fn capture_incident(
        &self,
        kind: TriggerKind,
        qid: u64,
        part: Option<u64>,
        value: u64,
        detail: String,
        ledger: &Arc<dyn ControlPlane>,
    ) {
        let sections = if self.incidents.enabled() {
            CaptureSections {
                progress: self.active_progress().iter().map(|p| progress_json(p)).collect(),
                counters: Some(counters_json(&self.service.metrics().counter_snapshot())),
                ledger: Some(ledger_json(&ledger.state_summary())),
            }
        } else {
            CaptureSections::default()
        };
        self.incidents.capture(Trigger { kind, query_id: qid, part, value, detail }, sections);
    }

    /// Builds the run-scoped control plane in the configured carrier:
    /// the shared-memory ledger or the message-based one over the
    /// cluster's channel layer. Both enforce the same claim protocol, so
    /// counts are bit-identical either way.
    fn make_ledger(&self, stealing: bool, qid: u64) -> Arc<dyn ControlPlane> {
        let parts: Vec<_> = (0..self.pg.part_count()).map(|p| self.pg.part_arc(p)).collect();
        let batch = self.cfg.steal.batch.max(1);
        let numa = self.cfg.steal.numa.then(|| self.pg.sockets_per_machine().max(1));
        match self.cfg.control.mode {
            ControlMode::Shared => Arc::new(SharedLedger::new(parts, stealing, batch, numa)),
            ControlMode::Msg => Arc::new(MsgLedger::start(
                &parts,
                stealing,
                batch,
                numa,
                &self.cfg.control,
                qid,
                self.service.metrics(),
                Arc::clone(&self.recorder),
                Some(Arc::clone(&self.incidents)),
            )),
        }
    }

    /// A control plane for a recovery pass, in the same carrier as the
    /// main pass. Lost roots are **placed**, not spilled: each survivor
    /// gets a share inversely weighted by its current load (queue depth
    /// plus rerouted-fetch service in KiB), so recovery work lands on
    /// the parts that are not already busy serving the dead part's
    /// traffic. Placed roots are still stealable, so a bad estimate
    /// costs a steal, never a stall.
    fn make_recovery_ledger(
        &self,
        lost: Vec<VertexId>,
        qid: u64,
        gauges: &[Arc<AtomicUsize>],
        dead: &[usize],
    ) -> Arc<dyn ControlPlane> {
        let batch = self.cfg.steal.batch.max(1);
        let metrics = self.service.metrics();
        let loads: Vec<u64> = (0..self.pg.part_count())
            .map(|p| {
                gauges[p].load(Ordering::Relaxed) as u64
                    + metrics.part(p).rerouted_served_bytes() / 1024
            })
            .collect();
        let assignments = place_recovery_roots(lost, &loads, dead);
        match self.cfg.control.mode {
            ControlMode::Shared => Arc::new(SharedLedger::placed_recovery(
                (0..self.pg.part_count()).map(|p| self.pg.part_arc(p)).collect(),
                assignments,
                batch,
            )),
            ControlMode::Msg => Arc::new(MsgLedger::placed_recovery(
                assignments,
                batch,
                &self.cfg.control,
                qid,
                self.service.metrics(),
                Arc::clone(&self.recorder),
                Some(Arc::clone(&self.incidents)),
            )),
        }
    }

    /// Runs `run_part` for each part in `run`, sequentially or
    /// concurrently per the config. A part's stats are **merged** into
    /// its slot (the recovery pass adds to the survivor's main-pass
    /// stats); errors land in `failure` (first one wins) with the part
    /// that reported them, and all requested parts always run to
    /// completion — under failover a sibling's error must not strand
    /// the rest.
    fn run_parts<'e>(
        &self,
        slots: &mut [Option<PartStats>],
        failure: &mut Option<(usize, FetchError)>,
        run: Vec<usize>,
        make_ctx: impl Fn(usize) -> PartCtx<'e>,
    ) {
        let mut record = |part: usize, outcome: Result<PartStats, FetchError>| match outcome {
            Ok(stats) => match &mut slots[part] {
                Some(s) => s.merge(&stats),
                none => *none = Some(stats),
            },
            Err(e) => {
                failure.get_or_insert((part, e));
            }
        };
        if self.cfg.sequential_parts {
            for part in run {
                let outcome = run_part(make_ctx(part));
                record(part, outcome);
            }
        } else {
            let mut outcomes: Vec<(usize, Result<PartStats, FetchError>)> =
                Vec::with_capacity(run.len());
            crossbeam::thread::scope(|s| {
                let mut handles = Vec::with_capacity(run.len());
                for &part in &run {
                    let ctx = make_ctx(part);
                    handles.push((
                        part,
                        s.builder()
                            .name(format!("khuzdul-part-{part}"))
                            .spawn(move |_| run_part(ctx))
                            .expect("spawn part coordinator"),
                    ));
                }
                // Join every part before reporting: a failing part must
                // not leave siblings running against a dead fabric.
                for (part, h) in handles {
                    outcomes.push((part, h.join().expect("part coordinator panicked")));
                }
            })
            .expect("engine scope");
            for (part, outcome) in outcomes {
                record(part, outcome);
            }
        }
    }

    /// Stops the cluster service threads.
    ///
    /// Optional: dropping the engine shuts the service down too (and the
    /// shutdown is idempotent), so an early `?`-return that skips this
    /// call no longer leaks the responder threads or the parked worker
    /// pool. Kept for call sites that want the stop to be explicit.
    pub fn shutdown(self) {
        // Drop does the work.
    }
}

impl Drop for Engine {
    fn drop(&mut self) {
        // Idempotent: harmless after an explicit `shutdown()`. The worker
        // pool's own `Drop` (a field of `self`) then joins the parked
        // compute threads.
        self.service.shutdown();
    }
}

/// Deregisters a run's query from the fairness arbiter and the active
/// count on every exit path, error or success.
struct QueryGuard<'a> {
    engine: &'a Engine,
    qid: u64,
}

impl Drop for QueryGuard<'_> {
    fn drop(&mut self) {
        self.engine.arbiter.deregister(self.qid);
        // The run has read (or abandoned) its counters by now; drop the
        // registry entry so a resident service doesn't accumulate one
        // per retired query. Holders of the `Arc` keep theirs alive.
        self.engine.service.metrics().retire_query(self.qid);
        // Move the live progress tracker (if any) to the bounded finished
        // ring, so a collector can still attach it to the query outcome
        // after the run returned — on success *and* error paths alike.
        if let Some(p) = self.engine.progress.lock().remove(&self.qid) {
            let mut ring = self.engine.finished_progress.lock();
            ring.push_back(p);
            while ring.len() > FINISHED_PROGRESS_CAP {
                ring.pop_front();
            }
        }
        self.engine.active_queries.fetch_sub(1, Ordering::SeqCst);
    }
}

/// Background thread sampling per-part gauges (window occupancy,
/// cumulative network bytes) on the configured tick, feeding the
/// utilization time series of the run report. Started only when the
/// recorder is enabled; stopped and joined on drop.
struct GaugeSampler {
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl GaugeSampler {
    fn start(
        recorder: &Arc<Recorder>,
        metrics: &ClusterMetrics,
        queue_depths: Vec<Arc<AtomicUsize>>,
        tick: Duration,
    ) -> Option<GaugeSampler> {
        if !recorder.is_enabled() {
            return None;
        }
        let stop = Arc::new(AtomicBool::new(false));
        let flag = Arc::clone(&stop);
        let rec = Arc::clone(recorder);
        let metrics = metrics.clone();
        let handle = std::thread::Builder::new()
            .name("khuzdul-obs-sampler".to_string())
            .spawn(move || {
                while !flag.load(Ordering::Relaxed) {
                    let t_ns = rec.now_ns();
                    for p in 0..metrics.part_count() {
                        let pm = metrics.part(p);
                        rec.record_gauge(GaugeSample {
                            t_ns,
                            part: p as u32,
                            inflight: pm.inflight(),
                            network_bytes: pm.cross_machine_bytes(),
                            queue_depth: queue_depths
                                .get(p)
                                .map_or(0, |g| g.load(Ordering::Relaxed) as u64),
                        });
                    }
                    std::thread::sleep(tick);
                }
            })
            .expect("spawn gauge sampler");
        Some(GaugeSampler { stop, handle: Some(handle) })
    }
}

impl Drop for GaugeSampler {
    fn drop(&mut self) {
        self.stop.store(true, Ordering::Relaxed);
        if let Some(h) = self.handle.take() {
            let _ = h.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cache::CachePolicy;
    use gpm_graph::gen;
    use gpm_pattern::oracle;
    use gpm_pattern::plan::PlanOptions;
    use gpm_pattern::Pattern;

    fn engine_for(g: &gpm_graph::Graph, machines: usize, sockets: usize) -> Engine {
        let pg = PartitionedGraph::new(g, machines, sockets);
        Engine::new(pg, EngineConfig::default())
    }

    fn plan(p: &Pattern) -> MatchingPlan {
        MatchingPlan::compile(p, &PlanOptions::automine()).unwrap()
    }

    #[test]
    fn triangle_count_matches_oracle() {
        let g = gen::erdos_renyi(200, 900, 3);
        let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
        let engine = engine_for(&g, 4, 1);
        let run = engine.count(&plan(&Pattern::triangle()));
        assert_eq!(run.count, expect);
        assert!(run.traffic.network_bytes > 0, "distributed run must communicate");
        engine.shutdown();
    }

    #[test]
    fn clique_counts_match_oracle() {
        let g = gen::erdos_renyi(120, 900, 5);
        let engine = engine_for(&g, 3, 1);
        for k in [3usize, 4, 5] {
            let p = Pattern::clique(k);
            let expect = oracle::count_subgraphs(&g, &p, false);
            assert_eq!(engine.count(&plan(&p)).count, expect, "k = {k}");
        }
        engine.shutdown();
    }

    #[test]
    fn skewed_graph_patterns() {
        let g = gen::barabasi_albert(400, 4, 11);
        let engine = engine_for(&g, 4, 1);
        for p in [
            Pattern::triangle(),
            Pattern::path(4),
            Pattern::cycle(4),
            Pattern::tailed_triangle(),
            Pattern::clique(4),
        ] {
            let expect = oracle::count_subgraphs(&g, &p, false);
            assert_eq!(engine.count(&plan(&p)).count, expect, "pattern {p}");
        }
        engine.shutdown();
    }

    #[test]
    fn counts_invariant_under_machine_count() {
        let g = gen::erdos_renyi(150, 700, 9);
        let p = Pattern::cycle(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        for machines in [1, 2, 3, 5, 8] {
            let engine = engine_for(&g, machines, 1);
            assert_eq!(engine.count(&plan(&p)).count, expect, "{machines} machines");
            engine.shutdown();
        }
    }

    #[test]
    fn counts_invariant_under_partitioner() {
        use gpm_graph::partition::Partitioner;
        let g = gen::barabasi_albert(250, 5, 15);
        let p = Pattern::clique(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        for strategy in [Partitioner::Hash, Partitioner::Range] {
            let pg = PartitionedGraph::with_partitioner(&g, 4, 1, strategy);
            let engine = Engine::new(pg, EngineConfig::default());
            assert_eq!(engine.count(&plan(&p)).count, expect, "{strategy:?}");
            engine.shutdown();
        }
    }

    #[test]
    fn counts_invariant_under_numa_sockets() {
        let g = gen::erdos_renyi(150, 700, 2);
        let p = Pattern::clique(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        for sockets in [1, 2, 4] {
            let engine = engine_for(&g, 2, sockets);
            assert_eq!(engine.count(&plan(&p)).count, expect, "{sockets} sockets");
            engine.shutdown();
        }
    }

    #[test]
    fn counts_invariant_under_chunk_capacity() {
        // Tiny chunks force deep pause/resume chains — the paper's Fig 7
        // execution — and must not change results.
        let g = gen::barabasi_albert(150, 4, 3);
        let p = Pattern::clique(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        for cap in [2usize, 7, 64, 1024, 1 << 20] {
            let pg = PartitionedGraph::new(&g, 3, 1);
            let engine =
                Engine::new(pg, EngineConfig { chunk_capacity: cap, ..EngineConfig::default() });
            assert_eq!(engine.count(&plan(&p)).count, expect, "capacity {cap}");
            engine.shutdown();
        }
    }

    #[test]
    fn counts_invariant_under_thread_count() {
        let g = gen::erdos_renyi(200, 1200, 4);
        let p = Pattern::clique(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        for threads in [1usize, 2, 4] {
            let pg = PartitionedGraph::new(&g, 2, 1);
            let engine = Engine::new(
                pg,
                EngineConfig { compute_threads: threads, ..EngineConfig::default() },
            );
            assert_eq!(engine.count(&plan(&p)).count, expect, "{threads} threads");
            engine.shutdown();
        }
    }

    #[test]
    fn counts_invariant_under_sharing_toggles() {
        let g = gen::barabasi_albert(250, 5, 6);
        let p = Pattern::clique(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        for horizontal in [false, true] {
            for circulant in [false, true] {
                let pg = PartitionedGraph::new(&g, 4, 1);
                let engine = Engine::new(
                    pg,
                    EngineConfig {
                        horizontal_sharing: horizontal,
                        circulant,
                        ..EngineConfig::default()
                    },
                );
                assert_eq!(engine.count(&plan(&p)).count, expect);
                engine.shutdown();
            }
        }
    }

    #[test]
    fn counts_invariant_under_cache_policy() {
        let g = gen::barabasi_albert(200, 5, 8);
        let p = Pattern::triangle();
        let expect = oracle::count_subgraphs(&g, &p, false);
        for policy in [
            CachePolicy::Disabled,
            CachePolicy::Static,
            CachePolicy::Fifo,
            CachePolicy::Lifo,
            CachePolicy::Lru,
            CachePolicy::Mru,
        ] {
            let pg = PartitionedGraph::new(&g, 4, 1);
            let engine = Engine::new(
                pg,
                EngineConfig {
                    cache: CacheConfig { policy, ..CacheConfig::default() },
                    ..EngineConfig::default()
                },
            );
            assert_eq!(engine.count(&plan(&p)).count, expect, "{policy:?}");
            engine.shutdown();
        }
    }

    #[test]
    fn horizontal_sharing_reduces_fetch_workload() {
        // Fabric-level coalescing dedups the same duplicate vertices that
        // horizontal sharing removes upstream, so the *wire* traffic of
        // the two runs matches; sharing's benefit now shows up as far
        // fewer duplicates reaching (and being absorbed by) the fabric.
        let g = gen::barabasi_albert(300, 6, 1);
        let p = Pattern::clique(4);
        let mk = |horizontal: bool| {
            let pg = PartitionedGraph::new(&g, 4, 1);
            let engine = Engine::new(
                pg,
                EngineConfig {
                    horizontal_sharing: horizontal,
                    cache: CacheConfig::disabled(),
                    ..EngineConfig::default()
                },
            );
            let run = engine.count(&plan(&p));
            engine.shutdown();
            run
        };
        let with = mk(true);
        let without = mk(false);
        assert_eq!(with.count, without.count);
        assert!(
            with.traffic.network_bytes <= without.traffic.network_bytes,
            "horizontal sharing must not increase traffic ({} vs {})",
            with.traffic.network_bytes,
            without.traffic.network_bytes
        );
        assert!(
            with.traffic.coalesced < without.traffic.coalesced,
            "without sharing the fabric must absorb the duplicate requests \
             ({} coalesced vs {})",
            with.traffic.coalesced,
            without.traffic.coalesced
        );
    }

    #[test]
    fn larger_window_reduces_comm_wait() {
        use std::time::Duration;
        // With a network model attached, window=1 pays the full modelled
        // delay per transfer back-to-back (the old blocking behaviour);
        // window=8 keeps several transfers in flight so their modelled
        // delays overlap and the summed comm-wait drops.
        let g = gen::barabasi_albert(300, 6, 23);
        let p = Pattern::clique(4);
        let mk = |window: usize| {
            let pg = PartitionedGraph::new(&g, 4, 1);
            let engine = Engine::new(
                pg,
                EngineConfig {
                    network: Some(NetworkModel { latency_us: 2000.0, bandwidth_gbps: 56.0 }),
                    sequential_parts: true,
                    cache: CacheConfig::disabled(),
                    fabric: FabricConfig { window, ..FabricConfig::default() },
                    ..EngineConfig::default()
                },
            );
            let run = engine.count(&plan(&p));
            engine.shutdown();
            run
        };
        let serial = mk(1);
        let windowed = mk(8);
        assert_eq!(serial.count, windowed.count);
        assert_eq!(serial.traffic.network_bytes, windowed.traffic.network_bytes);
        let wait = |r: &RunStats| r.per_part.iter().map(|p| p.network).sum::<Duration>();
        let (s, w) = (wait(&serial), wait(&windowed));
        assert!(
            s.as_secs_f64() > w.as_secs_f64() * 1.3,
            "window=8 must overlap transfers (window=1 waited {s:?}, window=8 waited {w:?})"
        );
    }

    #[test]
    fn counts_survive_dropped_replies() {
        use gpm_cluster::{FaultPlan, RetryPolicy};
        use std::time::Duration;
        let g = gen::erdos_renyi(150, 700, 5);
        let p = Pattern::triangle();
        let expect = oracle::count_subgraphs(&g, &p, false);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let engine = Engine::new(
            pg,
            EngineConfig {
                fabric: FabricConfig {
                    window: 4,
                    retry: RetryPolicy {
                        max_attempts: 10,
                        timeout: Duration::from_millis(30),
                        backoff: Duration::from_micros(500),
                    },
                    fault: Some(FaultPlan::drops(0.05)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let run = engine.try_count(&plan(&p)).expect("retries must mask 5% dropped replies");
        assert_eq!(run.count, expect);
        assert!(run.traffic.retries > 0, "the fault plan must actually have dropped replies");
        engine.shutdown();
    }

    #[test]
    fn exhausted_retries_surface_as_typed_error() {
        use gpm_cluster::{FaultPlan, RetryPolicy};
        use std::time::Duration;
        let g = gen::erdos_renyi(100, 500, 3);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Engine::new(
            pg,
            EngineConfig {
                fabric: FabricConfig {
                    window: 2,
                    retry: RetryPolicy {
                        max_attempts: 2,
                        timeout: Duration::from_millis(5),
                        backoff: Duration::from_micros(100),
                    },
                    fault: Some(FaultPlan::drops(1.0)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        match engine.try_count(&plan(&Pattern::triangle())) {
            Err(EngineError::Fetch(FetchError::Timeout { .. })) => {}
            other => panic!("expected a timeout error, got {other:?}"),
        }
        engine.shutdown();
    }

    /// Short-fuse retry policy for crash tests: in-flight requests that
    /// the dying responder abandons must time out quickly so the pending
    /// fetch resubmits, sees `PartDead`, and fails over.
    fn crash_retry() -> gpm_cluster::RetryPolicy {
        use std::time::Duration;
        gpm_cluster::RetryPolicy {
            max_attempts: 4,
            timeout: Duration::from_millis(50),
            backoff: Duration::from_millis(1),
        }
    }

    #[test]
    fn crashed_part_fails_over_and_recovers_exact_counts() {
        use gpm_cluster::FaultPlan;
        let g = gen::erdos_renyi(150, 700, 5);
        let p = Pattern::triangle();
        let expect = oracle::count_subgraphs(&g, &p, false);
        for steal in [false, true] {
            let pg = PartitionedGraph::with_replication(&g, 4, 1, 2);
            let engine = Engine::new(
                pg,
                EngineConfig {
                    // Small chunks split the fetch workload into many wire
                    // requests so the crash lands mid-run, with live
                    // fetches still headed for the dead part.
                    chunk_capacity: 64,
                    steal: StealConfig { enabled: steal, batch: 8, ..StealConfig::default() },
                    obs: ObsConfig::enabled(),
                    fabric: FabricConfig {
                        retry: crash_retry(),
                        fault: Some(FaultPlan::crash_at(2, 4)),
                        ..FabricConfig::default()
                    },
                    ..EngineConfig::default()
                },
            );
            let run = engine.try_count(&plan(&p)).expect("a replica must mask the crash");
            assert_eq!(run.count, expect, "steal={steal}");
            // The failure must be visible in the run stats: the dead part
            // was detected, traffic was re-routed to the replica holder,
            // and the recovery pass re-executed the lost roots.
            assert_eq!(run.failures.parts_failed, 1, "steal={steal}");
            assert!(run.failures.rerouted_requests > 0, "steal={steal}");
            assert!(run.failures.rerouted_bytes > 0, "steal={steal}");
            assert!(run.failures.reexecuted_roots > 0, "steal={steal}");
            let report = engine.report(&run, "khuzdul");
            assert_eq!(report.failures.parts_failed, 1);
            assert_eq!(report.failures.rerouted_bytes, run.failures.rerouted_bytes);
            assert_eq!(report.failures.reexecuted_roots, run.failures.reexecuted_roots);
            gpm_obs::validate_report(&report.to_json()).expect("crash-run report must validate");
            let spans = engine.recorder().spans();
            for kind in [SpanKind::PartCrash, SpanKind::PartFailed, SpanKind::Recovery] {
                assert!(spans.iter().any(|s| s.kind == kind), "missing {kind:?} span");
            }
            engine.shutdown();
        }
    }

    #[test]
    fn crash_without_a_replica_is_part_lost() {
        use gpm_cluster::FaultPlan;
        let g = gen::erdos_renyi(150, 700, 5);
        let pg = PartitionedGraph::new(&g, 4, 1); // replication = 1
        let engine = Engine::new(
            pg,
            EngineConfig {
                chunk_capacity: 64,
                fabric: FabricConfig {
                    retry: crash_retry(),
                    fault: Some(FaultPlan::crash_at(2, 4)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        match engine.try_count(&plan(&Pattern::triangle())) {
            Err(EngineError::PartLost { part: 2 }) => {}
            other => panic!("expected PartLost for part 2, got {other:?}"),
        }
        engine.shutdown();
    }

    #[test]
    fn immediate_crash_recovers_the_whole_partition() {
        use gpm_cluster::FaultPlan;
        // `after_requests: 0` kills part 1 on the very first fetch that
        // targets it, so essentially all of its work is re-executed.
        let g = gen::erdos_renyi(120, 500, 7);
        let p = Pattern::triangle();
        let expect = oracle::count_subgraphs(&g, &p, false);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let engine = Engine::new(
            pg,
            EngineConfig {
                fabric: FabricConfig {
                    retry: crash_retry(),
                    fault: Some(FaultPlan::crash_at(1, 0)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let run = engine.try_count(&plan(&p)).expect("a replica must mask the crash");
        assert_eq!(run.count, expect);
        assert!(run.failures.reexecuted_roots > 0);
        // The dead part reports no stats of its own: its slot is zeroed
        // and the re-executed work lands on the survivors.
        assert_eq!(run.per_part[1].count, 0);
        engine.shutdown();
    }

    /// Regression: a second fail-stop crash landing while the recovery
    /// pass is already re-executing the first casualty's roots used to
    /// surface as a fetch error — the engine ran exactly one recovery
    /// round and treated any failure during it as fatal. The recovery
    /// loop must instead fail over again, round after round, as long as
    /// replication outnumbers the dead. Replication 3 masks two deaths.
    #[test]
    fn chained_crashes_fail_over_round_after_round() {
        use gpm_cluster::{CrashAt, FaultPlan};
        let g = gen::erdos_renyi(150, 700, 5);
        let p = Pattern::triangle();
        let expect = oracle::count_subgraphs(&g, &p, false);
        for steal in [false, true] {
            let pg = PartitionedGraph::with_replication(&g, 4, 1, 3);
            let engine = Engine::new(
                pg,
                EngineConfig {
                    chunk_capacity: 64,
                    steal: StealConfig { enabled: steal, batch: 8, ..StealConfig::default() },
                    obs: ObsConfig::enabled(),
                    fabric: FabricConfig {
                        retry: crash_retry(),
                        fault: Some(FaultPlan {
                            crashes: vec![
                                // The first part dies on the very first
                                // fetch, so its whole root set re-executes
                                // and the recovery pass runs long...
                                CrashAt { part: 1, after_requests: 0 },
                                // ...and the second fuse burns through the
                                // main pass and often into that recovery;
                                // the loop must absorb the death in either
                                // phase without losing a root.
                                CrashAt { part: 2, after_requests: 8 },
                            ],
                            ..FaultPlan::default()
                        }),
                        ..FabricConfig::default()
                    },
                    ..EngineConfig::default()
                },
            );
            let run = engine.try_count(&plan(&p)).expect("replication 3 must mask two crashes");
            assert_eq!(run.count, expect, "steal={steal}");
            assert_eq!(run.failures.parts_failed, 2, "steal={steal}");
            assert!(run.failures.reexecuted_roots > 0, "steal={steal}");
            // Both dead parts' partial results are discarded; survivors
            // absorb the re-executed roots.
            assert_eq!(run.per_part[1].count + run.per_part[2].count, 0, "steal={steal}");
            let spans = engine.recorder().spans();
            assert!(
                spans.iter().any(|s| s.kind == SpanKind::Recovery),
                "steal={steal}: no recovery span"
            );
            engine.shutdown();
        }
    }

    #[test]
    fn static_cache_reduces_traffic() {
        let g = gen::barabasi_albert(300, 6, 2);
        let p = Pattern::clique(4);
        let mk = |cache: CacheConfig| {
            let pg = PartitionedGraph::new(&g, 4, 1);
            let engine = Engine::new(pg, EngineConfig { cache, ..EngineConfig::default() });
            let run = engine.count(&plan(&p));
            engine.shutdown();
            run
        };
        let with = mk(CacheConfig { degree_threshold: 4, ..CacheConfig::default() });
        let without = mk(CacheConfig::disabled());
        assert_eq!(with.count, without.count);
        assert!(with.traffic.network_bytes < without.traffic.network_bytes);
        assert!(with.traffic.cache_hits > 0);
    }

    #[test]
    fn enumerate_visits_every_embedding() {
        let g = gen::erdos_renyi(80, 350, 8);
        let p = Pattern::triangle();
        let engine = engine_for(&g, 2, 1);
        let seen = std::sync::Mutex::new(Vec::new());
        let run = engine.enumerate(&plan(&p), |m| {
            let mut t = m.to_vec();
            t.sort_unstable();
            seen.lock().unwrap().push((t[0], t[1], t[2]));
        });
        let mut seen = seen.into_inner().unwrap();
        seen.sort_unstable();
        let expect = oracle::count_subgraphs(&g, &p, false);
        assert_eq!(run.count, expect);
        assert_eq!(seen.len() as u64, expect);
        seen.dedup();
        assert_eq!(seen.len() as u64, expect, "duplicate triangles visited");
        // Each visited triple really is a triangle.
        for (a, b, c) in seen {
            assert!(g.has_edge(a, b) && g.has_edge(b, c) && g.has_edge(a, c));
        }
        engine.shutdown();
    }

    #[test]
    fn labeled_pattern_counting() {
        let g = gen::with_random_labels(&gen::erdos_renyi(150, 700, 5), 3, 9);
        let p = Pattern::path(3).with_labels(vec![0, 1, 2]).unwrap();
        let expect = oracle::count_subgraphs(&g, &p, false);
        let engine = engine_for(&g, 3, 1);
        assert_eq!(engine.count(&plan(&p)).count, expect);
        engine.shutdown();
    }

    #[test]
    fn induced_pattern_counting() {
        let g = gen::erdos_renyi(100, 500, 6);
        let p = Pattern::path(4);
        let expect = oracle::count_subgraphs(&g, &p, true);
        let opts = PlanOptions { induced: true, ..PlanOptions::automine() };
        let plan = MatchingPlan::compile(&p, &opts).unwrap();
        let engine = engine_for(&g, 3, 1);
        assert_eq!(engine.count(&plan).count, expect);
        engine.shutdown();
    }

    #[test]
    fn edge_and_single_vertex_patterns() {
        let g = gen::erdos_renyi(100, 300, 2);
        let engine = engine_for(&g, 2, 1);
        assert_eq!(engine.count(&plan(&Pattern::edge())).count, 300);
        assert_eq!(engine.count(&plan(&Pattern::single_vertex())).count, 100);
        engine.shutdown();
    }

    #[test]
    fn multiple_runs_share_cache() {
        let g = gen::barabasi_albert(200, 5, 4);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let engine = Engine::new(
            pg,
            EngineConfig {
                cache: CacheConfig { degree_threshold: 4, ..CacheConfig::default() },
                ..EngineConfig::default()
            },
        );
        let p = plan(&Pattern::triangle());
        let first = engine.count(&p);
        let warm = engine.count(&p);
        assert_eq!(first.count, warm.count);
        assert!(engine.cache_bytes() > 0);
        assert!(
            warm.traffic.network_bytes <= first.traffic.network_bytes,
            "warm cache cannot increase traffic"
        );
        assert!(engine.reset_caches(), "quiescent engine must clear");
        assert_eq!(engine.cache_bytes(), 0);
        engine.shutdown();
    }

    /// Live threads of this process, per /proc (Linux-only, like CI).
    fn thread_count() -> usize {
        let status = std::fs::read_to_string("/proc/self/status").expect("read /proc/self/status");
        status
            .lines()
            .find_map(|l| l.strip_prefix("Threads:"))
            .and_then(|v| v.trim().parse().ok())
            .expect("Threads: line present")
    }

    #[test]
    fn dropped_engines_leak_no_threads() {
        use gpm_cluster::{FaultPlan, RetryPolicy};
        let g = gen::erdos_renyi(100, 400, 3);
        let p = Pattern::triangle();
        // Warm-up engine so any lazy process-wide state is in place.
        {
            let engine = engine_for(&g, 2, 1);
            engine.count(&plan(&p));
        }
        let baseline = thread_count();
        for i in 0..5 {
            // Odd iterations error the query first (retries exhausted)
            // and never call `shutdown()` — the old leak scenario.
            if i % 2 == 1 {
                let pg = PartitionedGraph::new(&g, 2, 1);
                let engine = Engine::new(
                    pg,
                    EngineConfig {
                        fabric: FabricConfig {
                            retry: RetryPolicy {
                                max_attempts: 2,
                                timeout: Duration::from_millis(5),
                                backoff: Duration::from_micros(100),
                            },
                            fault: Some(FaultPlan::drops(1.0)),
                            ..FabricConfig::default()
                        },
                        ..EngineConfig::default()
                    },
                );
                assert!(engine.try_count(&plan(&p)).is_err());
                drop(engine);
            } else {
                let engine = engine_for(&g, 2, 1);
                engine.count(&plan(&p));
                drop(engine);
            }
        }
        let after = thread_count();
        assert!(
            after <= baseline,
            "dropped engines leaked threads: {baseline} before, {after} after"
        );
    }

    #[test]
    fn explicit_shutdown_then_drop_is_idempotent() {
        let g = gen::erdos_renyi(80, 300, 1);
        let engine = engine_for(&g, 2, 1);
        engine.count(&plan(&Pattern::triangle()));
        // `shutdown(self)` consumes the engine and its Drop runs the
        // (idempotent) service shutdown a second time — must not panic.
        engine.shutdown();
    }

    #[test]
    fn deadline_expiry_is_a_typed_error() {
        let g = gen::erdos_renyi(150, 700, 5);
        let engine = engine_for(&g, 2, 1);
        let p = plan(&Pattern::triangle());
        let q = QueryCtx { deadline: Some(Instant::now()), ..engine.default_query() };
        match engine.try_count_query(&p, &q) {
            Err(EngineError::DeadlineExceeded { query_id }) => assert_eq!(query_id, q.query_id),
            other => panic!("expected DeadlineExceeded, got {other:?}"),
        }
        // The engine survives an expired query: a fresh run still works.
        let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
        assert_eq!(engine.count(&p).count, expect);
        engine.shutdown();
    }

    fn incident_dir(tag: &str) -> std::path::PathBuf {
        let dir =
            std::env::temp_dir().join(format!("khuzdul-engine-inc-{tag}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        dir
    }

    #[test]
    fn deadline_miss_captures_an_incident_bundle() {
        let g = gen::erdos_renyi(150, 700, 5);
        let dir = incident_dir("deadline");
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Engine::new(
            pg,
            EngineConfig {
                incident: IncidentConfig { dir: Some(dir.clone()), ..IncidentConfig::default() },
                ..EngineConfig::default()
            },
        );
        engine.enable_progress();
        let p = plan(&Pattern::triangle());
        let q = QueryCtx { deadline: Some(Instant::now()), ..engine.default_query() };
        assert!(matches!(
            engine.try_count_query(&p, &q),
            Err(EngineError::DeadlineExceeded { .. })
        ));
        let incidents = engine.incidents().incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].trigger, "deadline_exceeded");
        assert_eq!(incidents[0].query_id, q.query_id);
        let json = std::fs::read_to_string(&incidents[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("deadline bundle validates");
        // Engine-side captures carry the full context sections.
        assert!(json.contains("\"fetch_requests\""), "counters section present");
        assert!(json.contains("\"carrier\""), "ledger section present");
        // The report's incidents[] mirrors the captures and still
        // validates under the report schema.
        let run = engine.count(&p);
        let report = engine.report(&run, "khuzdul");
        assert_eq!(report.incidents.len(), 1);
        assert_eq!(report.incidents[0].trigger, "deadline_exceeded");
        gpm_obs::validate_report(&report.to_json()).expect("report with incidents validates");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn masked_crash_emits_exactly_one_part_failed_bundle() {
        use gpm_cluster::FaultPlan;
        let g = gen::erdos_renyi(150, 700, 5);
        let p = Pattern::triangle();
        let expect = oracle::count_subgraphs(&g, &p, false);
        let dir = incident_dir("partfailed");
        let pg = PartitionedGraph::with_replication(&g, 4, 1, 2);
        let engine = Engine::new(
            pg,
            EngineConfig {
                chunk_capacity: 64,
                incident: IncidentConfig { dir: Some(dir.clone()), ..IncidentConfig::default() },
                fabric: FabricConfig {
                    retry: crash_retry(),
                    fault: Some(FaultPlan::crash_at(2, 4)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        let run = engine.try_count(&plan(&p)).expect("a replica must mask the crash");
        assert_eq!(run.count, expect);
        let incidents = engine.incidents().incidents();
        assert_eq!(incidents.len(), 1, "one crash, one bundle: {incidents:?}");
        assert_eq!(incidents[0].trigger, "part_failed");
        let json = std::fs::read_to_string(&incidents[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("part-failed bundle validates");
        assert!(json.contains("\"part\": 2") || json.contains("\"part\":2"));
        // The flight slice recorded the crash and the recovery pass
        // around the trigger.
        assert!(json.contains("\"part_crash\""));
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn unmasked_crash_emits_a_part_lost_bundle() {
        use gpm_cluster::FaultPlan;
        let g = gen::erdos_renyi(150, 700, 5);
        let dir = incident_dir("partlost");
        let pg = PartitionedGraph::new(&g, 4, 1); // replication = 1
        let engine = Engine::new(
            pg,
            EngineConfig {
                chunk_capacity: 64,
                incident: IncidentConfig { dir: Some(dir.clone()), ..IncidentConfig::default() },
                fabric: FabricConfig {
                    retry: crash_retry(),
                    fault: Some(FaultPlan::crash_at(2, 4)),
                    ..FabricConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        assert!(matches!(
            engine.try_count(&plan(&Pattern::triangle())),
            Err(EngineError::PartLost { part: 2 })
        ));
        let incidents = engine.incidents().incidents();
        assert_eq!(incidents.len(), 1);
        assert_eq!(incidents[0].trigger, "part_lost");
        let json = std::fs::read_to_string(&incidents[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("part-lost bundle validates");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn wedged_msg_control_run_trips_the_stall_watchdog() {
        use gpm_cluster::{FaultPlan, RetryPolicy};
        let g = gen::erdos_renyi(100, 500, 3);
        let dir = incident_dir("stall");
        let pg = PartitionedGraph::new(&g, 2, 1);
        let engine = Engine::new(
            pg,
            EngineConfig {
                // Message-based control plane where every reply is
                // dropped: claims retry for far longer than the stall
                // window, so the heartbeat never moves and the run is
                // wedged until the retry budget finally expires.
                control: ControlConfig {
                    mode: ControlMode::Msg,
                    retry: RetryPolicy {
                        max_attempts: 6,
                        timeout: Duration::from_millis(100),
                        backoff: Duration::from_millis(1),
                    },
                    fault: Some(FaultPlan::drops(1.0)),
                },
                steal: StealConfig { enabled: true, ..StealConfig::default() },
                incident: IncidentConfig {
                    dir: Some(dir.clone()),
                    stall: Some(Duration::from_millis(120)),
                    ..IncidentConfig::default()
                },
                ..EngineConfig::default()
            },
        );
        engine.enable_progress();
        assert!(engine.try_count(&plan(&Pattern::triangle())).is_err(), "all-drops wire fails");
        let incidents = engine.incidents().incidents();
        let stalls: Vec<_> = incidents.iter().filter(|i| i.trigger == "stall").collect();
        assert_eq!(stalls.len(), 1, "the watchdog fires exactly once: {incidents:?}");
        let json = std::fs::read_to_string(&stalls[0].path).unwrap();
        crate::incident::validate_bundle(&json).expect("stall bundle validates");
        // The stall bundle dumps the scheduler state: the msg carrier's
        // client-side summary plus the live progress snapshot.
        assert!(json.contains("\"msg\""), "ledger carrier recorded");
        assert!(json.contains("\"roots_total\""), "progress snapshot recorded");
        engine.shutdown();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn reset_caches_refuses_while_a_query_is_in_flight() {
        let g = gen::barabasi_albert(200, 5, 4);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let engine = Engine::new(
            pg,
            EngineConfig {
                cache: CacheConfig { degree_threshold: 4, ..CacheConfig::default() },
                ..EngineConfig::default()
            },
        );
        let refused = AtomicBool::new(false);
        engine.enumerate(&plan(&Pattern::triangle()), |_| {
            // Mid-run: the engine is not query-quiescent, so clearing
            // must be refused (a clear racing resolve-phase inserts
            // undercuts the cache-bytes accounting).
            if !engine.reset_caches() {
                refused.store(true, Ordering::Relaxed);
            }
        });
        assert!(refused.load(Ordering::Relaxed), "mid-run reset must be refused");
        assert!(engine.cache_bytes() > 0, "refused reset must leave the cache intact");
        assert!(engine.reset_caches(), "quiescent engine must clear");
        assert_eq!(engine.cache_bytes(), 0);
        engine.shutdown();
    }

    #[test]
    fn concurrent_queries_on_one_engine_match_solo_counts() {
        let g = gen::barabasi_albert(250, 5, 33);
        let patterns =
            [Pattern::triangle(), Pattern::clique(4), Pattern::path(4), Pattern::cycle(4)];
        let expect: Vec<u64> =
            patterns.iter().map(|p| oracle::count_subgraphs(&g, p, false)).collect();
        let engine = engine_for(&g, 4, 1);
        let counts = std::sync::Mutex::new(vec![0u64; patterns.len()]);
        std::thread::scope(|s| {
            for (i, p) in patterns.iter().enumerate() {
                let engine = &engine;
                let counts = &counts;
                s.spawn(move || {
                    let q = QueryCtx { root_budget: 64, ..engine.default_query() };
                    let run = engine.try_count_query(&plan(p), &q).expect("query run");
                    counts.lock().unwrap()[i] = run.count;
                });
            }
        });
        assert_eq!(*counts.lock().unwrap(), expect);
        engine.shutdown();
    }

    #[test]
    fn memory_bound_follows_chunk_capacity() {
        // The §4.2 guarantee: live embeddings never exceed
        // chunk_capacity x (depth - 1), independent of the graph.
        let g = gen::barabasi_albert(400, 6, 17);
        for cap in [8usize, 64, 1024] {
            let pg = PartitionedGraph::new(&g, 2, 1);
            let engine =
                Engine::new(pg, EngineConfig { chunk_capacity: cap, ..EngineConfig::default() });
            let run = engine.count(&plan(&Pattern::clique(4)));
            for part in &run.per_part {
                assert!(
                    part.peak_embeddings <= cap * 3,
                    "cap {cap}: peak {} exceeds bound {}",
                    part.peak_embeddings,
                    cap * 3
                );
            }
            engine.shutdown();
        }
    }

    #[test]
    fn sequential_parts_mode_matches_concurrent() {
        let g = gen::barabasi_albert(300, 5, 19);
        let p = Pattern::clique(4);
        let expect = oracle::count_subgraphs(&g, &p, false);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let engine =
            Engine::new(pg, EngineConfig { sequential_parts: true, ..EngineConfig::default() });
        let run = engine.count(&plan(&p));
        engine.shutdown();
        assert_eq!(run.count, expect);
        assert_eq!(run.per_part.len(), 4);
        // The makespan is the max part, never more than the wall clock of
        // the sequential run and never less than elapsed/parts.
        let makespan = run.simulated_makespan();
        assert!(makespan <= run.elapsed);
        assert!(makespan.as_secs_f64() >= run.elapsed.as_secs_f64() / 8.0);
    }

    #[test]
    fn observed_run_records_spans_and_matching_report() {
        use gpm_obs::SpanKind;
        let g = gen::erdos_renyi(150, 700, 13);
        let pg = PartitionedGraph::new(&g, 4, 1);
        let engine =
            Engine::new(pg, EngineConfig { obs: ObsConfig::enabled(), ..EngineConfig::default() });
        let run = engine.count(&plan(&Pattern::triangle()));
        let report = engine.report(&run, "khuzdul");
        // Report totals mirror the legacy TrafficSummary counters.
        assert_eq!(report.count, run.count);
        assert_eq!(report.traffic.fetch_requests, run.traffic.requests);
        assert_eq!(report.traffic.network_bytes, run.traffic.network_bytes);
        assert_eq!(report.traffic.cache_hits, run.traffic.cache_hits);
        assert_eq!(report.traffic.coalesced_requests, run.traffic.coalesced);
        gpm_obs::validate_report(&report.to_json()).expect("engine report must validate");
        // The scheduler, resolve phase, and fabric all left spans.
        let spans = engine.recorder().spans();
        for kind in
            [SpanKind::SeedRoots, SpanKind::Resolve, SpanKind::BucketRound, SpanKind::Extend]
        {
            assert!(spans.iter().any(|s| s.kind == kind), "missing {kind:?} span");
        }
        assert!(report.spans.recorded > 0);
        gpm_obs::validate_trace(&engine.chrome_trace()).expect("trace must validate");
        engine.shutdown();
    }

    #[test]
    fn disabled_obs_records_nothing() {
        let g = gen::erdos_renyi(100, 400, 5);
        let engine = engine_for(&g, 2, 1);
        engine.count(&plan(&Pattern::triangle()));
        assert!(!engine.recorder().is_enabled());
        assert_eq!(engine.recorder().spans_recorded(), 0);
        assert!(engine.recorder().series().is_empty());
        engine.shutdown();
    }

    #[test]
    fn breakdown_is_populated() {
        let g = gen::erdos_renyi(200, 1000, 1);
        let engine = engine_for(&g, 2, 1);
        let run = engine.count(&plan(&Pattern::clique(4)));
        let b = run.breakdown();
        assert!(b.compute > 0.0);
        assert!((b.compute + b.network + b.scheduler - 1.0).abs() < 1e-6);
        engine.shutdown();
    }

    #[test]
    fn find_any_returns_a_real_match_or_none() {
        let g = gen::erdos_renyi(100, 420, 12);
        let engine = engine_for(&g, 3, 1);
        let tri = plan(&Pattern::triangle());
        match engine.find_any(&tri) {
            Some(m) => {
                assert_eq!(m.len(), 3);
                assert!(g.has_edge(m[0], m[1]) && g.has_edge(m[1], m[2]) && g.has_edge(m[0], m[2]));
            }
            None => {
                assert_eq!(engine.count(&tri).count, 0, "find_any missed a triangle");
            }
        }
        // A pattern that cannot exist.
        let k6 = plan(&Pattern::clique(6));
        if engine.count(&k6).count == 0 {
            assert!(engine.find_any(&k6).is_none());
        }
        engine.shutdown();
    }

    #[test]
    fn enumerate_until_stops_early() {
        let g = gen::complete(30); // plenty of triangles
        let engine = engine_for(&g, 2, 1);
        let seen = std::sync::atomic::AtomicU64::new(0);
        engine.enumerate_until(&plan(&Pattern::triangle()), |_| {
            seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed) < 10
        });
        let seen = seen.into_inner();
        let total = engine.count(&plan(&Pattern::triangle())).count;
        assert!(seen >= 11, "visited at least until the stop signal");
        assert!(seen < total, "must stop well before all {total} (saw {seen})");
        engine.shutdown();
    }

    #[test]
    fn graphpi_plans_run_too() {
        let g = gen::erdos_renyi(120, 600, 7);
        let engine = engine_for(&g, 2, 1);
        for p in [Pattern::cycle(4), Pattern::house(), Pattern::diamond()] {
            let plan = MatchingPlan::compile(&p, &PlanOptions::graphpi()).unwrap();
            let expect = oracle::count_subgraphs(&g, &p, false);
            assert_eq!(engine.count(&plan).count, expect, "{p}");
        }
        engine.shutdown();
    }

    #[test]
    fn iep_pair_counting_in_the_distributed_engine() {
        let g = gen::barabasi_albert(300, 6, 21);
        let engine = engine_for(&g, 4, 1);
        for p in [Pattern::path(3), Pattern::star(4), Pattern::star(5), Pattern::path(4)] {
            let iep = PlanOptions { iep: true, ..PlanOptions::automine() };
            let plan = MatchingPlan::compile(&p, &iep).unwrap();
            let expect = oracle::count_subgraphs(&g, &p, false);
            assert_eq!(engine.count(&plan).count, expect, "{p}");
            // Enumeration must ignore the shortcut and still visit every
            // embedding individually.
            let seen = std::sync::atomic::AtomicU64::new(0);
            engine.enumerate(&plan, |_| {
                seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
            });
            assert_eq!(seen.into_inner(), expect, "enumerate bypasses IEP for {p}");
        }
        engine.shutdown();
    }
}
