//! Run statistics: counts, timing breakdown, and traffic summary.

use std::time::Duration;

/// Per-part timing and output of one run.
#[derive(Debug, Clone, Default)]
pub struct PartStats {
    /// Embeddings produced (or visited) by this part.
    pub count: u64,
    /// Wall time spent extending embeddings (the paper's "compute").
    pub compute: Duration,
    /// Wall time blocked waiting for remote data (the paper's "network").
    pub network: Duration,
    /// Wall time in resolve-phase bookkeeping: bucketing, horizontal
    /// table, cache queries, chunk management (the paper's "scheduler").
    pub scheduler: Duration,
    /// Wall time maintaining a general software cache (task↔data map
    /// updates, reference GC). Zero for Khuzdul, whose static cache has no
    /// such bookkeeping; reported by the G-thinker baseline (Figure 15).
    pub cache: Duration,
    /// Peak number of live extendable embeddings across all levels of
    /// this part — the §4.2 memory bound: at most
    /// `chunk_capacity × (depth - 1)` regardless of graph size.
    pub peak_embeddings: usize,
    /// Roots this part obtained from other parts through the steal
    /// ledger (cursor steals and spill claims). Zero with stealing off.
    pub roots_stolen: u64,
    /// Roots this part donated to the steal ledger's spill for starving
    /// parts. Zero with stealing off.
    pub roots_donated: u64,
}

/// Fractional runtime breakdown (Figure 15).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Breakdown {
    /// Fraction of accounted time spent computing extensions.
    pub compute: f64,
    /// Fraction blocked on communication.
    pub network: f64,
    /// Fraction in scheduling/bookkeeping.
    pub scheduler: f64,
    /// Fraction in cache maintenance (reported separately only by the
    /// G-thinker baseline; folded into `scheduler` for Khuzdul).
    pub cache: f64,
}

/// Communication summary of one run (deltas over the run window).
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct TrafficSummary {
    /// Bytes that crossed machine boundaries.
    pub network_bytes: u64,
    /// Bytes that crossed only NUMA-socket boundaries.
    pub cross_socket_bytes: u64,
    /// Fetch requests issued.
    pub requests: u64,
    /// Software-cache hits during the run.
    pub cache_hits: u64,
    /// Software-cache misses during the run.
    pub cache_misses: u64,
    /// Duplicate vertex requests elided by same-round coalescing.
    pub coalesced: u64,
    /// Fetches re-submitted by the fabric's retry machinery (non-zero
    /// only under fault injection).
    pub retries: u64,
}

impl TrafficSummary {
    /// Cache hit rate in `[0, 1]`, or `None` without lookups.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let total = self.cache_hits + self.cache_misses;
        (total > 0).then(|| self.cache_hits as f64 / total as f64)
    }
}

impl PartStats {
    /// Folds another pass's stats into this one (used when the recovery
    /// pass adds re-execution work to a survivor's main-pass stats).
    pub(crate) fn merge(&mut self, other: &PartStats) {
        self.count += other.count;
        self.compute += other.compute;
        self.network += other.network;
        self.scheduler += other.scheduler;
        self.cache += other.cache;
        self.peak_embeddings = self.peak_embeddings.max(other.peak_embeddings);
        self.roots_stolen += other.roots_stolen;
        self.roots_donated += other.roots_donated;
    }
}

/// Fail-stop failure accounting of one run (deltas over the run window).
/// All-zero for a fault-free run.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct FailureSummary {
    /// Parts declared failed (fail-stop) during the run.
    pub parts_failed: u64,
    /// Fetches re-routed from a dead part to a live replica holder.
    pub rerouted_requests: u64,
    /// Bytes (request + response) moved by re-routed fetches.
    pub rerouted_bytes: u64,
    /// Roots re-executed on surviving parts by the recovery pass.
    pub reexecuted_roots: u64,
}

/// Control-plane message accounting of one run (deltas over the run
/// window). Non-zero only when the run coordinated steals and claims
/// through the message-based ledger (`ControlMode::Msg`); the
/// shared-memory carrier exchanges no messages. Deliberately *not*
/// folded into [`TrafficSummary`], so shared-mode baselines stay
/// bit-identical.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ControlSummary {
    /// Control requests sent, including retransmissions.
    pub sent: u64,
    /// Control requests re-sent after a timeout or injected fault.
    pub retried: u64,
    /// Control replies dropped by fault injection.
    pub dropped: u64,
}

/// The result of one engine run.
#[derive(Debug, Clone, Default)]
pub struct RunStats {
    /// Total embeddings counted (or visited).
    pub count: u64,
    /// End-to-end wall time.
    pub elapsed: Duration,
    /// Per-part detail.
    pub per_part: Vec<PartStats>,
    /// Communication summary.
    pub traffic: TrafficSummary,
    /// Fail-stop failure and failover accounting.
    pub failures: FailureSummary,
    /// Control-plane message accounting (all-zero under the
    /// shared-memory carrier).
    pub control: ControlSummary,
}

impl RunStats {
    /// The simulated cluster makespan: the busiest part's accounted time
    /// (compute + network + scheduler + cache).
    ///
    /// On a host with fewer physical cores than simulated machines the
    /// wall-clock `elapsed` of a run measures core contention, not the
    /// cluster; the makespan of per-part busy times is the standard
    /// work-span estimate of what an actual cluster would take. Most
    /// accurate when the engine ran with
    /// `EngineConfig::sequential_parts = true`, which removes the
    /// contention from the per-part timers themselves.
    pub fn simulated_makespan(&self) -> Duration {
        self.per_part
            .iter()
            .map(|p| p.compute + p.network + p.scheduler + p.cache)
            .max()
            .unwrap_or(self.elapsed)
    }

    /// Converts this run into a [`gpm_obs::RunReport`] skeleton: count,
    /// elapsed time, traffic totals (field-for-field from
    /// [`TrafficSummary`]), breakdown fractions, and per-part detail.
    /// Recorder-owned sections (histograms, gauge series, span
    /// accounting) stay empty; `Engine::report` fills them via
    /// `gpm_obs::Recorder::augment_report`.
    pub fn to_report(&self, system: &str) -> gpm_obs::RunReport {
        let b = self.breakdown();
        gpm_obs::RunReport {
            schema_version: gpm_obs::REPORT_SCHEMA_VERSION,
            system: system.to_string(),
            count: self.count,
            elapsed_ns: self.elapsed.as_nanos() as u64,
            traffic: gpm_obs::TrafficTotals {
                fetch_requests: self.traffic.requests,
                cache_hits: self.traffic.cache_hits,
                cache_misses: self.traffic.cache_misses,
                coalesced_requests: self.traffic.coalesced,
                retries: self.traffic.retries,
                network_bytes: self.traffic.network_bytes,
                numa_bytes: self.traffic.cross_socket_bytes,
            },
            breakdown: gpm_obs::BreakdownFractions {
                compute: b.compute,
                network: b.network,
                scheduler: b.scheduler,
                cache: b.cache,
            },
            per_part: self
                .per_part
                .iter()
                .enumerate()
                .map(|(i, p)| gpm_obs::PartReport {
                    part: i as u64,
                    count: p.count,
                    compute_ns: p.compute.as_nanos() as u64,
                    network_ns: p.network.as_nanos() as u64,
                    scheduler_ns: p.scheduler.as_nanos() as u64,
                    cache_ns: p.cache.as_nanos() as u64,
                    peak_embeddings: p.peak_embeddings as u64,
                    roots_stolen: p.roots_stolen,
                    roots_donated: p.roots_donated,
                })
                .collect(),
            histograms: Vec::new(),
            series: Vec::new(),
            spans: gpm_obs::SpanStats::default(),
            critical_path: gpm_obs::CriticalPathSection::default(),
            failures: gpm_obs::FailureSection {
                parts_failed: self.failures.parts_failed,
                rerouted_requests: self.failures.rerouted_requests,
                rerouted_bytes: self.failures.rerouted_bytes,
                reexecuted_roots: self.failures.reexecuted_roots,
            },
            rebalance: gpm_obs::RebalanceSection::default(),
            control: gpm_obs::ControlSection {
                sent: self.control.sent,
                retried: self.control.retried,
                dropped: self.control.dropped,
            },
            queries: Vec::new(),
            incidents: Vec::new(),
        }
    }

    /// Aggregated fractional breakdown over all parts.
    pub fn breakdown(&self) -> Breakdown {
        let sum = |f: fn(&PartStats) -> Duration| -> f64 {
            self.per_part.iter().map(|p| f(p).as_secs_f64()).sum()
        };
        let compute = sum(|p| p.compute);
        let network = sum(|p| p.network);
        let scheduler = sum(|p| p.scheduler);
        let cache = sum(|p| p.cache);
        let total = compute + network + scheduler + cache;
        if total == 0.0 {
            return Breakdown { compute: 0.0, network: 0.0, scheduler: 0.0, cache: 0.0 };
        }
        Breakdown {
            compute: compute / total,
            network: network / total,
            scheduler: scheduler / total,
            cache: cache / total,
        }
    }
}

impl std::fmt::Display for RunStats {
    /// One-line human summary: count, wall time, traffic, breakdown.
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let b = self.breakdown();
        write!(
            f,
            "{} embeddings in {:.3?} ({} net bytes / {} fetches; {:.0}% compute, \
             {:.0}% network, {:.0}% scheduler)",
            self.count,
            self.elapsed,
            self.traffic.network_bytes,
            self.traffic.requests,
            b.compute * 100.0,
            b.network * 100.0,
            b.scheduler * 100.0,
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_summary_mentions_everything() {
        let stats = RunStats {
            count: 42,
            elapsed: Duration::from_millis(5),
            per_part: vec![PartStats {
                compute: Duration::from_millis(4),
                network: Duration::from_millis(1),
                ..PartStats::default()
            }],
            traffic: TrafficSummary { network_bytes: 1000, requests: 3, ..Default::default() },
            ..Default::default()
        };
        let s = stats.to_string();
        assert!(s.contains("42 embeddings"));
        assert!(s.contains("1000 net bytes"));
        assert!(s.contains("compute"));
    }

    #[test]
    fn breakdown_fractions_sum_to_one() {
        let stats = RunStats {
            count: 1,
            elapsed: Duration::from_secs(1),
            per_part: vec![
                PartStats {
                    count: 1,
                    compute: Duration::from_millis(600),
                    network: Duration::from_millis(300),
                    scheduler: Duration::from_millis(100),
                    ..PartStats::default()
                },
                PartStats {
                    count: 0,
                    compute: Duration::from_millis(400),
                    network: Duration::from_millis(500),
                    scheduler: Duration::from_millis(100),
                    ..PartStats::default()
                },
            ],
            ..Default::default()
        };
        let b = stats.breakdown();
        assert!((b.compute + b.network + b.scheduler + b.cache - 1.0).abs() < 1e-9);
        assert!((b.compute - 0.5).abs() < 1e-9);
    }

    #[test]
    fn empty_breakdown_is_zero() {
        let b = RunStats::default().breakdown();
        assert_eq!(b.compute, 0.0);
        assert_eq!(b.network, 0.0);
    }

    #[test]
    fn report_mirrors_traffic_summary_counter_for_counter() {
        let stats = RunStats {
            count: 9,
            elapsed: Duration::from_millis(2),
            per_part: vec![PartStats {
                count: 9,
                compute: Duration::from_millis(1),
                network: Duration::from_micros(500),
                scheduler: Duration::from_micros(500),
                peak_embeddings: 11,
                ..PartStats::default()
            }],
            traffic: TrafficSummary {
                network_bytes: 4096,
                cross_socket_bytes: 256,
                requests: 17,
                cache_hits: 5,
                cache_misses: 12,
                coalesced: 3,
                retries: 1,
            },
            failures: FailureSummary {
                parts_failed: 1,
                rerouted_requests: 2,
                rerouted_bytes: 512,
                reexecuted_roots: 6,
            },
            control: ControlSummary { sent: 40, retried: 3, dropped: 2 },
        };
        let r = stats.to_report("khuzdul");
        assert_eq!(r.system, "khuzdul");
        assert_eq!(r.count, stats.count);
        assert_eq!(r.elapsed_ns, 2_000_000);
        assert_eq!(r.traffic.fetch_requests, stats.traffic.requests);
        assert_eq!(r.traffic.cache_hits, stats.traffic.cache_hits);
        assert_eq!(r.traffic.cache_misses, stats.traffic.cache_misses);
        assert_eq!(r.traffic.coalesced_requests, stats.traffic.coalesced);
        assert_eq!(r.traffic.retries, stats.traffic.retries);
        assert_eq!(r.traffic.network_bytes, stats.traffic.network_bytes);
        assert_eq!(r.traffic.numa_bytes, stats.traffic.cross_socket_bytes);
        let b = stats.breakdown();
        assert_eq!(r.breakdown.compute, b.compute);
        assert_eq!(r.per_part.len(), 1);
        assert_eq!(r.per_part[0].peak_embeddings, 11);
        assert_eq!(r.failures.parts_failed, stats.failures.parts_failed);
        assert_eq!(r.failures.rerouted_requests, stats.failures.rerouted_requests);
        assert_eq!(r.failures.rerouted_bytes, stats.failures.rerouted_bytes);
        assert_eq!(r.failures.reexecuted_roots, stats.failures.reexecuted_roots);
        assert_eq!(r.control.sent, stats.control.sent);
        assert_eq!(r.control.retried, stats.control.retried);
        assert_eq!(r.control.dropped, stats.control.dropped);
        gpm_obs::validate_report(&r.to_json()).expect("converted report must validate");
    }

    #[test]
    fn empty_run_report_has_zero_fractions() {
        // The Breakdown zero-total guard must survive the report path:
        // a run with no accounted time serializes finite zero fractions,
        // never NaN (which the JSON shim would render as null).
        let r = RunStats::default().to_report("khuzdul");
        assert_eq!(r.breakdown.compute, 0.0);
        assert_eq!(r.breakdown.network, 0.0);
        assert_eq!(r.breakdown.scheduler, 0.0);
        assert_eq!(r.breakdown.cache, 0.0);
        let json = r.to_json();
        assert!(!json.contains("null"), "zero-time breakdown must stay finite: {json}");
        gpm_obs::validate_report(&json).expect("empty-run report must validate");
    }

    #[test]
    fn hit_rate() {
        let t = TrafficSummary { cache_hits: 3, cache_misses: 1, ..Default::default() };
        assert!((t.cache_hit_rate().unwrap() - 0.75).abs() < 1e-9);
        assert_eq!(TrafficSummary::default().cache_hit_rate(), None);
    }
}
