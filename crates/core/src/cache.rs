//! Software graph-data caches.
//!
//! The engine's default is the paper's **static cache** (§5.3): edge lists
//! fetched from remote machines are inserted if the vertex degree passes a
//! threshold and the cache is not yet full; nothing is ever evicted, so
//! lookups need only a read lock and no bookkeeping. The replacement
//! policies FIFO/LIFO/LRU/MRU are implemented behind the same interface
//! for the paper's Figure 16 comparison — note how every one of them needs
//! a *write* lock per lookup or insert-with-eviction, the overhead the
//! paper measures.
//!
//! Entries hand out `Arc<[VertexId]>` so an evicted list stays alive while
//! any extendable embedding still references it — eviction can never
//! dangle a task's data.

use gpm_graph::{Degree, VertexId};
use parking_lot::RwLock;
use std::collections::HashMap;
use std::sync::Arc;

/// Cache replacement policy.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum CachePolicy {
    /// Insert-until-full, never evict (the paper's design, §5.3).
    #[default]
    Static,
    /// Evict the oldest-inserted entry.
    Fifo,
    /// Evict the newest-inserted entry.
    Lifo,
    /// Evict the least recently used entry.
    Lru,
    /// Evict the most recently used entry.
    Mru,
    /// No cache at all (Table 6's "no cache" column).
    Disabled,
}

/// Cache configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CacheConfig {
    /// Capacity in bytes **per machine**; divided evenly among its NUMA
    /// sockets (§5.4).
    pub capacity_per_machine: usize,
    /// Minimum degree for insertion (the paper's threshold, e.g. 64).
    /// Applied by the static policy only; replacement policies accept
    /// everything, as G-thinker-style general caches do.
    pub degree_threshold: Degree,
    /// Replacement policy.
    pub policy: CachePolicy,
}

impl Default for CacheConfig {
    fn default() -> Self {
        CacheConfig {
            capacity_per_machine: 8 << 20, // 8 MiB of lists per machine
            degree_threshold: 64,
            policy: CachePolicy::Static,
        }
    }
}

impl CacheConfig {
    /// A disabled cache.
    pub fn disabled() -> Self {
        CacheConfig { policy: CachePolicy::Disabled, ..CacheConfig::default() }
    }
}

/// A shared per-part software cache of remote edge lists.
#[derive(Debug)]
pub struct SharedCache {
    policy: CachePolicy,
    capacity_bytes: usize,
    degree_threshold: Degree,
    inner: RwLock<Inner>,
}

#[derive(Debug, Default)]
struct Inner {
    map: HashMap<VertexId, Arc<[VertexId]>>,
    /// Insertion/recency order queue for the replacement policies (front =
    /// next victim candidate end depends on policy). Unused by `Static`.
    order: Vec<VertexId>,
    bytes: usize,
    full: bool,
}

impl SharedCache {
    /// Creates a cache with `capacity_bytes` of list storage.
    pub fn new(policy: CachePolicy, capacity_bytes: usize, degree_threshold: Degree) -> Self {
        SharedCache {
            policy,
            capacity_bytes,
            degree_threshold,
            inner: RwLock::new(Inner::default()),
        }
    }

    /// Builds the per-part cache for a machine-level [`CacheConfig`].
    pub fn for_part(cfg: &CacheConfig, sockets_per_machine: usize) -> Self {
        SharedCache::new(
            cfg.policy,
            cfg.capacity_per_machine / sockets_per_machine.max(1),
            cfg.degree_threshold,
        )
    }

    /// The policy in force.
    pub fn policy(&self) -> CachePolicy {
        self.policy
    }

    /// Whether lookups can ever succeed.
    pub fn is_enabled(&self) -> bool {
        self.policy != CachePolicy::Disabled && self.capacity_bytes > 0
    }

    /// Looks up the edge list of `v`.
    ///
    /// For LRU/MRU this updates recency (and therefore takes the write
    /// lock — the measured cost of those policies); `Static`, FIFO and
    /// LIFO lookups take only the read lock.
    pub fn lookup(&self, v: VertexId) -> Option<Arc<[VertexId]>> {
        if !self.is_enabled() {
            return None;
        }
        match self.policy {
            CachePolicy::Lru | CachePolicy::Mru => {
                let mut inner = self.inner.write();
                let hit = inner.map.get(&v).cloned();
                if hit.is_some() {
                    if let Some(pos) = inner.order.iter().position(|&u| u == v) {
                        inner.order.remove(pos);
                        inner.order.push(v); // most recent at the back
                    }
                }
                hit
            }
            _ => self.inner.read().map.get(&v).cloned(),
        }
    }

    /// Offers a freshly fetched list for caching; the policy decides.
    /// Returns `true` if the list was inserted.
    pub fn maybe_insert(&self, v: VertexId, list: &[VertexId]) -> bool {
        if !self.is_enabled() {
            return false;
        }
        let bytes = std::mem::size_of_val(list);
        if bytes > self.capacity_bytes {
            return false;
        }
        match self.policy {
            CachePolicy::Static => {
                if (list.len() as Degree) < self.degree_threshold {
                    return false;
                }
                let mut inner = self.inner.write();
                // "First accessed first cached": once full, stay full.
                if inner.full || inner.map.contains_key(&v) {
                    return false;
                }
                if inner.bytes + bytes > self.capacity_bytes {
                    inner.full = true;
                    return false;
                }
                inner.bytes += bytes;
                inner.map.insert(v, list.into());
                true
            }
            CachePolicy::Fifo | CachePolicy::Lifo | CachePolicy::Lru | CachePolicy::Mru => {
                let mut inner = self.inner.write();
                if inner.map.contains_key(&v) {
                    return false;
                }
                // Evict until there is room — the general-purpose
                // allocate/free churn the paper contrasts with STATIC.
                while inner.bytes + bytes > self.capacity_bytes {
                    let victim = match self.policy {
                        CachePolicy::Fifo | CachePolicy::Lru => {
                            if inner.order.is_empty() {
                                break;
                            }
                            inner.order.remove(0)
                        }
                        CachePolicy::Lifo | CachePolicy::Mru => match inner.order.pop() {
                            Some(u) => u,
                            None => break,
                        },
                        _ => unreachable!(),
                    };
                    if let Some(old) = inner.map.remove(&victim) {
                        inner.bytes -= std::mem::size_of_val(&old[..]);
                    }
                }
                if inner.bytes + bytes > self.capacity_bytes {
                    return false;
                }
                inner.bytes += bytes;
                inner.map.insert(v, list.into());
                inner.order.push(v);
                true
            }
            CachePolicy::Disabled => false,
        }
    }

    /// Number of cached lists.
    pub fn len(&self) -> usize {
        self.inner.read().map.len()
    }

    /// Whether the cache currently holds nothing.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Bytes of list data currently held.
    pub fn bytes(&self) -> usize {
        self.inner.read().bytes
    }

    /// Capacity in bytes.
    pub fn capacity_bytes(&self) -> usize {
        self.capacity_bytes
    }

    /// Drops every entry (used between benchmark runs).
    pub fn clear(&self) {
        let mut inner = self.inner.write();
        inner.map.clear();
        inner.order.clear();
        inner.bytes = 0;
        inner.full = false;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn list(n: usize, tag: u32) -> Vec<VertexId> {
        (0..n as u32).map(|i| i + tag).collect()
    }

    #[test]
    fn static_insert_and_lookup() {
        let c = SharedCache::new(CachePolicy::Static, 4096, 4);
        assert!(c.lookup(1).is_none());
        assert!(c.maybe_insert(1, &list(10, 0)));
        assert_eq!(c.lookup(1).unwrap().len(), 10);
        assert_eq!(c.len(), 1);
        assert_eq!(c.bytes(), 40);
    }

    #[test]
    fn static_respects_degree_threshold() {
        let c = SharedCache::new(CachePolicy::Static, 4096, 8);
        assert!(!c.maybe_insert(1, &list(7, 0)));
        assert!(c.maybe_insert(2, &list(8, 0)));
    }

    #[test]
    fn static_never_evicts_and_stops_when_full() {
        let c = SharedCache::new(CachePolicy::Static, 100, 1);
        assert!(c.maybe_insert(1, &list(20, 0))); // 80 bytes
        assert!(!c.maybe_insert(2, &list(20, 0))); // would exceed => marks full
                                                   // Even a small list is now refused: "no longer insert any data".
        assert!(!c.maybe_insert(3, &list(2, 0)));
        assert!(c.lookup(1).is_some());
        assert_eq!(c.len(), 1);
    }

    #[test]
    fn fifo_evicts_oldest() {
        let c = SharedCache::new(CachePolicy::Fifo, 100, 1);
        assert!(c.maybe_insert(1, &list(10, 0))); // 40
        assert!(c.maybe_insert(2, &list(10, 0))); // 80
        assert!(c.maybe_insert(3, &list(10, 0))); // evicts 1
        assert!(c.lookup(1).is_none());
        assert!(c.lookup(2).is_some());
        assert!(c.lookup(3).is_some());
    }

    #[test]
    fn lifo_evicts_newest() {
        let c = SharedCache::new(CachePolicy::Lifo, 100, 1);
        c.maybe_insert(1, &list(10, 0));
        c.maybe_insert(2, &list(10, 0));
        c.maybe_insert(3, &list(10, 0)); // evicts 2
        assert!(c.lookup(1).is_some());
        assert!(c.lookup(2).is_none());
        assert!(c.lookup(3).is_some());
    }

    #[test]
    fn lru_eviction_respects_recency() {
        let c = SharedCache::new(CachePolicy::Lru, 100, 1);
        c.maybe_insert(1, &list(10, 0));
        c.maybe_insert(2, &list(10, 0));
        c.lookup(1); // 1 becomes most recent
        c.maybe_insert(3, &list(10, 0)); // evicts 2 (least recent)
        assert!(c.lookup(2).is_none());
        assert!(c.lookup(1).is_some());
    }

    #[test]
    fn mru_evicts_most_recent() {
        let c = SharedCache::new(CachePolicy::Mru, 100, 1);
        c.maybe_insert(1, &list(10, 0));
        c.maybe_insert(2, &list(10, 0));
        c.lookup(1); // 1 most recent
        c.maybe_insert(3, &list(10, 0)); // evicts 1
        assert!(c.lookup(1).is_none());
        assert!(c.lookup(2).is_some());
    }

    #[test]
    fn evicted_data_survives_through_arc() {
        let c = SharedCache::new(CachePolicy::Fifo, 100, 1);
        c.maybe_insert(1, &list(10, 7));
        let held = c.lookup(1).unwrap();
        c.maybe_insert(2, &list(10, 0));
        c.maybe_insert(3, &list(10, 0)); // evicts 1
        assert!(c.lookup(1).is_none());
        assert_eq!(held[0], 7); // still valid
    }

    #[test]
    fn disabled_cache_does_nothing() {
        let c = SharedCache::new(CachePolicy::Disabled, 1 << 20, 1);
        assert!(!c.maybe_insert(1, &list(10, 0)));
        assert!(c.lookup(1).is_none());
        assert!(!c.is_enabled());
    }

    #[test]
    fn oversized_list_rejected() {
        let c = SharedCache::new(CachePolicy::Static, 16, 1);
        assert!(!c.maybe_insert(1, &list(100, 0)));
    }

    #[test]
    fn clear_resets_everything() {
        let c = SharedCache::new(CachePolicy::Static, 100, 1);
        c.maybe_insert(1, &list(20, 0));
        c.maybe_insert(2, &list(20, 0)); // full
        c.clear();
        assert!(c.is_empty());
        assert_eq!(c.bytes(), 0);
        // Full flag reset: can insert again.
        assert!(c.maybe_insert(3, &list(10, 0)));
    }

    #[test]
    fn per_part_sizing() {
        let cfg = CacheConfig { capacity_per_machine: 1000, ..CacheConfig::default() };
        let c = SharedCache::for_part(&cfg, 2);
        assert_eq!(c.capacity_bytes(), 500);
    }

    #[test]
    fn concurrent_access() {
        let c = Arc::new(SharedCache::new(CachePolicy::Static, 1 << 20, 1));
        let mut joins = Vec::new();
        for t in 0..4u32 {
            let c = Arc::clone(&c);
            joins.push(std::thread::spawn(move || {
                for i in 0..100 {
                    let v = t * 100 + i;
                    c.maybe_insert(v, &list(4, v));
                    assert_eq!(c.lookup(v).unwrap()[0], v);
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert_eq!(c.len(), 400);
    }
}
