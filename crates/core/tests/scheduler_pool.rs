//! Scheduler-layer integration tests: the persistent worker pool and
//! cross-part work stealing.

use gpm_graph::partition::{PartitionedGraph, Partitioner};
use gpm_graph::{gen, GraphBuilder};
use gpm_obs::SpanKind;
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::{oracle, Pattern};
use khuzdul::{ControlConfig, ControlMode, Engine, EngineConfig, ObsConfig, StealConfig};

fn plan(p: &Pattern) -> MatchingPlan {
    MatchingPlan::compile(p, &PlanOptions::automine()).unwrap()
}

/// A graph whose hubs concentrate on part 0 under range partitioning:
/// R-MAT's recursive quadrant bias puts the high-degree vertices at low
/// ids, so contiguous-range assignment starves every other part.
fn skewed() -> gpm_graph::Graph {
    gen::rmat(9, 16, (0.57, 0.19, 0.19), 0x5eed)
}

/// Regression for the per-phase spawn storm: one engine run must spawn
/// exactly `parts × compute_threads` pooled compute threads, and a second
/// run must reuse them all instead of spawning fresh ones.
#[test]
fn pool_spawns_once_and_is_reused_across_runs() {
    let g = gen::erdos_renyi(300, 2400, 17);
    let pg = PartitionedGraph::new(&g, 4, 1);
    let engine = Engine::new(pg, EngineConfig { compute_threads: 4, ..EngineConfig::default() });
    assert!(
        engine.compute_thread_names().is_empty(),
        "the pool must be lazy: no compute threads before the first run"
    );

    let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
    assert_eq!(engine.count(&plan(&Pattern::triangle())).count, expect);
    let names = engine.compute_thread_names();
    assert_eq!(names.len(), 16, "parts × compute_threads = 4 × 4 workers");
    let mut distinct = names.clone();
    distinct.sort();
    distinct.dedup();
    assert_eq!(distinct.len(), 16, "every pooled thread has a unique name");
    for part in 0..4 {
        for w in 0..4 {
            assert!(
                names.contains(&format!("khuzdul-compute-{part}-{w}")),
                "missing worker {part}-{w} in {names:?}"
            );
        }
    }

    // A different plan on the same engine: same pool, not a new spawn.
    let expect4 = oracle::count_subgraphs(&g, &Pattern::clique(4), false);
    assert_eq!(engine.count(&plan(&Pattern::clique(4))).count, expect4);
    assert_eq!(engine.compute_thread_names(), names, "second run must reuse the pooled threads");
    engine.shutdown();
}

#[test]
fn single_threaded_config_never_spawns_a_pool() {
    let g = gen::erdos_renyi(120, 700, 3);
    let pg = PartitionedGraph::new(&g, 3, 1);
    let engine = Engine::new(pg, EngineConfig { compute_threads: 1, ..EngineConfig::default() });
    let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
    assert_eq!(engine.count(&plan(&Pattern::triangle())).count, expect);
    assert!(engine.compute_thread_names().is_empty(), "inline extension needs no pool");
    engine.shutdown();
}

/// The ISSUE's acceptance criterion: on a skewed graph, stealing must
/// lower the max/mean per-part busy-time ratio while leaving the count
/// bit-identical — under **both** control-plane carriers (the message
/// ledger must rebalance exactly like the shared-memory one).
#[test]
fn stealing_rebalances_a_skewed_graph_without_changing_the_count() {
    let g = skewed();
    let p = plan(&Pattern::triangle());
    let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
    for mode in [ControlMode::Shared, ControlMode::Msg] {
        let run_with = |enabled: bool| {
            let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
            let engine = Engine::new(
                pg,
                EngineConfig {
                    compute_threads: 2,
                    steal: StealConfig { enabled, batch: 64, ..StealConfig::default() },
                    control: ControlConfig { mode, ..ControlConfig::default() },
                    ..EngineConfig::default()
                },
            );
            let run = engine.count(&p);
            let report = engine.report(&run, "khuzdul");
            engine.shutdown();
            (run, report)
        };

        let (run_off, report_off) = run_with(false);
        let (run_on, report_on) = run_with(true);
        assert_eq!(run_on.count, run_off.count, "{mode:?}: stealing must not change the count");
        assert_eq!(run_on.count, expect);

        let stolen: u64 = run_on.per_part.iter().map(|p| p.roots_stolen).sum();
        assert!(stolen > 0, "{mode:?}: range-partitioned R-MAT must starve parts into stealing");
        assert_eq!(
            run_off.per_part.iter().map(|p| p.roots_stolen).sum::<u64>(),
            0,
            "{mode:?}: stealing off must never move roots"
        );

        let (off, on) = (report_off.busy_imbalance(), report_on.busy_imbalance());
        assert!(
            on < off,
            "{mode:?}: stealing must reduce busy-time imbalance on a skewed graph: \
             on={on:.3} off={off:.3}"
        );
    }
}

/// Two triangle-dense hubs, one per simulated machine, in a sea of light
/// vertices: under range partitioning into 2 machines × 2 sockets, parts
/// 0 and 2 hold the cliques while parts 1 and 3 drain early and have to
/// steal. Each starving thief therefore always has a same-machine hub
/// with work left — the configuration where victim ordering actually
/// decides whether stolen roots cross the network.
fn twin_hub() -> gpm_graph::Graph {
    let mut b = GraphBuilder::new(512);
    for hub in [0u32, 256] {
        for i in 0..64 {
            for j in (i + 1)..64 {
                b.add_edge(hub + i, hub + j);
            }
        }
    }
    // A light ring so every part has its own roots to drain before it
    // starves into stealing.
    for k in 0..512u32 {
        b.add_edge(k, (k + 1) % 512);
    }
    b.build()
}

/// NUMA-aware victim ordering, end to end: `steal.numa` must reach the
/// ledger without changing results — identical counts under both
/// orderings, steals actually occurring, and every steal span naming a
/// real victim other than the thief. The preference property itself (a
/// thief picks the most-loaded part of its own machine while one has
/// work) is only well-defined at claim time, where the ledger unit
/// tests pin it deterministically; asserting a cross-machine traffic
/// *ratio* here depends on which thief the OS happens to schedule and
/// was a permanent source of CI flakes.
#[test]
fn numa_victim_ordering_cuts_cross_machine_steal_traffic() {
    let g = twin_hub();
    let p = plan(&Pattern::triangle());
    let expect = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
    let run_with = |numa: bool| {
        let pg = PartitionedGraph::with_partitioner(&g, 2, 2, Partitioner::Range);
        let engine = Engine::new(
            pg,
            EngineConfig {
                compute_threads: 2,
                // Small batches force many steal rounds so both orderings
                // exercise victim selection repeatedly.
                steal: StealConfig { enabled: true, batch: 4, numa },
                obs: ObsConfig::enabled(),
                ..EngineConfig::default()
            },
        );
        let run = engine.count(&p);
        // Every cursor steal leaves a span: part = thief, arg = victim.
        let mut total = 0u64;
        for s in engine.recorder().spans() {
            if s.kind == SpanKind::Steal {
                total += 1;
                assert!((s.arg as usize) < 4, "victim {} out of range", s.arg);
                assert_ne!(s.arg, s.part as u64, "a thief cannot steal from itself");
            }
        }
        engine.shutdown();
        assert_eq!(run.count, expect, "numa={numa}");
        total
    };
    // A couple of rounds per ordering so a single lucky scheduling of
    // the light parts cannot leave the steal path unexercised.
    let tally = |numa: bool| (0..3).map(|_| run_with(numa)).sum::<u64>();
    let total_flat = tally(false);
    let total_numa = tally(true);
    assert!(
        total_flat > 0 && total_numa > 0,
        "twin hubs must force steals under both orderings \
         (flat {total_flat}, numa {total_numa})"
    );
}

/// Stealing is keyed off the run, not baked into part state: the same
/// engine must honour a config where it is disabled (`sequential_parts`
/// forces it off even when enabled).
#[test]
fn sequential_parts_disables_stealing() {
    let g = skewed();
    let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
    let engine = Engine::new(
        pg,
        EngineConfig {
            compute_threads: 2,
            sequential_parts: true,
            steal: StealConfig { enabled: true, batch: 64, ..StealConfig::default() },
            ..EngineConfig::default()
        },
    );
    let run = engine.count(&plan(&Pattern::triangle()));
    assert_eq!(run.count, oracle::count_subgraphs(&g, &Pattern::triangle(), false) as u64);
    assert_eq!(
        run.per_part.iter().map(|p| p.roots_stolen + p.roots_donated).sum::<u64>(),
        0,
        "an idle sequential part can never be refilled, so stealing must stay off"
    );
    engine.shutdown();
}
