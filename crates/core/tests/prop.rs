//! Property-based tests: the distributed engine must agree with the
//! single-machine reference interpreter for arbitrary graphs, patterns,
//! and engine configurations.

use gpm_graph::partition::{PartitionedGraph, Partitioner};
use gpm_graph::{gen, GraphBuilder};
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::{interp, Pattern};
use khuzdul::{
    CacheConfig, CachePolicy, ControlConfig, ControlMode, Engine, EngineConfig, EngineError,
    FabricConfig, FaultPlan, RetryPolicy, StealConfig,
};
use proptest::prelude::*;
use std::time::Duration;

fn arb_pattern() -> impl Strategy<Value = Pattern> {
    prop_oneof![
        Just(Pattern::edge()),
        Just(Pattern::triangle()),
        Just(Pattern::path(3)),
        Just(Pattern::path(4)),
        Just(Pattern::star(4)),
        Just(Pattern::cycle(4)),
        Just(Pattern::clique(4)),
        Just(Pattern::tailed_triangle()),
        Just(Pattern::diamond()),
    ]
}

fn arb_config() -> impl Strategy<Value = EngineConfig> {
    (
        prop_oneof![Just(4usize), Just(64), Just(4096)],
        1usize..=3,
        any::<bool>(),
        any::<bool>(),
        prop_oneof![
            Just(CachePolicy::Disabled),
            Just(CachePolicy::Static),
            Just(CachePolicy::Lru),
        ],
    )
        .prop_map(|(chunk, threads, horizontal, circulant, policy)| EngineConfig {
            chunk_capacity: chunk,
            compute_threads: threads,
            horizontal_sharing: horizontal,
            circulant,
            cache: CacheConfig { policy, degree_threshold: 4, ..CacheConfig::default() },
            ..EngineConfig::default()
        })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn engine_matches_interpreter(
        edges in prop::collection::vec((0u32..60, 0u32..60), 30..200),
        p in arb_pattern(),
        cfg in arb_config(),
        machines in 1usize..5,
        sockets in 1usize..3,
    ) {
        let g = edges.into_iter().collect::<GraphBuilder>().build();
        if g.vertex_count() < 2 { return Ok(()); }
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let expect = interp::count_embeddings(&g, &plan);
        let pg = PartitionedGraph::new(&g, machines, sockets);
        let engine = Engine::new(pg, cfg);
        let run = engine.count(&plan);
        engine.shutdown();
        prop_assert_eq!(run.count, expect);
    }

    #[test]
    fn counts_invariant_under_request_window(
        seed in 0u64..500,
        p in arb_pattern(),
    ) {
        let g = gen::erdos_renyi(50, 200, seed);
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let mut counts = Vec::new();
        for window in [1usize, 2, 8] {
            let pg = PartitionedGraph::new(&g, 3, 1);
            let engine = Engine::new(pg, EngineConfig {
                fabric: FabricConfig { window, ..FabricConfig::default() },
                ..EngineConfig::default()
            });
            counts.push(engine.count(&plan).count);
            engine.shutdown();
        }
        prop_assert_eq!(counts[0], counts[1]);
        prop_assert_eq!(counts[1], counts[2]);
    }

    #[test]
    fn counts_invariant_under_fault_injection(
        seed in 0u64..200,
        fault_seed in 0u64..u64::MAX,
        p in arb_pattern(),
    ) {
        let g = gen::erdos_renyi(40, 160, seed);
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let pg = PartitionedGraph::new(&g, 3, 1);
        let clean = Engine::new(pg, EngineConfig::default());
        let expect = clean.count(&plan).count;
        clean.shutdown();

        let pg = PartitionedGraph::new(&g, 3, 1);
        let engine = Engine::new(pg, EngineConfig {
            fabric: FabricConfig {
                window: 4,
                retry: RetryPolicy {
                    max_attempts: 8,
                    timeout: Duration::from_millis(50),
                    backoff: Duration::from_millis(1),
                },
                fault: Some(FaultPlan { seed: fault_seed, ..FaultPlan::drops(0.05) }),
                ..FabricConfig::default()
            },
            ..EngineConfig::default()
        });
        let run = engine.try_count(&plan).expect("retries must mask the fault plan");
        engine.shutdown();
        prop_assert_eq!(run.count, expect);
    }

    #[test]
    fn counts_invariant_under_crash_schedules(
        seed in 0u64..100,
        crash_part in 0usize..4,
        crash_after in prop_oneof![0u64..8, 8u64..64],
        steal in any::<bool>(),
        p in arb_pattern(),
    ) {
        // The seeded skewed R-MAT fixture under range partitioning (as in
        // `counts_invariant_under_work_stealing`): the hub vertices all
        // land on part 0, so steal-path donations and adoptions are in
        // flight when a crash lands.
        let g = gen::rmat(6, 8, (0.57, 0.19, 0.19), seed);
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
        let clean = Engine::new(pg, EngineConfig::default());
        let expect = clean.count(&plan).count;
        clean.shutdown();

        let crashy = |mode: ControlMode| EngineConfig {
            // Small chunks split the fetch workload into many wire
            // requests so most sampled schedules actually fire mid-run.
            chunk_capacity: 32,
            steal: StealConfig { enabled: steal, batch: 4, ..StealConfig::default() },
            control: ControlConfig { mode, ..ControlConfig::default() },
            fabric: FabricConfig {
                retry: RetryPolicy {
                    max_attempts: 4,
                    timeout: Duration::from_millis(50),
                    backoff: Duration::from_millis(1),
                },
                fault: Some(FaultPlan::crash_at(crash_part, crash_after)),
                ..FabricConfig::default()
            },
            ..EngineConfig::default()
        };
        for mode in [ControlMode::Shared, ControlMode::Msg] {
            // With a replica, every crash schedule must recover the exact
            // count — whether the crash fires early, mid-run, or never —
            // under either control-plane carrier.
            let mut pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
            pg.set_replication(2);
            let engine = Engine::new(pg, crashy(mode));
            let run = engine.try_count(&plan).expect("replication must mask a single crash");
            engine.shutdown();
            prop_assert!(run.count == expect, "mode {:?}: {} != {}", mode, run.count, expect);

            // Without one, the same schedule either never fires (exact
            // count) or surfaces as a typed loss — never a wrong count,
            // never a hang.
            let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
            let engine = Engine::new(pg, crashy(mode));
            let res = engine.try_count(&plan);
            engine.shutdown();
            match res {
                Ok(run) => {
                    prop_assert!(run.count == expect, "mode {:?}: {} != {}", mode, run.count, expect)
                }
                Err(EngineError::PartLost { part }) => prop_assert_eq!(part, crash_part),
                Err(e) => prop_assert!(false, "unexpected error under {:?}: {}", mode, e),
            }
        }
    }

    #[test]
    fn counts_invariant_under_control_message_faults(
        seed in 0u64..100,
        fault_seed in 0u64..u64::MAX,
        p in arb_pattern(),
    ) {
        // Dropping *control* messages (claims, retirements, quiescence
        // polls) — not data fetches — must never change counts: replies
        // are replayed from the responder's dedup cache, so a retried
        // claim is never applied twice.
        let g = gen::rmat(6, 8, (0.57, 0.19, 0.19), seed);
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
        let clean = Engine::new(pg, EngineConfig::default());
        let expect = clean.count(&plan).count;
        clean.shutdown();

        let pg = PartitionedGraph::with_partitioner(&g, 4, 1, Partitioner::Range);
        let engine = Engine::new(pg, EngineConfig {
            chunk_capacity: 32,
            steal: StealConfig { enabled: true, batch: 4, ..StealConfig::default() },
            control: ControlConfig {
                mode: ControlMode::Msg,
                retry: RetryPolicy {
                    max_attempts: 10,
                    timeout: Duration::from_millis(50),
                    backoff: Duration::from_micros(500),
                },
                fault: Some(FaultPlan { seed: fault_seed, ..FaultPlan::drops(0.2) }),
            },
            ..EngineConfig::default()
        });
        let run = engine.try_count(&plan).expect("retries must mask dropped control replies");
        let (retried, dropped) = (
            engine.metrics().total_ctrl_retried(),
            engine.metrics().total_ctrl_dropped(),
        );
        engine.shutdown();
        prop_assert_eq!(run.count, expect);
        prop_assert!(retried > 0, "a 20% drop plan must force control retries");
        prop_assert!(dropped > 0, "the drop plan must actually drop control replies");
    }

    #[test]
    fn counts_invariant_under_work_stealing(
        seed in 0u64..200,
        p in arb_pattern(),
    ) {
        // Skewed R-MAT under range partitioning: the low-id hub vertices
        // all land on part 0, so the other parts starve early and the
        // steal path (cursor steals, spill donations, ledger quiescence)
        // actually runs. The count must be bit-identical across steal
        // on/off, thread counts, and part counts.
        let g = gen::rmat(6, 8, (0.57, 0.19, 0.19), seed);
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let mut expect: Option<u64> = None;
        for parts in [1usize, 4] {
            for threads in [1usize, 2, 4] {
                for steal in [false, true] {
                    for mode in [ControlMode::Shared, ControlMode::Msg] {
                        // The message carrier only differs once several
                        // parts actually coordinate; skip the degenerate
                        // single-part sweep to keep the case affordable.
                        if mode == ControlMode::Msg && parts == 1 {
                            continue;
                        }
                        let pg =
                            PartitionedGraph::with_partitioner(&g, parts, 1, Partitioner::Range);
                        let engine = Engine::new(pg, EngineConfig {
                            compute_threads: threads,
                            // Small chunks force multi-chunk levels, pauses,
                            // and leftover hand-backs under stealing.
                            chunk_capacity: 64,
                            steal: StealConfig { enabled: steal, batch: 8, ..StealConfig::default() },
                            control: ControlConfig { mode, ..ControlConfig::default() },
                            ..EngineConfig::default()
                        });
                        let c = engine.count(&plan).count;
                        engine.shutdown();
                        match expect {
                            None => expect = Some(c),
                            Some(e) => prop_assert!(
                                c == e,
                                "count diverged: parts={} threads={} steal={} mode={:?}: {} != {}",
                                parts, threads, steal, mode, c, e
                            ),
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn engine_enumerate_agrees_with_count(
        seed in 0u64..500,
        p in arb_pattern(),
    ) {
        let g = gen::erdos_renyi(50, 200, seed);
        let plan = MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let pg = PartitionedGraph::new(&g, 3, 1);
        let engine = Engine::new(pg, EngineConfig::default());
        let seen = std::sync::atomic::AtomicU64::new(0);
        let run = engine.enumerate(&plan, |_| {
            seen.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
        });
        let counted = engine.count(&plan);
        engine.shutdown();
        prop_assert_eq!(run.count, seen.into_inner());
        prop_assert_eq!(run.count, counted.count);
    }
}
