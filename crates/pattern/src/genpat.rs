//! Pattern-set generation.
//!
//! * [`connected_patterns`] — all non-isomorphic connected unlabeled
//!   patterns of a given size, the pattern set of k-motif counting;
//! * [`labeled_edge_patterns`] / [`extend_by_edge`] — seed and grow
//!   labeled candidate patterns for frequent subgraph mining (FSM grows
//!   patterns edge by edge, Table 4 mines patterns of up to 3 edges).

use crate::{iso, Pattern};
use gpm_graph::Label;
use std::collections::HashSet;

/// All connected patterns with `k` vertices, up to isomorphism, in a
/// deterministic order.
///
/// # Panics
///
/// Panics if `k` is zero or exceeds [`crate::MAX_PATTERN_VERTICES`].
///
/// # Example
///
/// ```
/// use gpm_pattern::genpat;
///
/// assert_eq!(genpat::connected_patterns(3).len(), 2);  // path, triangle
/// assert_eq!(genpat::connected_patterns(4).len(), 6);
/// assert_eq!(genpat::connected_patterns(5).len(), 21);
/// ```
pub fn connected_patterns(k: usize) -> Vec<Pattern> {
    assert!((1..=crate::MAX_PATTERN_VERTICES).contains(&k), "unsupported pattern size {k}");
    if k == 1 {
        return vec![Pattern::single_vertex()];
    }
    let pairs: Vec<(usize, usize)> = (0..k).flat_map(|v| (0..v).map(move |u| (u, v))).collect();
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut out = Vec::new();
    for mask in 0u32..(1 << pairs.len()) {
        if (mask.count_ones() as usize) < k - 1 {
            continue; // cannot be connected
        }
        let edges: Vec<(usize, usize)> = pairs
            .iter()
            .enumerate()
            .filter(|(i, _)| mask & (1 << i) != 0)
            .map(|(_, &e)| e)
            .collect();
        let Ok(p) = Pattern::from_edges(k, &edges) else {
            continue; // disconnected
        };
        if seen.insert(iso::canonical_code(&p)) {
            out.push(p);
        }
    }
    out
}

/// All single-edge labeled patterns over `label_count` labels, up to
/// isomorphism (i.e. unordered label pairs) — the seeds of FSM's
/// pattern-growth loop.
pub fn labeled_edge_patterns(label_count: Label) -> Vec<Pattern> {
    let mut out = Vec::new();
    for a in 0..label_count {
        for b in a..label_count {
            out.push(Pattern::edge().with_labels(vec![a, b]).expect("edge labels are valid"));
        }
    }
    out
}

/// Every pattern obtainable from `p` by adding one edge — either between
/// two existing non-adjacent vertices, or to a fresh vertex with any of
/// `label_count` labels (fresh vertices are only added while the pattern
/// is below `max_vertices`). Results are deduplicated up to isomorphism.
pub fn extend_by_edge(p: &Pattern, label_count: Label, max_vertices: usize) -> Vec<Pattern> {
    assert!(p.is_labeled(), "FSM pattern growth requires labeled patterns");
    let n = p.size();
    let labels = p.labels().unwrap().to_vec();
    let mut seen = HashSet::new();
    let mut out = Vec::new();
    let mut push = |cand: Pattern, seen: &mut HashSet<Vec<u8>>| {
        if seen.insert(iso::canonical_code(&cand)) {
            out.push(cand);
        }
    };
    // Close an edge between existing vertices.
    for u in 0..n {
        for v in 0..u {
            if !p.has_edge(u, v) {
                let mut edges = p.edges();
                edges.push((v, u));
                let cand = Pattern::from_edges(n, &edges)
                    .expect("adding an edge keeps the pattern valid")
                    .with_labels(labels.clone())
                    .expect("labels unchanged");
                push(cand, &mut seen);
            }
        }
    }
    // Grow a new labeled vertex attached to each existing vertex.
    if n < max_vertices {
        for u in 0..n {
            for l in 0..label_count {
                let mut edges = p.edges();
                edges.push((u, n));
                let mut new_labels = labels.clone();
                new_labels.push(l);
                let cand = Pattern::from_edges(n + 1, &edges)
                    .expect("attachment keeps the pattern connected")
                    .with_labels(new_labels)
                    .expect("label per vertex");
                push(cand, &mut seen);
            }
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_connected_graph_counts() {
        assert_eq!(connected_patterns(1).len(), 1);
        assert_eq!(connected_patterns(2).len(), 1);
        assert_eq!(connected_patterns(3).len(), 2);
        assert_eq!(connected_patterns(4).len(), 6);
        assert_eq!(connected_patterns(5).len(), 21);
    }

    #[test]
    fn generated_patterns_are_pairwise_non_isomorphic() {
        let ps = connected_patterns(4);
        for i in 0..ps.len() {
            for j in 0..i {
                assert!(!iso::are_isomorphic(&ps[i], &ps[j]), "{} ~ {}", ps[i], ps[j]);
            }
        }
    }

    #[test]
    fn generation_is_deterministic() {
        assert_eq!(connected_patterns(4), connected_patterns(4));
    }

    #[test]
    fn edge_seed_count() {
        // Unordered label pairs: C(l+1, 2).
        assert_eq!(labeled_edge_patterns(3).len(), 6);
        assert_eq!(labeled_edge_patterns(1).len(), 1);
    }

    #[test]
    fn extension_from_labeled_edge() {
        let e = Pattern::edge().with_labels(vec![0, 1]).unwrap();
        let ext = extend_by_edge(&e, 2, 3);
        // No edge can be closed (K2 complete); growth: attach labeled
        // vertex to either endpoint: 2 endpoints x 2 labels, some
        // isomorphic. Endpoints have distinct labels so all 4 distinct.
        assert_eq!(ext.len(), 4);
        for p in &ext {
            assert_eq!(p.size(), 3);
            assert_eq!(p.edge_count(), 2);
        }
    }

    #[test]
    fn extension_respects_max_vertices() {
        let e = Pattern::edge().with_labels(vec![0, 0]).unwrap();
        let ext = extend_by_edge(&e, 2, 2);
        assert!(ext.is_empty(), "no growth allowed at max size and K2 has no missing edge");
    }

    #[test]
    fn closing_an_edge() {
        let p3 = Pattern::path(3).with_labels(vec![0, 0, 0]).unwrap();
        let ext = extend_by_edge(&p3, 1, 3);
        // Close 0-2 into a triangle, or grow to 4 vertices (forbidden by
        // max): with max_vertices=3 only the triangle remains.
        assert_eq!(ext.len(), 1);
        assert_eq!(ext[0].edge_count(), 3);
    }

    #[test]
    #[should_panic(expected = "labeled")]
    fn unlabeled_growth_panics() {
        extend_by_edge(&Pattern::edge(), 1, 3);
    }
}
