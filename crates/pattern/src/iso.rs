//! Isomorphism, automorphisms and canonical codes for patterns.
//!
//! Patterns are at most [`crate::MAX_PATTERN_VERTICES`] vertices, so plain
//! permutation backtracking with degree pruning is more than fast enough;
//! no VF2 machinery is needed at this size.

use crate::Pattern;

/// Enumerates every automorphism of `p` (as permutations `perm[i]` = image
/// of vertex `i`). Labels, if present, must be preserved.
///
/// The identity is always included, so the result is never empty.
///
/// # Example
///
/// ```
/// use gpm_pattern::{iso, Pattern};
///
/// assert_eq!(iso::automorphisms(&Pattern::triangle()).len(), 6);
/// assert_eq!(iso::automorphisms(&Pattern::path(3)).len(), 2);
/// assert_eq!(iso::automorphisms(&Pattern::tailed_triangle()).len(), 2);
/// ```
pub fn automorphisms(p: &Pattern) -> Vec<Vec<usize>> {
    isomorphisms(p, p)
}

/// Number of automorphisms of `p` (`|Aut(p)|`).
pub fn automorphism_count(p: &Pattern) -> u64 {
    automorphisms(p).len() as u64
}

/// Enumerates every isomorphism from `a` to `b` (empty if none exists).
pub fn isomorphisms(a: &Pattern, b: &Pattern) -> Vec<Vec<usize>> {
    if a.size() != b.size()
        || a.edge_count() != b.edge_count()
        || a.is_labeled() != b.is_labeled()
        || a.has_edge_labels() != b.has_edge_labels()
    {
        return Vec::new();
    }
    let n = a.size();
    let mut out = Vec::new();
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    search(a, b, 0, &mut perm, &mut used, &mut out);
    debug_assert!(out.iter().all(|p| p.len() == n));
    out
}

fn search(
    a: &Pattern,
    b: &Pattern,
    i: usize,
    perm: &mut Vec<usize>,
    used: &mut Vec<bool>,
    out: &mut Vec<Vec<usize>>,
) {
    let n = a.size();
    if i == n {
        out.push(perm.clone());
        return;
    }
    for cand in 0..n {
        if used[cand] || a.degree(i) != b.degree(cand) || a.label(i) != b.label(cand) {
            continue;
        }
        // Edges between i and already-mapped vertices must be preserved
        // both ways (patterns, unlike matches, are exact structures),
        // including edge labels when present.
        let ok = (0..i).all(|j| {
            a.has_edge(i, j) == b.has_edge(cand, perm[j])
                && a.edge_label(i, j) == b.edge_label(cand, perm[j])
        });
        if !ok {
            continue;
        }
        perm[i] = cand;
        used[cand] = true;
        search(a, b, i + 1, perm, used, out);
        used[cand] = false;
        perm[i] = usize::MAX;
    }
}

/// Whether two patterns are isomorphic (respecting labels).
pub fn are_isomorphic(a: &Pattern, b: &Pattern) -> bool {
    if a.size() != b.size()
        || a.edge_count() != b.edge_count()
        || a.is_labeled() != b.is_labeled()
        || a.has_edge_labels() != b.has_edge_labels()
    {
        return false;
    }
    let n = a.size();
    let mut perm = vec![usize::MAX; n];
    let mut used = vec![false; n];
    exists(a, b, 0, &mut perm, &mut used)
}

fn exists(a: &Pattern, b: &Pattern, i: usize, perm: &mut Vec<usize>, used: &mut Vec<bool>) -> bool {
    let n = a.size();
    if i == n {
        return true;
    }
    for cand in 0..n {
        if used[cand] || a.degree(i) != b.degree(cand) || a.label(i) != b.label(cand) {
            continue;
        }
        if !(0..i).all(|j| {
            a.has_edge(i, j) == b.has_edge(cand, perm[j])
                && a.edge_label(i, j) == b.edge_label(cand, perm[j])
        }) {
            continue;
        }
        perm[i] = cand;
        used[cand] = true;
        if exists(a, b, i + 1, perm, used) {
            return true;
        }
        used[cand] = false;
        perm[i] = usize::MAX;
    }
    false
}

/// Canonical code of a pattern: the lexicographically smallest
/// `(adjacency bits, labels)` encoding over all vertex permutations.
///
/// Two patterns have equal canonical codes iff they are isomorphic, so the
/// code can key dedup maps (e.g. motif tables, FSM candidate sets).
///
/// # Example
///
/// ```
/// use gpm_pattern::{iso, Pattern};
///
/// let a = Pattern::from_edges(3, &[(0, 1), (1, 2)]).unwrap();
/// let b = Pattern::from_edges(3, &[(2, 0), (0, 1)]).unwrap();
/// assert_eq!(iso::canonical_code(&a), iso::canonical_code(&b));
/// ```
pub fn canonical_code(p: &Pattern) -> Vec<u8> {
    let n = p.size();
    let mut best: Option<Vec<u8>> = None;
    let mut perm: Vec<usize> = (0..n).collect();
    permute_all(&mut perm, 0, &mut |perm| {
        let q = p.permuted(perm);
        let mut code = Vec::with_capacity(1 + n * 3);
        code.push(n as u8);
        for i in 0..n {
            code.push(q.adjacency_bits(i));
        }
        if let Some(labels) = q.labels() {
            for &l in labels {
                code.extend_from_slice(&l.to_le_bytes());
            }
        }
        if q.has_edge_labels() {
            for (u, v) in q.edges() {
                code.extend_from_slice(
                    &q.edge_label(u, v).expect("fully edge-labeled").to_le_bytes(),
                );
            }
        }
        match &best {
            Some(b) if *b <= code => {}
            _ => best = Some(code),
        }
    });
    best.expect("at least one permutation exists")
}

fn permute_all(perm: &mut Vec<usize>, i: usize, f: &mut impl FnMut(&[usize])) {
    let n = perm.len();
    if i == n {
        f(perm);
        return;
    }
    for j in i..n {
        perm.swap(i, j);
        permute_all(perm, i + 1, f);
        perm.swap(i, j);
    }
}

/// The orbit partition of `p`'s vertices under its automorphism group.
///
/// Returns `orbit[v]` = smallest vertex in `v`'s orbit.
pub fn orbits(p: &Pattern) -> Vec<usize> {
    let n = p.size();
    let mut orbit: Vec<usize> = (0..n).collect();
    for a in automorphisms(p) {
        // Index loop: both `v` and its image `a[v]` index the union-find.
        #[allow(clippy::needless_range_loop)]
        for v in 0..n {
            let (mut x, mut y) = (root(&orbit, v), root(&orbit, a[v]));
            if x != y {
                if x > y {
                    std::mem::swap(&mut x, &mut y);
                }
                orbit[y] = x;
            }
        }
    }
    (0..n).map(|v| root(&orbit, v)).collect()
}

fn root(orbit: &[usize], mut v: usize) -> usize {
    while orbit[v] != v {
        v = orbit[v];
    }
    v
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automorphism_counts_of_known_patterns() {
        assert_eq!(automorphism_count(&Pattern::clique(4)), 24);
        assert_eq!(automorphism_count(&Pattern::clique(5)), 120);
        assert_eq!(automorphism_count(&Pattern::path(4)), 2);
        assert_eq!(automorphism_count(&Pattern::star(5)), 24);
        assert_eq!(automorphism_count(&Pattern::cycle(4)), 8);
        assert_eq!(automorphism_count(&Pattern::cycle(5)), 10);
        assert_eq!(automorphism_count(&Pattern::diamond()), 4);
        assert_eq!(automorphism_count(&Pattern::single_vertex()), 1);
    }

    #[test]
    fn automorphisms_are_valid_permutations() {
        let p = Pattern::house();
        for a in automorphisms(&p) {
            let q = p.permuted(&a);
            assert_eq!(q, p, "automorphism {a:?} does not fix the pattern");
        }
    }

    #[test]
    fn isomorphic_relabelings_detected() {
        let a = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3)]).unwrap();
        let b = Pattern::from_edges(4, &[(3, 1), (1, 0), (0, 2)]).unwrap();
        assert!(are_isomorphic(&a, &b));
        assert_eq!(canonical_code(&a), canonical_code(&b));
    }

    #[test]
    fn non_isomorphic_same_size() {
        let path = Pattern::path(4);
        let star = Pattern::star(4);
        assert_eq!(path.edge_count(), star.edge_count());
        assert!(!are_isomorphic(&path, &star));
        assert_ne!(canonical_code(&path), canonical_code(&star));
    }

    #[test]
    fn labels_break_symmetry() {
        let unlabeled = Pattern::edge();
        let ab = Pattern::edge().with_labels(vec![0, 1]).unwrap();
        let ba = Pattern::edge().with_labels(vec![1, 0]).unwrap();
        let aa = Pattern::edge().with_labels(vec![0, 0]).unwrap();
        assert_eq!(automorphism_count(&ab), 1);
        assert_eq!(automorphism_count(&aa), 2);
        assert!(are_isomorphic(&ab, &ba));
        assert!(!are_isomorphic(&ab, &aa));
        assert!(!are_isomorphic(&ab, &unlabeled));
        assert_eq!(canonical_code(&ab), canonical_code(&ba));
    }

    #[test]
    fn edge_labels_break_symmetry() {
        let uniform =
            Pattern::triangle().with_edge_labels(&[(0, 1, 5), (1, 2, 5), (0, 2, 5)]).unwrap();
        assert_eq!(automorphism_count(&uniform), 6);
        let one_marked =
            Pattern::triangle().with_edge_labels(&[(0, 1, 9), (1, 2, 5), (0, 2, 5)]).unwrap();
        // Only the swap of 0 and 1 survives.
        assert_eq!(automorphism_count(&one_marked), 2);
        assert!(!are_isomorphic(&uniform, &one_marked));
        // A rotation of the marked triangle is still isomorphic to it.
        let rotated =
            Pattern::triangle().with_edge_labels(&[(1, 2, 9), (0, 2, 5), (0, 1, 5)]).unwrap();
        assert!(are_isomorphic(&one_marked, &rotated));
        assert_eq!(canonical_code(&one_marked), canonical_code(&rotated));
        assert_ne!(canonical_code(&one_marked), canonical_code(&uniform));
    }

    #[test]
    fn orbit_partition() {
        // Tailed triangle 0-1-2-0, 2-3: orbits {0,1}, {2}, {3}.
        let o = orbits(&Pattern::tailed_triangle());
        assert_eq!(o[0], o[1]);
        assert_ne!(o[0], o[2]);
        assert_ne!(o[2], o[3]);
        // Clique: single orbit.
        let o = orbits(&Pattern::clique(4));
        assert!(o.iter().all(|&r| r == 0));
    }
}
