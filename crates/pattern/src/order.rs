//! Matching-order selection.
//!
//! The matching order — which pattern vertex each loop level matches —
//! determines both the cost of enumeration and how early symmetry-breaking
//! restrictions can prune. k-Automine and k-GraphPi differ exactly here
//! (paper §7.2 attributes k-GraphPi's 3-MC advantage to "GraphPi's better
//! pattern matching algorithm"):
//!
//! * [`automine_order`] — greedy: start from a max-degree vertex, then
//!   repeatedly append the vertex most connected to the prefix;
//! * [`graphpi_order`] — exhaustive search over all connected-prefix
//!   permutations scored by a random-graph cost model that accounts for
//!   restriction pruning.

use crate::restrictions;
use crate::Pattern;

/// Which matching-order strategy a plan should use.
#[derive(Debug, Clone, PartialEq, Eq, Default)]
pub enum OrderChoice {
    /// Greedy connectivity order (AutoMine-style).
    #[default]
    Automine,
    /// Exhaustive cost-model search (GraphPi-style).
    GraphPi,
    /// A caller-supplied order (must have the connected-prefix property).
    Given(Vec<usize>),
}

/// Whether `order` has the connected-prefix property: every vertex after
/// the first is adjacent to at least one earlier vertex.
pub fn has_connected_prefix(p: &Pattern, order: &[usize]) -> bool {
    if order.len() != p.size() {
        return false;
    }
    let mut seen = vec![false; p.size()];
    let mut used = 0u16;
    for (i, &v) in order.iter().enumerate() {
        if v >= p.size() || seen[v] {
            return false;
        }
        seen[v] = true;
        if i > 0 && !order[..i].iter().any(|&u| p.has_edge(u, v)) {
            return false;
        }
        used |= 1 << v;
    }
    used.count_ones() as usize == p.size()
}

/// AutoMine-style greedy order: highest-degree start vertex, then at each
/// step the unmatched vertex with the most neighbors in the prefix
/// (ties: higher pattern degree, then lower id).
///
/// # Example
///
/// ```
/// use gpm_pattern::{order, Pattern};
///
/// let o = order::automine_order(&Pattern::tailed_triangle());
/// assert!(order::has_connected_prefix(&Pattern::tailed_triangle(), &o));
/// assert_eq!(o[0], 2); // the degree-3 hub goes first
/// ```
pub fn automine_order(p: &Pattern) -> Vec<usize> {
    let n = p.size();
    let start = (0..n).max_by_key(|&v| (p.degree(v), std::cmp::Reverse(v))).unwrap();
    let mut order = vec![start];
    let mut in_prefix = vec![false; n];
    in_prefix[start] = true;
    while order.len() < n {
        let next = (0..n)
            .filter(|&v| !in_prefix[v])
            .max_by_key(|&v| {
                let conn = order.iter().filter(|&&u| p.has_edge(u, v)).count();
                (conn, p.degree(v), std::cmp::Reverse(v))
            })
            .unwrap();
        // Connected patterns always offer a connected next vertex.
        debug_assert!(order.iter().any(|&u| p.has_edge(u, next)) || n == 1);
        order.push(next);
        in_prefix[next] = true;
    }
    order
}

/// Parameters of the random-graph cost model used by [`graphpi_order`].
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct CostModel {
    /// Assumed vertex count of the data graph.
    pub vertices: f64,
    /// Assumed average degree.
    pub avg_degree: f64,
}

impl Default for CostModel {
    fn default() -> Self {
        // Representative mid-size graph; only *relative* costs matter.
        CostModel { vertices: 1.0e5, avg_degree: 50.0 }
    }
}

/// Estimated enumeration cost of a given order under the model, including
/// restriction pruning (each restriction at a level roughly halves the
/// candidates that survive).
pub fn estimate_cost(p: &Pattern, order: &[usize], model: &CostModel) -> f64 {
    let n = p.size();
    let q = (model.avg_degree / model.vertices).min(1.0);
    let restr = restrictions::generate(p, order);
    // pos[v] = level of pattern vertex v
    let mut pos = vec![0usize; n];
    for (i, &v) in order.iter().enumerate() {
        pos[v] = i;
    }
    let mut partials = model.vertices; // level-0 candidates
    let mut cost = 0.0;
    for i in 1..n {
        let v = order[i];
        let connected = order[..i].iter().filter(|&&u| p.has_edge(u, v)).count();
        // Candidates: one neighbor expansion, each extra adjacency
        // constraint thins by q.
        let mut cands = model.avg_degree * q.powi(connected as i32 - 1);
        // Each `<` restriction whose later endpoint is this level halves
        // the surviving candidates.
        let restr_here = restr.iter().filter(|r| pos[r.smaller].max(pos[r.larger]) == i).count();
        cands *= 0.5f64.powi(restr_here as i32);
        // Work at this level: one intersection per connected prefix vertex
        // over the current partial embeddings.
        cost += partials * (connected as f64).max(1.0);
        partials *= cands;
    }
    cost + partials
}

/// GraphPi-style order: exhaustive search over all connected-prefix
/// permutations, scored with [`estimate_cost`] (which folds in the quality
/// of the restriction set each order admits).
///
/// # Example
///
/// ```
/// use gpm_pattern::{order, Pattern};
///
/// let p = Pattern::cycle(4);
/// let o = order::graphpi_order(&p, &order::CostModel::default());
/// assert!(order::has_connected_prefix(&p, &o));
/// ```
pub fn graphpi_order(p: &Pattern, model: &CostModel) -> Vec<usize> {
    let n = p.size();
    let mut best: Option<(f64, Vec<usize>)> = None;
    let mut order: Vec<usize> = Vec::with_capacity(n);
    let mut used = vec![false; n];
    search_orders(p, &mut order, &mut used, &mut |cand| {
        let cost = estimate_cost(p, cand, model);
        match &best {
            Some((c, _)) if *c <= cost => {}
            _ => best = Some((cost, cand.to_vec())),
        }
    });
    best.expect("connected pattern has at least one valid order").1
}

fn search_orders(
    p: &Pattern,
    order: &mut Vec<usize>,
    used: &mut Vec<bool>,
    f: &mut impl FnMut(&[usize]),
) {
    let n = p.size();
    if order.len() == n {
        f(order);
        return;
    }
    for v in 0..n {
        if used[v] {
            continue;
        }
        if !order.is_empty() && !order.iter().any(|&u| p.has_edge(u, v)) {
            continue;
        }
        used[v] = true;
        order.push(v);
        search_orders(p, order, used, f);
        order.pop();
        used[v] = false;
    }
}

/// Resolves an [`OrderChoice`] to a concrete matching order.
///
/// # Errors
///
/// Returns an error message if a [`OrderChoice::Given`] order lacks the
/// connected-prefix property.
pub fn resolve(p: &Pattern, choice: &OrderChoice) -> Result<Vec<usize>, String> {
    match choice {
        OrderChoice::Automine => Ok(automine_order(p)),
        OrderChoice::GraphPi => Ok(graphpi_order(p, &CostModel::default())),
        OrderChoice::Given(o) => {
            if has_connected_prefix(p, o) {
                Ok(o.clone())
            } else {
                Err(format!("order {o:?} lacks the connected-prefix property"))
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn automine_order_valid_for_all_fixtures() {
        for p in [
            Pattern::triangle(),
            Pattern::clique(5),
            Pattern::path(5),
            Pattern::star(5),
            Pattern::cycle(6),
            Pattern::tailed_triangle(),
            Pattern::diamond(),
            Pattern::house(),
        ] {
            let o = automine_order(&p);
            assert!(has_connected_prefix(&p, &o), "invalid order for {p}");
        }
    }

    #[test]
    fn graphpi_order_valid_and_at_least_as_cheap() {
        let model = CostModel::default();
        for p in [Pattern::cycle(5), Pattern::tailed_triangle(), Pattern::house()] {
            let ga = automine_order(&p);
            let gp = graphpi_order(&p, &model);
            assert!(has_connected_prefix(&p, &gp));
            assert!(
                estimate_cost(&p, &gp, &model) <= estimate_cost(&p, &ga, &model) + 1e-9,
                "graphpi order should never cost more for {p}"
            );
        }
    }

    #[test]
    fn connected_prefix_detection() {
        let p = Pattern::path(4); // 0-1-2-3
        assert!(has_connected_prefix(&p, &[1, 0, 2, 3]));
        assert!(!has_connected_prefix(&p, &[0, 2, 1, 3]));
        assert!(!has_connected_prefix(&p, &[0, 1, 2])); // wrong length
        assert!(!has_connected_prefix(&p, &[0, 0, 1, 2])); // repeat
    }

    #[test]
    fn resolve_rejects_bad_given_order() {
        let p = Pattern::path(3);
        assert!(resolve(&p, &OrderChoice::Given(vec![0, 2, 1])).is_err());
        assert_eq!(resolve(&p, &OrderChoice::Given(vec![1, 0, 2])).unwrap(), vec![1, 0, 2]);
    }

    #[test]
    fn cost_model_prefers_dense_prefixes() {
        // For the tailed triangle, starting at the hub (vertex 2) and
        // closing the triangle early must beat starting at the tail.
        let p = Pattern::tailed_triangle();
        let model = CostModel::default();
        let good = estimate_cost(&p, &[2, 0, 1, 3], &model);
        let bad = estimate_cost(&p, &[3, 2, 0, 1], &model);
        assert!(good < bad);
    }

    #[test]
    fn single_vertex_order() {
        assert_eq!(automine_order(&Pattern::single_vertex()), vec![0]);
    }
}
