//! Single-machine reference interpreter for [`MatchingPlan`]s.
//!
//! This is the "nested loops" of the paper's Figure 1, executed directly
//! on an in-memory graph: the simplest correct executor of a plan. It is
//! used as the ground-truth implementation for engine tests, as the core
//! of the single-machine baselines, and by the oracle cross-checks.

use crate::plan::{CandidateSource, LevelPlan, MatchingPlan, PairMode};
use gpm_graph::{set_ops, Graph, VertexId};

/// Counts the embeddings a plan produces on `g`.
///
/// With symmetry breaking on (the default) this is the number of
/// subgraphs isomorphic to the pattern; with it off, the number of
/// injective maps.
///
/// # Example
///
/// ```
/// use gpm_pattern::{interp, plan::{MatchingPlan, PlanOptions}, Pattern};
/// use gpm_graph::gen;
///
/// let plan = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::default()).unwrap();
/// assert_eq!(interp::count_embeddings(&gen::complete(4), &plan), 4);
/// ```
pub fn count_embeddings(g: &Graph, plan: &MatchingPlan) -> u64 {
    let mut count = 0u64;
    enumerate_embeddings(g, plan, |_| count += 1);
    count
}

/// Enumerates embeddings, invoking `visit` with the matched vertices in
/// matching-order positions (`matched[i]` = graph vertex at position `i`).
pub fn enumerate_embeddings<F: FnMut(&[VertexId])>(g: &Graph, plan: &MatchingPlan, mut visit: F) {
    let mut matched: Vec<VertexId> = Vec::with_capacity(plan.depth());
    // Intermediate (raw candidate) sets stored per level for reuse.
    let mut inter: Vec<Vec<VertexId>> = vec![Vec::new(); plan.depth()];
    for v in g.vertices() {
        if let Some(required) = plan.root_label() {
            if g.label(v) != Some(required) {
                continue;
            }
        }
        if plan.depth() == 1 {
            visit(&[v]);
            continue;
        }
        matched.push(v);
        descend(g, plan, 0, &mut matched, &mut inter, &mut visit);
        matched.pop();
    }
}

/// Enumerates embeddings with early termination: `visit` returns `false`
/// to stop the walk (used by bounded queries such as FSM's
/// support-threshold check and exists-a-match queries).
pub fn enumerate_embeddings_until<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    plan: &MatchingPlan,
    mut visit: F,
) {
    let mut matched: Vec<VertexId> = Vec::with_capacity(plan.depth());
    let mut inter: Vec<Vec<VertexId>> = vec![Vec::new(); plan.depth()];
    for v in g.vertices() {
        if let Some(required) = plan.root_label() {
            if g.label(v) != Some(required) {
                continue;
            }
        }
        if plan.depth() == 1 {
            if !visit(&[v]) {
                return;
            }
            continue;
        }
        matched.push(v);
        let keep = descend_until(g, plan, 0, &mut matched, &mut inter, &mut visit);
        matched.pop();
        if !keep {
            return;
        }
    }
}

fn descend_until<F: FnMut(&[VertexId]) -> bool>(
    g: &Graph,
    plan: &MatchingPlan,
    level_idx: usize,
    matched: &mut Vec<VertexId>,
    inter: &mut Vec<Vec<VertexId>>,
    visit: &mut F,
) -> bool {
    let lp = &plan.levels()[level_idx];
    let mut cands = Vec::new();
    raw_candidates(g, lp, matched, inter, &mut cands);
    let last = level_idx + 1 == plan.levels().len();
    if lp.store_intermediate {
        inter[lp.position] = cands.clone();
    }
    for &cand in &cands {
        if !passes_filters(g, lp, matched, cand) {
            continue;
        }
        matched.push(cand);
        let keep = if last {
            visit(matched)
        } else {
            descend_until(g, plan, level_idx + 1, matched, inter, visit)
        };
        matched.pop();
        if !keep {
            return false;
        }
    }
    true
}

/// Computes the raw (unfiltered) candidate set for the given level, given
/// the matched prefix and the per-level intermediate storage.
pub fn raw_candidates(
    g: &Graph,
    lp: &LevelPlan,
    matched: &[VertexId],
    inter: &[Vec<VertexId>],
    out: &mut Vec<VertexId>,
) {
    out.clear();
    match lp.source {
        CandidateSource::Scratch => {
            let lists: Vec<&[VertexId]> =
                lp.intersect.iter().map(|&p| g.neighbors(matched[p])).collect();
            set_ops::intersect_many_into(&lists, out);
        }
        CandidateSource::ParentIntermediate => {
            out.extend_from_slice(&inter[lp.position - 1]);
        }
        CandidateSource::ParentIntermediateAndNew => {
            set_ops::intersect_into(
                &inter[lp.position - 1],
                g.neighbors(matched[lp.position - 1]),
                out,
            );
        }
    }
    if !lp.subtract.is_empty() {
        let mut tmp = Vec::new();
        for &p in &lp.subtract {
            tmp.clear();
            set_ops::subtract_into(out, g.neighbors(matched[p]), &mut tmp);
            std::mem::swap(out, &mut tmp);
        }
    }
}

/// Whether candidate `cand` passes the level's filters (bounds,
/// injectivity, label) given the matched prefix.
#[inline]
pub fn passes_filters(g: &Graph, lp: &LevelPlan, matched: &[VertexId], cand: VertexId) -> bool {
    for &p in &lp.lower {
        if cand <= matched[p] {
            return false;
        }
    }
    for &p in &lp.upper {
        if cand >= matched[p] {
            return false;
        }
    }
    for &p in &lp.distinct {
        if cand == matched[p] {
            return false;
        }
    }
    if let Some(required) = lp.label {
        if g.label(cand) != Some(required) {
            return false;
        }
    }
    for &(p, required) in &lp.edge_labels {
        if g.edge_label(matched[p], cand) != Some(required) {
            return false;
        }
    }
    true
}

fn descend<F: FnMut(&[VertexId])>(
    g: &Graph,
    plan: &MatchingPlan,
    level_idx: usize,
    matched: &mut Vec<VertexId>,
    inter: &mut Vec<Vec<VertexId>>,
    visit: &mut F,
) {
    let lp = &plan.levels()[level_idx];
    let mut cands = Vec::new();
    raw_candidates(g, lp, matched, inter, &mut cands);
    let last = level_idx + 1 == plan.levels().len();
    if lp.store_intermediate {
        inter[lp.position] = cands.clone();
    }
    for &cand in &cands {
        if !passes_filters(g, lp, matched, cand) {
            continue;
        }
        matched.push(cand);
        if last {
            visit(matched);
        } else {
            descend(g, plan, level_idx + 1, matched, inter, visit);
        }
        matched.pop();
    }
}

/// Counts embeddings using the final-level counting shortcut: instead of
/// iterating the last level's candidates, count how many pass the filters
/// using order statistics where possible. Produces identical results to
/// [`count_embeddings`]; used by counting-only applications.
pub fn count_embeddings_fast(g: &Graph, plan: &MatchingPlan) -> u64 {
    if plan.depth() == 1 {
        return count_embeddings(g, plan);
    }
    let pair = plan.pair_count_mode();
    let mut count = 0u64;
    let mut matched: Vec<VertexId> = Vec::with_capacity(plan.depth());
    let mut inter: Vec<Vec<VertexId>> = vec![Vec::new(); plan.depth()];
    for v in g.vertices() {
        if let Some(required) = plan.root_label() {
            if g.label(v) != Some(required) {
                continue;
            }
        }
        matched.push(v);
        descend_fast(g, plan, 0, &mut matched, &mut inter, pair, &mut count);
        matched.pop();
    }
    count
}

/// Pairs contributed by a qualifying candidate set of size `k` under the
/// IEP shortcut.
pub fn pair_contribution(k: u64, mode: PairMode) -> u64 {
    match mode {
        PairMode::Unordered => k * k.saturating_sub(1) / 2,
        PairMode::Ordered => k * k.saturating_sub(1),
    }
}

/// Counts the candidates of a final level that pass its filters, using
/// partition points for the ordering bounds.
pub fn count_final_level(
    g: &Graph,
    lp: &LevelPlan,
    matched: &[VertexId],
    cands: &[VertexId],
) -> u64 {
    if lp.label.is_some() || !lp.edge_labels.is_empty() {
        // Label checks need per-candidate inspection.
        return cands.iter().filter(|&&c| passes_filters(g, lp, matched, c)).count() as u64;
    }
    let lo: Option<VertexId> = lp.lower.iter().map(|&p| matched[p]).max();
    let hi: Option<VertexId> = lp.upper.iter().map(|&p| matched[p]).min();
    let begin = lo.map_or(0, |b| cands.partition_point(|&c| c <= b));
    let end = hi.map_or(cands.len(), |b| cands.partition_point(|&c| c < b));
    if begin >= end {
        return 0;
    }
    let mut count = (end - begin) as u64;
    for &p in &lp.distinct {
        let m = matched[p];
        let in_range = lo.is_none_or(|b| m > b) && hi.is_none_or(|b| m < b);
        if in_range && set_ops::contains(cands, m) {
            count -= 1;
        }
    }
    count
}

/// Counts the embeddings rooted at `v` only (level-0 vertex fixed),
/// using the fast final-level shortcut. Summing over all vertices equals
/// [`count_embeddings_fast`]; single-machine baselines parallelize over
/// roots with this.
pub fn count_from_root(g: &Graph, plan: &MatchingPlan, v: VertexId) -> u64 {
    if let Some(required) = plan.root_label() {
        if g.label(v) != Some(required) {
            return 0;
        }
    }
    if plan.depth() == 1 {
        return 1;
    }
    let mut count = 0u64;
    let mut matched = vec![v];
    let mut inter: Vec<Vec<VertexId>> = vec![Vec::new(); plan.depth()];
    descend_fast(g, plan, 0, &mut matched, &mut inter, plan.pair_count_mode(), &mut count);
    count
}

fn descend_fast(
    g: &Graph,
    plan: &MatchingPlan,
    level_idx: usize,
    matched: &mut Vec<VertexId>,
    inter: &mut Vec<Vec<VertexId>>,
    pair: Option<PairMode>,
    count: &mut u64,
) {
    let lp = &plan.levels()[level_idx];
    let mut cands = Vec::new();
    raw_candidates(g, lp, matched, inter, &mut cands);
    let last = level_idx + 1 == plan.levels().len();
    if last {
        *count += count_final_level(g, lp, matched, &cands);
        return;
    }
    // IEP shortcut: collapse the last two loops into pair arithmetic.
    if let Some(mode) = pair {
        if level_idx + 2 == plan.levels().len() {
            let k = count_final_level(g, lp, matched, &cands);
            *count += pair_contribution(k, mode);
            return;
        }
    }
    if lp.store_intermediate {
        inter[lp.position] = cands.clone();
    }
    for &cand in &cands {
        if !passes_filters(g, lp, matched, cand) {
            continue;
        }
        matched.push(cand);
        descend_fast(g, plan, level_idx + 1, matched, inter, pair, count);
        matched.pop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::plan::PlanOptions;
    use crate::{oracle, Pattern};
    use gpm_graph::gen;

    fn check_all(g: &Graph, p: &Pattern, induced: bool) {
        let opts = PlanOptions {
            induced,
            order: crate::order::OrderChoice::Automine,
            ..PlanOptions::default()
        };
        let plan = MatchingPlan::compile(p, &opts).unwrap();
        let expect = oracle::count_subgraphs(g, p, induced);
        assert_eq!(count_embeddings(g, &plan), expect, "slow path, {p}, induced={induced}");
        assert_eq!(count_embeddings_fast(g, &plan), expect, "fast path, {p}");
        let gp_opts = PlanOptions { order: crate::order::OrderChoice::GraphPi, ..opts };
        let plan2 = MatchingPlan::compile(p, &gp_opts).unwrap();
        assert_eq!(count_embeddings(g, &plan2), expect, "graphpi order, {p}");
    }

    #[test]
    fn known_counts_on_fixtures() {
        let k5 = gen::complete(5);
        let tri = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::default()).unwrap();
        assert_eq!(count_embeddings(&k5, &tri), 10); // C(5,3)
        let p3 = MatchingPlan::compile(&Pattern::path(3), &PlanOptions::default()).unwrap();
        assert_eq!(count_embeddings(&k5, &p3), 30); // C(5,3) * 3
        let star = MatchingPlan::compile(&Pattern::star(4), &PlanOptions::default()).unwrap();
        assert_eq!(count_embeddings(&gen::star(6), &star), 10); // C(5,3)
    }

    #[test]
    fn matches_oracle_on_random_graphs() {
        let g = gen::erdos_renyi(40, 160, 9);
        for p in [
            Pattern::triangle(),
            Pattern::path(3),
            Pattern::path(4),
            Pattern::star(4),
            Pattern::cycle(4),
            Pattern::clique(4),
            Pattern::tailed_triangle(),
            Pattern::diamond(),
        ] {
            check_all(&g, &p, false);
            check_all(&g, &p, true);
        }
    }

    #[test]
    fn matches_oracle_on_skewed_graph() {
        let g = gen::barabasi_albert(60, 3, 5);
        for p in [Pattern::triangle(), Pattern::clique(4), Pattern::cycle(4)] {
            check_all(&g, &p, false);
        }
    }

    #[test]
    fn no_symmetry_break_counts_maps() {
        let g = gen::erdos_renyi(30, 100, 3);
        let p = Pattern::triangle();
        let opts = PlanOptions { symmetry_break: false, ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&p, &opts).unwrap();
        assert_eq!(count_embeddings(&g, &plan), oracle::count_injective_maps(&g, &p, false));
    }

    #[test]
    fn reuse_toggle_is_invisible() {
        let g = gen::erdos_renyi(50, 250, 7);
        for p in [Pattern::clique(4), Pattern::clique(5), Pattern::diamond()] {
            let with = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
            let without = MatchingPlan::compile(
                &p,
                &PlanOptions { vertical_reuse: false, ..PlanOptions::default() },
            )
            .unwrap();
            assert_eq!(count_embeddings(&g, &with), count_embeddings(&g, &without));
        }
    }

    #[test]
    fn labeled_counting() {
        let g = gen::with_random_labels(&gen::erdos_renyi(40, 150, 2), 3, 4);
        let p = Pattern::path(3).with_labels(vec![0, 1, 2]).unwrap();
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        assert_eq!(count_embeddings(&g, &plan), oracle::count_subgraphs(&g, &p, false));
    }

    #[test]
    fn edge_labeled_counting_matches_oracle() {
        let g = gen::with_random_edge_labels(&gen::erdos_renyi(40, 170, 6), 2, 3);
        // Triangle with one marked edge.
        let p = Pattern::triangle().with_edge_labels(&[(0, 1, 0), (1, 2, 1), (0, 2, 0)]).unwrap();
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        assert!(plan.requires_edge_labels());
        let expect = oracle::count_subgraphs(&g, &p, false);
        assert_eq!(count_embeddings(&g, &plan), expect);
        assert_eq!(count_embeddings_fast(&g, &plan), expect);
        // Uniform labels over a 2-label graph: strictly fewer matches
        // than the unlabeled pattern.
        let unlabeled =
            MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::default()).unwrap();
        assert!(count_embeddings(&g, &plan) <= count_embeddings(&g, &unlabeled));
    }

    #[test]
    fn edge_label_restriction_identity_holds() {
        // restricted count x |Aut| == injective map count, with edge
        // labels shrinking the automorphism group.
        let g = gen::with_random_edge_labels(&gen::erdos_renyi(30, 130, 9), 2, 5);
        let p = Pattern::triangle().with_edge_labels(&[(0, 1, 1), (1, 2, 0), (0, 2, 0)]).unwrap();
        let restricted = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        let unrestricted = MatchingPlan::compile(
            &p,
            &PlanOptions { symmetry_break: false, ..PlanOptions::default() },
        )
        .unwrap();
        let maps = count_embeddings(&g, &unrestricted);
        assert_eq!(maps % restricted.automorphism_count(), 0);
        assert_eq!(count_embeddings(&g, &restricted), maps / restricted.automorphism_count());
    }

    #[test]
    fn enumerate_yields_valid_embeddings() {
        let g = gen::erdos_renyi(25, 80, 1);
        let p = Pattern::cycle(4);
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        let order = plan.order().to_vec();
        let mut n = 0u64;
        enumerate_embeddings(&g, &plan, |m| {
            n += 1;
            // Every pattern edge must map to a graph edge.
            for (u, v) in p.edges() {
                let pu = order.iter().position(|&x| x == u).unwrap();
                let pv = order.iter().position(|&x| x == v).unwrap();
                assert!(g.has_edge(m[pu], m[pv]));
            }
            // Injectivity.
            let mut s = m.to_vec();
            s.sort_unstable();
            s.dedup();
            assert_eq!(s.len(), m.len());
        });
        assert_eq!(n, oracle::count_subgraphs(&g, &p, false));
    }

    #[test]
    fn iep_pair_counting_matches_oracle() {
        let g = gen::barabasi_albert(120, 5, 13);
        for p in [
            Pattern::path(3), // wedge: symmetric pair
            Pattern::star(4), // last two of three leaves
            Pattern::star(5),
            Pattern::tailed_triangle(), // no independent symmetric tail pair order-dependent
            Pattern::cycle(4),          // adjacent last vertices: no IEP
            Pattern::clique(4),
        ] {
            let iep = PlanOptions { iep: true, ..PlanOptions::default() };
            let plan = MatchingPlan::compile(&p, &iep).unwrap();
            let expect = oracle::count_subgraphs(&g, &p, false);
            assert_eq!(count_embeddings_fast(&g, &plan), expect, "{p}");
            // Sanity: wedges and stars actually take the shortcut.
            if p == Pattern::path(3) || p == Pattern::star(4) {
                assert_eq!(plan.pair_count_mode(), Some(crate::plan::PairMode::Unordered));
            }
            if p == Pattern::clique(4) || p == Pattern::cycle(4) {
                assert_eq!(plan.pair_count_mode(), None, "{p} has adjacent tail");
            }
        }
    }

    #[test]
    fn iep_with_distinct_leaf_labels_uses_ordered_mode_or_none() {
        // Labeled star: leaves with different labels break the symmetry;
        // counting must still match the oracle whatever mode is chosen.
        let g = gen::with_random_labels(&gen::barabasi_albert(100, 5, 3), 2, 8);
        let p = Pattern::star(3).with_labels(vec![0, 1, 1]).unwrap();
        let iep = PlanOptions { iep: true, ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&p, &iep).unwrap();
        assert_eq!(count_embeddings_fast(&g, &plan), oracle::count_subgraphs(&g, &p, false));
    }

    #[test]
    fn count_from_root_partitions_total() {
        let g = gen::erdos_renyi(60, 250, 11);
        for p in [Pattern::triangle(), Pattern::clique(4), Pattern::star(4)] {
            let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
            let total: u64 = g.vertices().map(|v| count_from_root(&g, &plan, v)).sum();
            assert_eq!(total, count_embeddings_fast(&g, &plan), "{p}");
        }
    }

    #[test]
    fn count_from_root_respects_root_label() {
        let g = gen::with_random_labels(&gen::complete(12), 2, 3);
        let p = Pattern::edge().with_labels(vec![0, 1]).unwrap();
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        let root_label = plan.root_label().unwrap();
        for v in g.vertices() {
            if g.label(v) != Some(root_label) {
                assert_eq!(count_from_root(&g, &plan, v), 0);
            }
        }
    }

    #[test]
    fn enumerate_until_stops_promptly() {
        let g = gen::complete(20);
        let plan = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::default()).unwrap();
        let mut seen = 0u64;
        enumerate_embeddings_until(&g, &plan, |_| {
            seen += 1;
            seen < 5
        });
        assert_eq!(seen, 5, "single-threaded early exit is exact");
        // And the non-stopping variant sees everything.
        let mut all = 0u64;
        enumerate_embeddings_until(&g, &plan, |_| {
            all += 1;
            true
        });
        assert_eq!(all, 1140); // C(20,3)
    }

    #[test]
    fn single_vertex_plan() {
        let g = gen::complete(6);
        let p = Pattern::single_vertex();
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        assert_eq!(count_embeddings(&g, &plan), 6);
        assert_eq!(count_embeddings_fast(&g, &plan), 6);
    }
}
