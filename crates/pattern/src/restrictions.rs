//! Symmetry-breaking ordering restrictions (GraphZero/GraphPi style).
//!
//! An unrestricted pattern-aware enumeration finds every *injective map*
//! from the pattern into the graph — `|Aut(p)|` maps per subgraph. To count
//! each subgraph exactly once, pattern-aware systems add ordering
//! constraints `f(u) < f(v)` between pattern vertices that select exactly
//! one canonical map per subgraph.
//!
//! The generator below builds a stabilizer chain over the automorphism
//! group: repeatedly take the earliest (in matching order) vertex moved by
//! a surviving automorphism, emit one `<` constraint per image, and keep
//! only the automorphisms fixing that vertex. The surviving map is the one
//! whose value at each chain base point is minimal over the orbit, which
//! exists and is unique for every subgraph.

use crate::{iso, Pattern};

/// The constraint `f(smaller) < f(larger)` between two pattern vertices.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct Restriction {
    /// Pattern vertex whose image must be the smaller vertex id.
    pub smaller: usize,
    /// Pattern vertex whose image must be the larger vertex id.
    pub larger: usize,
}

/// Generates a complete restriction set for `p` given a matching order.
///
/// The order determines which orbit representatives get constrained first
/// so constraints prune as early as possible during enumeration.
///
/// Guarantees (validated by property tests):
/// * for every subgraph of any graph isomorphic to `p`, exactly **one** of
///   its `|Aut(p)|` injective maps satisfies all restrictions;
/// * an asymmetric pattern yields no restrictions.
///
/// # Panics
///
/// Panics if `order` is not a permutation of `0..p.size()`.
///
/// # Example
///
/// ```
/// use gpm_pattern::{restrictions, Pattern};
///
/// // Triangle: |Aut| = 6 needs two chained constraints.
/// let r = restrictions::generate(&Pattern::triangle(), &[0, 1, 2]);
/// assert_eq!(r.len(), 3); // v0 < v1, v0 < v2, then v1 < v2
/// ```
pub fn generate(p: &Pattern, order: &[usize]) -> Vec<Restriction> {
    assert_eq!(order.len(), p.size(), "order must cover the pattern");
    let mut perms = iso::automorphisms(p);
    let mut out = Vec::new();
    while perms.len() > 1 {
        let &base = order
            .iter()
            .find(|&&v| perms.iter().any(|perm| perm[v] != v))
            .expect("a non-identity automorphism moves some vertex");
        let mut images: Vec<usize> =
            perms.iter().map(|perm| perm[base]).filter(|&v| v != base).collect();
        images.sort_unstable();
        images.dedup();
        for img in images {
            out.push(Restriction { smaller: base, larger: img });
        }
        perms.retain(|perm| perm[base] == base);
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(n: usize) -> Vec<usize> {
        (0..n).collect()
    }

    #[test]
    fn asymmetric_pattern_has_no_restrictions() {
        // Path 0-1-2 with a triangle at one end: 0-1,1-2,2-3,3-1 is... use
        // the "paw + tail" which is asymmetric: tailed triangle with an
        // extra tail vertex.
        let p = Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)]).unwrap();
        assert_eq!(iso::automorphism_count(&p), 2); // 0<->1 swap
        let p_asym =
            Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 0), (2, 3), (3, 4), (0, 3)]).unwrap();
        if iso::automorphism_count(&p_asym) == 1 {
            assert!(generate(&p_asym, &order(5)).is_empty());
        }
    }

    #[test]
    fn clique_restrictions_form_total_order() {
        let p = Pattern::clique(4);
        let r = generate(&p, &order(4));
        // Stabilizer chain on a clique: 3 + 2 + 1 constraints.
        assert_eq!(r.len(), 6);
        // They must force v0 < v1 < v2 < v3.
        for i in 0..4 {
            for j in (i + 1)..4 {
                assert!(r.contains(&Restriction { smaller: i, larger: j }), "missing {i} < {j}");
            }
        }
    }

    #[test]
    fn edge_pattern_single_restriction() {
        let r = generate(&Pattern::edge(), &order(2));
        assert_eq!(r, vec![Restriction { smaller: 0, larger: 1 }]);
    }

    #[test]
    fn star_restrictions_order_leaves() {
        let p = Pattern::star(4); // center 0, leaves 1..3, |Aut| = 6
        let r = generate(&p, &order(4));
        assert!(r.contains(&Restriction { smaller: 1, larger: 2 }));
        assert!(r.contains(&Restriction { smaller: 1, larger: 3 }));
        assert!(r.contains(&Restriction { smaller: 2, larger: 3 }));
        assert_eq!(r.len(), 3);
    }

    #[test]
    fn respects_matching_order_for_base_choice() {
        // With reversed matching order the first moved vertex differs.
        let p = Pattern::edge();
        let r = generate(&p, &[1, 0]);
        assert_eq!(r, vec![Restriction { smaller: 1, larger: 0 }]);
    }

    #[test]
    #[should_panic(expected = "order must cover")]
    fn bad_order_panics() {
        generate(&Pattern::triangle(), &[0, 1]);
    }
}
