//! Pattern substrate for the Khuzdul reproduction.
//!
//! Pattern-aware GPM systems (AutoMine, GraphPi, Peregrine, …) compile a
//! small *pattern graph* into a nested-loop enumeration program. This crate
//! implements that whole pipeline:
//!
//! * [`Pattern`] — connected graphs of up to [`MAX_PATTERN_VERTICES`]
//!   vertices with optional labels;
//! * [`iso`] — isomorphism tests, automorphism groups, canonical codes;
//! * [`genpat`] — generation of all connected size-k patterns (for k-motif
//!   counting) and labeled pattern extension (for FSM);
//! * [`order`] — matching-order heuristics: an Automine-style greedy
//!   connectivity order and a GraphPi-style exhaustive cost-model search;
//! * [`restrictions`] — symmetry-breaking ordering constraints that make
//!   each subgraph be enumerated exactly once (GraphZero/GraphPi style);
//! * [`plan`] — the [`plan::MatchingPlan`] compiler: per-level intersect /
//!   subtract / filter programs with active-vertex sets (the paper's
//!   extendable-embedding metadata, §3.1) and vertical computation reuse
//!   annotations (§5.1);
//! * [`interp`] — a single-machine reference interpreter for plans;
//! * [`oracle`] — a brute-force counting oracle used as the test ground
//!   truth for every other counting path in the workspace.
//!
//! # Example: count triangles two ways
//!
//! ```
//! use gpm_pattern::{plan::{MatchingPlan, PlanOptions}, interp, oracle, Pattern};
//! use gpm_graph::gen;
//!
//! let g = gen::erdos_renyi(60, 200, 1);
//! let tri = Pattern::triangle();
//! let plan = MatchingPlan::compile(&tri, &PlanOptions::default()).unwrap();
//! let fast = interp::count_embeddings(&g, &plan);
//! let slow = oracle::count_subgraphs(&g, &tri, false);
//! assert_eq!(fast, slow);
//! ```

#![warn(missing_docs)]

mod pattern;

pub mod genpat;
pub mod interp;
pub mod iso;
pub mod oracle;
pub mod order;
pub mod plan;
pub mod restrictions;

pub use pattern::{Pattern, PatternError};

/// Maximum number of vertices in a pattern.
///
/// Eight covers every workload in the paper (up to 5-cliques and 6-motifs)
/// while keeping exhaustive order search and automorphism enumeration
/// trivially fast.
pub const MAX_PATTERN_VERTICES: usize = 8;
