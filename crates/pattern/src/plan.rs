//! The matching-plan compiler.
//!
//! A [`MatchingPlan`] is the reified form of the paper's generated `EXTEND`
//! function (§3.2): for each tree level it records which already-matched
//! positions' edge lists must be intersected (and, for induced matching,
//! subtracted), which filters apply, which positions stay *active*
//! (anti-monotone, §3.1), and whether the level's candidate set can be
//! derived from the parent's stored intermediate result (vertical
//! computation sharing, §5.1).
//!
//! Client systems — k-Automine and k-GraphPi — differ only in the
//! [`PlanOptions`] they compile with; the Khuzdul engine executes plans
//! without knowing which system produced them.

use crate::order::{self, OrderChoice};
use crate::restrictions::{self, Restriction};
use crate::{iso, Pattern};
use gpm_graph::Label;

/// How a level's raw candidate set is obtained.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CandidateSource {
    /// Intersect the edge lists of all `intersect` positions.
    Scratch,
    /// The candidate set equals the parent's stored intermediate result.
    ParentIntermediate,
    /// The candidate set is the parent's stored intermediate result
    /// intersected with the edge list of the immediately preceding
    /// position (the vertex the parent was extended with).
    ParentIntermediateAndNew,
}

/// Per-level extension program.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LevelPlan {
    /// The embedding position this level fills (1-based; position 0 is the
    /// enumeration root).
    pub position: usize,
    /// Positions whose graph edge lists are intersected to produce raw
    /// candidates. Non-empty for every level (connected-prefix property).
    pub intersect: Vec<usize>,
    /// Induced matching only: positions whose edge lists are subtracted
    /// (the candidate must *not* be adjacent to them).
    pub subtract: Vec<usize>,
    /// Positions the candidate must differ from (injectivity checks not
    /// already implied by adjacency or ordering constraints).
    pub distinct: Vec<usize>,
    /// Positions whose matched vertex the candidate must exceed
    /// (symmetry-breaking `>` bounds).
    pub lower: Vec<usize>,
    /// Positions whose matched vertex the candidate must be below
    /// (symmetry-breaking `<` bounds).
    pub upper: Vec<usize>,
    /// Required label of the candidate, for labeled patterns.
    pub label: Option<Label>,
    /// Required **edge** labels: `(position, label)` pairs meaning the
    /// graph edge between the candidate and that matched position must
    /// carry the label. Only single-machine executors support these (the
    /// paper's engine, like ours, ships vertex labels only).
    pub edge_labels: Vec<(usize, Label)>,
    /// How the raw candidate set is computed.
    pub source: CandidateSource,
    /// Whether embeddings created at this level must store their raw
    /// candidate set for reuse by the next level.
    pub store_intermediate: bool,
    /// Positions (including possibly this one) whose edge lists are still
    /// needed by levels *after* this one — the extendable embedding's
    /// active-vertex set once this level's vertex is appended.
    pub active_after: Vec<usize>,
    /// Whether the vertex matched at this level is itself active later
    /// (if `false`, its edge list never needs to be fetched — the paper's
    /// "not all vertices are active" case).
    pub new_vertex_active: bool,
}

/// Options controlling plan compilation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PlanOptions {
    /// Matching-order strategy.
    pub order: OrderChoice,
    /// Induced (exact) matching instead of non-induced subgraph matching.
    pub induced: bool,
    /// Emit symmetry-breaking restrictions so each subgraph is enumerated
    /// exactly once. Disable to enumerate all injective maps (used by
    /// tests and by orientation-preprocessed clique counting, where the
    /// DAG already breaks the symmetry).
    pub symmetry_break: bool,
    /// Annotate vertical computation reuse (Figure 11's ablation switch).
    pub vertical_reuse: bool,
    /// Enable the inclusion–exclusion counting shortcut for the last two
    /// levels (GraphPi's IEP, restricted to the common symmetric-pair
    /// case). Counting-only: enumeration ignores it. This is part of what
    /// makes k-GraphPi faster than k-Automine on motif workloads (§7.2).
    pub iep: bool,
}

impl Default for PlanOptions {
    fn default() -> Self {
        PlanOptions {
            order: OrderChoice::Automine,
            induced: false,
            symmetry_break: true,
            vertical_reuse: true,
            iep: false,
        }
    }
}

impl PlanOptions {
    /// Options as k-Automine's compiler would emit them.
    pub fn automine() -> Self {
        PlanOptions { order: OrderChoice::Automine, ..PlanOptions::default() }
    }

    /// Options as k-GraphPi's compiler would emit them (cost-model order
    /// search plus the IEP counting shortcut).
    pub fn graphpi() -> Self {
        PlanOptions { order: OrderChoice::GraphPi, iep: true, ..PlanOptions::default() }
    }
}

/// How the final two positions combine under the IEP shortcut.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum PairMode {
    /// The two positions carry a `<` restriction (symmetric pair): each
    /// qualifying candidate set of size `k` contributes `k·(k−1)/2`.
    Unordered,
    /// No mutual restriction, only injectivity: contributes `k·(k−1)`.
    Ordered,
}

/// A compiled enumeration program for one pattern.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MatchingPlan {
    pattern: Pattern,
    options: PlanOptions,
    order: Vec<usize>,
    levels: Vec<LevelPlan>,
    restrictions: Vec<Restriction>,
    aut_count: u64,
    root_label: Option<Label>,
}

impl MatchingPlan {
    /// Compiles `pattern` into a plan under the given options.
    ///
    /// # Errors
    ///
    /// Returns an error if a supplied order is invalid for the pattern.
    pub fn compile(pattern: &Pattern, options: &PlanOptions) -> Result<MatchingPlan, String> {
        let n = pattern.size();
        let order = order::resolve(pattern, &options.order)?;
        let restr = if options.symmetry_break && n > 1 {
            restrictions::generate(pattern, &order)
        } else {
            Vec::new()
        };
        // pos[v] = level at which pattern vertex v is matched.
        let mut pos = vec![0usize; n];
        for (i, &v) in order.iter().enumerate() {
            pos[v] = i;
        }

        let mut levels = Vec::with_capacity(n.saturating_sub(1));
        for i in 1..n {
            let v = order[i];
            let intersect: Vec<usize> = (0..i).filter(|&j| pattern.has_edge(order[j], v)).collect();
            debug_assert!(!intersect.is_empty(), "connected-prefix violated");
            let subtract: Vec<usize> = if options.induced {
                (0..i).filter(|&j| !pattern.has_edge(order[j], v)).collect()
            } else {
                Vec::new()
            };
            let mut lower = Vec::new();
            let mut upper = Vec::new();
            for r in &restr {
                let (ps, pl) = (pos[r.smaller], pos[r.larger]);
                if ps.max(pl) == i {
                    if pl == i {
                        // candidate is the larger one: candidate > pos ps
                        lower.push(ps);
                    } else {
                        // candidate is the smaller one: candidate < pos pl
                        upper.push(pl);
                    }
                }
            }
            lower.sort_unstable();
            lower.dedup();
            upper.sort_unstable();
            upper.dedup();
            // Injectivity: candidates are adjacent to `intersect` positions
            // (self-loops are impossible), and positions bounded by < / >
            // cannot collide either. Everything else needs a != check.
            let distinct: Vec<usize> = (0..i)
                .filter(|j| !intersect.contains(j) && !lower.contains(j) && !upper.contains(j))
                .collect();
            let edge_labels: Vec<(usize, Label)> = intersect
                .iter()
                .filter_map(|&j| pattern.edge_label(order[j], v).map(|l| (j, l)))
                .collect();
            levels.push(LevelPlan {
                position: i,
                intersect,
                subtract,
                distinct,
                lower,
                upper,
                label: pattern.label(v),
                edge_labels,
                source: CandidateSource::Scratch,
                store_intermediate: false,
                active_after: Vec::new(),
                new_vertex_active: false,
            });
        }

        // Vertical computation reuse annotations (§5.1 / Figure 9). Only
        // for non-induced plans: subtraction results are not reusable the
        // same way.
        if options.vertical_reuse && !options.induced {
            for i in 1..levels.len() {
                let (prev, cur) = {
                    let (a, b) = levels.split_at_mut(i);
                    (&mut a[i - 1], &mut b[0])
                };
                if cur.intersect == prev.intersect {
                    cur.source = CandidateSource::ParentIntermediate;
                    prev.store_intermediate = true;
                } else {
                    // prev.intersect ∪ {prev.position} == cur.intersect ?
                    let mut expected = prev.intersect.clone();
                    expected.push(prev.position);
                    expected.sort_unstable();
                    let mut cur_sorted = cur.intersect.clone();
                    cur_sorted.sort_unstable();
                    if expected == cur_sorted {
                        cur.source = CandidateSource::ParentIntermediateAndNew;
                        prev.store_intermediate = true;
                    }
                }
            }
        }

        // Active sets: position p is active entering level l iff some
        // level >= l intersects or subtracts p. active_after of level i is
        // the set entering level i+1.
        let need_at = |l: usize| -> Vec<usize> {
            let mut need: Vec<usize> = Vec::new();
            for lp in &levels[l - 1..] {
                // Scratch levels read their intersect lists; reuse levels
                // only read the *new* list (ParentIntermediateAndNew) or
                // nothing (ParentIntermediate).
                match lp.source {
                    CandidateSource::Scratch => need.extend(&lp.intersect),
                    CandidateSource::ParentIntermediate => {}
                    CandidateSource::ParentIntermediateAndNew => {
                        need.push(lp.position - 1);
                    }
                }
                need.extend(&lp.subtract);
            }
            need.sort_unstable();
            need.dedup();
            need
        };
        let level_count = levels.len();
        let afters: Vec<Vec<usize>> = (0..level_count)
            .map(|i| if i + 1 < level_count { need_at(i + 2) } else { Vec::new() })
            .collect();
        for (lp, after) in levels.iter_mut().zip(afters) {
            lp.new_vertex_active = after.contains(&lp.position);
            lp.active_after = after;
        }

        let root_label = pattern.label(order[0]);
        Ok(MatchingPlan {
            pattern: pattern.clone(),
            options: options.clone(),
            order,
            levels,
            restrictions: restr,
            aut_count: iso::automorphism_count(pattern),
            root_label,
        })
    }

    /// The pattern this plan enumerates.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// The options the plan was compiled with.
    pub fn options(&self) -> &PlanOptions {
        &self.options
    }

    /// The matching order (`order[i]` = pattern vertex matched at level `i`).
    pub fn order(&self) -> &[usize] {
        &self.order
    }

    /// Per-level extension programs (`levels()[i]` fills position `i + 1`).
    pub fn levels(&self) -> &[LevelPlan] {
        &self.levels
    }

    /// The symmetry-breaking restrictions in force.
    pub fn restrictions(&self) -> &[Restriction] {
        &self.restrictions
    }

    /// `|Aut(pattern)|`.
    pub fn automorphism_count(&self) -> u64 {
        self.aut_count
    }

    /// Required label of the root (level-0) vertex, for labeled patterns.
    pub fn root_label(&self) -> Option<Label> {
        self.root_label
    }

    /// Number of embedding positions (= pattern size).
    pub fn depth(&self) -> usize {
        self.pattern.size()
    }

    /// `true` if each subgraph is produced exactly once (symmetry breaking
    /// on); `false` if the plan enumerates all injective maps.
    pub fn counts_subgraphs(&self) -> bool {
        self.options.symmetry_break
    }

    /// Whether any level filters on **edge** labels. Such plans run on
    /// the single-machine executors only: the distributed engine (like
    /// the paper's) does not ship edge labels with fetched lists.
    pub fn requires_edge_labels(&self) -> bool {
        self.levels.iter().any(|l| !l.edge_labels.is_empty())
    }

    /// Renders the plan as the nested-loop pseudocode its `EXTEND`
    /// function implements (the paper's Figure 1/Figure 5 listing) — for
    /// docs, debugging, and porting-effort comparisons.
    ///
    /// # Example
    ///
    /// ```
    /// use gpm_pattern::{plan::{MatchingPlan, PlanOptions}, Pattern};
    ///
    /// let opts = PlanOptions { vertical_reuse: false, ..PlanOptions::automine() };
    /// let plan = MatchingPlan::compile(&Pattern::triangle(), &opts).unwrap();
    /// let code = plan.describe();
    /// assert!(code.contains("for v0 in V"));
    /// assert!(code.contains("N(v0) ∩ N(v1)"));
    /// ```
    pub fn describe(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        let _ = write!(out, "// pattern {}, order {:?}", self.pattern, self.order);
        if !self.restrictions.is_empty() {
            let r: Vec<String> = self
                .restrictions
                .iter()
                .map(|r| {
                    format!(
                        "v{} < v{}",
                        pos_of(&self.order, r.smaller),
                        pos_of(&self.order, r.larger)
                    )
                })
                .collect();
            let _ = write!(out, ", restrictions: {}", r.join(", "));
        }
        out.push('\n');
        let mut indent = String::new();
        let _ = writeln!(
            out,
            "for v0 in V{}:",
            self.root_label.map_or(String::new(), |l| format!(" with label {l}"))
        );
        indent.push_str("  ");
        for (i, lp) in self.levels.iter().enumerate() {
            let source = match lp.source {
                CandidateSource::Scratch => {
                    let lists: Vec<String> =
                        lp.intersect.iter().map(|&p| format!("N(v{p})")).collect();
                    lists.join(" ∩ ")
                }
                CandidateSource::ParentIntermediate => format!("C{i}"),
                CandidateSource::ParentIntermediateAndNew => {
                    format!("C{i} ∩ N(v{})", lp.position - 1)
                }
            };
            let mut clauses: Vec<String> = Vec::new();
            for &p in &lp.subtract {
                clauses.push(format!("∉ N(v{p})"));
            }
            for &p in &lp.lower {
                clauses.push(format!("> v{p}"));
            }
            for &p in &lp.upper {
                clauses.push(format!("< v{p}"));
            }
            for &p in &lp.distinct {
                clauses.push(format!("≠ v{p}"));
            }
            if let Some(l) = lp.label {
                clauses.push(format!("label {l}"));
            }
            for &(p, l) in &lp.edge_labels {
                clauses.push(format!("edge(v{p})~{l}"));
            }
            let filter = if clauses.is_empty() {
                String::new()
            } else {
                format!("  if {}", clauses.join(", "))
            };
            let _ = writeln!(out, "{indent}for v{} in {source}:{filter}", lp.position);
            if lp.store_intermediate {
                let _ = writeln!(out, "{indent}  // store C{} for reuse", lp.position);
            }
            indent.push_str("  ");
        }
        let _ = writeln!(out, "{indent}emit embedding");
        out
    }

    /// The IEP pair-counting shortcut for the last two levels, when the
    /// plan's structure admits it and [`PlanOptions::iep`] is on.
    ///
    /// Applicable when the final two pattern vertices are non-adjacent,
    /// draw from the *same* candidate set (the second level reuses the
    /// parent's intermediate), and differ only by injectivity or one
    /// mutual `<` restriction. A counting executor then replaces the
    /// final two loops with `k·(k−1)/2` (or `k·(k−1)`) per candidate set
    /// of size `k` — collapsing, e.g., wedge counting to degree
    /// arithmetic.
    pub fn pair_count_mode(&self) -> Option<PairMode> {
        if !self.options.iep || self.levels.len() < 2 {
            return None;
        }
        let l1 = &self.levels[self.levels.len() - 2];
        let l2 = &self.levels[self.levels.len() - 1];
        if l2.source != CandidateSource::ParentIntermediate
            || !l1.subtract.is_empty()
            || !l2.subtract.is_empty()
            || l1.label != l2.label
            || !l1.edge_labels.is_empty()
            || !l2.edge_labels.is_empty()
            || l2.upper != l1.upper
        {
            return None;
        }
        let p1 = l1.position;
        // Symmetric pair: l2 gains exactly the restriction `pos p1 < new`.
        let mut lower_plus = l1.lower.clone();
        lower_plus.push(p1);
        lower_plus.sort_unstable();
        let mut l2_lower = l2.lower.clone();
        l2_lower.sort_unstable();
        if l2_lower == lower_plus && l2.distinct == l1.distinct {
            return Some(PairMode::Unordered);
        }
        // Asymmetric pair (e.g. differing labels made restrictions
        // impossible): l2 gains exactly the injectivity check against p1.
        let mut distinct_plus = l1.distinct.clone();
        distinct_plus.push(p1);
        distinct_plus.sort_unstable();
        let mut l2_distinct = l2.distinct.clone();
        l2_distinct.sort_unstable();
        if l2.lower == l1.lower && l2_distinct == distinct_plus {
            return Some(PairMode::Ordered);
        }
        None
    }

    /// Whether the root vertex's edge list is needed by level 1 (it always
    /// is for patterns with more than one vertex).
    pub fn root_active(&self) -> bool {
        self.levels.first().is_some_and(|l| {
            matches!(l.source, CandidateSource::Scratch) && l.intersect.contains(&0)
                || l.subtract.contains(&0)
        })
    }
}

fn pos_of(order: &[usize], pattern_vertex: usize) -> usize {
    order.iter().position(|&v| v == pattern_vertex).expect("vertex is in the order")
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn describe_renders_the_paper_listing() {
        let plan = MatchingPlan::compile(&Pattern::clique(4), &PlanOptions::default()).unwrap();
        let code = plan.describe();
        assert!(code.contains("for v0 in V"), "{code}");
        assert!(code.contains("for v1 in N(v0)"), "{code}");
        // Vertical reuse shows up as a stored intermediate.
        assert!(code.contains("store C"), "{code}");
        assert!(code.contains("emit embedding"), "{code}");
        // Restrictions render as ordering filters.
        assert!(code.contains("> v"), "{code}");
        // Every line count: header + root + 3 levels + stores + emit.
        assert!(code.lines().count() >= 6);
    }

    #[test]
    fn describe_includes_labels_and_subtracts() {
        let p = Pattern::path(3).with_labels(vec![1, 2, 3]).unwrap();
        let opts = PlanOptions { induced: true, ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&p, &opts).unwrap();
        let code = plan.describe();
        assert!(code.contains("label"), "{code}");
        assert!(code.contains("∉ N(v"), "{code}");
    }

    #[test]
    fn triangle_plan_shape() {
        let plan = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::default()).unwrap();
        assert_eq!(plan.depth(), 3);
        assert_eq!(plan.levels().len(), 2);
        let l1 = &plan.levels()[0];
        assert_eq!(l1.intersect, vec![0]);
        let l2 = &plan.levels()[1];
        assert_eq!(l2.intersect, vec![0, 1]);
        // Full symmetry broken: three restrictions for |Aut| = 6.
        assert_eq!(plan.restrictions().len(), 3);
        assert_eq!(plan.automorphism_count(), 6);
        assert!(plan.root_active());
    }

    #[test]
    fn clique_plan_uses_vertical_reuse() {
        let plan = MatchingPlan::compile(&Pattern::clique(5), &PlanOptions::default()).unwrap();
        let levels = plan.levels();
        assert_eq!(levels[0].source, CandidateSource::Scratch);
        for l in &levels[1..] {
            assert_eq!(
                l.source,
                CandidateSource::ParentIntermediateAndNew,
                "clique level {} should chain intersections",
                l.position
            );
        }
        for l in &levels[..levels.len() - 1] {
            assert!(l.store_intermediate);
        }
        assert!(!levels.last().unwrap().store_intermediate);
    }

    #[test]
    fn reuse_disabled_by_option() {
        let opts = PlanOptions { vertical_reuse: false, ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&Pattern::clique(4), &opts).unwrap();
        assert!(plan
            .levels()
            .iter()
            .all(|l| l.source == CandidateSource::Scratch && !l.store_intermediate));
    }

    #[test]
    fn active_sets_are_anti_monotone() {
        for p in [
            Pattern::clique(5),
            Pattern::cycle(5),
            Pattern::house(),
            Pattern::tailed_triangle(),
            Pattern::star(5),
        ] {
            for opts in [PlanOptions::automine(), PlanOptions::graphpi()] {
                let plan = MatchingPlan::compile(&p, &opts).unwrap();
                let levels = plan.levels();
                for w in levels.windows(2) {
                    // Positions active after level i+1, restricted to those
                    // existing at level i, must be a subset of those active
                    // after level i (anti-monotonicity, §3.1).
                    for pos in &w[1].active_after {
                        if *pos <= w[0].position {
                            assert!(
                                w[0].active_after.contains(pos),
                                "activeness resurrected for {p} at {pos}"
                            );
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn last_level_has_no_active_positions() {
        let plan = MatchingPlan::compile(&Pattern::clique(4), &PlanOptions::default()).unwrap();
        assert!(plan.levels().last().unwrap().active_after.is_empty());
        assert!(!plan.levels().last().unwrap().new_vertex_active);
    }

    #[test]
    fn paper_fig5_pattern_inactive_third_vertex() {
        // The paper's running pattern (Fig 5): A-B, A-C, A-D, B-C, B-D —
        // i.e. two vertices (A, B) adjacent to everything, C and D only to
        // A and B. Matched in order A, B, C, D: after matching C, the next
        // extension intersects N(A) ∩ N(B) again, so C is *inactive*.
        let p = Pattern::from_edges(4, &[(0, 1), (0, 2), (0, 3), (1, 2), (1, 3)]).unwrap();
        let opts =
            PlanOptions { order: OrderChoice::Given(vec![0, 1, 2, 3]), ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&p, &opts).unwrap();
        let l2 = &plan.levels()[1]; // fills position 2 (C)
        assert!(!l2.new_vertex_active, "C must be inactive (paper §3.1)");
        assert_eq!(l2.active_after, Vec::<usize>::new()); // reuse covers level 3
                                                          // And level 3 reuses the parent's N(A)∩N(B) intermediate.
        assert_eq!(plan.levels()[2].source, CandidateSource::ParentIntermediate);
    }

    #[test]
    fn induced_plan_has_subtract_and_distinct() {
        let opts = PlanOptions { induced: true, ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&Pattern::path(3), &opts).unwrap();
        // Path 0-1-2 ordered from the middle: level 2 must exclude
        // adjacency to one endpoint.
        let l2 = &plan.levels()[1];
        assert_eq!(l2.subtract.len(), 1);
        // The subtracted position must also be != checked or bounded.
        let covered = l2.distinct.len() + l2.lower.len() + l2.upper.len();
        assert!(covered >= 1);
    }

    #[test]
    fn labeled_plan_carries_labels() {
        let p = Pattern::path(3).with_labels(vec![1, 2, 3]).unwrap();
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        let mut seen: Vec<Option<Label>> = vec![plan.root_label()];
        seen.extend(plan.levels().iter().map(|l| l.label));
        let mut labels: Vec<_> = seen.into_iter().map(Option::unwrap).collect();
        labels.sort_unstable();
        assert_eq!(labels, vec![1, 2, 3]);
    }

    #[test]
    fn given_bad_order_is_rejected() {
        let opts =
            PlanOptions { order: OrderChoice::Given(vec![0, 2, 1]), ..PlanOptions::default() };
        assert!(MatchingPlan::compile(&Pattern::path(3), &opts).is_err());
    }

    #[test]
    fn no_symmetry_break_means_no_bounds() {
        let opts = PlanOptions { symmetry_break: false, ..PlanOptions::default() };
        let plan = MatchingPlan::compile(&Pattern::clique(4), &opts).unwrap();
        assert!(plan.restrictions().is_empty());
        for l in plan.levels() {
            assert!(l.lower.is_empty() && l.upper.is_empty());
        }
        assert!(!plan.counts_subgraphs());
    }
}
