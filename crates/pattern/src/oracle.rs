//! Brute-force counting oracle.
//!
//! Plain backtracking subgraph-isomorphism counting with no
//! pattern-awareness beyond candidate generation from a matched neighbor.
//! Deliberately simple: every optimized counting path in the workspace is
//! validated against these functions on small graphs.

use crate::{iso, Pattern};
use gpm_graph::{Graph, VertexId};

/// Counts injective maps `f` from `p` into `g` such that every pattern
/// edge maps to a graph edge (and, if `induced`, every pattern non-edge to
/// a graph non-edge). Labels are respected when both sides carry them.
///
/// # Example
///
/// ```
/// use gpm_pattern::{oracle, Pattern};
/// use gpm_graph::gen;
///
/// // A triangle has 6 injective maps onto itself.
/// assert_eq!(oracle::count_injective_maps(&gen::complete(3), &Pattern::triangle(), false), 6);
/// ```
pub fn count_injective_maps(g: &Graph, p: &Pattern, induced: bool) -> u64 {
    let mut count = 0u64;
    enumerate_maps(g, p, induced, &mut |_| count += 1);
    count
}

/// Counts distinct subgraphs of `g` isomorphic to `p`:
/// `count_injective_maps / |Aut(p)|`.
pub fn count_subgraphs(g: &Graph, p: &Pattern, induced: bool) -> u64 {
    let maps = count_injective_maps(g, p, induced);
    let aut = iso::automorphism_count(p);
    debug_assert_eq!(maps % aut, 0, "maps must divide evenly by |Aut|");
    maps / aut
}

/// Enumerates injective maps, invoking `visit` with `f` where `f[i]` is
/// the graph vertex pattern vertex `i` maps to.
pub fn enumerate_maps(g: &Graph, p: &Pattern, induced: bool, visit: &mut impl FnMut(&[VertexId])) {
    // Match pattern vertices in a connected order for pruning.
    let order = crate::order::automine_order(p);
    let n = p.size();
    let mut map = vec![VertexId::MAX; n]; // pattern vertex -> graph vertex
    let mut rec = Recursion { g, p, induced, order: &order, map: &mut map };
    rec.descend(0, &mut |m: &[VertexId]| visit(m));
}

struct Recursion<'a> {
    g: &'a Graph,
    p: &'a Pattern,
    induced: bool,
    order: &'a [usize],
    map: &'a mut Vec<VertexId>,
}

impl Recursion<'_> {
    fn descend(&mut self, i: usize, visit: &mut dyn FnMut(&[VertexId])) {
        let n = self.p.size();
        if i == n {
            visit(self.map);
            return;
        }
        let pv = self.order[i];
        // Candidates: all graph vertices for the first level, otherwise the
        // neighbors of one already-matched pattern neighbor.
        let anchor = self.order[..i].iter().copied().find(|&u| self.p.has_edge(u, pv));
        let run = |this: &mut Self, cand: VertexId, visit: &mut dyn FnMut(&[VertexId])| {
            if this.feasible(pv, cand, i) {
                this.map[pv] = cand;
                this.descend(i + 1, visit);
                this.map[pv] = VertexId::MAX;
            }
        };
        match anchor {
            None => {
                for cand in self.g.vertices() {
                    run(self, cand, visit);
                }
            }
            Some(u) => {
                let around = self.map[u];
                let neigh: Vec<VertexId> = self.g.neighbors(around).to_vec();
                for cand in neigh {
                    run(self, cand, visit);
                }
            }
        }
    }

    fn feasible(&self, pv: usize, cand: VertexId, matched_levels: usize) -> bool {
        // Label.
        if let Some(required) = self.p.label(pv) {
            if self.g.label(cand) != Some(required) {
                return false;
            }
        }
        for &u in &self.order[..matched_levels] {
            let gu = self.map[u];
            if gu == cand {
                return false; // injectivity
            }
            let pat_edge = self.p.has_edge(u, pv);
            let graph_edge = self.g.has_edge(gu, cand);
            if pat_edge && !graph_edge {
                return false;
            }
            if self.induced && !pat_edge && graph_edge {
                return false;
            }
            if pat_edge {
                if let Some(required) = self.p.edge_label(u, pv) {
                    if self.g.edge_label(gu, cand) != Some(required) {
                        return false;
                    }
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;

    #[test]
    fn triangles_in_complete_graph() {
        // K_n has C(n,3) triangles.
        assert_eq!(count_subgraphs(&gen::complete(6), &Pattern::triangle(), false), 20);
        assert_eq!(count_subgraphs(&gen::complete(6), &Pattern::clique(4), false), 15);
    }

    #[test]
    fn induced_vs_non_induced() {
        let k4 = gen::complete(4);
        let p3 = Pattern::path(3);
        // Non-induced: C(4,3) triples × 3 mid-points = 12 paths.
        assert_eq!(count_subgraphs(&k4, &p3, false), 12);
        // Induced: K4 has no induced P3.
        assert_eq!(count_subgraphs(&k4, &p3, true), 0);
    }

    #[test]
    fn cycle_counts() {
        let c6 = gen::cycle(6);
        assert_eq!(count_subgraphs(&c6, &Pattern::cycle(6), false), 1);
        assert_eq!(count_subgraphs(&c6, &Pattern::path(3), false), 6);
        assert_eq!(count_subgraphs(&c6, &Pattern::triangle(), false), 0);
    }

    #[test]
    fn star_counts() {
        let s = gen::star(7); // center + 6 leaves
        assert_eq!(count_subgraphs(&s, &Pattern::star(4), false), 20); // C(6,3)
        assert_eq!(count_subgraphs(&s, &Pattern::path(3), false), 15); // C(6,2)
    }

    #[test]
    fn labels_respected() {
        let g = gen::path(3).with_labels(vec![0, 1, 0]);
        let p_match = Pattern::path(3).with_labels(vec![0, 1, 0]).unwrap();
        let p_miss = Pattern::path(3).with_labels(vec![1, 0, 1]).unwrap();
        assert_eq!(count_subgraphs(&g, &p_match, false), 1);
        assert_eq!(count_subgraphs(&g, &p_miss, false), 0);
    }

    #[test]
    fn maps_divide_by_automorphisms() {
        let g = gen::erdos_renyi(20, 60, 1);
        for p in [Pattern::triangle(), Pattern::star(4), Pattern::cycle(4)] {
            let maps = count_injective_maps(&g, &p, false);
            assert_eq!(maps % iso::automorphism_count(&p), 0);
        }
    }
}
