//! The [`Pattern`] type: small connected graphs to be mined.

use crate::MAX_PATTERN_VERTICES;
use gpm_graph::Label;
use std::fmt;

/// Errors produced when constructing a [`Pattern`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum PatternError {
    /// More than [`MAX_PATTERN_VERTICES`] vertices.
    TooLarge(usize),
    /// Fewer than one vertex.
    Empty,
    /// An edge endpoint is out of `0..n`.
    BadEdge(usize, usize),
    /// The pattern is not connected (GPM patterns must be).
    Disconnected,
    /// Label array length does not match the vertex count.
    BadLabels {
        /// Vertex count of the pattern.
        expected: usize,
        /// Length of the supplied label array.
        got: usize,
    },
}

impl fmt::Display for PatternError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            PatternError::TooLarge(n) => {
                write!(f, "pattern has {n} vertices, maximum is {MAX_PATTERN_VERTICES}")
            }
            PatternError::Empty => write!(f, "pattern must have at least one vertex"),
            PatternError::BadEdge(u, v) => write!(f, "edge ({u}, {v}) is out of range"),
            PatternError::Disconnected => write!(f, "pattern must be connected"),
            PatternError::BadLabels { expected, got } => {
                write!(f, "expected {expected} labels, got {got}")
            }
        }
    }
}

impl std::error::Error for PatternError {}

/// A small connected pattern graph with optional vertex labels.
///
/// Stored as bitmask adjacency rows (`adj[i]` bit `j` set iff `{i, j}` is a
/// pattern edge), which makes isomorphism and automorphism enumeration
/// cheap for patterns of up to [`MAX_PATTERN_VERTICES`] vertices.
///
/// # Example
///
/// ```
/// use gpm_pattern::Pattern;
///
/// let p = Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 3), (3, 0)]).unwrap();
/// assert_eq!(p.size(), 4);
/// assert_eq!(p.edge_count(), 4);
/// assert!(p.has_edge(0, 1));
/// assert!(!p.has_edge(0, 2));
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct Pattern {
    n: usize,
    adj: [u8; MAX_PATTERN_VERTICES],
    labels: Option<Vec<Label>>,
    /// Edge labels keyed by `(min, max)` endpoint pair, sorted.
    edge_labels: Option<Vec<((usize, usize), Label)>>,
}

impl Pattern {
    /// Builds a pattern from an edge list over vertices `0..n`.
    ///
    /// # Errors
    ///
    /// Returns an error if the pattern is empty, too large, has an
    /// out-of-range edge, or is disconnected. Self-loops are rejected as
    /// [`PatternError::BadEdge`].
    pub fn from_edges(n: usize, edges: &[(usize, usize)]) -> Result<Pattern, PatternError> {
        if n == 0 {
            return Err(PatternError::Empty);
        }
        if n > MAX_PATTERN_VERTICES {
            return Err(PatternError::TooLarge(n));
        }
        let mut adj = [0u8; MAX_PATTERN_VERTICES];
        for &(u, v) in edges {
            if u >= n || v >= n || u == v {
                return Err(PatternError::BadEdge(u, v));
            }
            adj[u] |= 1 << v;
            adj[v] |= 1 << u;
        }
        let p = Pattern { n, adj, labels: None, edge_labels: None };
        if !p.is_connected() {
            return Err(PatternError::Disconnected);
        }
        Ok(p)
    }

    /// Attaches labels to the pattern's vertices.
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BadLabels`] on length mismatch.
    pub fn with_labels(mut self, labels: Vec<Label>) -> Result<Pattern, PatternError> {
        if labels.len() != self.n {
            return Err(PatternError::BadLabels { expected: self.n, got: labels.len() });
        }
        self.labels = Some(labels);
        Ok(self)
    }

    /// The single-vertex pattern (optionally used as an enumeration seed).
    pub fn single_vertex() -> Pattern {
        Pattern { n: 1, adj: [0; MAX_PATTERN_VERTICES], labels: None, edge_labels: None }
    }

    /// The single-edge pattern.
    pub fn edge() -> Pattern {
        Pattern::from_edges(2, &[(0, 1)]).expect("edge pattern is valid")
    }

    /// The triangle (3-clique).
    pub fn triangle() -> Pattern {
        Pattern::clique(3)
    }

    /// The complete pattern on `k` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_PATTERN_VERTICES`].
    pub fn clique(k: usize) -> Pattern {
        let mut edges = Vec::new();
        for u in 0..k {
            for v in 0..u {
                edges.push((u, v));
            }
        }
        Pattern::from_edges(k, &edges).expect("clique pattern is valid")
    }

    /// Simple path on `k` vertices (`k-1` edges).
    ///
    /// # Panics
    ///
    /// Panics if `k` is 0 or exceeds [`MAX_PATTERN_VERTICES`].
    pub fn path(k: usize) -> Pattern {
        let edges: Vec<_> = (1..k).map(|i| (i - 1, i)).collect();
        Pattern::from_edges(k, &edges).expect("path pattern is valid")
    }

    /// Star with one center and `k - 1` leaves.
    ///
    /// # Panics
    ///
    /// Panics if `k < 2` or `k` exceeds [`MAX_PATTERN_VERTICES`].
    pub fn star(k: usize) -> Pattern {
        let edges: Vec<_> = (1..k).map(|i| (0, i)).collect();
        Pattern::from_edges(k, &edges).expect("star pattern is valid")
    }

    /// Cycle on `k >= 3` vertices.
    ///
    /// # Panics
    ///
    /// Panics if `k < 3` or `k` exceeds [`MAX_PATTERN_VERTICES`].
    pub fn cycle(k: usize) -> Pattern {
        let mut edges: Vec<_> = (1..k).map(|i| (i - 1, i)).collect();
        edges.push((k - 1, 0));
        Pattern::from_edges(k, &edges).expect("cycle pattern is valid")
    }

    /// A triangle with a pendant vertex ("tailed triangle").
    pub fn tailed_triangle() -> Pattern {
        Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 0), (2, 3)]).expect("valid")
    }

    /// Two triangles sharing one edge ("diamond" / 4-chordal-cycle).
    pub fn diamond() -> Pattern {
        Pattern::from_edges(4, &[(0, 1), (1, 2), (2, 0), (0, 3), (1, 3)]).expect("valid")
    }

    /// A 4-cycle plus a roof vertex ("house").
    pub fn house() -> Pattern {
        Pattern::from_edges(5, &[(0, 1), (1, 2), (2, 3), (3, 0), (0, 4), (1, 4)]).expect("valid")
    }

    /// Number of vertices.
    pub fn size(&self) -> usize {
        self.n
    }

    /// Number of edges.
    pub fn edge_count(&self) -> usize {
        (0..self.n).map(|i| self.adj[i].count_ones() as usize).sum::<usize>() / 2
    }

    /// Whether the edge `{u, v}` exists.
    ///
    /// # Panics
    ///
    /// Panics if an endpoint is out of range.
    #[inline]
    pub fn has_edge(&self, u: usize, v: usize) -> bool {
        assert!(u < self.n && v < self.n, "endpoint out of range");
        self.adj[u] & (1 << v) != 0
    }

    /// Adjacency bitmask of vertex `u` (bit `j` ⇔ edge `{u, j}`).
    #[inline]
    pub fn adjacency_bits(&self, u: usize) -> u8 {
        self.adj[u]
    }

    /// Degree of pattern vertex `u`.
    pub fn degree(&self, u: usize) -> usize {
        self.adj[u].count_ones() as usize
    }

    /// Neighbors of `u` in ascending order.
    pub fn neighbors(&self, u: usize) -> Vec<usize> {
        (0..self.n).filter(|&v| self.has_edge(u, v)).collect()
    }

    /// Edge list with `u < v`.
    pub fn edges(&self) -> Vec<(usize, usize)> {
        let mut out = Vec::new();
        for v in 0..self.n {
            for u in 0..v {
                if self.has_edge(u, v) {
                    out.push((u, v));
                }
            }
        }
        out
    }

    /// The pattern's labels, if any.
    pub fn labels(&self) -> Option<&[Label]> {
        self.labels.as_deref()
    }

    /// Label of vertex `u`, if the pattern is labeled.
    pub fn label(&self, u: usize) -> Option<Label> {
        self.labels.as_ref().map(|l| l[u])
    }

    /// Whether the pattern carries labels.
    pub fn is_labeled(&self) -> bool {
        self.labels.is_some()
    }

    /// Attaches edge labels: every pattern edge must receive exactly one
    /// label (the paper's "edge label support" extension, executed by the
    /// single-machine layers).
    ///
    /// # Errors
    ///
    /// Returns [`PatternError::BadEdge`] if a labeled pair is not a
    /// pattern edge, and [`PatternError::BadLabels`] if any edge is left
    /// unlabeled or labeled twice.
    pub fn with_edge_labels(
        mut self,
        labels: &[(usize, usize, Label)],
    ) -> Result<Pattern, PatternError> {
        let mut el: Vec<((usize, usize), Label)> = Vec::with_capacity(labels.len());
        for &(u, v, l) in labels {
            if u >= self.n || v >= self.n || !self.has_edge(u, v) {
                return Err(PatternError::BadEdge(u, v));
            }
            el.push(((u.min(v), u.max(v)), l));
        }
        el.sort_unstable();
        let before = el.len();
        el.dedup_by_key(|(k, _)| *k);
        if el.len() != self.edge_count() || before != el.len() {
            return Err(PatternError::BadLabels { expected: self.edge_count(), got: before });
        }
        self.edge_labels = Some(el);
        Ok(self)
    }

    /// Whether the pattern carries edge labels.
    pub fn has_edge_labels(&self) -> bool {
        self.edge_labels.is_some()
    }

    /// Label of the pattern edge `{u, v}`, if edge labels are attached
    /// and the edge exists.
    pub fn edge_label(&self, u: usize, v: usize) -> Option<Label> {
        let el = self.edge_labels.as_ref()?;
        let key = (u.min(v), u.max(v));
        el.binary_search_by_key(&key, |(k, _)| *k).ok().map(|i| el[i].1)
    }

    /// Whether every vertex is reachable from vertex 0.
    pub fn is_connected(&self) -> bool {
        if self.n == 0 {
            return false;
        }
        let mut seen: u8 = 1;
        let mut frontier: u8 = 1;
        while frontier != 0 {
            let mut next: u8 = 0;
            let mut f = frontier;
            while f != 0 {
                let v = f.trailing_zeros() as usize;
                f &= f - 1;
                next |= self.adj[v];
            }
            frontier = next & !seen;
            seen |= next;
        }
        seen.count_ones() as usize >= self.n
    }

    /// The pattern with vertices renumbered by `perm` (`perm[i]` is the new
    /// id of old vertex `i`).
    ///
    /// # Panics
    ///
    /// Panics if `perm` is not a permutation of `0..size()`.
    pub fn permuted(&self, perm: &[usize]) -> Pattern {
        assert_eq!(perm.len(), self.n, "permutation size mismatch");
        let mut check: u8 = 0;
        for &p in perm {
            assert!(p < self.n, "permutation value out of range");
            check |= 1 << p;
        }
        assert_eq!(check.count_ones() as usize, self.n, "not a permutation");
        let mut adj = [0u8; MAX_PATTERN_VERTICES];
        for u in 0..self.n {
            for v in 0..self.n {
                if self.has_edge(u, v) {
                    adj[perm[u]] |= 1 << perm[v];
                }
            }
        }
        let labels = self.labels.as_ref().map(|l| {
            let mut nl = vec![0; self.n];
            for u in 0..self.n {
                nl[perm[u]] = l[u];
            }
            nl
        });
        let edge_labels = self.edge_labels.as_ref().map(|el| {
            let mut out: Vec<((usize, usize), Label)> = el
                .iter()
                .map(|&((u, v), l)| {
                    let (a, b) = (perm[u], perm[v]);
                    ((a.min(b), a.max(b)), l)
                })
                .collect();
            out.sort_unstable();
            out
        });
        Pattern { n: self.n, adj, labels, edge_labels }
    }
}

impl fmt::Debug for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Pattern(n={}, edges={:?}", self.n, self.edges())?;
        if let Some(l) = &self.labels {
            write!(f, ", labels={l:?}")?;
        }
        write!(f, ")")
    }
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let e: Vec<String> = self.edges().iter().map(|(u, v)| format!("{u}-{v}")).collect();
        write!(f, "P{}[{}]", self.n, e.join(","))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn constructors() {
        assert_eq!(Pattern::triangle().edge_count(), 3);
        assert_eq!(Pattern::clique(5).edge_count(), 10);
        assert_eq!(Pattern::path(4).edge_count(), 3);
        assert_eq!(Pattern::star(5).degree(0), 4);
        assert_eq!(Pattern::cycle(5).edge_count(), 5);
        assert_eq!(Pattern::tailed_triangle().size(), 4);
        assert_eq!(Pattern::diamond().edge_count(), 5);
        assert_eq!(Pattern::house().size(), 5);
        assert_eq!(Pattern::single_vertex().size(), 1);
        assert_eq!(Pattern::edge().size(), 2);
    }

    #[test]
    fn error_cases() {
        assert_eq!(Pattern::from_edges(0, &[]), Err(PatternError::Empty));
        assert_eq!(Pattern::from_edges(9, &[]), Err(PatternError::TooLarge(9)));
        assert_eq!(Pattern::from_edges(3, &[(0, 3)]), Err(PatternError::BadEdge(0, 3)));
        assert_eq!(Pattern::from_edges(2, &[(1, 1)]), Err(PatternError::BadEdge(1, 1)));
        assert_eq!(Pattern::from_edges(3, &[(0, 1)]), Err(PatternError::Disconnected));
        assert!(Pattern::triangle().with_labels(vec![1]).is_err());
    }

    #[test]
    fn connectivity() {
        assert!(Pattern::path(6).is_connected());
        assert!(Pattern::from_edges(4, &[(0, 1), (2, 3)]).is_err());
    }

    #[test]
    fn permutation_preserves_structure() {
        let p = Pattern::tailed_triangle();
        let q = p.permuted(&[3, 2, 1, 0]);
        assert_eq!(q.edge_count(), p.edge_count());
        assert!(q.has_edge(3, 2)); // old (0,1)
        assert!(q.has_edge(1, 0)); // old (2,3)
    }

    #[test]
    #[should_panic(expected = "not a permutation")]
    fn bad_permutation_panics() {
        Pattern::triangle().permuted(&[0, 0, 1]);
    }

    #[test]
    fn labels() {
        let p = Pattern::edge().with_labels(vec![5, 6]).unwrap();
        assert!(p.is_labeled());
        assert_eq!(p.label(1), Some(6));
        let q = p.permuted(&[1, 0]);
        assert_eq!(q.label(0), Some(6));
    }

    #[test]
    fn edge_labels_roundtrip() {
        let p = Pattern::triangle().with_edge_labels(&[(0, 1, 7), (1, 2, 8), (2, 0, 9)]).unwrap();
        assert!(p.has_edge_labels());
        assert_eq!(p.edge_label(0, 1), Some(7));
        assert_eq!(p.edge_label(1, 0), Some(7));
        assert_eq!(p.edge_label(0, 2), Some(9));
        // Permutation relabels consistently.
        let q = p.permuted(&[2, 0, 1]);
        assert_eq!(q.edge_label(2, 0), Some(7)); // old (0,1)
    }

    #[test]
    fn edge_label_errors() {
        // Non-edge.
        assert!(Pattern::path(3).with_edge_labels(&[(0, 2, 1)]).is_err());
        // Incomplete labeling.
        assert!(Pattern::triangle().with_edge_labels(&[(0, 1, 1)]).is_err());
        // Duplicate labeling.
        assert!(Pattern::edge().with_edge_labels(&[(0, 1, 1), (1, 0, 2)]).is_err());
    }

    #[test]
    fn display_and_debug() {
        let p = Pattern::triangle();
        assert_eq!(format!("{p}"), "P3[0-1,0-2,1-2]");
        assert!(format!("{p:?}").contains("edges"));
    }
}
