//! Property-based tests for the pattern substrate.

use gpm_graph::{gen, GraphBuilder};
use gpm_pattern::order::OrderChoice;
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::{genpat, interp, iso, oracle, Pattern};
use proptest::prelude::*;

/// A random connected pattern of 2..=5 vertices.
fn arb_pattern() -> impl Strategy<Value = Pattern> {
    (2usize..=5).prop_flat_map(|k| {
        let pairs: Vec<(usize, usize)> = (0..k).flat_map(|v| (0..v).map(move |u| (u, v))).collect();
        let bits = pairs.len();
        (Just(pairs), 0u32..(1u32 << bits)).prop_filter_map(
            "connected patterns only",
            move |(pairs, mask)| {
                let edges: Vec<(usize, usize)> = pairs
                    .iter()
                    .enumerate()
                    .filter(|(i, _)| mask & (1 << i) != 0)
                    .map(|(_, &e)| e)
                    .collect();
                Pattern::from_edges(k, &edges).ok()
            },
        )
    })
}

fn arb_graph() -> impl Strategy<Value = gpm_graph::Graph> {
    (10usize..40, 20usize..120, 0u64..1000).prop_map(|(n, m, seed)| gen::erdos_renyi(n, m, seed))
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// The fundamental symmetry-breaking identity: a restricted plan
    /// counts exactly `maps / |Aut|`.
    #[test]
    fn restriction_identity(p in arb_pattern(), g in arb_graph()) {
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        let unrestricted = MatchingPlan::compile(
            &p,
            &PlanOptions { symmetry_break: false, ..PlanOptions::default() },
        ).unwrap();
        let restricted_count = interp::count_embeddings(&g, &plan);
        let map_count = interp::count_embeddings(&g, &unrestricted);
        prop_assert_eq!(map_count % plan.automorphism_count(), 0);
        prop_assert_eq!(restricted_count, map_count / plan.automorphism_count());
    }

    /// Plans match the brute-force oracle for both order heuristics and
    /// both matching semantics.
    #[test]
    fn plans_match_oracle(p in arb_pattern(), g in arb_graph()) {
        for induced in [false, true] {
            let expect = oracle::count_subgraphs(&g, &p, induced);
            for order in [OrderChoice::Automine, OrderChoice::GraphPi] {
                let opts = PlanOptions { order: order.clone(), induced, ..PlanOptions::default() };
                let plan = MatchingPlan::compile(&p, &opts).unwrap();
                prop_assert_eq!(interp::count_embeddings(&g, &plan), expect);
                prop_assert_eq!(interp::count_embeddings_fast(&g, &plan), expect);
            }
        }
    }

    /// Canonical codes agree exactly with isomorphism.
    #[test]
    fn canonical_code_iff_isomorphic(a in arb_pattern(), b in arb_pattern()) {
        prop_assert_eq!(
            iso::canonical_code(&a) == iso::canonical_code(&b),
            iso::are_isomorphic(&a, &b)
        );
    }

    /// A pattern is isomorphic to any permutation of itself.
    #[test]
    fn permutation_invariance(p in arb_pattern(), seed in 0u64..100) {
        let n = p.size();
        let mut perm: Vec<usize> = (0..n).collect();
        // Cheap deterministic shuffle.
        let mut s = seed;
        for i in (1..n).rev() {
            s = s.wrapping_mul(6364136223846793005).wrapping_add(1);
            perm.swap(i, (s >> 33) as usize % (i + 1));
        }
        let q = p.permuted(&perm);
        prop_assert!(iso::are_isomorphic(&p, &q));
        prop_assert_eq!(iso::canonical_code(&p), iso::canonical_code(&q));
        prop_assert_eq!(iso::automorphism_count(&p), iso::automorphism_count(&q));
    }

    /// Vertical-reuse annotations never change results.
    #[test]
    fn reuse_invariance(p in arb_pattern(), g in arb_graph()) {
        let with = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        let without = MatchingPlan::compile(
            &p,
            &PlanOptions { vertical_reuse: false, ..PlanOptions::default() },
        ).unwrap();
        prop_assert_eq!(
            interp::count_embeddings(&g, &with),
            interp::count_embeddings(&g, &without)
        );
    }

    /// Motif pattern sets partition all size-k subgraphs: the sum of
    /// induced counts over all k-patterns equals the number of connected
    /// k-vertex induced subgraphs... checked against a direct count for
    /// k = 3: every vertex triple that is connected.
    #[test]
    fn three_motifs_partition_triples(g in arb_graph()) {
        let motifs = genpat::connected_patterns(3);
        let total: u64 = motifs
            .iter()
            .map(|p| {
                let plan = MatchingPlan::compile(
                    p,
                    &PlanOptions { induced: true, ..PlanOptions::default() },
                ).unwrap();
                interp::count_embeddings(&g, &plan)
            })
            .sum();
        // Direct: count connected triples.
        let n = g.vertex_count() as u32;
        let mut expect = 0u64;
        for a in 0..n {
            for b in (a + 1)..n {
                for c in (b + 1)..n {
                    let e = g.has_edge(a, b) as u8 + g.has_edge(a, c) as u8 + g.has_edge(b, c) as u8;
                    if e == 3 || (e == 2) {
                        expect += 1;
                    }
                }
            }
        }
        prop_assert_eq!(total, expect);
    }

    /// Builders of graphs from arbitrary edge lists never break the plan
    /// pipeline (no panics, count consistency between fast/slow paths).
    #[test]
    fn fast_slow_agree_on_arbitrary_graphs(
        edges in prop::collection::vec((0u32..30, 0u32..30), 0..80),
        p in arb_pattern(),
    ) {
        let g = edges.into_iter().collect::<GraphBuilder>().build();
        if g.vertex_count() == 0 { return Ok(()); }
        let plan = MatchingPlan::compile(&p, &PlanOptions::default()).unwrap();
        prop_assert_eq!(
            interp::count_embeddings(&g, &plan),
            interp::count_embeddings_fast(&g, &plan)
        );
    }
}
