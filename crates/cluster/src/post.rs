//! Typed point-to-point mailboxes between parts.
//!
//! The "moving computation to data" baseline ships partially-constructed
//! embeddings (plus carried edge lists) between machines instead of
//! fetching data; the G-thinker baseline ships task state. This module
//! provides the byte-accounted transport those baselines use.
//!
//! Like the fetch fabric, the post office propagates a **trace
//! context**: every message carries an auto-assigned id and its sender,
//! and an observed office (see [`PostOffice::new_observed`]) records
//! linked `PostSend`/`PostRecv` instants — so a baseline trace shows the
//! same send→receive arrows the engine's fetch lifecycle gets.

use crate::metrics::ClusterMetrics;
use crate::PartId;
use crossbeam::channel::{unbounded, Receiver, Sender};
use gpm_obs::{Recorder, SpanKind};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Internal channel payload: the message plus its trace context.
#[derive(Debug)]
struct Envelope<T> {
    /// Auto-assigned message id (nonzero), the causal link between the
    /// send and receive instants.
    msg_id: u64,
    /// The sending part.
    from: PartId,
    msg: T,
}

/// A cluster-wide typed mailbox network: every part can send to every
/// part; each part owns one receive queue.
///
/// # Example
///
/// ```
/// use gpm_cluster::post::PostOffice;
/// use gpm_cluster::metrics::ClusterMetrics;
///
/// let metrics = ClusterMetrics::new(2, 1);
/// let post: PostOffice<String> = PostOffice::new(2, metrics);
/// let a = post.endpoint(0);
/// let b = post.endpoint(1);
/// a.send(1, "hello".to_string(), 5);
/// assert_eq!(b.try_recv(), Some("hello".to_string()));
/// ```
#[derive(Debug)]
pub struct PostOffice<T> {
    senders: Vec<Sender<Envelope<T>>>,
    receivers: Vec<Receiver<Envelope<T>>>,
    metrics: ClusterMetrics,
    obs: Arc<Recorder>,
    next_id: Arc<AtomicU64>,
}

impl<T: Send> PostOffice<T> {
    /// Creates mailboxes for `parts` parts reporting into `metrics`.
    pub fn new(parts: usize, metrics: ClusterMetrics) -> Self {
        Self::new_observed(parts, metrics, Recorder::disabled())
    }

    /// Like [`PostOffice::new`], additionally recording a linked
    /// `PostSend` instant per send and `PostRecv` per delivery into
    /// `obs` (both carry the message's auto-assigned id as their causal
    /// link).
    pub fn new_observed(parts: usize, metrics: ClusterMetrics, obs: Arc<Recorder>) -> Self {
        assert_eq!(metrics.part_count(), parts, "metrics sized for a different cluster");
        let (senders, receivers): (Vec<_>, Vec<_>) =
            (0..parts).map(|_| unbounded::<Envelope<T>>()).unzip();
        PostOffice { senders, receivers, metrics, obs, next_id: Arc::new(AtomicU64::new(0)) }
    }

    /// The endpoint of `part`: cheap to clone; receiving is multi-consumer
    /// (clones share the same queue).
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn endpoint(&self, part: PartId) -> Endpoint<T> {
        assert!(part < self.senders.len(), "part out of range");
        Endpoint {
            part,
            senders: self.senders.clone(),
            receiver: self.receivers[part].clone(),
            metrics: self.metrics.clone(),
            obs: Arc::clone(&self.obs),
            next_id: Arc::clone(&self.next_id),
        }
    }

    /// The shared metrics.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }
}

/// Why a blocking receive returned no message.
///
/// Distinguishing the two matters for failure detection: a quiet peer
/// ([`RecvError::Timeout`]) may still send later, while a severed queue
/// ([`RecvError::Disconnected`]) can never deliver again, so a caller
/// waiting on a crashed peer should stop on the first receive instead
/// of re-arming the timeout forever.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum RecvError {
    /// No message arrived before the deadline.
    Timeout,
    /// Every sender has been dropped: no message can ever arrive.
    Disconnected,
}

/// One part's sending/receiving endpoint of a [`PostOffice`].
#[derive(Debug, Clone)]
pub struct Endpoint<T> {
    part: PartId,
    senders: Vec<Sender<Envelope<T>>>,
    receiver: Receiver<Envelope<T>>,
    metrics: ClusterMetrics,
    obs: Arc<Recorder>,
    next_id: Arc<AtomicU64>,
}

impl<T: Send> Endpoint<T> {
    /// The part this endpoint belongs to.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Number of parts in the network.
    pub fn part_count(&self) -> usize {
        self.senders.len()
    }

    /// Sends `msg` to `to`, accounting `bytes` of traffic (the caller
    /// knows the serialized size of its message type).
    ///
    /// # Panics
    ///
    /// Panics if `to` is out of range or its queue is disconnected.
    pub fn send(&self, to: PartId, msg: T, bytes: u64) {
        let class = self.metrics.classify(self.part, to);
        self.metrics.part(self.part).record_fetch(class, bytes, 0);
        // Offset by one so 0 stays "unlinked" (gpm_obs::Span::link).
        let msg_id = self.next_id.fetch_add(1, Ordering::Relaxed) + 1;
        self.obs.record_instant_linked(SpanKind::PostSend, self.part as u32, bytes, msg_id);
        self.senders[to]
            .send(Envelope { msg_id, from: self.part, msg })
            .expect("post office receiver dropped");
    }

    /// Non-blocking receive.
    pub fn try_recv(&self) -> Option<T> {
        self.receiver.try_recv().ok().map(|env| self.open(env))
    }

    /// Blocking receive with timeout, distinguishing an empty queue
    /// ([`RecvError::Timeout`]) from a dead one
    /// ([`RecvError::Disconnected`]).
    pub fn recv_timeout(&self, timeout: Duration) -> Result<T, RecvError> {
        use crossbeam::channel::RecvTimeoutError;
        match self.receiver.recv_timeout(timeout) {
            Ok(env) => Ok(self.open(env)),
            Err(RecvTimeoutError::Timeout) => Err(RecvError::Timeout),
            Err(RecvTimeoutError::Disconnected) => Err(RecvError::Disconnected),
        }
    }

    /// Number of messages waiting in this part's queue.
    pub fn pending(&self) -> usize {
        self.receiver.len()
    }

    fn open(&self, env: Envelope<T>) -> T {
        self.obs.record_instant_linked(
            SpanKind::PostRecv,
            self.part as u32,
            env.from as u64,
            env.msg_id,
        );
        env.msg
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::metrics::TrafficClass;
    use gpm_obs::ObsConfig;

    #[test]
    fn roundtrip_and_accounting() {
        let metrics = ClusterMetrics::new(4, 2);
        let post: PostOffice<u32> = PostOffice::new(4, metrics);
        let a = post.endpoint(0);
        let c = post.endpoint(2);
        a.send(2, 99, 40); // machine 0 -> machine 1
        assert_eq!(c.try_recv(), Some(99));
        assert_eq!(c.try_recv(), None);
        assert_eq!(post.metrics().total_network_bytes(), 40);
        a.send(1, 1, 10); // same machine, different socket
        assert_eq!(post.metrics().total_cross_socket_bytes(), 10);
        assert_eq!(post.metrics().classify(0, 1), TrafficClass::CrossSocket);
    }

    #[test]
    fn recv_timeout_distinguishes_timeout_from_disconnect() {
        let post: PostOffice<()> = PostOffice::new(1, ClusterMetrics::new(1, 1));
        let mut e = post.endpoint(0);
        assert_eq!(e.recv_timeout(Duration::from_millis(5)), Err(RecvError::Timeout));
        // Sever every sender (the office's and the endpoint's own): a
        // dead queue now surfaces immediately, not after the timeout.
        drop(post);
        e.senders.clear();
        let start = std::time::Instant::now();
        assert_eq!(e.recv_timeout(Duration::from_secs(10)), Err(RecvError::Disconnected));
        assert!(
            start.elapsed() < Duration::from_secs(1),
            "disconnect must not wait out the timeout"
        );
    }

    #[test]
    fn cross_thread_delivery() {
        let post: PostOffice<usize> = PostOffice::new(2, ClusterMetrics::new(2, 1));
        let tx = post.endpoint(0);
        let rx = post.endpoint(1);
        let t = std::thread::spawn(move || {
            let mut got = Vec::new();
            while got.len() < 10 {
                if let Ok(m) = rx.recv_timeout(Duration::from_secs(1)) {
                    got.push(m);
                }
            }
            got
        });
        for i in 0..10 {
            tx.send(1, i, 8);
        }
        let got = t.join().unwrap();
        assert_eq!(got, (0..10).collect::<Vec<_>>());
    }

    #[test]
    fn pending_counts_queue_depth() {
        let post: PostOffice<u8> = PostOffice::new(2, ClusterMetrics::new(2, 1));
        let e0 = post.endpoint(0);
        let e1 = post.endpoint(1);
        e0.send(1, 1, 1);
        e0.send(1, 2, 1);
        assert_eq!(e1.pending(), 2);
    }

    #[test]
    fn observed_office_links_send_to_recv() {
        let obs = Recorder::new(&ObsConfig::enabled());
        let post: PostOffice<u8> =
            PostOffice::new_observed(2, ClusterMetrics::new(2, 1), Arc::clone(&obs));
        let e0 = post.endpoint(0);
        let e1 = post.endpoint(1);
        e0.send(1, 7, 24);
        e0.send(1, 8, 24);
        assert_eq!(e1.try_recv(), Some(7));
        assert_eq!(e1.try_recv(), Some(8));
        let spans = obs.spans();
        let sends: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::PostSend).collect();
        let recvs: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::PostRecv).collect();
        assert_eq!(sends.len(), 2);
        assert_eq!(recvs.len(), 2);
        for send in &sends {
            assert_ne!(send.link, 0);
            assert!(
                recvs.iter().any(|r| r.link == send.link && r.arg == 0),
                "send {} has no matching recv from part 0",
                send.link
            );
        }
        assert_ne!(sends[0].link, sends[1].link, "distinct messages share a link");
    }

    #[test]
    fn unobserved_office_records_nothing() {
        let post: PostOffice<u8> = PostOffice::new(2, ClusterMetrics::new(2, 1));
        let e0 = post.endpoint(0);
        e0.send(1, 1, 1);
        post.endpoint(1).try_recv();
        // The disabled recorder saw nothing.
        assert_eq!(e0.obs.spans_recorded(), 0);
    }

    #[test]
    #[should_panic(expected = "metrics sized")]
    fn mismatched_metrics_panics() {
        let _: PostOffice<u8> = PostOffice::new(3, ClusterMetrics::new(2, 1));
    }
}
