//! The wire layer beneath the request fabric: message types, the
//! [`Transport`] trait, and its two implementations.
//!
//! A transport moves sequence-tagged [`WireRequest`]s to a target part's
//! responder and delivers [`WireReply`]s back on a caller-provided
//! channel. Submission is **non-blocking**: flow control (the in-flight
//! window), retries, and metrics all live one layer up, in
//! [`crate::fabric`]. Two transports exist:
//!
//! * [`ChannelTransport`] — the in-process cluster: one responder thread
//!   per part serving batched edge-list requests from its local
//!   [`GraphPart`] (the paper's "graph data responding threads", §6);
//! * [`FaultInjectingTransport`] — wraps the channel transport and
//!   deterministically drops, errors, or delays a configurable fraction
//!   of messages, for exercising the fabric's timeout/retry path.

use crate::fabric::FetchError;
use crate::metrics::ClusterMetrics;
use crate::PartId;
use crossbeam::channel::{unbounded, Sender};
use gpm_graph::partition::{GraphPart, PartitionedGraph};
use gpm_graph::VertexId;
use gpm_obs::{Recorder, SpanKind};
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-message fixed overhead in accounted bytes (headers/envelopes).
pub(crate) const HEADER_BYTES: u64 = 16;

/// A batch of edge lists returned by a fetch.
///
/// Lists are stored back to back; `list(i)` is the edge list of the `i`-th
/// requested vertex, in request order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchedLists {
    offsets: Vec<u32>,
    data: Vec<VertexId>,
}

impl FetchedLists {
    /// Number of lists in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th requested vertex's edge list.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn list(&self, i: usize) -> &[VertexId] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Consumes the batch into raw `(offsets, data)` arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<VertexId>) {
        (self.offsets, self.data)
    }

    /// Accounted size of the response in bytes.
    pub fn response_bytes(&self) -> u64 {
        HEADER_BYTES + 4 * (self.offsets.len() as u64 + self.data.len() as u64)
    }

    /// Builds a batch from raw arrays (the inverse of [`into_parts`]).
    ///
    /// [`into_parts`]: FetchedLists::into_parts
    pub(crate) fn from_parts(offsets: Vec<u32>, data: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, data.len());
        FetchedLists { offsets, data }
    }
}

/// Converts a running data length into a `u32` offset, reporting the
/// offending length on overflow instead of silently truncating.
pub(crate) fn checked_offset(len: usize) -> Result<u32, usize> {
    u32::try_from(len).map_err(|_| len)
}

/// One edge-list request on the wire, tagged with the issuing client's
/// sequence number so replies (and stale replies from timed-out attempts)
/// can be matched back to the right in-flight fetch.
///
/// Besides the per-attempt `seq`, every request carries a **trace
/// context**: the request id (stable across retries) and the issuing
/// part. The responder stamps its `Serve` span with the request id, so
/// the issue, every retry, the responder's service interval, and the
/// client wait that consumes the reply all share one causal link — the
/// raw material for flow arrows in the trace and for critical-path
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-assigned sequence number; a retry gets a fresh one.
    pub seq: u64,
    /// Causal request id, stable across retries; 0 means the request is
    /// untraced (see `gpm_obs::Span::link`).
    pub req_id: u64,
    /// Id of the query this request works for; 0 means unattributed
    /// (see `gpm_obs::Span::query`). The responder stamps its `Serve`
    /// span with it so per-query critical paths include service time.
    pub query: u64,
    /// The part that issued this request.
    pub from: PartId,
    /// The part whose edge-list slice is requested. Normally the
    /// submission target; differs when the fabric fails over a dead
    /// part's fetch to a replica holder, which then serves from its
    /// hosted copy of `owner`'s slice.
    pub owner: PartId,
    /// The vertices whose edge lists are requested.
    pub vertices: Vec<VertexId>,
}

/// One reply on the wire, carrying the request's sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReply {
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// The served lists, or a typed failure.
    pub payload: Result<FetchedLists, FetchError>,
}

/// One chunk of a slice transfer on the wire — the re-replication
/// analogue of [`WireRequest`]. After a part death the rebalancer
/// streams the lost slice's three CSR columns to a new host as a
/// sequence of these messages; the receiving responder stages them and,
/// on the final chunk, installs the rebuilt [`GraphPart`] into its
/// hosted-slice set so subsequent failover fetches for `owner` are
/// answered locally.
///
/// Chunking protocol: chunk 0 carries the full `owned` and `offsets`
/// columns plus the first `neighbors` segment; chunks `1..total_chunks`
/// carry further `neighbors` segments in order. Each chunk is
/// acknowledged with an empty [`WireReply`] so the sender can track byte
/// progress (and a stuck-transfer watchdog can notice its absence).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ReplicaPush {
    /// Client-assigned sequence number, echoed in the ack.
    pub seq: u64,
    /// The part whose slice is being rebuilt on the receiver.
    pub owner: PartId,
    /// 0-based index of this chunk within the transfer.
    pub chunk: u64,
    /// Total chunks in the transfer.
    pub total_chunks: u64,
    /// Owned-vertex column (full, on chunk 0; empty otherwise).
    pub owned: Vec<VertexId>,
    /// CSR offset column (full, on chunk 0; empty otherwise).
    pub offsets: Vec<u64>,
    /// This chunk's segment of the CSR adjacency column.
    pub neighbors: Vec<VertexId>,
}

impl ReplicaPush {
    /// Accounted wire size of this chunk in bytes.
    pub fn wire_bytes(&self) -> u64 {
        HEADER_BYTES
            + 4 * (self.owned.len() as u64 + self.neighbors.len() as u64)
            + 8 * self.offsets.len() as u64
    }
}

/// A control-plane operation on the wire — the message vocabulary of the
/// message-based work-coordination protocol (`MsgLedger`). Where data
/// fetches move edge lists between parts, these move *scheduling state*:
/// root claims, batch retirements, donations, starvation signals,
/// quiescence votes, and recovery-log queries, all answered by the run's
/// control responder (see `crate::control`).
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlOp {
    /// Claim the next root batch for the sender: its own unclaimed range
    /// first (up to `own_batch` roots), then — with stealing on — the
    /// donation spill, then a steal from a victim part's range.
    Claim {
        /// Upper bound on roots taken from the sender's own range.
        own_batch: usize,
    },
    /// Retire one of the sender's previously claimed batches.
    BatchDone,
    /// Donate never-started level-0 roots to the shared spill.
    Donate {
        /// The donated root vertices.
        roots: Vec<VertexId>,
    },
    /// Flag the sender as starving (idle and polling for work) or not.
    Starving {
        /// `true` on entering the idle poll loop, `false` on leaving it.
        on: bool,
    },
    /// Read the global quiescence verdict and the starvation count.
    Poll,
    /// Close the `dead` parts' cursors and return the lost-root multiset
    /// reconstructed from the claim/donate message log.
    CloseDead {
        /// The fail-stopped parts whose work must be reconstructed.
        dead: Vec<PartId>,
    },
}

impl CtrlOp {
    /// Stable numeric code of the operation, recorded as the `arg` of
    /// control-message trace spans (1 = claim, 2 = batch-done,
    /// 3 = donate, 4 = starving, 5 = poll, 6 = close-dead).
    pub fn code(&self) -> u64 {
        match self {
            CtrlOp::Claim { .. } => 1,
            CtrlOp::BatchDone => 2,
            CtrlOp::Donate { .. } => 3,
            CtrlOp::Starving { .. } => 4,
            CtrlOp::Poll => 5,
            CtrlOp::CloseDead { .. } => 6,
        }
    }
}

/// One control message on the wire. Mirrors [`WireRequest`]'s tagging
/// discipline: `seq` is fresh per attempt (the fault plan rolls a new
/// fate for each), while `req_id` is stable across retries — it is both
/// the causal trace link and the responder's **dedup key**, so a retried
/// operation whose original reply was lost in the network is answered
/// from the responder's reply cache instead of being applied twice
/// (control operations mutate scheduler state; exactly-once matters
/// here, unlike idempotent data fetches).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlRequest {
    /// Client-assigned sequence number; a retry gets a fresh one.
    pub seq: u64,
    /// Causal id and dedup key, stable across retries.
    pub req_id: u64,
    /// Id of the query this operation coordinates for.
    pub query: u64,
    /// The part that issued this operation.
    pub from: PartId,
    /// The operation itself.
    pub op: CtrlOp,
}

impl CtrlRequest {
    /// Accounted wire size of the request in bytes (header plus 4 bytes
    /// per carried vertex id), for the control-traffic counters.
    pub fn wire_bytes(&self) -> u64 {
        let payload = match &self.op {
            CtrlOp::Donate { roots } => 4 * roots.len() as u64,
            CtrlOp::CloseDead { dead } => 4 * dead.len() as u64,
            _ => 0,
        };
        HEADER_BYTES + payload
    }
}

/// Where a control-plane claim was served from (the wire-level mirror of
/// the core scheduler's claim source).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum CtrlClaimSource {
    /// The claimant's own unclaimed root range.
    Own,
    /// The shared spill of donated level-0 ranges.
    Spill,
    /// Stolen from the given part's unclaimed root range.
    Stolen(PartId),
}

/// The payload of a control reply.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CtrlPayload {
    /// A claim succeeded; the roots are now the claimant's to execute.
    Claimed {
        /// Where the batch came from.
        source: CtrlClaimSource,
        /// The claimed root vertices.
        roots: Vec<VertexId>,
    },
    /// A claim found nothing claimable right now.
    NoWork,
    /// A fire-and-forget operation was applied.
    Ack,
    /// Answer to [`CtrlOp::Poll`].
    Status {
        /// Whether the run has globally quiesced (no outstanding
        /// batches, every cursor exhausted, spill empty).
        finished: bool,
        /// Number of parts currently flagged starving.
        starving: usize,
    },
    /// Answer to [`CtrlOp::CloseDead`]: the reconstructed lost roots.
    Lost {
        /// The multiset of roots to re-execute on the survivors.
        roots: Vec<VertexId>,
    },
    /// A transient injected fault (the control fault plan's analogue of
    /// [`FetchError::Injected`]); the client retries with backoff.
    Injected,
}

/// One control reply, matched to its request by `req_id`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct CtrlReply {
    /// The request this answers (and dedup-cache key it was stored under).
    pub req_id: u64,
    /// The operation's result.
    pub payload: CtrlPayload,
}

/// A non-blocking message layer between parts.
///
/// `submit` hands a request to `target`'s responder and returns
/// immediately; the reply arrives later on `reply_to`. Implementations
/// must be shareable across client threads.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Number of parts this transport connects.
    fn part_count(&self) -> usize;

    /// Queues `req` for `target`'s responder. The reply (carrying
    /// `req.seq`) is sent on `reply_to` when served.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError::PartDead`] if the target responder was
    /// fail-stop killed, [`FetchError::Shutdown`] if it stopped as part
    /// of an orderly teardown.
    fn submit(
        &self,
        target: PartId,
        req: WireRequest,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError>;

    /// Queues a slice-transfer chunk for `target`'s responder, which
    /// stages it and — on the final chunk — installs the rebuilt slice
    /// into its hosted set. Each chunk is acked with an empty reply on
    /// `reply_to`. The default implementation rejects the push, so
    /// transports that predate re-replication stay valid.
    ///
    /// # Errors
    ///
    /// Same death/shutdown contract as [`Transport::submit`].
    fn push_replica(
        &self,
        target: PartId,
        push: ReplicaPush,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        let _ = (target, push, reply_to);
        Err(FetchError::Shutdown)
    }

    /// The slice ids `part`'s responder currently hosts, own slice
    /// first. The default reports only the part's own slice, which is
    /// correct for any transport without replica hosting.
    fn hosted_slices(&self, part: PartId) -> Vec<PartId> {
        vec![part]
    }

    /// Stops all responders and joins their threads. Idempotent.
    fn shutdown(&self);
}

enum Msg {
    Fetch {
        req: WireRequest,
        reply_to: Sender<WireReply>,
    },
    Push {
        push: ReplicaPush,
        reply_to: Sender<WireReply>,
    },
    /// Stops the responder even while client clones are still alive.
    Shutdown,
}

/// In-progress slice transfer staged on a responder: columns accumulate
/// across chunks until the final one installs the rebuilt part.
struct ReplicaStage {
    owned: Vec<VertexId>,
    offsets: Vec<u64>,
    neighbors: Vec<VertexId>,
    next_chunk: u64,
    total_chunks: u64,
}

/// The in-process cluster transport: one responder thread per part.
///
/// Each responder serves its own part's slice plus any replica slices
/// the partitioning hosts on it (selected per request by
/// [`WireRequest::owner`]), so a fetch re-routed around a dead part is
/// answered from the holder's copy. The hosted set is **mutable at
/// runtime**: re-replication pushes ([`ReplicaPush`]) install further
/// slices into it after a holder dies, restoring redundancy.
#[derive(Debug)]
pub struct ChannelTransport {
    senders: Vec<Sender<Msg>>,
    handles: parking_lot::Mutex<Vec<JoinHandle<()>>>,
    /// Set by [`ChannelTransport::kill_part`]; distinguishes a fail-stop
    /// kill (submissions get [`FetchError::PartDead`]) from an orderly
    /// [`Transport::shutdown`] (submissions get [`FetchError::Shutdown`]).
    /// Shared with the responder threads so a killed responder abandons
    /// queued requests instead of draining them.
    dead: Arc<Vec<AtomicBool>>,
    /// Per-part hosted-slice registries (`[0]` is the part's own slice),
    /// shared with the responder threads. Responders take the read lock
    /// per request; a replica install takes the write lock once.
    slices: Vec<Arc<parking_lot::RwLock<Vec<Arc<GraphPart>>>>>,
}

impl ChannelTransport {
    /// Starts one responder thread per part of `pg`, recording served
    /// requests into `metrics`.
    pub fn start(pg: &PartitionedGraph, metrics: &ClusterMetrics) -> Self {
        Self::start_observed(pg, metrics, Recorder::disabled())
    }

    /// Like [`ChannelTransport::start`], additionally recording a `Serve`
    /// span per request into `obs`.
    pub fn start_observed(
        pg: &PartitionedGraph,
        metrics: &ClusterMetrics,
        obs: Arc<Recorder>,
    ) -> Self {
        let parts = pg.part_count();
        let dead: Arc<Vec<AtomicBool>> =
            Arc::new((0..parts).map(|_| AtomicBool::new(false)).collect());
        let mut senders = Vec::with_capacity(parts);
        let mut handles = Vec::with_capacity(parts);
        let mut registries = Vec::with_capacity(parts);
        for part_id in 0..parts {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            // Own slice first, then any replica slices hosted here.
            let mut slices = vec![pg.part_arc(part_id)];
            slices.extend(pg.hosted_replicas(part_id).iter().cloned());
            let registry = Arc::new(parking_lot::RwLock::new(slices));
            registries.push(Arc::clone(&registry));
            let part_metrics = Arc::clone(metrics.part(part_id));
            let obs = Arc::clone(&obs);
            let dead = Arc::clone(&dead);
            let handle = std::thread::Builder::new()
                .name(format!("edgelist-responder-{part_id}"))
                .spawn(move || {
                    // In-progress slice transfers, keyed by the slice's
                    // owner. Chunks for one transfer arrive in order on
                    // this queue (the rebalancer sends them serially).
                    let mut staging: std::collections::HashMap<PartId, ReplicaStage> =
                        std::collections::HashMap::new();
                    loop {
                        let msg = match rx.recv() {
                            Ok(m) => m,
                            Err(_) => break,
                        };
                        // Fail-stop: a killed responder abandons queued
                        // requests unanswered; clients time out and
                        // discover the death on resubmission.
                        if dead[part_id].load(Ordering::SeqCst) {
                            break;
                        }
                        match msg {
                            Msg::Fetch { req, reply_to } => {
                                let t0 = obs.now_ns();
                                let payload = {
                                    let slices = registry.read();
                                    serve(&slices, req.owner, &req.vertices)
                                };
                                if let Ok(lists) = &payload {
                                    part_metrics.record_served(lists.response_bytes());
                                    obs.record_span_for(
                                        req.query,
                                        SpanKind::Serve,
                                        part_id as u32,
                                        t0,
                                        lists.response_bytes(),
                                        req.req_id,
                                    );
                                }
                                // A dropped reply receiver just means the
                                // client gave up (or the fault layer
                                // swallowed the reply); keep serving
                                // others.
                                let _ = reply_to.send(WireReply { seq: req.seq, payload });
                            }
                            Msg::Push { push, reply_to } => {
                                let seq = push.seq;
                                let payload = stage_push(&mut staging, &registry, part_id, push);
                                let _ = reply_to.send(WireReply { seq, payload });
                            }
                            Msg::Shutdown => break,
                        }
                    }
                })
                .expect("spawn responder thread");
            handles.push(handle);
        }
        ChannelTransport {
            senders,
            handles: parking_lot::Mutex::new(handles),
            dead,
            slices: registries,
        }
    }

    /// The slice ids `part`'s responder currently hosts, own slice
    /// first — the live replica-placement map, including slices
    /// installed by re-replication after start.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn hosted_slice_ids(&self, part: PartId) -> Vec<PartId> {
        self.slices[part].read().iter().map(|s| s.part_id()).collect()
    }

    /// Fail-stop kills `part`'s responder: its queue is closed, queued
    /// requests are abandoned unanswered, and every later submission to
    /// it returns [`FetchError::PartDead`]. The thread is joined by the
    /// eventual [`Transport::shutdown`]. Idempotent.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn kill_part(&self, part: PartId) {
        if !self.dead[part].swap(true, Ordering::SeqCst) {
            let _ = self.senders[part].send(Msg::Shutdown);
        }
    }

    /// Whether `part` was fail-stop killed via
    /// [`ChannelTransport::kill_part`].
    pub fn is_part_dead(&self, part: PartId) -> bool {
        self.dead[part].load(Ordering::SeqCst)
    }
}

impl Transport for ChannelTransport {
    fn part_count(&self) -> usize {
        self.senders.len()
    }

    fn submit(
        &self,
        target: PartId,
        req: WireRequest,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        assert!(target < self.senders.len(), "target part out of range");
        if self.dead[target].load(Ordering::SeqCst) {
            return Err(FetchError::PartDead { part: target });
        }
        self.senders[target].send(Msg::Fetch { req, reply_to }).map_err(|_| {
            // The queue closed between the check above and the send.
            if self.dead[target].load(Ordering::SeqCst) {
                FetchError::PartDead { part: target }
            } else {
                FetchError::Shutdown
            }
        })
    }

    fn push_replica(
        &self,
        target: PartId,
        push: ReplicaPush,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        assert!(target < self.senders.len(), "target part out of range");
        if self.dead[target].load(Ordering::SeqCst) {
            return Err(FetchError::PartDead { part: target });
        }
        self.senders[target].send(Msg::Push { push, reply_to }).map_err(|_| {
            if self.dead[target].load(Ordering::SeqCst) {
                FetchError::PartDead { part: target }
            } else {
                FetchError::Shutdown
            }
        })
    }

    fn hosted_slices(&self, part: PartId) -> Vec<PartId> {
        self.hosted_slice_ids(part)
    }

    fn shutdown(&self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

/// Applies one slice-transfer chunk on a responder: stages the columns
/// and, on the final chunk, validates the assembled CSR and installs it
/// into the hosted-slice registry (replacing a stale copy of the same
/// slice if present). Out-of-order or mis-sized chunks abort the
/// transfer with a transient [`FetchError::Injected`] so the sender can
/// restart it from scratch.
fn stage_push(
    staging: &mut std::collections::HashMap<PartId, ReplicaStage>,
    registry: &parking_lot::RwLock<Vec<Arc<GraphPart>>>,
    part_id: PartId,
    push: ReplicaPush,
) -> Result<FetchedLists, FetchError> {
    let owner = push.owner;
    let abort = move |staging: &mut std::collections::HashMap<PartId, ReplicaStage>| {
        staging.remove(&owner);
        Err(FetchError::Injected { target: part_id })
    };
    let stage = staging.entry(owner).or_insert_with(|| ReplicaStage {
        owned: Vec::new(),
        offsets: Vec::new(),
        neighbors: Vec::new(),
        next_chunk: 0,
        total_chunks: push.total_chunks,
    });
    if push.chunk != stage.next_chunk || push.total_chunks != stage.total_chunks {
        return abort(staging);
    }
    if push.chunk == 0 {
        stage.owned = push.owned;
        stage.offsets = push.offsets;
    } else if !push.owned.is_empty() || !push.offsets.is_empty() {
        return abort(staging);
    }
    stage.neighbors.extend_from_slice(&push.neighbors);
    stage.next_chunk += 1;
    if stage.next_chunk == stage.total_chunks {
        let stage = staging.remove(&owner).expect("stage present");
        // Validate the assembled columns before from_csr's asserts
        // would panic the responder thread on a corrupt transfer.
        let consistent = stage.offsets.len() == stage.owned.len() + 1
            && stage.offsets.first() == Some(&0)
            && stage.offsets.windows(2).all(|w| w[0] <= w[1])
            && stage.offsets.last().map(|&n| n as usize) == Some(stage.neighbors.len())
            && stage.owned.windows(2).all(|w| w[0] < w[1]);
        if !consistent {
            return Err(FetchError::Injected { target: part_id });
        }
        let part =
            Arc::new(GraphPart::from_csr(owner, stage.owned, stage.offsets, stage.neighbors));
        let mut slices = registry.write();
        match slices.iter_mut().find(|s| s.part_id() == owner) {
            Some(slot) => *slot = part,
            None => slices.push(part),
        }
    }
    // The ack: an empty batch, so the sender's byte accounting sees
    // only the fixed header on the reply path.
    Ok(FetchedLists::from_parts(vec![0], Vec::new()))
}

/// Serves `vertices` from whichever of `slices` holds `owner`'s slice
/// (`slices[0]` is the responder's own part; the rest are hosted
/// replicas). A request for a part not hosted here is a routing bug and
/// answers [`FetchError::NotOwner`].
fn serve(
    slices: &[Arc<GraphPart>],
    owner: PartId,
    vertices: &[VertexId],
) -> Result<FetchedLists, FetchError> {
    let target = slices[0].part_id();
    let Some(part) = slices.iter().find(|s| s.part_id() == owner) else {
        return Err(FetchError::NotOwner { target, missing: vertices.to_vec() });
    };
    let mut offsets = Vec::with_capacity(vertices.len() + 1);
    offsets.push(0u32);
    let mut data = Vec::new();
    let mut missing = Vec::new();
    for &v in vertices {
        match part.edge_list(v) {
            Some(list) => data.extend_from_slice(list),
            None => missing.push(v),
        }
        offsets.push(
            checked_offset(data.len())
                .map_err(|entries| FetchError::TooLarge { target, entries })?,
        );
    }
    if missing.is_empty() {
        Ok(FetchedLists { offsets, data })
    } else {
        Err(FetchError::NotOwner { target, missing })
    }
}

/// What to do with a fraction of submitted messages.
///
/// Outcomes are decided deterministically per `(seed, target, seq)`, so a
/// run with a fixed plan is reproducible, and a retried request (which
/// carries a fresh sequence number) re-rolls its fate — with any fraction
/// below 1.0, retries converge.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fraction of requests whose replies are silently dropped (the
    /// client sees a timeout).
    pub drop_fraction: f64,
    /// Fraction of requests answered with a transient
    /// [`FetchError::Injected`] error.
    pub error_fraction: f64,
    /// Fraction of requests whose replies are delayed by [`delay`].
    ///
    /// [`delay`]: FaultPlan::delay
    pub delay_fraction: f64,
    /// How long delayed replies are held back.
    pub delay: Duration,
    /// Seed of the deterministic per-message fault decision.
    pub seed: u64,
    /// Scheduled fail-stop crashes, fired **in list order**: entry
    /// `i + 1` starts counting submissions targeting its part only once
    /// entry `i` has fired, so sequential crash schedules ("part 1 after
    /// 4 requests, then part 2 after 6 further requests") are expressed
    /// directly. Empty means no crashes.
    pub crashes: Vec<CrashAt>,
}

/// A scheduled fail-stop crash: the responder of `part` is killed
/// (via [`ChannelTransport::kill_part`]) by the first submission
/// targeting it once `after_requests` earlier submissions have been
/// counted. `after_requests: 0` kills it on the very first request.
///
/// Unlike the probabilistic fractions this is exact and deterministic:
/// the same workload crashes at the same point every run.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct CrashAt {
    /// The part whose responder is killed.
    pub part: PartId,
    /// How many submissions targeting `part` are served (or at least
    /// accepted) before the crash fires.
    pub after_requests: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_fraction: 0.0,
            error_fraction: 0.0,
            delay_fraction: 0.0,
            delay: Duration::from_millis(1),
            seed: 0x5eed,
            crashes: Vec::new(),
        }
    }
}

impl FaultPlan {
    /// A plan that only drops `fraction` of replies.
    ///
    /// # Panics
    ///
    /// Panics if `fraction` is not a probability (see
    /// [`FaultPlan::validate`]).
    pub fn drops(fraction: f64) -> Self {
        let plan = FaultPlan { drop_fraction: fraction, ..FaultPlan::default() };
        plan.validate();
        plan
    }

    /// A plan that only crashes `part` after `after_requests`
    /// submissions targeting it.
    pub fn crash_at(part: PartId, after_requests: u64) -> Self {
        FaultPlan { crashes: vec![CrashAt { part, after_requests }], ..FaultPlan::default() }
    }

    /// Checks the plan's parameters, panicking with a descriptive
    /// message on nonsense: each fraction must be a finite value in
    /// `[0, 1]` (NaN, negative, and `> 1` are all rejected), and the
    /// three fractions must sum to at most 1 — they partition the same
    /// per-message random draw.
    pub fn validate(&self) {
        for (name, f) in [
            ("drop_fraction", self.drop_fraction),
            ("error_fraction", self.error_fraction),
            ("delay_fraction", self.delay_fraction),
        ] {
            assert!(
                f.is_finite() && (0.0..=1.0).contains(&f),
                "FaultPlan.{name} must be a probability in [0, 1], got {f}"
            );
        }
        let sum = self.drop_fraction + self.error_fraction + self.delay_fraction;
        assert!(
            sum <= 1.0,
            "FaultPlan fractions must sum to at most 1 (they split one draw), got {sum}"
        );
    }

    /// The fate of message `seq` to `target` under this plan. Shared
    /// with the control plane (`crate::control`), whose per-attempt
    /// sequence numbers draw from the same deterministic space.
    pub(crate) fn decide(&self, target: PartId, seq: u64) -> Fault {
        let r = unit_hash(self.seed, target as u64, seq);
        if r < self.drop_fraction {
            Fault::Drop
        } else if r < self.drop_fraction + self.error_fraction {
            Fault::Error
        } else if r < self.drop_fraction + self.error_fraction + self.delay_fraction {
            Fault::Delay
        } else {
            Fault::None
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub(crate) enum Fault {
    None,
    Drop,
    Error,
    Delay,
}

/// SplitMix64-style hash of `(seed, target, seq)` mapped to `[0, 1)`.
fn unit_hash(seed: u64, target: u64, seq: u64) -> f64 {
    let mut z = seed
        .wrapping_add(target.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A transport that injects faults in front of a [`ChannelTransport`].
///
/// Dropped messages are still *served* by the responder (the paper's
/// responder never sees the loss — replies are lost in the network), but
/// their replies never reach the client; errored messages are answered
/// immediately with [`FetchError::Injected`]; delayed messages are held
/// by a detached timer thread before delivery.
#[derive(Debug)]
pub struct FaultInjectingTransport {
    inner: ChannelTransport,
    plan: FaultPlan,
    obs: Arc<Recorder>,
    /// Per-scheduled-crash state, parallel to `plan.crashes`: submissions
    /// counted toward the crash, and a once-only fired latch. Only the
    /// first unfired crash counts, which chains the schedule.
    crash_state: Vec<(AtomicU64, AtomicBool)>,
}

impl FaultInjectingTransport {
    /// Wraps `inner`, applying `plan` to every submitted message.
    ///
    /// # Panics
    ///
    /// Panics if the plan fails [`FaultPlan::validate`] or names a crash
    /// part out of range.
    pub fn new(inner: ChannelTransport, plan: FaultPlan) -> Self {
        Self::new_observed(inner, plan, Recorder::disabled())
    }

    /// Like [`FaultInjectingTransport::new`], additionally recording a
    /// `Fault` instant into `obs` for every injected fault
    /// (arg: 1 = drop, 2 = error, 3 = delay) and a `PartCrash` instant
    /// when a scheduled crash fires.
    pub fn new_observed(inner: ChannelTransport, plan: FaultPlan, obs: Arc<Recorder>) -> Self {
        plan.validate();
        for c in &plan.crashes {
            assert!(
                c.part < inner.part_count(),
                "FaultPlan crash part {} out of range (part count {})",
                c.part,
                inner.part_count()
            );
        }
        let crash_state =
            plan.crashes.iter().map(|_| (AtomicU64::new(0), AtomicBool::new(false))).collect();
        FaultInjectingTransport { inner, plan, obs, crash_state }
    }

    /// Fires the next scheduled crash if `target` is its victim and its
    /// request budget is exhausted. Crashes chain: only the first
    /// unfired entry counts submissions, so later entries measure
    /// requests *since the previous crash* — which lets a schedule put
    /// the second crash inside the first one's recovery pass.
    fn maybe_crash(&self, target: PartId) {
        for (c, (counter, fired)) in self.plan.crashes.iter().zip(&self.crash_state) {
            if fired.load(Ordering::SeqCst) {
                continue;
            }
            if target == c.part {
                let seen = counter.fetch_add(1, Ordering::Relaxed);
                if seen >= c.after_requests && !fired.swap(true, Ordering::SeqCst) {
                    self.obs.record_instant(SpanKind::PartCrash, target as u32, seen);
                    self.inner.kill_part(target);
                }
            }
            return;
        }
    }
}

impl Transport for FaultInjectingTransport {
    fn part_count(&self) -> usize {
        self.inner.part_count()
    }

    fn submit(
        &self,
        target: PartId,
        req: WireRequest,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        self.maybe_crash(target);
        match self.plan.decide(target, req.seq) {
            Fault::None => self.inner.submit(target, req, reply_to),
            Fault::Drop => {
                self.obs.record_instant_for(
                    req.query,
                    SpanKind::Fault,
                    target as u32,
                    1,
                    req.req_id,
                );
                // Serve the request but lose the reply: the receiver of
                // this channel is dropped right here.
                let (black_hole, _) = unbounded::<WireReply>();
                self.inner.submit(target, req, black_hole)
            }
            Fault::Error => {
                self.obs.record_instant_for(
                    req.query,
                    SpanKind::Fault,
                    target as u32,
                    2,
                    req.req_id,
                );
                let _ = reply_to.send(WireReply {
                    seq: req.seq,
                    payload: Err(FetchError::Injected { target }),
                });
                Ok(())
            }
            Fault::Delay => {
                self.obs.record_instant_for(
                    req.query,
                    SpanKind::Fault,
                    target as u32,
                    3,
                    req.req_id,
                );
                let (tx, rx) = unbounded::<WireReply>();
                let delay = self.plan.delay;
                std::thread::spawn(move || {
                    if let Ok(reply) = rx.recv() {
                        std::thread::sleep(delay);
                        let _ = reply_to.send(reply);
                    }
                });
                self.inner.submit(target, req, tx)
            }
        }
    }

    fn push_replica(
        &self,
        target: PartId,
        push: ReplicaPush,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        // Replica pushes bypass the fault plan entirely: they neither
        // count toward scheduled crash budgets (which meter *fetch*
        // submissions, keeping crash schedules identical with rebalance
        // on or off) nor roll drop/error/delay fates. Transfer-level
        // fault handling lives in the rebalancer's retry loop.
        self.inner.push_replica(target, push, reply_to)
    }

    fn hosted_slices(&self, part: PartId) -> Vec<PartId> {
        self.inner.hosted_slice_ids(part)
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_offset_guards_truncation() {
        assert_eq!(checked_offset(0), Ok(0));
        assert_eq!(checked_offset(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(checked_offset(u32::MAX as usize + 1), Err(u32::MAX as usize + 1));
        assert_eq!(checked_offset(usize::MAX), Err(usize::MAX));
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let plan = FaultPlan { drop_fraction: 0.3, error_fraction: 0.3, ..Default::default() };
        for seq in 0..64 {
            assert_eq!(plan.decide(1, seq), plan.decide(1, seq));
        }
        // A retried message (fresh seq) can change fate.
        let fates: Vec<Fault> = (0..64).map(|s| plan.decide(0, s)).collect();
        assert!(fates.iter().any(|&f| f != fates[0]), "fates never vary: {fates:?}");
    }

    #[test]
    fn fault_fractions_roughly_respected() {
        let plan = FaultPlan { drop_fraction: 0.5, ..Default::default() };
        let drops = (0..1000).filter(|&s| plan.decide(0, s) == Fault::Drop).count();
        assert!((350..650).contains(&drops), "{drops} drops out of 1000");
    }

    #[test]
    fn unit_hash_in_range() {
        for s in 0..100 {
            let r = unit_hash(7, 3, s);
            assert!((0.0..1.0).contains(&r));
        }
    }

    #[test]
    fn fault_plan_validation_rejects_bad_fractions() {
        use std::panic::{catch_unwind, AssertUnwindSafe};
        let bad = [
            FaultPlan { drop_fraction: f64::NAN, ..FaultPlan::default() },
            FaultPlan { drop_fraction: f64::INFINITY, ..FaultPlan::default() },
            FaultPlan { error_fraction: -0.1, ..FaultPlan::default() },
            FaultPlan { delay_fraction: 1.5, ..FaultPlan::default() },
            // Individually fine, but the fractions split one draw, so
            // they must not sum past 1.
            FaultPlan { drop_fraction: 0.6, error_fraction: 0.6, ..FaultPlan::default() },
        ];
        for plan in bad {
            assert!(
                catch_unwind(AssertUnwindSafe(|| plan.validate())).is_err(),
                "bad plan accepted: {plan:?}"
            );
        }
        // The boundaries are inclusive.
        FaultPlan { drop_fraction: 1.0, ..FaultPlan::default() }.validate();
        FaultPlan { drop_fraction: 0.5, delay_fraction: 0.5, ..FaultPlan::default() }.validate();
    }

    #[test]
    #[should_panic(expected = "must be a probability")]
    fn drops_constructor_validates() {
        let _ = FaultPlan::drops(1.5);
    }

    fn wire(seq: u64, owner: PartId, v: VertexId) -> WireRequest {
        WireRequest { seq, req_id: 0, query: 0, from: 0, owner, vertices: vec![v] }
    }

    #[test]
    fn crash_at_kills_the_responder_permanently() {
        let g = gpm_graph::gen::complete(12);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let metrics = ClusterMetrics::new(2, 1);
        let t = FaultInjectingTransport::new(
            ChannelTransport::start(&pg, &metrics),
            FaultPlan::crash_at(1, 2),
        );
        let (tx, rx) = unbounded::<WireReply>();
        let v1 = pg.part(1).owned()[0];
        // The first two submissions targeting part 1 are served.
        for seq in 0..2 {
            t.submit(1, wire(seq, 1, v1), tx.clone()).unwrap();
            let reply = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert!(reply.payload.is_ok(), "pre-crash serve failed: {reply:?}");
        }
        // The third fires the crash; it and every later one fail typed.
        for seq in 2..4 {
            assert_eq!(
                t.submit(1, wire(seq, 1, v1), tx.clone()),
                Err(FetchError::PartDead { part: 1 })
            );
        }
        // The surviving part keeps serving.
        let v0 = pg.part(0).owned()[0];
        t.submit(0, wire(9, 0, v0), tx.clone()).unwrap();
        assert!(rx.recv_timeout(Duration::from_secs(5)).unwrap().payload.is_ok());
        t.shutdown();
    }

    #[test]
    fn replica_holder_serves_a_hosted_slice() {
        // With r = 2 on three parts, part 0 hosts part 1's slice: a
        // request submitted to part 0 with owner = 1 is answered from
        // the replica, byte-identical to the primary's answer.
        let g = gpm_graph::gen::complete(12);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let metrics = ClusterMetrics::new(3, 1);
        let t = ChannelTransport::start(&pg, &metrics);
        let v1 = pg.part(1).owned()[0];
        let (tx, rx) = unbounded::<WireReply>();
        t.submit(0, wire(0, 1, v1), tx.clone()).unwrap();
        let from_replica = rx.recv_timeout(Duration::from_secs(5)).unwrap().payload.unwrap();
        t.submit(1, wire(1, 1, v1), tx.clone()).unwrap();
        let from_primary = rx.recv_timeout(Duration::from_secs(5)).unwrap().payload.unwrap();
        assert_eq!(from_replica, from_primary);
        // A slice nobody here hosts (part 1 holds neither part 0's
        // primary nor its replica) is still a routing error.
        let err = {
            t.submit(1, wire(2, 0, v1), tx.clone()).unwrap();
            rx.recv_timeout(Duration::from_secs(5)).unwrap().payload.unwrap_err()
        };
        assert_eq!(err, FetchError::NotOwner { target: 1, missing: vec![v1] });
        t.shutdown();
    }

    /// Streams part `owner`'s slice from `pg` to `target`'s responder in
    /// `chunks` pieces, asserting each chunk is acked.
    fn push_slice(
        t: &dyn Transport,
        pg: &PartitionedGraph,
        owner: PartId,
        target: PartId,
        chunks: usize,
    ) {
        let src = pg.part(owner);
        let neighbors = src.neighbors();
        let per = neighbors.len().div_ceil(chunks).max(1);
        let total = neighbors.chunks(per).count().max(1) as u64;
        let (tx, rx) = unbounded::<WireReply>();
        let mut sent = 0;
        for (i, seg) in
            neighbors.chunks(per).chain(std::iter::repeat(&[][..]).take(1)).take(total as usize).enumerate()
        {
            let push = ReplicaPush {
                seq: i as u64,
                owner,
                chunk: i as u64,
                total_chunks: total,
                owned: if i == 0 { src.owned().to_vec() } else { Vec::new() },
                offsets: if i == 0 { src.offsets().to_vec() } else { Vec::new() },
                neighbors: seg.to_vec(),
            };
            t.push_replica(target, push, tx.clone()).unwrap();
            let ack = rx.recv_timeout(Duration::from_secs(5)).unwrap();
            assert_eq!(ack.seq, i as u64);
            assert!(ack.payload.is_ok(), "chunk {i} not acked: {ack:?}");
            sent += 1;
        }
        assert_eq!(sent, total);
    }

    #[test]
    fn replica_push_installs_a_servable_slice() {
        // No replication: part 2's responder starts hosting only its own
        // slice. After streaming part 0's slice to it in three chunks, a
        // fetch for owner 0 submitted to part 2 is answered
        // byte-identically to the primary's answer.
        let g = gpm_graph::gen::complete(12);
        let pg = PartitionedGraph::new(&g, 3, 1);
        let metrics = ClusterMetrics::new(3, 1);
        let t = ChannelTransport::start(&pg, &metrics);
        assert_eq!(t.hosted_slice_ids(2), vec![2]);
        let v0 = pg.part(0).owned()[0];
        let (tx, rx) = unbounded::<WireReply>();
        t.submit(2, wire(0, 0, v0), tx.clone()).unwrap();
        let before = rx.recv_timeout(Duration::from_secs(5)).unwrap().payload;
        assert!(matches!(before, Err(FetchError::NotOwner { .. })), "{before:?}");

        push_slice(&t, &pg, 0, 2, 3);
        assert_eq!(t.hosted_slice_ids(2), vec![2, 0]);

        t.submit(2, wire(1, 0, v0), tx.clone()).unwrap();
        let from_new_replica = rx.recv_timeout(Duration::from_secs(5)).unwrap().payload.unwrap();
        t.submit(0, wire(2, 0, v0), tx.clone()).unwrap();
        let from_primary = rx.recv_timeout(Duration::from_secs(5)).unwrap().payload.unwrap();
        assert_eq!(from_new_replica, from_primary);
        t.shutdown();
    }

    #[test]
    fn out_of_order_push_aborts_the_transfer() {
        let g = gpm_graph::gen::complete(12);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let metrics = ClusterMetrics::new(2, 1);
        let t = ChannelTransport::start(&pg, &metrics);
        let src = pg.part(0);
        let (tx, rx) = unbounded::<WireReply>();
        // Chunk 1 of 2 without chunk 0 first: rejected, nothing installed.
        let push = ReplicaPush {
            seq: 7,
            owner: 0,
            chunk: 1,
            total_chunks: 2,
            owned: Vec::new(),
            offsets: Vec::new(),
            neighbors: src.neighbors().to_vec(),
        };
        t.push_replica(1, push, tx.clone()).unwrap();
        let ack = rx.recv_timeout(Duration::from_secs(5)).unwrap();
        assert_eq!(ack.payload, Err(FetchError::Injected { target: 1 }));
        assert_eq!(t.hosted_slice_ids(1), vec![1]);
        // A clean restart of the transfer still succeeds.
        push_slice(&t, &pg, 0, 1, 1);
        assert_eq!(t.hosted_slice_ids(1), vec![1, 0]);
        t.shutdown();
    }

    #[test]
    fn replica_push_bypasses_the_fault_plan() {
        // A plan that drops every fetch reply must not touch pushes, and
        // pushes must not advance crash request budgets.
        let g = gpm_graph::gen::complete(12);
        let pg = PartitionedGraph::new(&g, 2, 1);
        let metrics = ClusterMetrics::new(2, 1);
        let plan = FaultPlan {
            drop_fraction: 1.0,
            crashes: vec![CrashAt { part: 1, after_requests: 1 }],
            ..FaultPlan::default()
        };
        let t = FaultInjectingTransport::new(ChannelTransport::start(&pg, &metrics), plan);
        push_slice(&t, &pg, 0, 1, 2);
        assert_eq!(t.hosted_slices(1), vec![1, 0]);
        // The crash budget (1 fetch) is untouched by the two pushes: the
        // first fetch submission is still accepted.
        let v1 = pg.part(1).owned()[0];
        let (tx, _rx) = unbounded::<WireReply>();
        assert!(t.submit(1, wire(0, 1, v1), tx.clone()).is_ok());
        t.shutdown();
    }
}
