//! The wire layer beneath the request fabric: message types, the
//! [`Transport`] trait, and its two implementations.
//!
//! A transport moves sequence-tagged [`WireRequest`]s to a target part's
//! responder and delivers [`WireReply`]s back on a caller-provided
//! channel. Submission is **non-blocking**: flow control (the in-flight
//! window), retries, and metrics all live one layer up, in
//! [`crate::fabric`]. Two transports exist:
//!
//! * [`ChannelTransport`] — the in-process cluster: one responder thread
//!   per part serving batched edge-list requests from its local
//!   [`GraphPart`] (the paper's "graph data responding threads", §6);
//! * [`FaultInjectingTransport`] — wraps the channel transport and
//!   deterministically drops, errors, or delays a configurable fraction
//!   of messages, for exercising the fabric's timeout/retry path.

use crate::fabric::FetchError;
use crate::metrics::ClusterMetrics;
use crate::PartId;
use crossbeam::channel::{unbounded, Sender};
use gpm_graph::partition::{GraphPart, PartitionedGraph};
use gpm_graph::VertexId;
use gpm_obs::{Recorder, SpanKind};
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

/// Per-message fixed overhead in accounted bytes (headers/envelopes).
pub(crate) const HEADER_BYTES: u64 = 16;

/// A batch of edge lists returned by a fetch.
///
/// Lists are stored back to back; `list(i)` is the edge list of the `i`-th
/// requested vertex, in request order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchedLists {
    offsets: Vec<u32>,
    data: Vec<VertexId>,
}

impl FetchedLists {
    /// Number of lists in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th requested vertex's edge list.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn list(&self, i: usize) -> &[VertexId] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Consumes the batch into raw `(offsets, data)` arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<VertexId>) {
        (self.offsets, self.data)
    }

    /// Accounted size of the response in bytes.
    pub fn response_bytes(&self) -> u64 {
        HEADER_BYTES + 4 * (self.offsets.len() as u64 + self.data.len() as u64)
    }

    /// Builds a batch from raw arrays (the inverse of [`into_parts`]).
    ///
    /// [`into_parts`]: FetchedLists::into_parts
    pub(crate) fn from_parts(offsets: Vec<u32>, data: Vec<VertexId>) -> Self {
        debug_assert!(!offsets.is_empty() && offsets[0] == 0);
        debug_assert_eq!(*offsets.last().unwrap() as usize, data.len());
        FetchedLists { offsets, data }
    }
}

/// Converts a running data length into a `u32` offset, reporting the
/// offending length on overflow instead of silently truncating.
pub(crate) fn checked_offset(len: usize) -> Result<u32, usize> {
    u32::try_from(len).map_err(|_| len)
}

/// One edge-list request on the wire, tagged with the issuing client's
/// sequence number so replies (and stale replies from timed-out attempts)
/// can be matched back to the right in-flight fetch.
///
/// Besides the per-attempt `seq`, every request carries a **trace
/// context**: the request id (stable across retries) and the issuing
/// part. The responder stamps its `Serve` span with the request id, so
/// the issue, every retry, the responder's service interval, and the
/// client wait that consumes the reply all share one causal link — the
/// raw material for flow arrows in the trace and for critical-path
/// attribution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireRequest {
    /// Client-assigned sequence number; a retry gets a fresh one.
    pub seq: u64,
    /// Causal request id, stable across retries; 0 means the request is
    /// untraced (see `gpm_obs::Span::link`).
    pub req_id: u64,
    /// The part that issued this request.
    pub from: PartId,
    /// The vertices whose edge lists are requested.
    pub vertices: Vec<VertexId>,
}

/// One reply on the wire, carrying the request's sequence number.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireReply {
    /// Sequence number of the request this answers.
    pub seq: u64,
    /// The served lists, or a typed failure.
    pub payload: Result<FetchedLists, FetchError>,
}

/// A non-blocking message layer between parts.
///
/// `submit` hands a request to `target`'s responder and returns
/// immediately; the reply arrives later on `reply_to`. Implementations
/// must be shareable across client threads.
pub trait Transport: Send + Sync + std::fmt::Debug {
    /// Number of parts this transport connects.
    fn part_count(&self) -> usize;

    /// Queues `req` for `target`'s responder. The reply (carrying
    /// `req.seq`) is sent on `reply_to` when served.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError::Shutdown`] if the target responder has
    /// stopped.
    fn submit(
        &self,
        target: PartId,
        req: WireRequest,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError>;

    /// Stops all responders and joins their threads. Idempotent.
    fn shutdown(&self);
}

enum Msg {
    Fetch {
        req: WireRequest,
        reply_to: Sender<WireReply>,
    },
    /// Stops the responder even while client clones are still alive.
    Shutdown,
}

/// The in-process cluster transport: one responder thread per part.
#[derive(Debug)]
pub struct ChannelTransport {
    senders: Vec<Sender<Msg>>,
    handles: parking_lot::Mutex<Vec<JoinHandle<()>>>,
}

impl ChannelTransport {
    /// Starts one responder thread per part of `pg`, recording served
    /// requests into `metrics`.
    pub fn start(pg: &PartitionedGraph, metrics: &ClusterMetrics) -> Self {
        Self::start_observed(pg, metrics, Recorder::disabled())
    }

    /// Like [`ChannelTransport::start`], additionally recording a `Serve`
    /// span per request into `obs`.
    pub fn start_observed(
        pg: &PartitionedGraph,
        metrics: &ClusterMetrics,
        obs: Arc<Recorder>,
    ) -> Self {
        let parts = pg.part_count();
        let mut senders = Vec::with_capacity(parts);
        let mut handles = Vec::with_capacity(parts);
        for part_id in 0..parts {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            let part = pg.part_arc(part_id);
            let part_metrics = Arc::clone(metrics.part(part_id));
            let obs = Arc::clone(&obs);
            let handle = std::thread::Builder::new()
                .name(format!("edgelist-responder-{part_id}"))
                .spawn(move || {
                    while let Ok(Msg::Fetch { req, reply_to }) = rx.recv() {
                        let t0 = obs.now_ns();
                        let payload = serve(&part, &req.vertices);
                        if let Ok(lists) = &payload {
                            part_metrics.record_served(lists.response_bytes());
                            obs.record_span_linked(
                                SpanKind::Serve,
                                part_id as u32,
                                t0,
                                lists.response_bytes(),
                                req.req_id,
                            );
                        }
                        // A dropped reply receiver just means the client
                        // gave up (or the fault layer swallowed the
                        // reply); keep serving others.
                        let _ = reply_to.send(WireReply { seq: req.seq, payload });
                    }
                })
                .expect("spawn responder thread");
            handles.push(handle);
        }
        ChannelTransport { senders, handles: parking_lot::Mutex::new(handles) }
    }
}

impl Transport for ChannelTransport {
    fn part_count(&self) -> usize {
        self.senders.len()
    }

    fn submit(
        &self,
        target: PartId,
        req: WireRequest,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        assert!(target < self.senders.len(), "target part out of range");
        self.senders[target].send(Msg::Fetch { req, reply_to }).map_err(|_| FetchError::Shutdown)
    }

    fn shutdown(&self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        for h in self.handles.lock().drain(..) {
            let _ = h.join();
        }
    }
}

fn serve(part: &GraphPart, vertices: &[VertexId]) -> Result<FetchedLists, FetchError> {
    let target = part.part_id();
    let mut offsets = Vec::with_capacity(vertices.len() + 1);
    offsets.push(0u32);
    let mut data = Vec::new();
    let mut missing = Vec::new();
    for &v in vertices {
        match part.edge_list(v) {
            Some(list) => data.extend_from_slice(list),
            None => missing.push(v),
        }
        offsets.push(
            checked_offset(data.len())
                .map_err(|entries| FetchError::TooLarge { target, entries })?,
        );
    }
    if missing.is_empty() {
        Ok(FetchedLists { offsets, data })
    } else {
        Err(FetchError::NotOwner { target, missing })
    }
}

/// What to do with a fraction of submitted messages.
///
/// Outcomes are decided deterministically per `(seed, target, seq)`, so a
/// run with a fixed plan is reproducible, and a retried request (which
/// carries a fresh sequence number) re-rolls its fate — with any fraction
/// below 1.0, retries converge.
#[derive(Debug, Clone, PartialEq)]
pub struct FaultPlan {
    /// Fraction of requests whose replies are silently dropped (the
    /// client sees a timeout).
    pub drop_fraction: f64,
    /// Fraction of requests answered with a transient
    /// [`FetchError::Injected`] error.
    pub error_fraction: f64,
    /// Fraction of requests whose replies are delayed by [`delay`].
    ///
    /// [`delay`]: FaultPlan::delay
    pub delay_fraction: f64,
    /// How long delayed replies are held back.
    pub delay: Duration,
    /// Seed of the deterministic per-message fault decision.
    pub seed: u64,
}

impl Default for FaultPlan {
    fn default() -> Self {
        FaultPlan {
            drop_fraction: 0.0,
            error_fraction: 0.0,
            delay_fraction: 0.0,
            delay: Duration::from_millis(1),
            seed: 0x5eed,
        }
    }
}

impl FaultPlan {
    /// A plan that only drops `fraction` of replies.
    pub fn drops(fraction: f64) -> Self {
        FaultPlan { drop_fraction: fraction, ..FaultPlan::default() }
    }

    /// The fate of message `seq` to `target` under this plan.
    fn decide(&self, target: PartId, seq: u64) -> Fault {
        let r = unit_hash(self.seed, target as u64, seq);
        if r < self.drop_fraction {
            Fault::Drop
        } else if r < self.drop_fraction + self.error_fraction {
            Fault::Error
        } else if r < self.drop_fraction + self.error_fraction + self.delay_fraction {
            Fault::Delay
        } else {
            Fault::None
        }
    }
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Fault {
    None,
    Drop,
    Error,
    Delay,
}

/// SplitMix64-style hash of `(seed, target, seq)` mapped to `[0, 1)`.
fn unit_hash(seed: u64, target: u64, seq: u64) -> f64 {
    let mut z = seed
        .wrapping_add(target.wrapping_mul(0x9E37_79B9_7F4A_7C15))
        .wrapping_add(seq.wrapping_mul(0xBF58_476D_1CE4_E5B9));
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^= z >> 31;
    (z >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
}

/// A transport that injects faults in front of a [`ChannelTransport`].
///
/// Dropped messages are still *served* by the responder (the paper's
/// responder never sees the loss — replies are lost in the network), but
/// their replies never reach the client; errored messages are answered
/// immediately with [`FetchError::Injected`]; delayed messages are held
/// by a detached timer thread before delivery.
#[derive(Debug)]
pub struct FaultInjectingTransport {
    inner: ChannelTransport,
    plan: FaultPlan,
    obs: Arc<Recorder>,
}

impl FaultInjectingTransport {
    /// Wraps `inner`, applying `plan` to every submitted message.
    pub fn new(inner: ChannelTransport, plan: FaultPlan) -> Self {
        Self::new_observed(inner, plan, Recorder::disabled())
    }

    /// Like [`FaultInjectingTransport::new`], additionally recording a
    /// `Fault` instant into `obs` for every injected fault
    /// (arg: 1 = drop, 2 = error, 3 = delay).
    pub fn new_observed(inner: ChannelTransport, plan: FaultPlan, obs: Arc<Recorder>) -> Self {
        FaultInjectingTransport { inner, plan, obs }
    }
}

impl Transport for FaultInjectingTransport {
    fn part_count(&self) -> usize {
        self.inner.part_count()
    }

    fn submit(
        &self,
        target: PartId,
        req: WireRequest,
        reply_to: Sender<WireReply>,
    ) -> Result<(), FetchError> {
        match self.plan.decide(target, req.seq) {
            Fault::None => self.inner.submit(target, req, reply_to),
            Fault::Drop => {
                self.obs.record_instant_linked(SpanKind::Fault, target as u32, 1, req.req_id);
                // Serve the request but lose the reply: the receiver of
                // this channel is dropped right here.
                let (black_hole, _) = unbounded::<WireReply>();
                self.inner.submit(target, req, black_hole)
            }
            Fault::Error => {
                self.obs.record_instant_linked(SpanKind::Fault, target as u32, 2, req.req_id);
                let _ = reply_to.send(WireReply {
                    seq: req.seq,
                    payload: Err(FetchError::Injected { target }),
                });
                Ok(())
            }
            Fault::Delay => {
                self.obs.record_instant_linked(SpanKind::Fault, target as u32, 3, req.req_id);
                let (tx, rx) = unbounded::<WireReply>();
                let delay = self.plan.delay;
                std::thread::spawn(move || {
                    if let Ok(reply) = rx.recv() {
                        std::thread::sleep(delay);
                        let _ = reply_to.send(reply);
                    }
                });
                self.inner.submit(target, req, tx)
            }
        }
    }

    fn shutdown(&self) {
        self.inner.shutdown();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn checked_offset_guards_truncation() {
        assert_eq!(checked_offset(0), Ok(0));
        assert_eq!(checked_offset(u32::MAX as usize), Ok(u32::MAX));
        assert_eq!(checked_offset(u32::MAX as usize + 1), Err(u32::MAX as usize + 1));
        assert_eq!(checked_offset(usize::MAX), Err(usize::MAX));
    }

    #[test]
    fn fault_decisions_are_deterministic() {
        let plan = FaultPlan { drop_fraction: 0.3, error_fraction: 0.3, ..Default::default() };
        for seq in 0..64 {
            assert_eq!(plan.decide(1, seq), plan.decide(1, seq));
        }
        // A retried message (fresh seq) can change fate.
        let fates: Vec<Fault> = (0..64).map(|s| plan.decide(0, s)).collect();
        assert!(fates.iter().any(|&f| f != fates[0]), "fates never vary: {fates:?}");
    }

    #[test]
    fn fault_fractions_roughly_respected() {
        let plan = FaultPlan { drop_fraction: 0.5, ..Default::default() };
        let drops = (0..1000).filter(|&s| plan.decide(0, s) == Fault::Drop).count();
        assert!((350..650).contains(&drops), "{drops} drops out of 1000");
    }

    #[test]
    fn unit_hash_in_range() {
        for s in 0..100 {
            let r = unit_hash(7, 3, s);
            assert!((0.0..1.0).contains(&r));
        }
    }
}
