//! Distributed termination detection for message-driven baselines.
//!
//! The "moving computation to data" baseline has no global barrier: a part
//! is done only when *no* part holds work and *no* message is in flight.
//! [`WorkCounter`] implements the standard outstanding-work counter: every
//! unit of work (a queued task or an in-flight message) increments it, and
//! completing the unit decrements it. When the counter reaches zero the
//! whole computation has quiesced — no new work can appear because work is
//! only created by existing work.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Shared counter of outstanding work units.
///
/// # Example
///
/// ```
/// use gpm_cluster::work::WorkCounter;
///
/// let wc = WorkCounter::new();
/// wc.add(2);            // two root tasks
/// wc.done();            // one finished
/// assert!(!wc.is_quiescent());
/// wc.done();
/// assert!(wc.is_quiescent());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkCounter {
    outstanding: Arc<AtomicI64>,
}

impl WorkCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        WorkCounter::default()
    }

    /// Registers `n` new units of outstanding work.
    ///
    /// `Relaxed` suffices: registration must happen *before* the unit is
    /// published to whoever will complete it (a queue push, a message
    /// send), and that publication is itself a synchronizing operation —
    /// any thread that can observe the unit already observes its
    /// registration through the same edge. The counter therefore never
    /// under-counts live work; no other thread's data depends on this
    /// store being ordered.
    pub fn add(&self, n: u64) {
        self.outstanding.fetch_add(n as i64, Ordering::Relaxed);
    }

    /// Marks one unit complete.
    ///
    /// `Release` publishes every write the completing thread made on
    /// behalf of this unit (results, follow-on work registered via
    /// [`WorkCounter::add`]) to any thread whose `Acquire` load in
    /// [`WorkCounter::outstanding`] subsequently observes the decrement.
    /// That is exactly the edge termination detection needs: a thread
    /// that reads zero sees *all* effects of *all* completed units.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the counter would go negative, which
    /// indicates unbalanced accounting.
    pub fn done(&self) {
        let prev = self.outstanding.fetch_sub(1, Ordering::Release);
        debug_assert!(prev > 0, "WorkCounter went negative");
    }

    /// Current number of outstanding units.
    ///
    /// `Acquire` pairs with the `Release` decrement in
    /// [`WorkCounter::done`]: observing the count that a decrement
    /// produced also makes the completing thread's prior writes visible,
    /// so a zero read is a safe quiescence signal, not merely a stale
    /// snapshot. (With the old `SeqCst` pair the extra total-order
    /// guarantee was never used — no site reasons about the interleaving
    /// of two *different* atomics.)
    pub fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::Acquire)
    }

    /// Whether all work has quiesced.
    pub fn is_quiescent(&self) -> bool {
        self.outstanding() == 0
    }

    /// Spin-waits (with yields) until quiescent. Intended for coordinator
    /// threads; workers should poll [`WorkCounter::is_quiescent`] in their
    /// message loops instead.
    pub fn wait_quiescent(&self) {
        while !self.is_quiescent() {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_accounting_quiesces() {
        let wc = WorkCounter::new();
        assert!(wc.is_quiescent());
        wc.add(3);
        assert_eq!(wc.outstanding(), 3);
        wc.done();
        wc.done();
        wc.done();
        assert!(wc.is_quiescent());
    }

    #[test]
    fn shared_across_threads() {
        let wc = WorkCounter::new();
        wc.add(100);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let wc = wc.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    wc.done();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(wc.is_quiescent());
    }

    #[test]
    fn relaxed_orderings_survive_a_spawning_stress() {
        // 8 threads hammer the relaxed/acquire-release protocol with the
        // engine's actual usage shape: each completed unit may *spawn*
        // further units (add before done, like a task queuing children
        // before retiring), so quiescence must only be observable after
        // every transitively spawned unit retired. Each thread also
        // publishes a side-effect before its final `done`; the main
        // thread's acquire read of zero must see all of them.
        use std::sync::atomic::AtomicU64;
        let wc = WorkCounter::new();
        let effects = Arc::new(AtomicU64::new(0));
        const THREADS: u64 = 8;
        const UNITS: u64 = 2_000;
        wc.add(THREADS * UNITS);
        let mut joins = Vec::new();
        for _ in 0..THREADS {
            let wc = wc.clone();
            let effects = Arc::clone(&effects);
            joins.push(std::thread::spawn(move || {
                for i in 0..UNITS {
                    // Every 7th unit spawns a child unit and retires it
                    // too, exercising add() concurrent with done().
                    if i % 7 == 0 {
                        wc.add(1);
                        wc.done();
                    }
                    effects.fetch_add(1, Ordering::Relaxed);
                    wc.done();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(wc.is_quiescent());
        // The Acquire read of zero must make every unit's side-effect
        // visible (Release on the final done of each thread).
        assert_eq!(effects.load(Ordering::Relaxed), THREADS * UNITS);
        assert_eq!(wc.outstanding(), 0);
    }

    #[test]
    fn wait_quiescent_returns() {
        let wc = WorkCounter::new();
        wc.add(1);
        let waiter = {
            let wc = wc.clone();
            std::thread::spawn(move || wc.wait_quiescent())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        wc.done();
        waiter.join().unwrap();
    }
}
