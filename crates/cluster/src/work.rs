//! Distributed termination detection for message-driven baselines.
//!
//! The "moving computation to data" baseline has no global barrier: a part
//! is done only when *no* part holds work and *no* message is in flight.
//! [`WorkCounter`] implements the standard outstanding-work counter: every
//! unit of work (a queued task or an in-flight message) increments it, and
//! completing the unit decrements it. When the counter reaches zero the
//! whole computation has quiesced — no new work can appear because work is
//! only created by existing work.

use std::sync::atomic::{AtomicI64, Ordering};
use std::sync::Arc;

/// Shared counter of outstanding work units.
///
/// # Example
///
/// ```
/// use gpm_cluster::work::WorkCounter;
///
/// let wc = WorkCounter::new();
/// wc.add(2);            // two root tasks
/// wc.done();            // one finished
/// assert!(!wc.is_quiescent());
/// wc.done();
/// assert!(wc.is_quiescent());
/// ```
#[derive(Debug, Clone, Default)]
pub struct WorkCounter {
    outstanding: Arc<AtomicI64>,
}

impl WorkCounter {
    /// A counter starting at zero.
    pub fn new() -> Self {
        WorkCounter::default()
    }

    /// Registers `n` new units of outstanding work.
    pub fn add(&self, n: u64) {
        self.outstanding.fetch_add(n as i64, Ordering::SeqCst);
    }

    /// Marks one unit complete.
    ///
    /// # Panics
    ///
    /// Panics (in debug builds) if the counter would go negative, which
    /// indicates unbalanced accounting.
    pub fn done(&self) {
        let prev = self.outstanding.fetch_sub(1, Ordering::SeqCst);
        debug_assert!(prev > 0, "WorkCounter went negative");
    }

    /// Current number of outstanding units.
    pub fn outstanding(&self) -> i64 {
        self.outstanding.load(Ordering::SeqCst)
    }

    /// Whether all work has quiesced.
    pub fn is_quiescent(&self) -> bool {
        self.outstanding() == 0
    }

    /// Spin-waits (with yields) until quiescent. Intended for coordinator
    /// threads; workers should poll [`WorkCounter::is_quiescent`] in their
    /// message loops instead.
    pub fn wait_quiescent(&self) {
        while !self.is_quiescent() {
            std::thread::yield_now();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn balanced_accounting_quiesces() {
        let wc = WorkCounter::new();
        assert!(wc.is_quiescent());
        wc.add(3);
        assert_eq!(wc.outstanding(), 3);
        wc.done();
        wc.done();
        wc.done();
        assert!(wc.is_quiescent());
    }

    #[test]
    fn shared_across_threads() {
        let wc = WorkCounter::new();
        wc.add(100);
        let mut joins = Vec::new();
        for _ in 0..4 {
            let wc = wc.clone();
            joins.push(std::thread::spawn(move || {
                for _ in 0..25 {
                    wc.done();
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        assert!(wc.is_quiescent());
    }

    #[test]
    fn wait_quiescent_returns() {
        let wc = WorkCounter::new();
        wc.add(1);
        let waiter = {
            let wc = wc.clone();
            std::thread::spawn(move || wc.wait_quiescent())
        };
        std::thread::sleep(std::time::Duration::from_millis(10));
        wc.done();
        waiter.join().unwrap();
    }
}
