//! Simulated distributed cluster for the Khuzdul reproduction.
//!
//! The paper runs on an 8-node InfiniBand cluster over MPI. This crate
//! substitutes an **in-process cluster**: each logical machine (or NUMA
//! socket — a *part*) owns a disjoint 1-D hash partition and communicates
//! with other parts *only* through the message layer defined here, which
//! accounts every byte. All the engine-level behaviour the paper measures
//! (task granularity, overlap, communication volume, reuse hit rates) is a
//! property of the partitioned-memory programming model and is preserved;
//! see `DESIGN.md` §1.
//!
//! Components:
//!
//! * [`transport`] — the wire layer: sequence-tagged request/reply
//!   messages, the non-blocking [`Transport`] trait, the in-process
//!   [`ChannelTransport`] (the paper's "graph data responding threads",
//!   §6), and a deterministic [`FaultInjectingTransport`];
//! * [`fabric`] — the async request-window fabric above it:
//!   [`EdgeListClient::fetch_async`] with bounded per-part in-flight
//!   windows (backpressure), same-request coalescing, timeout/retry with
//!   backoff, and typed [`FetchError`]s instead of panics;
//! * [`metrics`] — per-part traffic and wait-time counters, split into
//!   cross-machine and cross-socket classes (for §5.4 and Figure 19),
//!   plus fabric counters (in-flight depth, coalesced vertices, retries);
//! * [`NetworkModel`] — optional latency/bandwidth model used to convert
//!   measured bytes into network-utilization numbers and, when enabled, to
//!   delay fetches accordingly;
//! * [`post`] — a typed point-to-point mailbox layer used by baselines
//!   that move *computation* to data (aDFS-like) or ship task state;
//! * [`work::WorkCounter`] — distributed-termination detection for
//!   message-driven baselines.

#![warn(missing_docs)]

pub mod control;
pub mod fabric;
pub mod metrics;
pub mod post;
pub mod transport;
pub mod work;

pub use control::{ControlClient, ControlLedgerConfig, ControlLedgerService};
pub use fabric::{
    EdgeListClient, EdgeListService, FabricConfig, FetchError, PendingFetch, RetryPolicy,
};
pub use metrics::{ClusterMetrics, CounterSnapshot, PartMetrics, QueryMetrics, TrafficClass};
pub use transport::{
    ChannelTransport, CrashAt, CtrlClaimSource, CtrlOp, CtrlPayload, CtrlReply, CtrlRequest,
    FaultInjectingTransport, FaultPlan, FetchedLists, Transport, WireReply, WireRequest,
};

/// Identifier of a part (one NUMA socket of one machine). Parts are
/// numbered `machine * sockets_per_machine + socket`.
pub type PartId = usize;

/// Optional network cost model.
///
/// The reproduction's channels are effectively infinitely fast, so wall
/// clock alone cannot show communication effects at the paper's scale.
/// When a model is supplied, every cross-machine fetch is delayed by
/// `latency + bytes / bandwidth`, and Figure 19's utilization is computed
/// as `bytes / (elapsed × bandwidth)`.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct NetworkModel {
    /// One-way request latency in microseconds.
    pub latency_us: f64,
    /// Link bandwidth in gigabits per second (the paper's IB is 56 Gbps).
    pub bandwidth_gbps: f64,
}

impl NetworkModel {
    /// The paper's 56 Gbps InfiniBand with a ~2 µs latency.
    pub fn infiniband_56g() -> Self {
        NetworkModel { latency_us: 2.0, bandwidth_gbps: 56.0 }
    }

    /// Transfer time for `bytes` under this model.
    pub fn transfer_time(&self, bytes: u64) -> std::time::Duration {
        let secs = self.latency_us * 1e-6 + (bytes as f64 * 8.0) / (self.bandwidth_gbps * 1e9);
        std::time::Duration::from_secs_f64(secs)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn network_model_transfer_time() {
        let m = NetworkModel::infiniband_56g();
        let t = m.transfer_time(7_000_000); // 56 Mbit = 1ms at 56 Gbps
        assert!(t.as_secs_f64() > 0.9e-3 && t.as_secs_f64() < 1.2e-3, "{t:?}");
        // Latency floor.
        let t0 = m.transfer_time(0);
        assert!(t0.as_secs_f64() >= 2e-6);
    }
}
