//! The control-plane message layer: a run-scoped responder serving the
//! cross-part work-coordination protocol (root claims, steals, donations,
//! batch retirements, starvation signals, quiescence votes, and
//! recovery-log queries) as typed messages instead of shared-memory
//! atomics.
//!
//! Where the data plane ([`crate::transport`]/[`crate::fabric`]) moves
//! edge lists, this layer moves *scheduling state*. The shapes mirror the
//! data plane deliberately: non-blocking submission over crossbeam
//! channels, per-attempt sequence numbers feeding the same deterministic
//! [`FaultPlan`] decision space, timeout/retry with exponential backoff,
//! and per-message spans. One thing is new: control operations **mutate**
//! the ledger, so the protocol must be exactly-once where data fetches
//! only needed at-least-once. Every request carries a `req_id` stable
//! across retries, and the responder keeps a one-deep reply cache per
//! sender: a retry of an operation whose reply was lost in the network is
//! answered from the cache instead of being applied twice. One-deep is
//! sound because each client part issues control operations strictly
//! sequentially.
//!
//! The ledger state itself (cursors, spill, claim/donate logs, the
//! outstanding-batch count) lives *only inside the responder thread* — no
//! shared memory between client parts, which is exactly the property that
//! lets this carrier stretch over a real multi-process transport later.

use crate::fabric::{FetchError, RetryPolicy};
use crate::metrics::{ClusterMetrics, PartMetrics, QueryMetrics};
use crate::transport::{
    CtrlClaimSource, CtrlOp, CtrlPayload, CtrlReply, CtrlRequest, Fault, FaultPlan,
};
use crate::PartId;
use crossbeam::channel::{unbounded, RecvTimeoutError, Sender};
use gpm_graph::VertexId;
use gpm_obs::{Metric, Recorder, SpanKind};
use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::thread::JoinHandle;

/// Configuration of one control-ledger responder.
#[derive(Debug, Clone)]
pub struct ControlLedgerConfig {
    /// Whether idle parts may claim the spill or steal victim ranges.
    pub stealing: bool,
    /// Upper bound on roots per spill claim or steal.
    pub batch: usize,
    /// `Some(sockets_per_machine)` enables NUMA-aware victim ordering:
    /// thieves prefer same-machine victims before crossing the network.
    pub numa: Option<usize>,
    /// Timeout/retry policy of every control client.
    pub retry: RetryPolicy,
    /// Optional deterministic fault plan applied to control messages
    /// (the fractions partition the same per-`(part, seq)` draw as the
    /// data plane; scheduled crashes are ignored here — they belong to
    /// the data transport).
    pub fault: Option<FaultPlan>,
    /// Query id stamped on control spans and per-query counters.
    pub query: u64,
}

impl Default for ControlLedgerConfig {
    fn default() -> Self {
        ControlLedgerConfig {
            stealing: false,
            batch: 256,
            numa: None,
            retry: RetryPolicy::default(),
            fault: None,
            query: 0,
        }
    }
}

enum ServiceMsg {
    Op { req: CtrlRequest, reply_to: Sender<CtrlReply> },
    Shutdown,
}

/// The run-scoped control responder: one thread owning the entire
/// coordination state, serving [`CtrlRequest`]s from every part's
/// [`ControlClient`]. Dropping the service shuts the thread down and
/// joins it.
#[derive(Debug)]
pub struct ControlLedgerService {
    tx: Sender<ServiceMsg>,
    handle: parking_lot::Mutex<Option<JoinHandle<()>>>,
    seq: Arc<AtomicU64>,
    cfg: ControlLedgerConfig,
    metrics: ClusterMetrics,
    obs: Arc<Recorder>,
}

/// All responder-side state. Mirrors `RootLedger` field for field, minus
/// the atomics — single-threaded ownership replaces them.
struct LedgerState {
    /// Per-part owned root lists (empty in recovery mode: every cursor
    /// starts exhausted and only the spill feeds claims).
    roots: Vec<Vec<VertexId>>,
    /// Next unclaimed index into each part's `roots`.
    cursor: Vec<usize>,
    /// Donated level-0 root ranges, claimable by any part.
    spill: Vec<VertexId>,
    /// Per-part multiset of every root the part has claimed.
    claim_log: Vec<Vec<VertexId>>,
    /// Per-part multiset of every root the part donated to the spill.
    donate_log: Vec<Vec<VertexId>>,
    /// Claimed-but-not-retired batches (the message-plane analogue of
    /// the shared ledger's `WorkCounter`).
    outstanding: u64,
    /// Which parts are currently flagged starving.
    starving: Vec<bool>,
    /// One-deep reply cache per sender part: `(req_id, reply)` of the
    /// last operation applied for that part, replayed on duplicate
    /// `req_id` so retries are exactly-once.
    last_reply: Vec<Option<(u64, CtrlReply)>>,
    stealing: bool,
    batch: usize,
    numa: Option<usize>,
}

impl LedgerState {
    fn remaining(&self, part: usize) -> usize {
        self.roots[part].len().saturating_sub(self.cursor[part])
    }

    fn claim_range(&mut self, part: usize, n: usize) -> Option<Vec<VertexId>> {
        if n == 0 || self.cursor[part] >= self.roots[part].len() {
            return None;
        }
        let start = self.cursor[part];
        let end = (start + n).min(self.roots[part].len());
        self.cursor[part] = end;
        Some(self.roots[part][start..end].to_vec())
    }

    fn same_machine(&self, me: usize, p: usize) -> bool {
        match self.numa {
            Some(spm) => p / spm == me / spm,
            None => false,
        }
    }

    /// Mirrors `RootLedger::claim`: own range, then spill tail, then the
    /// most-loaded victim (same-machine first under NUMA ordering).
    fn claim(&mut self, me: usize, own_batch: usize) -> CtrlPayload {
        if let Some(roots) = self.claim_range(me, own_batch) {
            return self.book_claim(me, CtrlClaimSource::Own, roots);
        }
        if !self.stealing {
            return CtrlPayload::NoWork;
        }
        if !self.spill.is_empty() {
            let take = self.batch.min(self.spill.len());
            let roots = self.spill.split_off(self.spill.len() - take);
            return self.book_claim(me, CtrlClaimSource::Spill, roots);
        }
        let victim = (0..self.roots.len())
            .filter(|&p| p != me && self.remaining(p) > 0)
            .max_by_key(|&p| (self.same_machine(me, p), self.remaining(p)));
        match victim {
            Some(v) => match self.claim_range(v, self.batch) {
                Some(roots) => self.book_claim(me, CtrlClaimSource::Stolen(v), roots),
                None => CtrlPayload::NoWork,
            },
            None => CtrlPayload::NoWork,
        }
    }

    fn book_claim(
        &mut self,
        me: usize,
        source: CtrlClaimSource,
        roots: Vec<VertexId>,
    ) -> CtrlPayload {
        self.outstanding += 1;
        self.claim_log[me].extend_from_slice(&roots);
        CtrlPayload::Claimed { source, roots }
    }

    fn finished(&self) -> bool {
        self.outstanding == 0
            && (0..self.roots.len()).all(|p| self.remaining(p) == 0)
            && self.spill.is_empty()
    }

    /// Mirrors `RootLedger::lost_roots`: claim log minus donate log per
    /// dead part, plus its unclaimed cursor tail, plus the whole spill.
    fn close_dead(&mut self, dead: &[PartId]) -> Vec<VertexId> {
        let mut lost = Vec::new();
        for &d in dead {
            let mut donated: HashMap<VertexId, usize> = HashMap::new();
            for &r in &self.donate_log[d] {
                *donated.entry(r).or_insert(0) += 1;
            }
            for &r in &self.claim_log[d] {
                match donated.get_mut(&r) {
                    Some(n) if *n > 0 => *n -= 1,
                    _ => lost.push(r),
                }
            }
            if let Some(mut tail) = self.claim_range(d, self.remaining(d)) {
                lost.append(&mut tail);
            }
        }
        lost.append(&mut self.spill);
        lost
    }

    fn apply(&mut self, req: &CtrlRequest) -> CtrlPayload {
        match &req.op {
            CtrlOp::Claim { own_batch } => self.claim(req.from, *own_batch),
            CtrlOp::BatchDone => {
                self.outstanding = self.outstanding.saturating_sub(1);
                CtrlPayload::Ack
            }
            CtrlOp::Donate { roots } => {
                if !roots.is_empty() {
                    self.donate_log[req.from].extend_from_slice(roots);
                    self.spill.extend_from_slice(roots);
                }
                CtrlPayload::Ack
            }
            CtrlOp::Starving { on } => {
                self.starving[req.from] = *on;
                CtrlPayload::Ack
            }
            CtrlOp::Poll => CtrlPayload::Status {
                finished: self.finished(),
                starving: self.starving.iter().filter(|&&s| s).count(),
            },
            CtrlOp::CloseDead { dead } => CtrlPayload::Lost { roots: self.close_dead(dead) },
        }
    }
}

impl ControlLedgerService {
    /// Starts the responder thread over `roots` (one owned root list per
    /// part) with `spill` pre-seeded (empty for a normal run; the lost
    /// multiset for a recovery pass, whose per-part lists are then
    /// empty so only the spill feeds claims).
    ///
    /// # Panics
    ///
    /// Panics if the fault plan fails [`FaultPlan::validate`].
    pub fn start(
        roots: Vec<Vec<VertexId>>,
        spill: Vec<VertexId>,
        cfg: ControlLedgerConfig,
        metrics: &ClusterMetrics,
        obs: Arc<Recorder>,
    ) -> ControlLedgerService {
        if let Some(plan) = &cfg.fault {
            plan.validate();
        }
        let n = roots.len();
        let mut state = LedgerState {
            roots,
            cursor: vec![0; n],
            spill,
            claim_log: vec![Vec::new(); n],
            donate_log: vec![Vec::new(); n],
            outstanding: 0,
            starving: vec![false; n],
            last_reply: vec![None; n],
            stealing: cfg.stealing,
            batch: cfg.batch.max(1),
            numa: cfg.numa.map(|spm| spm.max(1)),
        };
        let (tx, rx) = unbounded::<ServiceMsg>();
        let handle = std::thread::Builder::new()
            .name(format!("khuzdul-ctrl-{}", cfg.query))
            .spawn(move || {
                while let Ok(ServiceMsg::Op { req, reply_to }) = rx.recv() {
                    if let Some((id, cached)) = &state.last_reply[req.from] {
                        if *id == req.req_id {
                            // A retry of an already-applied operation:
                            // replay the cached reply, apply nothing.
                            let _ = reply_to.send(cached.clone());
                            continue;
                        }
                    }
                    let payload = state.apply(&req);
                    let reply = CtrlReply { req_id: req.req_id, payload };
                    state.last_reply[req.from] = Some((req.req_id, reply.clone()));
                    let _ = reply_to.send(reply);
                }
            })
            .expect("spawn control responder thread");
        ControlLedgerService {
            tx,
            handle: parking_lot::Mutex::new(Some(handle)),
            seq: Arc::new(AtomicU64::new(0)),
            cfg,
            metrics: metrics.clone(),
            obs,
        }
    }

    /// A client through which `part` issues control operations.
    pub fn client(&self, part: PartId) -> ControlClient {
        ControlClient {
            tx: self.tx.clone(),
            part,
            query: self.cfg.query,
            seq: Arc::clone(&self.seq),
            retry: self.cfg.retry,
            fault: self.cfg.fault.clone(),
            part_metrics: Arc::clone(self.metrics.part(part)),
            query_metrics: self.metrics.query(self.cfg.query),
            obs: Arc::clone(&self.obs),
        }
    }
}

impl Drop for ControlLedgerService {
    fn drop(&mut self) {
        let _ = self.tx.send(ServiceMsg::Shutdown);
        if let Some(h) = self.handle.lock().take() {
            let _ = h.join();
        }
    }
}

/// One part's handle to the control responder: blocking call semantics
/// over the non-blocking channel, with the data fabric's timeout/retry
/// discipline (fresh `seq` per attempt, exponential backoff capped at
/// sixteen doublings, [`FetchError::Timeout`] on exhaustion).
#[derive(Debug, Clone)]
pub struct ControlClient {
    tx: Sender<ServiceMsg>,
    part: PartId,
    query: u64,
    seq: Arc<AtomicU64>,
    retry: RetryPolicy,
    fault: Option<FaultPlan>,
    part_metrics: Arc<PartMetrics>,
    query_metrics: Arc<QueryMetrics>,
    obs: Arc<Recorder>,
}

impl ControlClient {
    /// The part this client issues operations for.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Issues `op` and blocks for its reply, retrying with backoff on
    /// timeouts and injected faults.
    ///
    /// # Errors
    ///
    /// [`FetchError::Timeout`] after `retry.max_attempts` lost attempts,
    /// [`FetchError::Shutdown`] if the responder is gone.
    pub fn call(&self, op: CtrlOp) -> Result<CtrlPayload, FetchError> {
        let req_id = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
        let t0 = self.obs.now_ns();
        let code = op.code();
        let is_claim = matches!(op, CtrlOp::Claim { .. });
        let (reply_tx, reply_rx) = unbounded::<CtrlReply>();
        let mut attempts = 0u32;
        loop {
            attempts += 1;
            let seq = self.seq.fetch_add(1, Ordering::Relaxed) + 1;
            let req =
                CtrlRequest { seq, req_id, query: self.query, from: self.part, op: op.clone() };
            self.part_metrics.record_ctrl_sent();
            self.query_metrics.record_ctrl_sent();
            let fate = self.fault.as_ref().map_or(Fault::None, |p| p.decide(self.part, seq));
            match fate {
                Fault::None => self.send(req, reply_tx.clone())?,
                Fault::Drop => {
                    // The responder still applies the operation — the
                    // reply is lost in the network. The retry below is
                    // answered from the responder's dedup cache.
                    self.part_metrics.record_ctrl_dropped();
                    self.query_metrics.record_ctrl_dropped();
                    self.fault_instant(1, req_id);
                    let (black_hole, _) = unbounded::<CtrlReply>();
                    self.send(req, black_hole)?;
                }
                Fault::Error => {
                    // A transient wire error: the responder never sees
                    // the request; the client observes an injected
                    // failure immediately and retries.
                    self.fault_instant(2, req_id);
                    let _ = reply_tx.send(CtrlReply { req_id, payload: CtrlPayload::Injected });
                }
                Fault::Delay => {
                    self.fault_instant(3, req_id);
                    let (tx, rx) = unbounded::<CtrlReply>();
                    let delay = self.fault.as_ref().expect("delay fate implies a plan").delay;
                    let forward = reply_tx.clone();
                    std::thread::spawn(move || {
                        if let Ok(reply) = rx.recv() {
                            std::thread::sleep(delay);
                            let _ = forward.send(reply);
                        }
                    });
                    self.send(req, tx)?;
                }
            }
            match reply_rx.recv_timeout(self.retry.timeout) {
                Ok(reply) if reply.payload != CtrlPayload::Injected => {
                    self.obs.record_span_for(
                        self.query,
                        SpanKind::CtrlMsg,
                        self.part as u32,
                        t0,
                        code,
                        req_id,
                    );
                    if is_claim {
                        self.obs.observe(Metric::CtrlRttNs, self.obs.now_ns().saturating_sub(t0));
                    }
                    return Ok(reply.payload);
                }
                Ok(_injected) => {}
                Err(RecvTimeoutError::Timeout) => {}
                Err(RecvTimeoutError::Disconnected) => return Err(FetchError::Shutdown),
            }
            if attempts >= self.retry.max_attempts.max(1) {
                return Err(FetchError::Timeout { target: self.part, attempts });
            }
            self.part_metrics.record_ctrl_retry();
            self.query_metrics.record_ctrl_retry();
            let rt0 = self.obs.now_ns();
            std::thread::sleep(self.retry.backoff * (1u32 << (attempts - 1).min(16)));
            self.obs.record_span_for(
                self.query,
                SpanKind::CtrlRetry,
                self.part as u32,
                rt0,
                attempts as u64,
                req_id,
            );
        }
    }

    fn send(&self, req: CtrlRequest, reply_to: Sender<CtrlReply>) -> Result<(), FetchError> {
        self.tx.send(ServiceMsg::Op { req, reply_to }).map_err(|_| FetchError::Shutdown)
    }

    fn fault_instant(&self, kind: u64, req_id: u64) {
        self.obs.record_instant_for(self.query, SpanKind::Fault, self.part as u32, kind, req_id);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::time::Duration;

    fn service(
        roots: Vec<Vec<VertexId>>,
        stealing: bool,
        batch: usize,
        fault: Option<FaultPlan>,
    ) -> ControlLedgerService {
        let n = roots.len();
        let cfg = ControlLedgerConfig {
            stealing,
            batch,
            retry: RetryPolicy {
                max_attempts: 10,
                timeout: Duration::from_millis(50),
                backoff: Duration::from_micros(200),
            },
            fault,
            ..ControlLedgerConfig::default()
        };
        ControlLedgerService::start(
            roots,
            Vec::new(),
            cfg,
            &ClusterMetrics::new(n, 1),
            Recorder::disabled(),
        )
    }

    fn claimed(p: CtrlPayload) -> (CtrlClaimSource, Vec<VertexId>) {
        match p {
            CtrlPayload::Claimed { source, roots } => (source, roots),
            other => panic!("expected a claim, got {other:?}"),
        }
    }

    #[test]
    fn claims_walk_own_then_spill_then_steal() {
        let svc = service(vec![vec![1, 2, 3], vec![10, 20]], true, 2, None);
        let c0 = svc.client(0);
        let c1 = svc.client(1);
        // Part 1 drains its own range, then donates one root back.
        let (src, roots) = claimed(c1.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        assert_eq!((src, roots), (CtrlClaimSource::Own, vec![10, 20]));
        c1.call(CtrlOp::Donate { roots: vec![20] }).unwrap();
        // Part 0's own range first.
        let (src, roots) = claimed(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        assert_eq!((src, roots), (CtrlClaimSource::Own, vec![1, 2, 3]));
        // Then the spill...
        let (src, roots) = claimed(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        assert_eq!((src, roots), (CtrlClaimSource::Spill, vec![20]));
        // ...then nothing (part 1's cursor is exhausted, nothing to steal).
        assert_eq!(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap(), CtrlPayload::NoWork);
        // Part 1 steals nothing either; quiescence needs retirements.
        assert_eq!(
            c1.call(CtrlOp::Poll).unwrap(),
            CtrlPayload::Status { finished: false, starving: 0 }
        );
        for _ in 0..2 {
            c0.call(CtrlOp::BatchDone).unwrap();
            c1.call(CtrlOp::BatchDone).unwrap();
        }
        assert_eq!(
            c0.call(CtrlOp::Poll).unwrap(),
            CtrlPayload::Status { finished: true, starving: 0 }
        );
    }

    #[test]
    fn steals_come_from_the_most_loaded_victim() {
        let svc = service(vec![vec![], vec![1], vec![2, 3, 4]], true, 2, None);
        let c0 = svc.client(0);
        let (src, roots) = claimed(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        assert_eq!(src, CtrlClaimSource::Stolen(2));
        assert_eq!(roots, vec![2, 3]);
    }

    #[test]
    fn dropped_replies_are_replayed_not_reapplied() {
        // Every message from part 0 is dropped on its first attempt
        // (seq parity makes drops deterministic per attempt is not
        // guaranteed, so drop *everything* and rely on dedup: with
        // drop_fraction 1.0 every attempt loses its reply and the call
        // must exhaust retries — instead use 0.5 and many attempts).
        let plan = FaultPlan { drop_fraction: 0.5, ..FaultPlan::default() };
        let svc = service(vec![vec![1, 2, 3, 4]], false, 2, Some(plan));
        let c0 = svc.client(0);
        // Each claim is applied exactly once despite lost replies: four
        // owned roots at own_batch 2 yield exactly two claims.
        let (_, first) = claimed(c0.call(CtrlOp::Claim { own_batch: 2 }).unwrap());
        let (_, second) = claimed(c0.call(CtrlOp::Claim { own_batch: 2 }).unwrap());
        assert_eq!((first, second), (vec![1, 2], vec![3, 4]));
        assert_eq!(c0.call(CtrlOp::Claim { own_batch: 2 }).unwrap(), CtrlPayload::NoWork);
        c0.call(CtrlOp::BatchDone).unwrap();
        c0.call(CtrlOp::BatchDone).unwrap();
        assert_eq!(
            c0.call(CtrlOp::Poll).unwrap(),
            CtrlPayload::Status { finished: true, starving: 0 }
        );
    }

    #[test]
    fn injected_errors_retry_and_converge() {
        let plan = FaultPlan { error_fraction: 0.5, ..FaultPlan::default() };
        let svc = service(vec![vec![7]], false, 2, Some(plan));
        let c0 = svc.client(0);
        let (_, roots) = claimed(c0.call(CtrlOp::Claim { own_batch: 2 }).unwrap());
        assert_eq!(roots, vec![7]);
    }

    #[test]
    fn exhausted_retries_fail_typed() {
        let plan = FaultPlan { drop_fraction: 1.0, ..FaultPlan::default() };
        let cfg = ControlLedgerConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                timeout: Duration::from_millis(5),
                backoff: Duration::from_micros(100),
            },
            fault: Some(plan),
            ..ControlLedgerConfig::default()
        };
        let svc = ControlLedgerService::start(
            vec![vec![1]],
            Vec::new(),
            cfg,
            &ClusterMetrics::new(1, 1),
            Recorder::disabled(),
        );
        let c0 = svc.client(0);
        assert_eq!(
            c0.call(CtrlOp::Claim { own_batch: 1 }),
            Err(FetchError::Timeout { target: 0, attempts: 3 })
        );
    }

    #[test]
    fn close_dead_reconstructs_the_lost_multiset() {
        let svc = service(vec![vec![1, 2, 3, 4], vec![10, 20]], true, 2, None);
        let c0 = svc.client(0);
        let c1 = svc.client(1);
        // Part 1 claims its range, donates one root back, and "dies".
        claimed(c1.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        c1.call(CtrlOp::Donate { roots: vec![20] }).unwrap();
        // Part 0 claims two of its own roots; the rest stay unclaimed.
        claimed(c0.call(CtrlOp::Claim { own_batch: 2 }).unwrap());
        // Lost with part 1 dead: its claims {10, 20} minus donation
        // {20} = {10}; its cursor tail is empty; the spill {20} joins.
        let CtrlPayload::Lost { mut roots } = c0.call(CtrlOp::CloseDead { dead: vec![1] }).unwrap()
        else {
            panic!("expected a lost-roots reply")
        };
        roots.sort_unstable();
        assert_eq!(roots, vec![10, 20]);
    }

    #[test]
    fn recovery_mode_serves_only_the_spill() {
        let cfg =
            ControlLedgerConfig { stealing: true, batch: 2, ..ControlLedgerConfig::default() };
        let svc = ControlLedgerService::start(
            vec![Vec::new(), Vec::new()],
            vec![5, 6, 7],
            cfg,
            &ClusterMetrics::new(2, 1),
            Recorder::disabled(),
        );
        let c0 = svc.client(0);
        let (src, roots) = claimed(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        assert_eq!(src, CtrlClaimSource::Spill);
        assert_eq!(roots, vec![6, 7]);
        let (_, rest) = claimed(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap());
        assert_eq!(rest, vec![5]);
        assert_eq!(c0.call(CtrlOp::Claim { own_batch: 8 }).unwrap(), CtrlPayload::NoWork);
    }

    #[test]
    fn control_counters_account_sends_drops_and_retries() {
        let plan = FaultPlan { drop_fraction: 0.5, ..FaultPlan::default() };
        let n = 1;
        let metrics = ClusterMetrics::new(n, 1);
        let cfg = ControlLedgerConfig {
            retry: RetryPolicy {
                max_attempts: 10,
                timeout: Duration::from_millis(30),
                backoff: Duration::from_micros(200),
            },
            fault: Some(plan),
            ..ControlLedgerConfig::default()
        };
        let svc = ControlLedgerService::start(
            vec![vec![1, 2]],
            Vec::new(),
            cfg,
            &metrics,
            Recorder::disabled(),
        );
        let c0 = svc.client(0);
        for _ in 0..8 {
            let _ = c0.call(CtrlOp::Poll).unwrap();
        }
        let sent = metrics.part(0).ctrl_sent();
        let retried = metrics.part(0).ctrl_retried();
        let dropped = metrics.part(0).ctrl_dropped();
        assert!(sent >= 8, "every call sends at least once, got {sent}");
        assert_eq!(sent, 8 + retried, "each retry is one extra send");
        assert!(dropped <= sent);
        // Query counters see the same events.
        let q = metrics.query(0);
        assert_eq!(q.ctrl_sent(), sent);
        assert_eq!(q.ctrl_retried(), retried);
        assert_eq!(q.ctrl_dropped(), dropped);
    }
}
