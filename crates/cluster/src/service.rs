//! The remote edge-list request/response service.
//!
//! Each part runs one responder thread serving batched edge-list requests
//! from its local [`GraphPart`] — the paper's "graph data responding
//! threads" (§6). Clients block on a rendezvous channel per request;
//! batching many vertices per request amortizes the (simulated) network
//! latency exactly as the paper batches MPI messages (§3.3).

use crate::metrics::ClusterMetrics;
use crate::{NetworkModel, PartId};
use crossbeam::channel::{bounded, unbounded, Sender};
use gpm_graph::partition::{GraphPart, PartitionedGraph};
use gpm_graph::VertexId;
use std::fmt;
use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Instant;

/// Per-message fixed overhead in accounted bytes (headers/envelopes).
const HEADER_BYTES: u64 = 16;

/// A batch of edge lists returned by [`EdgeListClient::fetch`].
///
/// Lists are stored back to back; `list(i)` is the edge list of the `i`-th
/// requested vertex, in request order.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FetchedLists {
    offsets: Vec<u32>,
    data: Vec<VertexId>,
}

impl FetchedLists {
    /// Number of lists in the batch.
    pub fn len(&self) -> usize {
        self.offsets.len().saturating_sub(1)
    }

    /// Whether the batch is empty.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// The `i`-th requested vertex's edge list.
    ///
    /// # Panics
    ///
    /// Panics if `i >= len()`.
    pub fn list(&self, i: usize) -> &[VertexId] {
        &self.data[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }

    /// Consumes the batch into raw `(offsets, data)` arrays.
    pub fn into_parts(self) -> (Vec<u32>, Vec<VertexId>) {
        (self.offsets, self.data)
    }

    /// Accounted size of the response in bytes.
    pub fn response_bytes(&self) -> u64 {
        HEADER_BYTES + 4 * (self.offsets.len() as u64 + self.data.len() as u64)
    }
}

/// Error returned when a fetch addressed vertices the target does not own.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FetchError {
    /// The vertices the target part did not own.
    pub missing: Vec<VertexId>,
    /// The part that was asked.
    pub target: PartId,
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "part {} does not own {} requested vertices (first: {:?})",
            self.target,
            self.missing.len(),
            self.missing.first()
        )
    }
}

impl std::error::Error for FetchError {}

struct Request {
    vertices: Vec<VertexId>,
    reply: Sender<Result<FetchedLists, FetchError>>,
}

enum Msg {
    Fetch(Request),
    /// Stops the responder even while client clones are still alive.
    Shutdown,
}

/// The cluster-wide edge-list service: one responder thread per part.
///
/// # Example
///
/// ```
/// use gpm_cluster::EdgeListService;
/// use gpm_graph::{gen, partition::PartitionedGraph};
///
/// let g = gen::erdos_renyi(100, 400, 1);
/// let pg = PartitionedGraph::new(&g, 4, 1);
/// let service = EdgeListService::start(&pg, None);
/// let client = service.client(0);
/// let v = 17;
/// let owner = pg.owner(v);
/// let lists = client.fetch(owner, &[v]).unwrap();
/// assert_eq!(lists.list(0), g.neighbors(v));
/// service.shutdown();
/// ```
#[derive(Debug)]
pub struct EdgeListService {
    senders: Vec<Sender<Msg>>,
    metrics: ClusterMetrics,
    network: Option<NetworkModel>,
    handles: Vec<JoinHandle<()>>,
}

impl EdgeListService {
    /// Starts one responder thread per part of `pg`.
    pub fn start(pg: &PartitionedGraph, network: Option<NetworkModel>) -> Self {
        let parts = pg.part_count();
        let metrics = ClusterMetrics::new(parts, pg.sockets_per_machine());
        let mut senders = Vec::with_capacity(parts);
        let mut handles = Vec::with_capacity(parts);
        for part_id in 0..parts {
            let (tx, rx) = unbounded::<Msg>();
            senders.push(tx);
            let part = pg.part_arc(part_id);
            let part_metrics = Arc::clone(metrics.part(part_id));
            let handle = std::thread::Builder::new()
                .name(format!("edgelist-responder-{part_id}"))
                .spawn(move || {
                    while let Ok(Msg::Fetch(req)) = rx.recv() {
                        let resp = serve(&part, &req.vertices);
                        if let Ok(lists) = &resp {
                            part_metrics.record_served(lists.response_bytes());
                        }
                        // A dropped reply receiver just means the client
                        // gave up; keep serving others.
                        let _ = req.reply.send(resp);
                    }
                })
                .expect("spawn responder thread");
            handles.push(handle);
        }
        EdgeListService { senders, metrics, network, handles }
    }

    /// A client handle for `part` (cheap to clone, thread-safe).
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn client(&self, part: PartId) -> EdgeListClient {
        assert!(part < self.senders.len(), "part out of range");
        EdgeListClient {
            part,
            senders: self.senders.clone(),
            metrics: self.metrics.clone(),
            network: self.network,
        }
    }

    /// The shared metrics of this cluster.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Stops every responder and joins its thread. Outstanding client
    /// handles survive but their subsequent fetches will panic; shut down
    /// only after all engine threads have finished.
    pub fn shutdown(self) {
        for tx in &self.senders {
            let _ = tx.send(Msg::Shutdown);
        }
        drop(self.senders);
        for h in self.handles {
            let _ = h.join();
        }
    }
}

fn serve(part: &GraphPart, vertices: &[VertexId]) -> Result<FetchedLists, FetchError> {
    let mut offsets = Vec::with_capacity(vertices.len() + 1);
    offsets.push(0u32);
    let mut data = Vec::new();
    let mut missing = Vec::new();
    for &v in vertices {
        match part.edge_list(v) {
            Some(list) => data.extend_from_slice(list),
            None => missing.push(v),
        }
        offsets.push(data.len() as u32);
    }
    if missing.is_empty() {
        Ok(FetchedLists { offsets, data })
    } else {
        Err(FetchError { missing, target: part.part_id() })
    }
}

/// A per-part client of the [`EdgeListService`].
#[derive(Debug, Clone)]
pub struct EdgeListClient {
    part: PartId,
    senders: Vec<Sender<Msg>>,
    metrics: ClusterMetrics,
    network: Option<NetworkModel>,
}

impl EdgeListClient {
    /// The part this client belongs to.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Number of parts in the cluster.
    pub fn part_count(&self) -> usize {
        self.senders.len()
    }

    /// The shared cluster metrics.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// Fetches the edge lists of `vertices` from `target`, blocking until
    /// the response arrives. All vertices must be owned by `target`.
    ///
    /// Traffic, request count and blocking time are recorded against this
    /// client's part; if a [`NetworkModel`] is configured, cross-machine
    /// fetches are additionally delayed by the modeled transfer time.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError`] if `target` does not own some vertex, and an
    /// opaque error if the service has shut down.
    pub fn fetch(
        &self,
        target: PartId,
        vertices: &[VertexId],
    ) -> Result<FetchedLists, FetchError> {
        assert!(target < self.senders.len(), "target part out of range");
        let start = Instant::now();
        let (reply_tx, reply_rx) = bounded(1);
        let req = Request { vertices: vertices.to_vec(), reply: reply_tx };
        self.senders[target]
            .send(Msg::Fetch(req))
            .expect("edge-list service has shut down");
        let resp = reply_rx.recv().expect("edge-list responder died");
        let waited = start.elapsed();
        let my = self.metrics.part(self.part);
        my.record_wait(waited);
        let lists = resp?;
        let req_bytes = HEADER_BYTES + 4 * vertices.len() as u64;
        let resp_bytes = lists.response_bytes();
        let class = self.metrics.classify(self.part, target);
        my.record_fetch(class, req_bytes, resp_bytes);
        self.metrics.record_link(self.part, target, req_bytes);
        self.metrics.record_link(target, self.part, resp_bytes);
        if let (Some(model), crate::metrics::TrafficClass::CrossMachine) = (self.network, class)
        {
            let target_delay = model.transfer_time(req_bytes + resp_bytes);
            if let Some(remaining) = target_delay.checked_sub(waited) {
                precise_sleep(remaining);
                my.record_wait(remaining);
            }
        }
        Ok(lists)
    }
}

/// Sleeps for short durations more precisely than `thread::sleep` alone:
/// sleeps for the bulk, spins for the tail.
fn precise_sleep(d: std::time::Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    if d > std::time::Duration::from_micros(200) {
        std::thread::sleep(d - std::time::Duration::from_micros(100));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;

    fn cluster(machines: usize, sockets: usize) -> (gpm_graph::Graph, PartitionedGraph) {
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::new(&g, machines, sockets);
        (g, pg)
    }

    #[test]
    fn fetch_returns_correct_lists() {
        let (g, pg) = cluster(4, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        for v in [0u32, 5, 17, 100, 199] {
            let owner = pg.owner(v);
            let lists = client.fetch(owner, &[v]).unwrap();
            assert_eq!(lists.list(0), g.neighbors(v));
        }
        service.shutdown();
    }

    #[test]
    fn batched_fetch_preserves_order() {
        let (g, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        // All vertices owned by part 0, batched.
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(20).collect();
        let lists = client.fetch(0, &owned).unwrap();
        assert_eq!(lists.len(), owned.len());
        for (i, &v) in owned.iter().enumerate() {
            assert_eq!(lists.list(i), g.neighbors(v), "list {i} mismatched");
        }
        service.shutdown();
    }

    #[test]
    fn missing_vertex_is_an_error() {
        let (_, pg) = cluster(4, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        let v = (0..200u32).find(|&v| pg.owner(v) != 2).unwrap();
        let err = client.fetch(2, &[v]).unwrap_err();
        assert_eq!(err.missing, vec![v]);
        assert_eq!(err.target, 2);
        assert!(err.to_string().contains("does not own"));
        service.shutdown();
    }

    #[test]
    fn metrics_are_recorded() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(5).collect();
        client.fetch(0, &owned).unwrap();
        let m = service.metrics();
        assert_eq!(m.total_requests(), 1);
        assert!(m.total_network_bytes() > 0);
        assert!(m.part(1).bytes_received() > 0);
        assert!(m.part(0).served_requests() == 1);
        service.shutdown();
    }

    #[test]
    fn cross_socket_classified_separately() {
        let (_, pg) = cluster(1, 2); // one machine, two sockets
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        let owned: Vec<VertexId> = pg.part(1).owned().iter().copied().take(3).collect();
        client.fetch(1, &owned).unwrap();
        assert_eq!(service.metrics().total_network_bytes(), 0);
        assert!(service.metrics().total_cross_socket_bytes() > 0);
        service.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (g, pg) = cluster(4, 1);
        let service = EdgeListService::start(&pg, None);
        let mut joins = Vec::new();
        for part in 0..4 {
            let client = service.client(part);
            let g = g.clone();
            let pg = pg.clone();
            joins.push(std::thread::spawn(move || {
                for v in (part as u32 * 50)..(part as u32 * 50 + 50) {
                    let lists = client.fetch(pg.owner(v), &[v]).unwrap();
                    assert_eq!(lists.list(0), g.neighbors(v));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn network_model_delays_cross_machine_only() {
        let (_, pg) = cluster(2, 1);
        // Very slow model so delay dominates.
        let model = NetworkModel { latency_us: 2000.0, bandwidth_gbps: 56.0 };
        let service = EdgeListService::start(&pg, Some(model));
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(1).collect();
        let t0 = Instant::now();
        client.fetch(0, &owned).unwrap();
        assert!(t0.elapsed().as_micros() >= 2000, "model delay not applied");
        service.shutdown();
    }

    #[test]
    fn empty_fetch() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let lists = service.client(0).fetch(1, &[]).unwrap();
        assert!(lists.is_empty());
        assert_eq!(lists.len(), 0);
        service.shutdown();
    }
}
