//! The async request-window fabric over a [`Transport`].
//!
//! [`EdgeListClient::fetch_async`] issues a sequence-tagged request and
//! returns a [`PendingFetch`] completion handle immediately; the caller
//! overlaps other work (integrating the previous batch, submitting the
//! next one) and collects the reply later with [`PendingFetch::wait`].
//! The fabric layers four mechanisms over the raw transport:
//!
//! * **Backpressure** — each client part holds a bounded in-flight
//!   window ([`FabricConfig::window`]); `fetch_async` blocks once the
//!   window is full and unblocks as completions retire. Window size 1
//!   reproduces the old blocking RPC's fully serialized transfers.
//! * **Coalescing** — duplicate vertices within one request are sent
//!   once and the reply is expanded back to request order, so callers
//!   never observe the dedup (reply order is invariant).
//! * **Timeout/retry** — each attempt has a deadline; lost or
//!   transiently errored replies are retried with exponential backoff
//!   and a fresh sequence number (stale replies are discarded by tag).
//! * **Typed failure** — every way a fetch can fail is a
//!   [`FetchError`] variant propagated to the caller, never a panic.

use crate::metrics::{ClusterMetrics, PartMetrics, QueryMetrics, TrafficClass};
use crate::transport::{
    checked_offset, ChannelTransport, FaultInjectingTransport, FaultPlan, FetchedLists,
    ReplicaPush, Transport, WireReply, WireRequest, HEADER_BYTES,
};
use crate::{NetworkModel, PartId};
use crossbeam::channel::{unbounded, Receiver, RecvTimeoutError, Sender};
use gpm_graph::partition::{GraphPart, PartitionedGraph};
use gpm_graph::VertexId;
use gpm_obs::{FlightKind, Metric, Recorder, SpanKind};
use parking_lot::{Condvar, Mutex};
use std::fmt;
use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

/// Shared liveness state of the cluster: which parts have been detected
/// as fail-stop dead, and who holds a replica of each part's slice.
///
/// A part is *promoted* to dead when a submission to it returns
/// [`FetchError::PartDead`] (the transport saw the fail-stop kill), or —
/// with [`FabricConfig::fail_fast`] — when a fetch to it exhausts its
/// retry budget. Promotion is broadcast by construction: every client of
/// the service shares this one structure, so after the first detection
/// all later fetches route around the dead part immediately instead of
/// burning their own retry budgets.
#[derive(Debug)]
struct Liveness {
    dead: Vec<AtomicBool>,
    /// `holders[p]` = parts hosting a replica of `p`'s slice, nearest
    /// hash-predecessor first (see `PartitionedGraph::replica_holders`).
    /// Mutable at runtime: re-replication appends restored holders and
    /// republishes by bumping [`Liveness::epoch`].
    holders: parking_lot::RwLock<Vec<Vec<PartId>>>,
    /// Routing epoch, bumped on every holder-set change. Fetches blocked
    /// in the armed grace wait (see [`Liveness::route`]) watch it to
    /// re-check the failover table without polling the lock hot.
    epoch: AtomicU64,
    /// Per-owner round-robin cursors: dead-owner fetches spread across
    /// all live holders instead of hammering the nearest hash-successor.
    rr: Vec<AtomicU64>,
    /// Slices the rebalancer declared unrepairable (every copy dead
    /// before a transfer could start); releases armed grace waiters
    /// immediately instead of letting them run out the clock.
    lost: Vec<AtomicBool>,
    /// Whether a rebalancer is active. Armed, a fetch for a slice with
    /// no live holder waits a bounded grace period for an in-flight
    /// repair before failing `PartDead`; disarmed, it fails immediately
    /// (the pre-rebalance envelope).
    rebalance_armed: AtomicBool,
    fail_fast: bool,
}

/// How long an armed [`Liveness::route`] waits for an in-flight repair
/// to publish a live holder before giving up with `PartDead`.
const REROUTE_GRACE: Duration = Duration::from_secs(5);

impl Liveness {
    fn new(pg: &PartitionedGraph, fail_fast: bool) -> Liveness {
        let parts = pg.part_count();
        Liveness {
            dead: (0..parts).map(|_| AtomicBool::new(false)).collect(),
            holders: parking_lot::RwLock::new((0..parts).map(|p| pg.replica_holders(p)).collect()),
            epoch: AtomicU64::new(0),
            rr: (0..parts).map(|_| AtomicU64::new(0)).collect(),
            lost: (0..parts).map(|_| AtomicBool::new(false)).collect(),
            rebalance_armed: AtomicBool::new(false),
            fail_fast,
        }
    }

    fn is_dead(&self, part: PartId) -> bool {
        self.dead[part].load(Ordering::SeqCst)
    }

    /// Marks `part` dead; returns `true` on the first (promoting) call.
    fn promote(&self, part: PartId) -> bool {
        !self.dead[part].swap(true, Ordering::SeqCst)
    }

    /// Registers `host` as a live holder of `slice`'s data and
    /// republishes the routing table (epoch bump). Idempotent.
    fn add_holder(&self, slice: PartId, host: PartId) {
        {
            let mut holders = self.holders.write();
            if host != slice && !holders[slice].contains(&host) {
                holders[slice].push(host);
            }
        }
        self.epoch.fetch_add(1, Ordering::SeqCst);
    }

    /// The live holders of `slice`'s data right now, excluding `slice`
    /// itself (which serves its own slice while alive).
    fn live_holders(&self, slice: PartId) -> Vec<PartId> {
        self.holders.read()[slice].iter().copied().filter(|&h| !self.is_dead(h)).collect()
    }

    /// Live copies of `slice`'s data: its own part while alive, plus
    /// live replica holders — the slice's *effective* replication.
    fn live_copies(&self, slice: PartId) -> usize {
        usize::from(!self.is_dead(slice)) + self.live_holders(slice).len()
    }

    /// The part that should serve `owner`'s slice right now: `owner`
    /// itself while alive, else one of its live replica holders,
    /// round-robin so failover load spreads instead of hammering the
    /// nearest hash-successor. With re-replication armed, a slice
    /// currently holderless waits out a bounded grace period for the
    /// in-flight repair before failing `PartDead`.
    fn route(&self, owner: PartId) -> Result<PartId, FetchError> {
        if !self.is_dead(owner) {
            return Ok(owner);
        }
        let deadline = Instant::now() + REROUTE_GRACE;
        loop {
            {
                let holders = self.holders.read();
                let mut live = holders[owner].iter().copied().filter(|&h| !self.is_dead(h));
                let n = live.clone().count();
                if n > 0 {
                    let pick = (self.rr[owner].fetch_add(1, Ordering::Relaxed) as usize) % n;
                    return Ok(live.nth(pick).expect("live holder in range"));
                }
            }
            if !self.rebalance_armed.load(Ordering::SeqCst)
                || self.lost[owner].load(Ordering::SeqCst)
                || Instant::now() >= deadline
            {
                return Err(FetchError::PartDead { part: owner });
            }
            std::thread::sleep(Duration::from_millis(1));
        }
    }
}

/// Why a fetch failed. Transient variants ([`Injected`]) are retried by
/// the fabric up to [`RetryPolicy::max_attempts`]; the rest surface to
/// the caller immediately.
///
/// [`Injected`]: FetchError::Injected
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum FetchError {
    /// The target part does not own some requested vertices.
    NotOwner {
        /// The part that was asked.
        target: PartId,
        /// The vertices it did not own.
        missing: Vec<VertexId>,
    },
    /// The service (or its responder threads) has shut down.
    Shutdown,
    /// No reply arrived within the retry budget.
    Timeout {
        /// The part that was asked.
        target: PartId,
        /// How many attempts were made before giving up.
        attempts: u32,
    },
    /// A response grew past the `u32` offset range of the wire format.
    TooLarge {
        /// The part serving (or client expanding) the oversized reply.
        target: PartId,
        /// The edge-list entry count that overflowed.
        entries: usize,
    },
    /// A transient transport error injected by a
    /// [`FaultPlan`](crate::transport::FaultPlan); retryable.
    Injected {
        /// The part that was asked.
        target: PartId,
    },
    /// The part is fail-stop dead and no live replica holder can serve
    /// its slice. With replication this only surfaces once every holder
    /// of the slice is dead too; without it, the first fetch after the
    /// failure is detected fails this way.
    PartDead {
        /// The dead part whose data is unreachable.
        part: PartId,
    },
}

impl FetchError {
    /// Whether the fabric may retry after this error.
    fn is_transient(&self) -> bool {
        matches!(self, FetchError::Injected { .. })
    }
}

impl fmt::Display for FetchError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            FetchError::NotOwner { target, missing } => write!(
                f,
                "part {} does not own {} requested vertices (first: {:?})",
                target,
                missing.len(),
                missing.first()
            ),
            FetchError::Shutdown => write!(f, "edge-list service has shut down"),
            FetchError::Timeout { target, attempts } => {
                write!(f, "no reply from part {target} after {attempts} attempts")
            }
            FetchError::TooLarge { target, entries } => write!(
                f,
                "reply from part {target} too large for the wire format ({entries} entries)"
            ),
            FetchError::Injected { target } => {
                write!(f, "injected transport fault on the link to part {target}")
            }
            FetchError::PartDead { part } => {
                write!(f, "part {part} is dead and no live replica holds its slice")
            }
        }
    }
}

impl std::error::Error for FetchError {}

/// Timeout and retry behaviour of the fabric.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RetryPolicy {
    /// Total attempts (first try included) before a fetch fails with
    /// [`FetchError::Timeout`].
    pub max_attempts: u32,
    /// Per-attempt reply deadline. The in-process transport answers in
    /// microseconds, so the generous default never fires without fault
    /// injection; tighten it when a [`FaultPlan`] drops replies.
    pub timeout: Duration,
    /// Backoff before the second attempt; doubles on each further retry.
    pub backoff: Duration,
}

impl Default for RetryPolicy {
    fn default() -> Self {
        RetryPolicy {
            max_attempts: 4,
            timeout: Duration::from_secs(10),
            backoff: Duration::from_millis(2),
        }
    }
}

/// Configuration of the request fabric (threaded through
/// `EngineConfig::fabric` and the CLI).
#[derive(Debug, Clone, PartialEq)]
pub struct FabricConfig {
    /// Maximum in-flight requests per client part. `1` serializes
    /// transfers exactly like the old blocking RPC; larger windows let
    /// the comm pipeline overlap transfers with integration.
    pub window: usize,
    /// Timeout/retry behaviour.
    pub retry: RetryPolicy,
    /// Optional fault injection beneath the fabric.
    pub fault: Option<FaultPlan>,
    /// Fail-fast liveness: when a fetch exhausts its retry budget,
    /// promote the unresponsive part to the dead state (and fail over to
    /// a replica holder if one exists) instead of surfacing
    /// [`FetchError::Timeout`]. Off by default — plain packet loss then
    /// keeps its timeout semantics and only a definitive transport-level
    /// death promotes.
    pub fail_fast: bool,
}

impl Default for FabricConfig {
    fn default() -> Self {
        FabricConfig { window: 4, retry: RetryPolicy::default(), fault: None, fail_fast: false }
    }
}

/// The per-part in-flight window: a small counting semaphore.
#[derive(Debug)]
struct Window {
    limit: usize,
    inflight: Mutex<usize>,
    retired: Condvar,
}

impl Window {
    fn new(limit: usize) -> Self {
        Window { limit: limit.max(1), inflight: Mutex::new(0), retired: Condvar::new() }
    }

    /// Blocks until a slot frees up, then occupies it.
    fn acquire(self: &Arc<Self>, metrics: &Arc<PartMetrics>) -> WindowPermit {
        let mut inflight = self.inflight.lock();
        while *inflight >= self.limit {
            self.retired.wait(&mut inflight);
        }
        *inflight += 1;
        drop(inflight);
        metrics.record_inflight_start();
        WindowPermit { window: Arc::clone(self), metrics: Arc::clone(metrics) }
    }
}

/// Occupancy of one window slot; releases (and wakes a blocked
/// submitter) on drop, whether the fetch completed or was abandoned.
#[derive(Debug)]
struct WindowPermit {
    window: Arc<Window>,
    metrics: Arc<PartMetrics>,
}

impl Drop for WindowPermit {
    fn drop(&mut self) {
        self.metrics.record_inflight_end();
        let mut inflight = self.window.inflight.lock();
        *inflight = inflight.saturating_sub(1);
        drop(inflight);
        self.window.retired.notify_one();
    }
}

/// The cluster-wide edge-list service: metrics, per-part windows, and
/// the transport with its responder threads.
///
/// # Example
///
/// ```
/// use gpm_cluster::EdgeListService;
/// use gpm_graph::{gen, partition::PartitionedGraph};
///
/// let g = gen::erdos_renyi(100, 400, 1);
/// let pg = PartitionedGraph::new(&g, 4, 1);
/// let service = EdgeListService::start(&pg, None);
/// let client = service.client(0);
/// let v = 17;
/// let owner = pg.owner(v);
/// let lists = client.fetch(owner, &[v]).unwrap();
/// assert_eq!(lists.list(0), g.neighbors(v));
/// service.shutdown();
/// ```
#[derive(Debug, Clone)]
pub struct EdgeListService {
    transport: Arc<dyn Transport>,
    metrics: ClusterMetrics,
    network: Option<NetworkModel>,
    retry: RetryPolicy,
    windows: Vec<Arc<Window>>,
    seq: Arc<AtomicU64>,
    liveness: Arc<Liveness>,
    obs: Arc<Recorder>,
}

impl EdgeListService {
    /// Starts the service over `pg` with the default [`FabricConfig`].
    pub fn start(pg: &PartitionedGraph, network: Option<NetworkModel>) -> Self {
        Self::start_with(pg, network, FabricConfig::default())
    }

    /// Starts the service with an explicit fabric configuration
    /// (window size, retry policy, optional fault injection).
    pub fn start_with(
        pg: &PartitionedGraph,
        network: Option<NetworkModel>,
        fabric: FabricConfig,
    ) -> Self {
        Self::start_observed(pg, network, fabric, Recorder::disabled())
    }

    /// Like [`EdgeListService::start_with`], additionally recording
    /// fabric spans (fetch submit→complete, responder service, retries,
    /// injected faults) and histograms (fetch latency, batch bytes,
    /// window occupancy) into `obs`.
    pub fn start_observed(
        pg: &PartitionedGraph,
        network: Option<NetworkModel>,
        fabric: FabricConfig,
        obs: Arc<Recorder>,
    ) -> Self {
        let parts = pg.part_count();
        let metrics = ClusterMetrics::new(parts, pg.sockets_per_machine());
        let inner = ChannelTransport::start_observed(pg, &metrics, Arc::clone(&obs));
        let transport: Arc<dyn Transport> = match fabric.fault {
            Some(plan) => {
                Arc::new(FaultInjectingTransport::new_observed(inner, plan, Arc::clone(&obs)))
            }
            None => Arc::new(inner),
        };
        let windows = (0..parts).map(|_| Arc::new(Window::new(fabric.window))).collect();
        EdgeListService {
            transport,
            metrics,
            network,
            retry: fabric.retry,
            windows,
            seq: Arc::new(AtomicU64::new(0)),
            liveness: Arc::new(Liveness::new(pg, fabric.fail_fast)),
            obs,
        }
    }

    /// A client handle for `part` (cheap to clone, thread-safe). Clones
    /// share the part's in-flight window. Traffic is attributed to the
    /// conventional query id 0 (unattributed); a resident service uses
    /// [`EdgeListService::client_for_query`] instead.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn client(&self, part: PartId) -> EdgeListClient {
        self.client_for_query(part, 0)
    }

    /// A client handle for `part` whose traffic — wire requests, span
    /// tags, and per-query counters — is attributed to `query_id`.
    /// Clients of different queries on the same part share the part's
    /// in-flight window (the window models the part's link, which the
    /// queries contend for) but record into distinct
    /// [`QueryMetrics`].
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn client_for_query(&self, part: PartId, query_id: u64) -> EdgeListClient {
        assert!(part < self.windows.len(), "part out of range");
        EdgeListClient {
            part,
            query: query_id,
            query_metrics: self.metrics.query(query_id),
            transport: Arc::clone(&self.transport),
            metrics: self.metrics.clone(),
            network: self.network,
            retry: self.retry,
            window: Arc::clone(&self.windows[part]),
            seq: Arc::clone(&self.seq),
            liveness: Arc::clone(&self.liveness),
            obs: Arc::clone(&self.obs),
        }
    }

    /// Whether `part` has been detected as fail-stop dead.
    pub fn is_part_dead(&self, part: PartId) -> bool {
        self.liveness.is_dead(part)
    }

    /// Every part currently detected as fail-stop dead.
    pub fn dead_parts(&self) -> Vec<PartId> {
        (0..self.liveness.dead.len()).filter(|&p| self.liveness.is_dead(p)).collect()
    }

    /// Arms the re-replication grace wait: a fetch for a slice that
    /// currently has no live holder waits a bounded period for an
    /// in-flight repair instead of failing `PartDead` immediately.
    /// Called by the engine when it starts a rebalancer over this
    /// service; never called with rebalance off, so the disarmed
    /// fail-fast envelope is unchanged.
    pub fn arm_rebalance(&self) {
        self.liveness.rebalance_armed.store(true, Ordering::SeqCst);
    }

    /// Declares `slice` unrepairable (every copy died before a transfer
    /// could complete): armed grace waiters for it fail `PartDead`
    /// immediately instead of running out the clock.
    pub fn mark_slice_lost(&self, slice: PartId) {
        self.liveness.lost[slice].store(true, Ordering::SeqCst);
    }

    /// Live copies of `slice`'s data (own part while alive + live
    /// replica holders) — its effective replication right now.
    pub fn live_copies(&self, slice: PartId) -> usize {
        self.liveness.live_copies(slice)
    }

    /// The live replica holders of `slice` (excluding the part itself).
    pub fn live_holders(&self, slice: PartId) -> Vec<PartId> {
        self.liveness.live_holders(slice)
    }

    /// Current routing epoch: bumped whenever re-replication publishes a
    /// restored holder. Lets callers (and the `/status` health view)
    /// observe that the failover table changed.
    pub fn routing_epoch(&self) -> u64 {
        self.liveness.epoch.load(Ordering::SeqCst)
    }

    /// The slice ids `part`'s responder currently hosts (own slice
    /// first), including slices installed by re-replication.
    pub fn hosted_slices(&self, part: PartId) -> Vec<PartId> {
        self.transport.hosted_slices(part)
    }

    /// Streams `part`'s slice (a live copy of slice `part.part_id()`) to
    /// `host`'s responder in chunks of at most `chunk_entries` adjacency
    /// entries, waiting for each chunk's ack, then publishes `host` as a
    /// live holder of the slice (routing-epoch bump). `progress` is
    /// advanced by each acked chunk's wire bytes so a watchdog can
    /// detect a stuck transfer; `chunk_delay` throttles between chunks
    /// (a test knob — `Duration::ZERO` in production). Returns the total
    /// bytes streamed.
    ///
    /// # Errors
    ///
    /// [`FetchError::PartDead`]/[`FetchError::Shutdown`] if `host` dies
    /// or the service stops mid-transfer, [`FetchError::Timeout`] if an
    /// ack never arrives, or the responder's typed abort. The transfer
    /// is not installed partially: the receiver discards a transfer
    /// whose chunks stop arriving coherently.
    pub fn replicate_slice(
        &self,
        part: &Arc<GraphPart>,
        host: PartId,
        chunk_entries: usize,
        progress: &AtomicU64,
        chunk_delay: Duration,
    ) -> Result<u64, FetchError> {
        let owner = part.part_id();
        let neighbors = part.neighbors();
        let per = chunk_entries.max(1);
        let total = neighbors.len().div_ceil(per).max(1) as u64;
        let (ack_tx, ack_rx) = unbounded::<WireReply>();
        let mut streamed = 0u64;
        for i in 0..total {
            let lo = (i as usize * per).min(neighbors.len());
            let hi = ((i as usize + 1) * per).min(neighbors.len());
            let seq = self.seq.fetch_add(1, Ordering::Relaxed);
            let push = ReplicaPush {
                seq,
                owner,
                chunk: i,
                total_chunks: total,
                owned: if i == 0 { part.owned().to_vec() } else { Vec::new() },
                offsets: if i == 0 { part.offsets().to_vec() } else { Vec::new() },
                neighbors: neighbors[lo..hi].to_vec(),
            };
            let bytes = push.wire_bytes();
            self.transport.push_replica(host, push, ack_tx.clone())?;
            let deadline = Instant::now() + self.retry.timeout;
            loop {
                let remaining = deadline.saturating_duration_since(Instant::now());
                match ack_rx.recv_timeout(remaining) {
                    Ok(ack) if ack.seq != seq => continue,
                    Ok(ack) => {
                        ack.payload?;
                        break;
                    }
                    Err(RecvTimeoutError::Timeout) => {
                        return Err(FetchError::Timeout { target: host, attempts: 1 })
                    }
                    Err(RecvTimeoutError::Disconnected) => return Err(FetchError::Shutdown),
                }
            }
            streamed += bytes;
            progress.fetch_add(bytes, Ordering::Relaxed);
            if !chunk_delay.is_zero() {
                std::thread::sleep(chunk_delay);
            }
        }
        self.liveness.add_holder(owner, host);
        self.obs.flight().record(FlightKind::ReplicaPush, 0, owner as u64, host as u64);
        self.obs.record_instant(SpanKind::ReplicaPush, owner as u32, host as u64);
        Ok(streamed)
    }

    /// The shared metrics of this cluster.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The recorder this service reports spans and histograms into.
    pub fn recorder(&self) -> &Arc<Recorder> {
        &self.obs
    }

    /// Stops every responder and joins its thread. Idempotent — the
    /// engine's `Drop` calls this unconditionally, including after an
    /// errored run already tore the service down. Outstanding client
    /// handles survive but their subsequent fetches return
    /// [`FetchError::Shutdown`].
    pub fn shutdown(&self) {
        self.transport.shutdown();
    }
}

/// A per-part client of the [`EdgeListService`].
#[derive(Debug, Clone)]
pub struct EdgeListClient {
    part: PartId,
    /// The query this client works for (0 = unattributed). Stamped on
    /// every wire request and span, and keyed into `query_metrics`.
    query: u64,
    /// Resolved counters for `query` (shared with the engine's report
    /// path via [`ClusterMetrics::query`]).
    query_metrics: Arc<QueryMetrics>,
    transport: Arc<dyn Transport>,
    metrics: ClusterMetrics,
    network: Option<NetworkModel>,
    retry: RetryPolicy,
    window: Arc<Window>,
    seq: Arc<AtomicU64>,
    liveness: Arc<Liveness>,
    obs: Arc<Recorder>,
}

impl EdgeListClient {
    /// The part this client belongs to.
    pub fn part(&self) -> PartId {
        self.part
    }

    /// Number of parts in the cluster.
    pub fn part_count(&self) -> usize {
        self.transport.part_count()
    }

    /// The shared cluster metrics.
    pub fn metrics(&self) -> &ClusterMetrics {
        &self.metrics
    }

    /// The query this client's traffic is attributed to (0 means
    /// unattributed).
    pub fn query_id(&self) -> u64 {
        self.query
    }

    /// The per-query counters this client records into. The part runtime
    /// also records cache hits/misses here so the query's hit rate is
    /// exact under interleaving.
    pub fn query_metrics(&self) -> &Arc<QueryMetrics> {
        &self.query_metrics
    }

    /// Whether `part` has been detected as fail-stop dead. The part
    /// runtime polls its own id here to stop a dead part's coordinator.
    pub fn is_part_dead(&self, part: PartId) -> bool {
        self.liveness.is_dead(part)
    }

    /// Promotes `part` to the dead state, recording the failure (span +
    /// cluster counter) exactly once across all clients.
    fn promote_dead(&self, part: PartId) {
        if self.liveness.promote(part) {
            self.metrics.record_part_failed();
            self.obs.record_instant(SpanKind::PartFailed, part as u32, 0);
            // Flight-ring entry rides along even when span tracing is
            // off, so a post-hoc incident bundle shows the death.
            self.obs.flight().record(FlightKind::PartCrash, self.query, part as u64, 0);
        }
    }

    /// Fetches the edge lists of `vertices` from `target`, blocking until
    /// the response arrives — [`fetch_async`] + [`PendingFetch::wait`].
    /// All vertices must be owned by `target`.
    ///
    /// Traffic, request count and blocking time are recorded against this
    /// client's part; if a [`NetworkModel`] is configured, cross-machine
    /// fetches are additionally delayed by the modeled transfer time.
    ///
    /// [`fetch_async`]: EdgeListClient::fetch_async
    ///
    /// # Errors
    ///
    /// Any [`FetchError`] variant: `NotOwner` if `target` does not own
    /// some vertex, `Shutdown` after the service stopped, `Timeout` when
    /// the retry budget is exhausted, `TooLarge` on wire-format overflow.
    pub fn fetch(&self, target: PartId, vertices: &[VertexId]) -> Result<FetchedLists, FetchError> {
        self.fetch_async(target, vertices)?.wait()
    }

    /// Issues a fetch without waiting for the reply.
    ///
    /// Blocks only while this part's in-flight window is full
    /// (backpressure); once a slot is free the request is submitted and
    /// a completion handle returned. Duplicate vertices are coalesced on
    /// the wire; [`PendingFetch::wait`] expands the reply back to
    /// request order, so `lists.list(i)` always matches `vertices[i]`.
    ///
    /// # Errors
    ///
    /// Returns [`FetchError::Shutdown`] if the service has stopped, or
    /// [`FetchError::PartDead`] if `target` is dead and no live replica
    /// holder can serve its slice.
    pub fn fetch_async(
        &self,
        target: PartId,
        vertices: &[VertexId],
    ) -> Result<PendingFetch, FetchError> {
        assert!(target < self.part_count(), "target part out of range");
        let my = Arc::clone(self.metrics.part(self.part));
        let (wire, expand) = coalesce(vertices);
        if let Some(saved) = vertices.len().checked_sub(wire.len()) {
            if saved > 0 {
                my.record_coalesced(saved as u64);
                self.query_metrics.record_coalesced(saved as u64);
            }
        }
        let permit = self.window.acquire(&my);
        self.obs.observe(Metric::WindowOccupancy, my.inflight());
        let submitted_ns = self.obs.now_ns();
        let (reply_tx, reply_rx) = unbounded();
        let seq = self.seq.fetch_add(1, Ordering::Relaxed);
        // The causal request id: the first attempt's seq, offset by one
        // so 0 stays "unlinked". Retries get a fresh seq (the fault plan
        // re-rolls per seq) but keep this id, so every span of the
        // lifecycle — issue, serves, retries, and the consuming wait —
        // shares one link.
        let req_id = seq + 1;
        self.obs.record_instant_for(
            self.query,
            SpanKind::FetchIssue,
            self.part as u32,
            target as u64,
            req_id,
        );
        // `target` stays the logical owner on the wire; the submission
        // goes to whichever part currently serves that slice.
        let mut route = self.liveness.route(target)?;
        loop {
            match self.transport.submit(
                route,
                WireRequest {
                    seq,
                    req_id,
                    query: self.query,
                    from: self.part,
                    owner: target,
                    vertices: wire.clone(),
                },
                reply_tx.clone(),
            ) {
                Ok(()) => break,
                Err(FetchError::PartDead { part }) => {
                    // The transport saw a fail-stop death the liveness
                    // layer had not yet: promote and re-route.
                    self.promote_dead(part);
                    route = self.liveness.route(target)?;
                    self.obs.record_instant_for(
                        self.query,
                        SpanKind::Failover,
                        target as u32,
                        route as u64,
                        req_id,
                    );
                    self.obs.flight().record(
                        FlightKind::Failover,
                        self.query,
                        target as u64,
                        route as u64,
                    );
                }
                Err(e) => return Err(e),
            }
        }
        Ok(PendingFetch {
            client: self.clone(),
            owner: target,
            target: route,
            wire,
            expand,
            reply_tx,
            reply_rx,
            seq,
            req_id,
            attempts: 1,
            submitted: Instant::now(),
            submitted_ns,
            _permit: permit,
        })
    }
}

/// A fetch in flight: the completion handle returned by
/// [`EdgeListClient::fetch_async`].
///
/// Holds one slot of the issuing part's request window until it is
/// waited on or dropped; dropping abandons the fetch (the reply, if any,
/// is discarded).
#[derive(Debug)]
pub struct PendingFetch {
    client: EdgeListClient,
    /// The part whose slice is being fetched (the logical target).
    owner: PartId,
    /// The part currently serving the request: `owner` while alive, else
    /// a replica holder. Updated when a mid-flight failover re-routes.
    target: PartId,
    /// Deduplicated vertices as sent on the wire.
    wire: Vec<VertexId>,
    /// For requests with duplicates: original index → wire index.
    expand: Option<Vec<u32>>,
    reply_tx: Sender<WireReply>,
    reply_rx: Receiver<WireReply>,
    seq: u64,
    /// Causal request id (first-attempt seq + 1), stable across retries.
    req_id: u64,
    attempts: u32,
    /// First submission time; the network model's transfer delay is
    /// measured from here so concurrent in-flight transfers overlap.
    submitted: Instant,
    /// Recorder timestamp of the first submission, for the `Fetch` span.
    submitted_ns: u64,
    _permit: WindowPermit,
}

impl PendingFetch {
    /// The part whose slice this fetch requests. A failed-over fetch is
    /// physically served elsewhere, but the logical owner is stable.
    pub fn owner(&self) -> PartId {
        self.owner
    }

    /// The causal request id of this fetch, stable across retries and
    /// nonzero by construction. Wait-side callers stamp it on the span
    /// covering their blocked `recv` (see `gpm_obs::Span::link`) so the
    /// trace links the wait to the issue and the responder's serve.
    pub fn request_id(&self) -> u64 {
        self.req_id
    }

    /// Blocks until the reply arrives (retrying on loss or transient
    /// errors), records traffic/wait metrics, and returns the lists in
    /// original request order.
    ///
    /// # Errors
    ///
    /// Any non-transient [`FetchError`], or [`FetchError::Timeout`] once
    /// the retry budget is exhausted.
    pub fn wait(mut self) -> Result<FetchedLists, FetchError> {
        let retry = self.client.retry;
        let my = Arc::clone(self.client.metrics.part(self.client.part));
        let wait_start = Instant::now();
        let mut attempt_start = self.submitted;
        let lists = loop {
            let remaining = retry.timeout.saturating_sub(attempt_start.elapsed());
            match self.reply_rx.recv_timeout(remaining) {
                // Stale reply from an attempt that already timed out.
                Ok(reply) if reply.seq != self.seq => continue,
                Ok(reply) => match reply.payload {
                    Ok(lists) => break lists,
                    Err(e) if e.is_transient() => self.resubmit(&retry, &my)?,
                    Err(e) => return Err(e),
                },
                Err(RecvTimeoutError::Timeout) => self.resubmit(&retry, &my)?,
                Err(RecvTimeoutError::Disconnected) => return Err(FetchError::Shutdown),
            }
            attempt_start = Instant::now();
        };
        my.record_wait(wait_start.elapsed());
        let req_bytes = HEADER_BYTES + 4 * self.wire.len() as u64;
        let resp_bytes = lists.response_bytes();
        if self.target != self.owner {
            // Served by a replica holder of a dead part: account the
            // failover traffic separately for the run report — once on
            // the issuing side, and once against the *serving holder* so
            // the spread (or hotspotting) of failover load is visible.
            my.record_rerouted(req_bytes + resp_bytes);
            self.client.query_metrics.record_rerouted(req_bytes + resp_bytes);
            self.client.metrics.part(self.target).record_rerouted_served(req_bytes + resp_bytes);
        }
        let obs = &self.client.obs;
        obs.record_span_for(
            self.client.query,
            SpanKind::Fetch,
            self.client.part as u32,
            self.submitted_ns,
            self.target as u64,
            self.req_id,
        );
        obs.observe(Metric::FetchLatencyNs, self.submitted.elapsed().as_nanos() as u64);
        obs.observe(Metric::BatchBytes, resp_bytes);
        let class = self.client.metrics.classify(self.client.part, self.target);
        my.record_fetch(class, req_bytes, resp_bytes);
        self.client.query_metrics.record_fetch(class, req_bytes, resp_bytes);
        self.client.metrics.record_link(self.client.part, self.target, req_bytes);
        self.client.metrics.record_link(self.target, self.client.part, resp_bytes);
        if let (Some(model), TrafficClass::CrossMachine) = (self.client.network, class) {
            let target_delay = model.transfer_time(req_bytes + resp_bytes);
            // Time already spent since submission counts toward the
            // modeled transfer, so transfers in flight while the caller
            // integrated earlier batches cost nothing extra.
            if let Some(remaining) = target_delay.checked_sub(self.submitted.elapsed()) {
                precise_sleep(remaining);
                my.record_wait(remaining);
            }
        }
        match &self.expand {
            None => Ok(lists),
            Some(map) => expand_reply(&lists, map, self.target),
        }
    }

    /// One more attempt: backoff, fresh sequence number, resubmit.
    ///
    /// When the serving part turns out to be dead — the transport says so
    /// on resubmission, or (under [`FabricConfig::fail_fast`]) the retry
    /// budget is exhausted — the part is promoted and the fetch fails
    /// over to the next live replica holder instead of erroring out.
    fn resubmit(&mut self, retry: &RetryPolicy, my: &Arc<PartMetrics>) -> Result<(), FetchError> {
        if self.attempts >= retry.max_attempts {
            if self.client.liveness.fail_fast {
                self.client.promote_dead(self.target);
                return self.failover();
            }
            return Err(FetchError::Timeout { target: self.target, attempts: self.attempts });
        }
        let backoff = retry.backoff.saturating_mul(1 << (self.attempts - 1).min(16));
        // The Retry span covers the backoff sleep so the critical-path
        // pass can subtract self-inflicted backoff from fetch-wait time.
        let backoff_start = self.client.obs.now_ns();
        if !backoff.is_zero() {
            std::thread::sleep(backoff);
        }
        my.record_retry();
        self.client.query_metrics.record_retry();
        self.client.obs.record_span_for(
            self.client.query,
            SpanKind::Retry,
            self.client.part as u32,
            backoff_start,
            self.attempts as u64,
            self.req_id,
        );
        self.client.obs.flight().record(
            FlightKind::Retry,
            self.client.query,
            self.target as u64,
            self.attempts as u64,
        );
        self.attempts += 1;
        self.seq = self.client.seq.fetch_add(1, Ordering::Relaxed);
        match self.client.transport.submit(
            self.target,
            WireRequest {
                seq: self.seq,
                req_id: self.req_id,
                query: self.client.query,
                from: self.client.part,
                owner: self.owner,
                vertices: self.wire.clone(),
            },
            self.reply_tx.clone(),
        ) {
            Err(FetchError::PartDead { part }) => {
                self.client.promote_dead(part);
                self.failover()
            }
            other => other,
        }
    }

    /// Re-routes this fetch to the next live holder of `owner`'s slice
    /// after the current serving part died, resetting the attempt budget
    /// for the new link. Terminates because every iteration either
    /// succeeds or promotes one more part to dead, and a fetch with no
    /// live holder left fails with [`FetchError::PartDead`].
    fn failover(&mut self) -> Result<(), FetchError> {
        loop {
            let next = self.client.liveness.route(self.owner)?;
            self.client.obs.record_instant_for(
                self.client.query,
                SpanKind::Failover,
                self.owner as u32,
                next as u64,
                self.req_id,
            );
            self.client.obs.flight().record(
                FlightKind::Failover,
                self.client.query,
                self.owner as u64,
                next as u64,
            );
            self.attempts = 1;
            self.seq = self.client.seq.fetch_add(1, Ordering::Relaxed);
            match self.client.transport.submit(
                next,
                WireRequest {
                    seq: self.seq,
                    req_id: self.req_id,
                    query: self.client.query,
                    from: self.client.part,
                    owner: self.owner,
                    vertices: self.wire.clone(),
                },
                self.reply_tx.clone(),
            ) {
                Ok(()) => {
                    self.target = next;
                    return Ok(());
                }
                Err(FetchError::PartDead { part }) => {
                    self.client.promote_dead(part);
                }
                Err(e) => return Err(e),
            }
        }
    }
}

/// Deduplicates `vertices` preserving first-occurrence order. Returns
/// the wire list and, when duplicates existed, the original-index →
/// wire-index map needed to expand the reply.
fn coalesce(vertices: &[VertexId]) -> (Vec<VertexId>, Option<Vec<u32>>) {
    use std::collections::HashMap;
    let mut first: HashMap<VertexId, u32> = HashMap::with_capacity(vertices.len());
    let mut wire = Vec::with_capacity(vertices.len());
    let mut map = Vec::with_capacity(vertices.len());
    for &v in vertices {
        let idx = *first.entry(v).or_insert_with(|| {
            wire.push(v);
            (wire.len() - 1) as u32
        });
        map.push(idx);
    }
    if wire.len() == vertices.len() {
        (wire, None)
    } else {
        (wire, Some(map))
    }
}

/// Expands a deduplicated reply back to original request order.
fn expand_reply(
    lists: &FetchedLists,
    map: &[u32],
    target: PartId,
) -> Result<FetchedLists, FetchError> {
    let mut offsets = Vec::with_capacity(map.len() + 1);
    offsets.push(0u32);
    let mut data = Vec::new();
    for &w in map {
        data.extend_from_slice(lists.list(w as usize));
        offsets.push(
            checked_offset(data.len())
                .map_err(|entries| FetchError::TooLarge { target, entries })?,
        );
    }
    Ok(FetchedLists::from_parts(offsets, data))
}

/// Sleeps for short durations more precisely than `thread::sleep` alone:
/// sleeps for the bulk, spins for the tail.
fn precise_sleep(d: Duration) {
    if d.is_zero() {
        return;
    }
    let start = Instant::now();
    if d > Duration::from_micros(200) {
        std::thread::sleep(d - Duration::from_micros(100));
    }
    while start.elapsed() < d {
        std::hint::spin_loop();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::transport::CrashAt;
    use gpm_graph::gen;

    fn cluster(machines: usize, sockets: usize) -> (gpm_graph::Graph, PartitionedGraph) {
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::new(&g, machines, sockets);
        (g, pg)
    }

    #[test]
    fn fetch_returns_correct_lists() {
        let (g, pg) = cluster(4, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        for v in [0u32, 5, 17, 100, 199] {
            let owner = pg.owner(v);
            let lists = client.fetch(owner, &[v]).unwrap();
            assert_eq!(lists.list(0), g.neighbors(v));
        }
        service.shutdown();
    }

    #[test]
    fn batched_fetch_preserves_order() {
        let (g, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        // All vertices owned by part 0, batched.
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(20).collect();
        let lists = client.fetch(0, &owned).unwrap();
        assert_eq!(lists.len(), owned.len());
        for (i, &v) in owned.iter().enumerate() {
            assert_eq!(lists.list(i), g.neighbors(v), "list {i} mismatched");
        }
        service.shutdown();
    }

    #[test]
    fn missing_vertex_is_an_error() {
        let (_, pg) = cluster(4, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        let v = (0..200u32).find(|&v| pg.owner(v) != 2).unwrap();
        let err = client.fetch(2, &[v]).unwrap_err();
        assert_eq!(err, FetchError::NotOwner { target: 2, missing: vec![v] });
        assert!(err.to_string().contains("does not own"));
        service.shutdown();
    }

    #[test]
    fn metrics_are_recorded() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(5).collect();
        client.fetch(0, &owned).unwrap();
        let m = service.metrics();
        assert_eq!(m.total_requests(), 1);
        assert!(m.total_network_bytes() > 0);
        assert!(m.part(1).bytes_received() > 0);
        assert!(m.part(0).served_requests() == 1);
        // No duplicates, no faults: nothing coalesced, nothing retried.
        assert_eq!(m.total_coalesced(), 0);
        assert_eq!(m.total_retries(), 0);
        service.shutdown();
    }

    #[test]
    fn cross_socket_classified_separately() {
        let (_, pg) = cluster(1, 2); // one machine, two sockets
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        let owned: Vec<VertexId> = pg.part(1).owned().iter().copied().take(3).collect();
        client.fetch(1, &owned).unwrap();
        assert_eq!(service.metrics().total_network_bytes(), 0);
        assert!(service.metrics().total_cross_socket_bytes() > 0);
        service.shutdown();
    }

    #[test]
    fn concurrent_clients() {
        let (g, pg) = cluster(4, 1);
        let service = EdgeListService::start(&pg, None);
        let mut joins = Vec::new();
        for part in 0..4 {
            let client = service.client(part);
            let g = g.clone();
            let pg = pg.clone();
            joins.push(std::thread::spawn(move || {
                for v in (part as u32 * 50)..(part as u32 * 50 + 50) {
                    let lists = client.fetch(pg.owner(v), &[v]).unwrap();
                    assert_eq!(lists.list(0), g.neighbors(v));
                }
            }));
        }
        for j in joins {
            j.join().unwrap();
        }
        service.shutdown();
    }

    #[test]
    fn network_model_delays_cross_machine_only() {
        let (_, pg) = cluster(2, 1);
        // Very slow model so delay dominates.
        let model = NetworkModel { latency_us: 2000.0, bandwidth_gbps: 56.0 };
        let service = EdgeListService::start(&pg, Some(model));
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(1).collect();
        let t0 = Instant::now();
        client.fetch(0, &owned).unwrap();
        assert!(t0.elapsed().as_micros() >= 2000, "model delay not applied");
        service.shutdown();
    }

    #[test]
    fn empty_fetch() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let lists = service.client(0).fetch(1, &[]).unwrap();
        assert!(lists.is_empty());
        assert_eq!(lists.len(), 0);
        service.shutdown();
    }

    #[test]
    fn coalescing_preserves_reply_order() {
        let (g, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(3).collect();
        let (a, b, c) = (owned[0], owned[1], owned[2]);
        let request = [a, b, a, c, b, a];
        let lists = client.fetch(0, &request).unwrap();
        // The reply has one list per *requested* vertex, in request
        // order, even though only 3 unique vertices went on the wire.
        assert_eq!(lists.len(), request.len());
        for (i, &v) in request.iter().enumerate() {
            assert_eq!(lists.list(i), g.neighbors(v), "list {i} mismatched");
        }
        assert_eq!(service.metrics().total_coalesced(), 3);
        service.shutdown();
    }

    #[test]
    fn coalescing_shrinks_the_wire_request() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        client.fetch(0, &[v; 8]).unwrap();
        // Request bytes account the deduplicated wire form: header + one
        // vertex, not eight.
        assert_eq!(service.metrics().part(1).bytes_sent(), 16 + 4);
        assert_eq!(service.metrics().total_coalesced(), 7);
        service.shutdown();
    }

    #[test]
    fn query_scoped_clients_attribute_traffic_and_spans() {
        // Two queries fetch over the same service: each query's counters
        // see only its own requests, and every lifecycle span (issue,
        // serve, fetch) carries the issuing query's id.
        let (_, pg) = cluster(2, 1);
        let obs = Recorder::new(&gpm_obs::ObsConfig::enabled());
        let service =
            EdgeListService::start_observed(&pg, None, FabricConfig::default(), Arc::clone(&obs));
        let c7 = service.client_for_query(1, 7);
        let c9 = service.client_for_query(1, 9);
        assert_eq!(c7.query_id(), 7);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(4).collect();
        c7.fetch(0, &owned[..2]).unwrap();
        c7.fetch(0, &[owned[2], owned[2]]).unwrap(); // one coalesced vertex
        c9.fetch(0, &owned[3..]).unwrap();
        let q7 = service.metrics().query(7);
        let q9 = service.metrics().query(9);
        assert_eq!(q7.requests(), 2);
        assert_eq!(q9.requests(), 1);
        assert_eq!(q7.coalesced_requests(), 1);
        assert_eq!(q9.coalesced_requests(), 0);
        assert!(q7.network_bytes() > 0);
        // Part counters still see the union.
        assert_eq!(service.metrics().total_requests(), 3);
        assert_eq!(
            service.metrics().part(1).bytes_received(),
            q7.network_bytes() + q9.network_bytes() - service.metrics().part(1).bytes_sent()
        );
        for s in obs.spans() {
            if matches!(s.kind, SpanKind::FetchIssue | SpanKind::Fetch | SpanKind::Serve) {
                assert!(s.query == 7 || s.query == 9, "unattributed lifecycle span: {s:?}");
            }
        }
        let fetches: Vec<u64> =
            obs.spans().iter().filter(|s| s.kind == SpanKind::Fetch).map(|s| s.query).collect();
        assert_eq!(fetches.iter().filter(|&&q| q == 7).count(), 2);
        assert_eq!(fetches.iter().filter(|&&q| q == 9).count(), 1);
        service.shutdown();
    }

    #[test]
    fn shutdown_is_idempotent() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let v = pg.part(0).owned()[0];
        assert!(service.client(1).fetch(0, &[v]).is_ok());
        service.shutdown();
        service.shutdown(); // second teardown must be a no-op, not a hang
        assert_eq!(service.client(1).fetch(0, &[v]).unwrap_err(), FetchError::Shutdown);
    }

    #[test]
    fn fetch_after_shutdown_is_a_typed_error() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(0);
        let v = pg.part(1).owned()[0];
        assert!(client.fetch(1, &[v]).is_ok());
        service.shutdown();
        assert_eq!(client.fetch(1, &[v]).unwrap_err(), FetchError::Shutdown);
        assert!(FetchError::Shutdown.to_string().contains("shut down"));
    }

    #[test]
    fn window_bounds_inflight_requests() {
        let (_, pg) = cluster(2, 1);
        let fabric = FabricConfig { window: 2, ..FabricConfig::default() };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(3).collect();
        let p0 = client.fetch_async(0, &owned[..1]).unwrap();
        let p1 = client.fetch_async(0, &owned[1..2]).unwrap();
        assert_eq!(service.metrics().part(1).inflight(), 2);
        // A third issue must block until a slot retires.
        let (issued_tx, issued_rx) = unbounded::<()>();
        let c2 = client.clone();
        let vs = owned[2..3].to_vec();
        let t = std::thread::spawn(move || {
            let p = c2.fetch_async(0, &vs).unwrap();
            issued_tx.send(()).unwrap();
            p.wait().unwrap();
        });
        assert!(
            issued_rx.recv_timeout(Duration::from_millis(50)).is_err(),
            "third fetch issued past a full window"
        );
        p0.wait().unwrap();
        issued_rx.recv_timeout(Duration::from_secs(5)).expect("slot retire unblocks issue");
        p1.wait().unwrap();
        t.join().unwrap();
        assert_eq!(service.metrics().part(1).inflight(), 0);
        assert_eq!(service.metrics().part(1).peak_inflight(), 2);
        service.shutdown();
    }

    fn faulty_retry() -> RetryPolicy {
        RetryPolicy {
            max_attempts: 10,
            timeout: Duration::from_millis(30),
            backoff: Duration::from_micros(500),
        }
    }

    #[test]
    fn dropped_replies_are_retried() {
        let (g, pg) = cluster(2, 1);
        let fabric = FabricConfig {
            retry: faulty_retry(),
            fault: Some(FaultPlan::drops(0.3)),
            ..FabricConfig::default()
        };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        for &v in pg.part(0).owned().iter().take(30) {
            let lists = client.fetch(0, &[v]).unwrap();
            assert_eq!(lists.list(0), g.neighbors(v));
        }
        assert!(service.metrics().total_retries() > 0, "30% drops must force retries");
        service.shutdown();
    }

    #[test]
    fn injected_errors_are_retried() {
        let (g, pg) = cluster(2, 1);
        let fault = FaultPlan { error_fraction: 0.3, ..FaultPlan::default() };
        let fabric =
            FabricConfig { retry: faulty_retry(), fault: Some(fault), ..FabricConfig::default() };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        for &v in pg.part(0).owned().iter().take(30) {
            let lists = client.fetch(0, &[v]).unwrap();
            assert_eq!(lists.list(0), g.neighbors(v));
        }
        assert!(service.metrics().total_retries() > 0);
        service.shutdown();
    }

    #[test]
    fn delayed_replies_still_arrive() {
        let (g, pg) = cluster(2, 1);
        let fault = FaultPlan {
            delay_fraction: 1.0,
            delay: Duration::from_millis(3),
            ..FaultPlan::default()
        };
        let fabric = FabricConfig { fault: Some(fault), ..FabricConfig::default() };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        let t0 = Instant::now();
        let lists = client.fetch(0, &[v]).unwrap();
        assert!(t0.elapsed() >= Duration::from_millis(3));
        assert_eq!(lists.list(0), g.neighbors(v));
        service.shutdown();
    }

    #[test]
    fn exhausted_retries_become_timeout() {
        let (_, pg) = cluster(2, 1);
        let fabric = FabricConfig {
            retry: RetryPolicy {
                max_attempts: 3,
                timeout: Duration::from_millis(5),
                backoff: Duration::from_micros(100),
            },
            fault: Some(FaultPlan::drops(1.0)),
            ..FabricConfig::default()
        };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        let err = client.fetch(0, &[v]).unwrap_err();
        assert_eq!(err, FetchError::Timeout { target: 0, attempts: 3 });
        assert!(err.to_string().contains("after 3 attempts"));
        assert_eq!(service.metrics().part(1).retries(), 2);
        service.shutdown();
    }

    #[test]
    fn observed_service_records_fabric_spans() {
        let (_, pg) = cluster(2, 1);
        let obs = Recorder::new(&gpm_obs::ObsConfig::enabled());
        let service =
            EdgeListService::start_observed(&pg, None, FabricConfig::default(), Arc::clone(&obs));
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(5).collect();
        client.fetch(0, &owned).unwrap();
        let spans = obs.spans();
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::Fetch && s.part == 1 && s.arg == 0),
            "missing Fetch span: {spans:?}"
        );
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::Serve && s.part == 0),
            "missing Serve span: {spans:?}"
        );
        assert_eq!(obs.hist_snapshot(Metric::FetchLatencyNs).count, 1);
        assert_eq!(obs.hist_snapshot(Metric::BatchBytes).count, 1);
        assert_eq!(obs.hist_snapshot(Metric::WindowOccupancy).count, 1);
        // Batch-bytes histogram saw exactly the accounted response size.
        assert_eq!(
            obs.hist_snapshot(Metric::BatchBytes).sum,
            service.metrics().part(1).bytes_received()
        );
        service.shutdown();
    }

    #[test]
    fn observed_faults_and_retries_record_instants() {
        let (_, pg) = cluster(2, 1);
        let obs = Recorder::new(&gpm_obs::ObsConfig::enabled());
        let fabric = FabricConfig {
            retry: faulty_retry(),
            fault: Some(FaultPlan::drops(0.5)),
            ..FabricConfig::default()
        };
        let service = EdgeListService::start_observed(&pg, None, fabric, Arc::clone(&obs));
        let client = service.client(1);
        for &v in pg.part(0).owned().iter().take(20) {
            client.fetch(0, &[v]).unwrap();
        }
        let spans = obs.spans();
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::Fault && s.arg == 1),
            "missing Fault(drop) instant"
        );
        let retries = spans.iter().filter(|s| s.kind == SpanKind::Retry).count() as u64;
        assert_eq!(retries, service.metrics().total_retries());
        assert!(retries > 0);
        service.shutdown();
    }

    #[test]
    fn fetch_lifecycle_spans_share_one_link() {
        // Tentpole: issue, responder serve, and the completed fetch all
        // carry the same nonzero causal link, and distinct requests get
        // distinct links.
        let (_, pg) = cluster(2, 1);
        let obs = Recorder::new(&gpm_obs::ObsConfig::enabled());
        let service =
            EdgeListService::start_observed(&pg, None, FabricConfig::default(), Arc::clone(&obs));
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(2).collect();
        client.fetch(0, &owned[..1]).unwrap();
        client.fetch(0, &owned[1..]).unwrap();
        let spans = obs.spans();
        let mut links = Vec::new();
        for s in &spans {
            match s.kind {
                SpanKind::FetchIssue | SpanKind::Fetch | SpanKind::Serve => {
                    assert_ne!(s.link, 0, "unlinked lifecycle span: {s:?}");
                    links.push(s.link);
                }
                _ => {}
            }
        }
        links.sort_unstable();
        // Two requests × (issue + serve + fetch) = two groups of three.
        assert_eq!(links.len(), 6, "spans: {spans:?}");
        assert_eq!(links[0], links[2]);
        assert_eq!(links[3], links[5]);
        assert_ne!(links[0], links[3]);
        service.shutdown();
    }

    #[test]
    fn retry_spans_keep_the_original_link() {
        // Retries roll a fresh wire seq (the fault plan re-rolls per
        // seq) but the causal link must survive, so backoff time lands
        // on the right request in the critical path.
        let (_, pg) = cluster(2, 1);
        let obs = Recorder::new(&gpm_obs::ObsConfig::enabled());
        let fabric = FabricConfig {
            retry: faulty_retry(),
            fault: Some(FaultPlan::drops(0.5)),
            ..FabricConfig::default()
        };
        let service = EdgeListService::start_observed(&pg, None, fabric, Arc::clone(&obs));
        let client = service.client(1);
        for &v in pg.part(0).owned().iter().take(20) {
            client.fetch(0, &[v]).unwrap();
        }
        let spans = obs.spans();
        let retries: Vec<_> = spans.iter().filter(|s| s.kind == SpanKind::Retry).collect();
        assert!(!retries.is_empty(), "50% drops must force retries");
        for r in &retries {
            assert_ne!(r.link, 0, "retry span lost its link: {r:?}");
            assert!(
                spans.iter().any(|s| s.kind == SpanKind::Fetch && s.link == r.link),
                "retry link {} has no completed fetch",
                r.link
            );
            // The retry span covers the backoff sleep (500µs here).
            assert!(r.dur_ns >= 400_000, "retry span too short: {r:?}");
        }
        service.shutdown();
    }

    #[test]
    fn unobserved_service_records_nothing() {
        let (_, pg) = cluster(2, 1);
        let service = EdgeListService::start(&pg, None);
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        client.fetch(0, &[v]).unwrap();
        assert_eq!(service.recorder().spans_recorded(), 0);
        assert_eq!(service.recorder().hist_snapshot(Metric::FetchLatencyNs).count, 0);
        service.shutdown();
    }

    #[test]
    fn crashed_part_fails_over_to_a_replica_holder() {
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let fabric =
            FabricConfig { fault: Some(FaultPlan::crash_at(0, 3)), ..FabricConfig::default() };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(10).collect();
        // The crash fires on the fourth submission targeting part 0;
        // every fetch still succeeds, served by the replica holder.
        for &v in &owned {
            let lists = client.fetch(0, &[v]).unwrap();
            assert_eq!(lists.list(0), g.neighbors(v));
        }
        assert!(client.is_part_dead(0));
        assert_eq!(service.dead_parts(), vec![0]);
        let m = service.metrics();
        assert_eq!(m.parts_failed(), 1);
        assert!(m.total_rerouted_requests() >= 7, "{} rerouted", m.total_rerouted_requests());
        assert!(m.total_rerouted_bytes() > 0);
        service.shutdown();
    }

    #[test]
    fn dead_part_without_replica_is_a_typed_error() {
        let (_, pg) = cluster(2, 1); // replication 1: no holder to fail over to
        let fabric =
            FabricConfig { fault: Some(FaultPlan::crash_at(0, 2)), ..FabricConfig::default() };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let mut last = None;
        for &v in pg.part(0).owned().iter().take(5) {
            if let Err(e) = client.fetch(0, &[v]) {
                last = Some(e);
                break;
            }
        }
        let err = last.expect("crash never surfaced");
        assert_eq!(err, FetchError::PartDead { part: 0 });
        assert!(err.to_string().contains("dead"));
        assert!(client.is_part_dead(0));
        assert_eq!(service.metrics().parts_failed(), 1);
        service.shutdown();
    }

    #[test]
    fn fail_fast_promotes_after_exhausted_retries() {
        // With every reply dropped, fail_fast turns retry exhaustion
        // into promotion + failover instead of a Timeout error; once
        // every holder of the slice is promoted, the typed PartDead
        // error names the logical owner.
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 2, 1, 2);
        let fabric = FabricConfig {
            retry: RetryPolicy {
                max_attempts: 2,
                timeout: Duration::from_millis(5),
                backoff: Duration::from_micros(100),
            },
            fault: Some(FaultPlan::drops(1.0)),
            fail_fast: true,
            ..FabricConfig::default()
        };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        let err = client.fetch(0, &[v]).unwrap_err();
        assert_eq!(err, FetchError::PartDead { part: 0 });
        assert_eq!(service.metrics().parts_failed(), 2);
        assert!(client.is_part_dead(0) && client.is_part_dead(1));
        service.shutdown();
    }

    #[test]
    fn failover_records_failure_instants() {
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let obs = Recorder::new(&gpm_obs::ObsConfig::enabled());
        let fabric =
            FabricConfig { fault: Some(FaultPlan::crash_at(0, 1)), ..FabricConfig::default() };
        let service = EdgeListService::start_observed(&pg, None, fabric, Arc::clone(&obs));
        let client = service.client(2);
        for &v in pg.part(0).owned().iter().take(4) {
            client.fetch(0, &[v]).unwrap();
        }
        let spans = obs.spans();
        assert!(
            spans.iter().any(|s| s.kind == SpanKind::PartCrash && s.part == 0),
            "missing PartCrash instant: {spans:?}"
        );
        assert_eq!(
            spans.iter().filter(|s| s.kind == SpanKind::PartFailed && s.part == 0).count(),
            1,
            "PartFailed must be recorded exactly once"
        );
        let failover =
            spans.iter().find(|s| s.kind == SpanKind::Failover).expect("missing Failover instant");
        assert_eq!(failover.part, 0, "failover names the dead owner");
        assert_eq!(failover.arg, 2, "failover names the serving holder");
        assert_ne!(failover.link, 0, "failover instant keeps the request link");
        service.shutdown();
    }

    #[test]
    fn dead_owner_fetches_round_robin_across_live_holders() {
        // r = 3 on four parts: slice 0 is held by parts 3 and 2. With
        // part 0 dead, fetches for its slice must spread across both
        // holders instead of hammering the nearest hash-successor.
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 4, 1, 3);
        let fabric =
            FabricConfig { fault: Some(FaultPlan::crash_at(0, 0)), ..FabricConfig::default() };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let owned: Vec<VertexId> = pg.part(0).owned().iter().copied().take(20).collect();
        for &v in &owned {
            let lists = client.fetch(0, &[v]).unwrap();
            assert_eq!(lists.list(0), g.neighbors(v));
        }
        let m = service.metrics();
        let (s2, s3) =
            (m.part(2).rerouted_served_requests(), m.part(3).rerouted_served_requests());
        assert!(s2 > 0 && s3 > 0, "one holder starved: part2={s2} part3={s3}");
        let (b2, b3) = (m.part(2).rerouted_served_bytes(), m.part(3).rerouted_served_bytes());
        let max_share = b2.max(b3) as f64 / (b2 + b3) as f64;
        assert!(max_share <= 0.7, "holder hotspot: {b2} vs {b3} bytes ({max_share:.2})");
        // Issuer-side accounting still sees the union.
        assert_eq!(m.total_rerouted_requests(), s2 + s3);
        service.shutdown();
    }

    #[test]
    fn replicate_slice_restores_failover_after_total_holder_loss() {
        // r = 2 on three parts: slice 0's only holder is part 2. Crash
        // part 0, then part 2 — slice 0 is unreachable (PartDead). A
        // replica push installing the slice on part 1 restores service.
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let fabric = FabricConfig {
            fault: Some(FaultPlan {
                crashes: vec![
                    CrashAt { part: 0, after_requests: 0 },
                    CrashAt { part: 2, after_requests: 0 },
                ],
                ..FaultPlan::default()
            }),
            ..FabricConfig::default()
        };
        let service = EdgeListService::start_with(&pg, None, fabric);
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        // First fetch kills part 0 and fails over to holder 2 (killing
        // it too on arrival of the rerouted submission).
        let _ = client.fetch(0, &[v]);
        let err = client.fetch(0, &[v]).unwrap_err();
        assert_eq!(err, FetchError::PartDead { part: 0 });
        assert_eq!(service.live_copies(0), 0);
        let epoch0 = service.routing_epoch();
        // Re-replicate slice 0 onto the surviving part 1 and retry.
        let progress = AtomicU64::new(0);
        let streamed = service
            .replicate_slice(&pg.part_arc(0), 1, 64, &progress, Duration::ZERO)
            .expect("transfer");
        assert!(streamed > 0);
        assert_eq!(progress.load(Ordering::Relaxed), streamed);
        assert!(service.routing_epoch() > epoch0, "routing epoch not republished");
        assert_eq!(service.live_copies(0), 1);
        assert_eq!(service.live_holders(0), vec![1]);
        assert!(service.hosted_slices(1).contains(&0), "slice 0 not installed on part 1");
        let lists = client.fetch(0, &[v]).unwrap();
        assert_eq!(lists.list(0), g.neighbors(v));
        assert!(service.metrics().part(1).rerouted_served_requests() > 0);
        service.shutdown();
    }

    #[test]
    fn armed_route_waits_out_an_inflight_repair() {
        // With rebalance armed, a fetch that finds no live holder blocks
        // in the grace window and completes once the repair publishes a
        // restored holder — instead of surfacing PartDead mid-repair.
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let fabric = FabricConfig {
            fault: Some(FaultPlan {
                crashes: vec![
                    CrashAt { part: 0, after_requests: 0 },
                    CrashAt { part: 2, after_requests: 0 },
                ],
                ..FaultPlan::default()
            }),
            ..FabricConfig::default()
        };
        let service = Arc::new(EdgeListService::start_with(&pg, None, fabric));
        service.arm_rebalance();
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        let repairer = {
            let service = Arc::clone(&service);
            let src = pg.part_arc(0);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                let progress = AtomicU64::new(0);
                service.replicate_slice(&src, 1, 64, &progress, Duration::ZERO).expect("transfer");
            })
        };
        // This single fetch kills part 0, fails over to holder 2 (killing
        // it too), finds the slice holderless, waits out the repair in
        // the armed grace window, and completes served by part 1.
        let lists = client.fetch(0, &[v]).unwrap();
        assert_eq!(lists.list(0), g.neighbors(v));
        assert_eq!(service.live_holders(0), vec![1]);
        repairer.join().unwrap();
        service.shutdown();
    }

    #[test]
    fn marking_a_slice_lost_releases_armed_waiters_immediately() {
        let g = gen::erdos_renyi(200, 800, 7);
        let pg = PartitionedGraph::with_replication(&g, 3, 1, 2);
        let fabric = FabricConfig {
            fault: Some(FaultPlan {
                crashes: vec![
                    CrashAt { part: 0, after_requests: 0 },
                    CrashAt { part: 2, after_requests: 0 },
                ],
                ..FaultPlan::default()
            }),
            ..FabricConfig::default()
        };
        let service = Arc::new(EdgeListService::start_with(&pg, None, fabric));
        service.arm_rebalance();
        let client = service.client(1);
        let v = pg.part(0).owned()[0];
        let marker = {
            let service = Arc::clone(&service);
            std::thread::spawn(move || {
                std::thread::sleep(Duration::from_millis(100));
                service.mark_slice_lost(0);
            })
        };
        // The fetch kills both copies and enters the armed grace wait;
        // the rebalancer's lost verdict releases it typed well before
        // the grace clock would have run out.
        let t0 = Instant::now();
        let err = client.fetch(0, &[v]).unwrap_err();
        assert_eq!(err, FetchError::PartDead { part: 0 });
        assert!(t0.elapsed() < Duration::from_secs(2), "lost slice ran out the grace clock");
        marker.join().unwrap();
        service.shutdown();
    }

    #[test]
    fn coalesce_maps_duplicates() {
        let (wire, map) = coalesce(&[5, 7, 5, 9, 7]);
        assert_eq!(wire, vec![5, 7, 9]);
        assert_eq!(map, Some(vec![0, 1, 0, 2, 1]));
        let (wire, map) = coalesce(&[1, 2, 3]);
        assert_eq!(wire, vec![1, 2, 3]);
        assert_eq!(map, None);
        let (wire, map) = coalesce(&[]);
        assert!(wire.is_empty());
        assert_eq!(map, None);
    }
}
