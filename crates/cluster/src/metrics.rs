//! Per-part traffic and timing counters.
//!
//! Every message layer in the workspace reports into these counters, which
//! back the paper's network-traffic tables (Table 6, Figure 12, Figure 16,
//! Figure 17) and the utilization plot (Figure 19).

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

/// Classification of a transfer by topology distance.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TrafficClass {
    /// Between sockets of the same machine (NUMA interconnect).
    CrossSocket,
    /// Between machines (the actual network).
    CrossMachine,
}

/// Counters for one part. All methods are thread-safe.
#[derive(Debug, Default)]
pub struct PartMetrics {
    bytes_sent: AtomicU64,
    bytes_received: AtomicU64,
    cross_machine_bytes: AtomicU64,
    cross_socket_bytes: AtomicU64,
    requests: AtomicU64,
    served_requests: AtomicU64,
    served_bytes: AtomicU64,
    comm_wait_nanos: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    inflight: AtomicU64,
    inflight_peak: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    rerouted_requests: AtomicU64,
    rerouted_bytes: AtomicU64,
    rerouted_served_requests: AtomicU64,
    rerouted_served_bytes: AtomicU64,
    ctrl_sent: AtomicU64,
    ctrl_retried: AtomicU64,
    ctrl_dropped: AtomicU64,
}

impl PartMetrics {
    /// Records an outgoing request of `req_bytes` answered with
    /// `resp_bytes`, classified by distance.
    pub fn record_fetch(&self, class: TrafficClass, req_bytes: u64, resp_bytes: u64) {
        self.bytes_sent.fetch_add(req_bytes, Ordering::Relaxed);
        self.bytes_received.fetch_add(resp_bytes, Ordering::Relaxed);
        self.requests.fetch_add(1, Ordering::Relaxed);
        let total = req_bytes + resp_bytes;
        match class {
            TrafficClass::CrossMachine => {
                self.cross_machine_bytes.fetch_add(total, Ordering::Relaxed)
            }
            TrafficClass::CrossSocket => {
                self.cross_socket_bytes.fetch_add(total, Ordering::Relaxed)
            }
        };
    }

    /// Records that this part served a request of `bytes` response bytes.
    pub fn record_served(&self, bytes: u64) {
        self.served_requests.fetch_add(1, Ordering::Relaxed);
        self.served_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Adds blocking time spent waiting for remote data.
    pub fn record_wait(&self, d: Duration) {
        self.comm_wait_nanos.fetch_add(d.as_nanos() as u64, Ordering::Relaxed);
    }

    /// Records a software-cache hit (no fetch needed).
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a software-cache miss.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a request entering this part's in-flight window.
    pub fn record_inflight_start(&self) {
        let now = self.inflight.fetch_add(1, Ordering::Relaxed) + 1;
        self.inflight_peak.fetch_max(now, Ordering::Relaxed);
    }

    /// Records a request retiring from this part's in-flight window.
    ///
    /// Saturating: a completion racing a shutdown drain must not wrap the
    /// gauge to `u64::MAX` (that would report a permanently-full window).
    /// Debug builds assert on the mismatch so the race is still caught in
    /// tests.
    pub fn record_inflight_end(&self) {
        let prev = self
            .inflight
            .fetch_update(Ordering::Relaxed, Ordering::Relaxed, |v| Some(v.saturating_sub(1)))
            .expect("fetch_update closure always returns Some");
        debug_assert!(prev > 0, "inflight gauge underflow: end without matching start");
    }

    /// Records `n` vertices deduplicated out of a request before it hit
    /// the wire.
    pub fn record_coalesced(&self, n: u64) {
        self.coalesced.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one retried request attempt.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fetch of `bytes` (request + response) this part
    /// completed against a replica holder because the owning part was
    /// dead.
    pub fn record_rerouted(&self, bytes: u64) {
        self.rerouted_requests.fetch_add(1, Ordering::Relaxed);
        self.rerouted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a rerouted fetch of `bytes` that *this part served* from
    /// its hosted copy of a dead part's slice — the holder-side mirror
    /// of [`PartMetrics::record_rerouted`], split per serving holder so
    /// failover hotspotting is observable.
    pub fn record_rerouted_served(&self, bytes: u64) {
        self.rerouted_served_requests.fetch_add(1, Ordering::Relaxed);
        self.rerouted_served_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Bytes sent in requests by this part.
    pub fn bytes_sent(&self) -> u64 {
        self.bytes_sent.load(Ordering::Relaxed)
    }

    /// Bytes received in responses by this part.
    pub fn bytes_received(&self) -> u64 {
        self.bytes_received.load(Ordering::Relaxed)
    }

    /// Total bytes that crossed a machine boundary (both directions).
    pub fn cross_machine_bytes(&self) -> u64 {
        self.cross_machine_bytes.load(Ordering::Relaxed)
    }

    /// Total bytes that crossed only a socket boundary.
    pub fn cross_socket_bytes(&self) -> u64 {
        self.cross_socket_bytes.load(Ordering::Relaxed)
    }

    /// Number of fetch requests issued.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Number of requests served for other parts.
    pub fn served_requests(&self) -> u64 {
        self.served_requests.load(Ordering::Relaxed)
    }

    /// Response bytes served for other parts.
    pub fn served_bytes(&self) -> u64 {
        self.served_bytes.load(Ordering::Relaxed)
    }

    /// Total time this part's threads blocked on communication.
    pub fn comm_wait(&self) -> Duration {
        Duration::from_nanos(self.comm_wait_nanos.load(Ordering::Relaxed))
    }

    /// Cache hits recorded by this part.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses recorded by this part.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Requests currently occupying this part's in-flight window.
    pub fn inflight(&self) -> u64 {
        self.inflight.load(Ordering::Relaxed)
    }

    /// Deepest the in-flight window ever got on this part.
    pub fn peak_inflight(&self) -> u64 {
        self.inflight_peak.load(Ordering::Relaxed)
    }

    /// Vertices saved from the wire by request coalescing.
    pub fn coalesced_requests(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Request attempts beyond the first (timeout/fault recovery).
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Fetches this part completed against a replica holder of a dead
    /// part.
    pub fn rerouted_requests(&self) -> u64 {
        self.rerouted_requests.load(Ordering::Relaxed)
    }

    /// Bytes (request + response) of this part's rerouted fetches.
    pub fn rerouted_bytes(&self) -> u64 {
        self.rerouted_bytes.load(Ordering::Relaxed)
    }

    /// Rerouted fetches this part served from a hosted replica of a
    /// dead part's slice.
    pub fn rerouted_served_requests(&self) -> u64 {
        self.rerouted_served_requests.load(Ordering::Relaxed)
    }

    /// Bytes (request + response) of rerouted fetches this part served.
    pub fn rerouted_served_bytes(&self) -> u64 {
        self.rerouted_served_bytes.load(Ordering::Relaxed)
    }

    /// Records one control-plane message attempt sent by this part.
    pub fn record_ctrl_sent(&self) {
        self.ctrl_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried control-plane message attempt.
    pub fn record_ctrl_retry(&self) {
        self.ctrl_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one control-plane message dropped by fault injection.
    pub fn record_ctrl_dropped(&self) {
        self.ctrl_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Control-plane message attempts sent by this part.
    pub fn ctrl_sent(&self) -> u64 {
        self.ctrl_sent.load(Ordering::Relaxed)
    }

    /// Control-plane attempts beyond the first (timeout/fault recovery).
    pub fn ctrl_retried(&self) -> u64 {
        self.ctrl_retried.load(Ordering::Relaxed)
    }

    /// Control-plane messages dropped by the fault plan.
    pub fn ctrl_dropped(&self) -> u64 {
        self.ctrl_dropped.load(Ordering::Relaxed)
    }
}

/// Traffic counters attributed to one query of a multi-tenant run.
///
/// Part counters ([`PartMetrics`]) answer "what did this part do"; query
/// counters answer "what did this *query* cost", summed over every part
/// that worked on it. The fabric records each event into both, so a
/// resident engine interleaving several queries on one shared worker
/// pool can still report per-tenant traffic exactly — no before/after
/// snapshot deltas, which would misattribute a concurrent neighbour's
/// bytes.
#[derive(Debug, Default)]
pub struct QueryMetrics {
    requests: AtomicU64,
    network_bytes: AtomicU64,
    cross_socket_bytes: AtomicU64,
    cache_hits: AtomicU64,
    cache_misses: AtomicU64,
    coalesced: AtomicU64,
    retries: AtomicU64,
    rerouted_requests: AtomicU64,
    rerouted_bytes: AtomicU64,
    ctrl_sent: AtomicU64,
    ctrl_retried: AtomicU64,
    ctrl_dropped: AtomicU64,
}

impl QueryMetrics {
    /// Records a completed fetch of `req_bytes + resp_bytes`, classified
    /// by topology distance.
    pub fn record_fetch(&self, class: TrafficClass, req_bytes: u64, resp_bytes: u64) {
        self.requests.fetch_add(1, Ordering::Relaxed);
        let total = req_bytes + resp_bytes;
        match class {
            TrafficClass::CrossMachine => self.network_bytes.fetch_add(total, Ordering::Relaxed),
            TrafficClass::CrossSocket => {
                self.cross_socket_bytes.fetch_add(total, Ordering::Relaxed)
            }
        };
    }

    /// Records a software-cache hit attributed to this query.
    pub fn record_cache_hit(&self) {
        self.cache_hits.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a software-cache miss attributed to this query.
    pub fn record_cache_miss(&self) {
        self.cache_misses.fetch_add(1, Ordering::Relaxed);
    }

    /// Records `n` vertices coalesced out of this query's requests.
    pub fn record_coalesced(&self, n: u64) {
        self.coalesced.fetch_add(n, Ordering::Relaxed);
    }

    /// Records one retried request attempt by this query.
    pub fn record_retry(&self) {
        self.retries.fetch_add(1, Ordering::Relaxed);
    }

    /// Records a fetch of `bytes` this query completed against a replica
    /// holder because the owning part was dead.
    pub fn record_rerouted(&self, bytes: u64) {
        self.rerouted_requests.fetch_add(1, Ordering::Relaxed);
        self.rerouted_bytes.fetch_add(bytes, Ordering::Relaxed);
    }

    /// Fetch requests issued on behalf of this query.
    pub fn requests(&self) -> u64 {
        self.requests.load(Ordering::Relaxed)
    }

    /// Cross-machine bytes moved for this query (both directions).
    pub fn network_bytes(&self) -> u64 {
        self.network_bytes.load(Ordering::Relaxed)
    }

    /// Cross-socket bytes moved for this query.
    pub fn cross_socket_bytes(&self) -> u64 {
        self.cross_socket_bytes.load(Ordering::Relaxed)
    }

    /// Cache hits attributed to this query.
    pub fn cache_hits(&self) -> u64 {
        self.cache_hits.load(Ordering::Relaxed)
    }

    /// Cache misses attributed to this query.
    pub fn cache_misses(&self) -> u64 {
        self.cache_misses.load(Ordering::Relaxed)
    }

    /// Vertices saved from the wire by coalescing for this query.
    pub fn coalesced_requests(&self) -> u64 {
        self.coalesced.load(Ordering::Relaxed)
    }

    /// Request attempts beyond the first for this query.
    pub fn retries(&self) -> u64 {
        self.retries.load(Ordering::Relaxed)
    }

    /// Fetches of this query completed against replica holders.
    pub fn rerouted_requests(&self) -> u64 {
        self.rerouted_requests.load(Ordering::Relaxed)
    }

    /// Bytes (request + response) of this query's rerouted fetches.
    pub fn rerouted_bytes(&self) -> u64 {
        self.rerouted_bytes.load(Ordering::Relaxed)
    }

    /// Records one control-plane message attempt by this query.
    pub fn record_ctrl_sent(&self) {
        self.ctrl_sent.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one retried control-plane attempt by this query.
    pub fn record_ctrl_retry(&self) {
        self.ctrl_retried.fetch_add(1, Ordering::Relaxed);
    }

    /// Records one control-plane message of this query dropped by fault
    /// injection.
    pub fn record_ctrl_dropped(&self) {
        self.ctrl_dropped.fetch_add(1, Ordering::Relaxed);
    }

    /// Control-plane message attempts sent for this query.
    pub fn ctrl_sent(&self) -> u64 {
        self.ctrl_sent.load(Ordering::Relaxed)
    }

    /// Control-plane attempts beyond the first for this query.
    pub fn ctrl_retried(&self) -> u64 {
        self.ctrl_retried.load(Ordering::Relaxed)
    }

    /// Control-plane messages of this query dropped by the fault plan.
    pub fn ctrl_dropped(&self) -> u64 {
        self.ctrl_dropped.load(Ordering::Relaxed)
    }
}

/// Aggregated metrics for all parts of a cluster.
#[derive(Debug, Clone)]
pub struct ClusterMetrics {
    parts: Vec<Arc<PartMetrics>>,
    /// Row-major `parts × parts` byte counters: `links[from*n + to]`.
    links: Arc<Vec<AtomicU64>>,
    /// Parts promoted to the fail-stop dead state by the fabric.
    parts_failed: Arc<AtomicU64>,
    /// Per-query counter registry, keyed by engine-assigned query id.
    queries: Arc<parking_lot::Mutex<HashMap<u64, Arc<QueryMetrics>>>>,
    sockets_per_machine: usize,
}

impl ClusterMetrics {
    /// Fresh counters for `parts` parts.
    pub fn new(parts: usize, sockets_per_machine: usize) -> Self {
        ClusterMetrics {
            parts: (0..parts).map(|_| Arc::new(PartMetrics::default())).collect(),
            links: Arc::new((0..parts * parts).map(|_| AtomicU64::new(0)).collect()),
            parts_failed: Arc::new(AtomicU64::new(0)),
            queries: Arc::new(parking_lot::Mutex::new(HashMap::new())),
            sockets_per_machine,
        }
    }

    /// Counters of one query, created on first use. The registry is
    /// shared by clones, so a fabric client and the engine resolve the
    /// same counters for the same id. Query id 0 is the conventional
    /// "unattributed" bucket used by legacy single-query paths.
    pub fn query(&self, query_id: u64) -> Arc<QueryMetrics> {
        Arc::clone(
            self.queries
                .lock()
                .entry(query_id)
                .or_insert_with(|| Arc::new(QueryMetrics::default())),
        )
    }

    /// Drops one query's counters from the registry (a resident service
    /// calls this after folding them into the query's report, so the
    /// registry doesn't grow without bound).
    pub fn retire_query(&self, query_id: u64) {
        self.queries.lock().remove(&query_id);
    }

    /// Records that a part was promoted to the fail-stop dead state.
    pub fn record_part_failed(&self) {
        self.parts_failed.fetch_add(1, Ordering::Relaxed);
    }

    /// Number of parts promoted to the fail-stop dead state.
    pub fn parts_failed(&self) -> u64 {
        self.parts_failed.load(Ordering::Relaxed)
    }

    /// Records `bytes` moved over the directed link `from → to`.
    pub fn record_link(&self, from: usize, to: usize, bytes: u64) {
        let n = self.parts.len();
        self.links[from * n + to].fetch_add(bytes, Ordering::Relaxed);
    }

    /// The `parts × parts` traffic matrix (row = sender).
    ///
    /// Used to diagnose link balance — circulant scheduling (§4.3)
    /// spreads a chunk's fetches across all links instead of hammering
    /// one owner at a time.
    pub fn link_matrix(&self) -> Vec<Vec<u64>> {
        let n = self.parts.len();
        (0..n)
            .map(|f| (0..n).map(|t| self.links[f * n + t].load(Ordering::Relaxed)).collect())
            .collect()
    }

    /// `(max, min)` over the non-diagonal links with any traffic — a
    /// quick imbalance indicator.
    pub fn link_spread(&self) -> Option<(u64, u64)> {
        let m = self.link_matrix();
        let flows: Vec<u64> = m
            .iter()
            .enumerate()
            .flat_map(|(f, row)| {
                row.iter().enumerate().filter(move |(t, _)| *t != f).map(|(_, &b)| b)
            })
            .filter(|&b| b > 0)
            .collect();
        match (flows.iter().max(), flows.iter().min()) {
            (Some(&max), Some(&min)) => Some((max, min)),
            _ => None,
        }
    }

    /// Number of parts tracked.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Sockets per machine (for traffic classification).
    pub fn sockets_per_machine(&self) -> usize {
        self.sockets_per_machine
    }

    /// Counters of one part.
    ///
    /// # Panics
    ///
    /// Panics if `part` is out of range.
    pub fn part(&self, part: usize) -> &Arc<PartMetrics> {
        &self.parts[part]
    }

    /// Classifies a transfer between two parts.
    pub fn classify(&self, from: usize, to: usize) -> TrafficClass {
        if from / self.sockets_per_machine == to / self.sockets_per_machine {
            TrafficClass::CrossSocket
        } else {
            TrafficClass::CrossMachine
        }
    }

    /// Sum of cross-machine bytes over all parts — the paper's "network
    /// traffic" metric.
    pub fn total_network_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.cross_machine_bytes()).sum()
    }

    /// Sum of cross-socket bytes over all parts.
    pub fn total_cross_socket_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.cross_socket_bytes()).sum()
    }

    /// Total fetch requests issued cluster-wide.
    pub fn total_requests(&self) -> u64 {
        self.parts.iter().map(|p| p.requests()).sum()
    }

    /// Total vertices saved from the wire by coalescing, cluster-wide.
    pub fn total_coalesced(&self) -> u64 {
        self.parts.iter().map(|p| p.coalesced_requests()).sum()
    }

    /// Total retried request attempts, cluster-wide.
    pub fn total_retries(&self) -> u64 {
        self.parts.iter().map(|p| p.retries()).sum()
    }

    /// Total fetches completed against replica holders of dead parts.
    pub fn total_rerouted_requests(&self) -> u64 {
        self.parts.iter().map(|p| p.rerouted_requests()).sum()
    }

    /// Total bytes of rerouted fetches, cluster-wide.
    pub fn total_rerouted_bytes(&self) -> u64 {
        self.parts.iter().map(|p| p.rerouted_bytes()).sum()
    }

    /// Total control-plane message attempts sent, cluster-wide.
    pub fn total_ctrl_sent(&self) -> u64 {
        self.parts.iter().map(|p| p.ctrl_sent()).sum()
    }

    /// Total retried control-plane attempts, cluster-wide.
    pub fn total_ctrl_retried(&self) -> u64 {
        self.parts.iter().map(|p| p.ctrl_retried()).sum()
    }

    /// Total control-plane messages dropped by fault injection.
    pub fn total_ctrl_dropped(&self) -> u64 {
        self.parts.iter().map(|p| p.ctrl_dropped()).sum()
    }

    /// Deepest in-flight window depth observed on any part.
    pub fn peak_inflight(&self) -> u64 {
        self.parts.iter().map(|p| p.peak_inflight()).max().unwrap_or(0)
    }

    /// One coherent-enough copy of every cumulative cluster counter, for
    /// windowed rollups: each field is a relaxed load, so the snapshot is
    /// not a single atomic cut, but every counter is individually exact
    /// and monotone — which is all a delta ring needs.
    pub fn counter_snapshot(&self) -> CounterSnapshot {
        let (hits, misses) =
            self.parts.iter().fold((0, 0), |(h, m), p| (h + p.cache_hits(), m + p.cache_misses()));
        CounterSnapshot {
            requests: self.total_requests(),
            network_bytes: self.total_network_bytes(),
            numa_bytes: self.total_cross_socket_bytes(),
            cache_hits: hits,
            cache_misses: misses,
            coalesced: self.total_coalesced(),
            retries: self.total_retries(),
            rerouted_requests: self.total_rerouted_requests(),
            rerouted_bytes: self.total_rerouted_bytes(),
            served_requests: self.parts.iter().map(|p| p.served_requests()).sum(),
            served_bytes: self.parts.iter().map(|p| p.served_bytes()).sum(),
            ctrl_sent: self.total_ctrl_sent(),
            ctrl_retried: self.total_ctrl_retried(),
            ctrl_dropped: self.total_ctrl_dropped(),
        }
    }

    /// Total blocking communication time summed over parts.
    pub fn total_comm_wait(&self) -> Duration {
        self.parts.iter().map(|p| p.comm_wait()).sum()
    }

    /// Cluster-wide cache hit rate in `[0, 1]`, or `None` if no lookups.
    pub fn cache_hit_rate(&self) -> Option<f64> {
        let hits: u64 = self.parts.iter().map(|p| p.cache_hits()).sum();
        let misses: u64 = self.parts.iter().map(|p| p.cache_misses()).sum();
        let total = hits + misses;
        (total > 0).then(|| hits as f64 / total as f64)
    }

    /// Network utilization over a run of `elapsed` wall-clock time on a
    /// cluster whose per-machine links follow `model`: achieved bytes/s
    /// divided by aggregate available bandwidth.
    pub fn network_utilization(
        &self,
        elapsed: Duration,
        model: &crate::NetworkModel,
        machines: usize,
    ) -> f64 {
        if elapsed.is_zero() || machines == 0 {
            return 0.0;
        }
        let achieved_bits = self.total_network_bytes() as f64 * 8.0;
        let available = model.bandwidth_gbps * 1e9 * elapsed.as_secs_f64() * machines as f64;
        (achieved_bits / available).min(1.0)
    }
}

/// Cumulative cluster-wide counter totals at one point in time, in a
/// fixed order ([`CounterSnapshot::NAMES`]) so a rollup ring can consume
/// them positionally. All values are monotone counters.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub struct CounterSnapshot {
    /// Fetch requests issued cluster-wide.
    pub requests: u64,
    /// Cross-machine bytes moved.
    pub network_bytes: u64,
    /// Cross-socket (same-machine) bytes moved.
    pub numa_bytes: u64,
    /// Static-cache hits.
    pub cache_hits: u64,
    /// Static-cache misses.
    pub cache_misses: u64,
    /// Vertices coalesced into already-pending fetches.
    pub coalesced: u64,
    /// Retried request attempts.
    pub retries: u64,
    /// Fetches re-routed to replica holders of dead parts.
    pub rerouted_requests: u64,
    /// Bytes moved by re-routed fetches.
    pub rerouted_bytes: u64,
    /// Requests served for other parts.
    pub served_requests: u64,
    /// Response bytes served for other parts.
    pub served_bytes: u64,
    /// Control-plane message attempts sent.
    pub ctrl_sent: u64,
    /// Retried control-plane attempts.
    pub ctrl_retried: u64,
    /// Control-plane messages dropped by fault injection.
    pub ctrl_dropped: u64,
}

impl CounterSnapshot {
    /// Counter names, matching [`CounterSnapshot::as_array`] order.
    pub const NAMES: [&'static str; 14] = [
        "fetch_requests",
        "network_bytes",
        "numa_bytes",
        "cache_hits",
        "cache_misses",
        "coalesced_requests",
        "retries",
        "rerouted_requests",
        "rerouted_bytes",
        "served_requests",
        "served_bytes",
        "ctrl_sent",
        "ctrl_retried",
        "ctrl_dropped",
    ];

    /// The counters as a positional array in [`CounterSnapshot::NAMES`]
    /// order, ready for `Rollup::push`.
    pub fn as_array(&self) -> [u64; 14] {
        [
            self.requests,
            self.network_bytes,
            self.numa_bytes,
            self.cache_hits,
            self.cache_misses,
            self.coalesced,
            self.retries,
            self.rerouted_requests,
            self.rerouted_bytes,
            self.served_requests,
            self.served_bytes,
            self.ctrl_sent,
            self.ctrl_retried,
            self.ctrl_dropped,
        ]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fetch_recording_and_aggregation() {
        let m = ClusterMetrics::new(4, 2);
        m.part(0).record_fetch(TrafficClass::CrossMachine, 100, 900);
        m.part(1).record_fetch(TrafficClass::CrossSocket, 50, 450);
        assert_eq!(m.part(0).bytes_sent(), 100);
        assert_eq!(m.part(0).bytes_received(), 900);
        assert_eq!(m.total_network_bytes(), 1000);
        assert_eq!(m.total_cross_socket_bytes(), 500);
        assert_eq!(m.total_requests(), 2);
    }

    #[test]
    fn classification_by_machine() {
        let m = ClusterMetrics::new(4, 2);
        assert_eq!(m.classify(0, 1), TrafficClass::CrossSocket);
        assert_eq!(m.classify(0, 2), TrafficClass::CrossMachine);
        assert_eq!(m.classify(3, 2), TrafficClass::CrossSocket);
        let m1 = ClusterMetrics::new(4, 1);
        assert_eq!(m1.classify(0, 1), TrafficClass::CrossMachine);
    }

    #[test]
    fn wait_time_accumulates() {
        let m = ClusterMetrics::new(1, 1);
        m.part(0).record_wait(Duration::from_millis(3));
        m.part(0).record_wait(Duration::from_millis(4));
        assert_eq!(m.total_comm_wait(), Duration::from_millis(7));
    }

    #[test]
    fn cache_hit_rate() {
        let m = ClusterMetrics::new(2, 1);
        assert_eq!(m.cache_hit_rate(), None);
        m.part(0).record_cache_hit();
        m.part(0).record_cache_hit();
        m.part(1).record_cache_miss();
        assert!((m.cache_hit_rate().unwrap() - 2.0 / 3.0).abs() < 1e-9);
    }

    #[test]
    fn link_matrix_accumulates_per_pair() {
        let m = ClusterMetrics::new(3, 1);
        m.record_link(0, 1, 100);
        m.record_link(0, 1, 50);
        m.record_link(2, 0, 7);
        let lm = m.link_matrix();
        assert_eq!(lm[0][1], 150);
        assert_eq!(lm[2][0], 7);
        assert_eq!(lm[1][2], 0);
        assert_eq!(m.link_spread(), Some((150, 7)));
    }

    #[test]
    fn fabric_counters_accumulate() {
        let m = ClusterMetrics::new(2, 1);
        m.part(0).record_inflight_start();
        m.part(0).record_inflight_start();
        assert_eq!(m.part(0).inflight(), 2);
        m.part(0).record_inflight_end();
        assert_eq!(m.part(0).inflight(), 1);
        assert_eq!(m.part(0).peak_inflight(), 2);
        assert_eq!(m.peak_inflight(), 2);
        m.part(1).record_coalesced(3);
        m.part(1).record_retry();
        m.part(1).record_retry();
        assert_eq!(m.total_coalesced(), 3);
        assert_eq!(m.total_retries(), 2);
    }

    #[test]
    fn counter_snapshot_mirrors_the_totals_positionally() {
        let m = ClusterMetrics::new(4, 2);
        m.part(0).record_fetch(TrafficClass::CrossMachine, 100, 900);
        m.part(1).record_fetch(TrafficClass::CrossSocket, 50, 450);
        m.part(0).record_cache_hit();
        m.part(1).record_cache_miss();
        m.part(1).record_coalesced(3);
        m.part(2).record_retry();
        m.part(2).record_served(64);
        let snap = m.counter_snapshot();
        assert_eq!(snap.requests, m.total_requests());
        assert_eq!(snap.network_bytes, m.total_network_bytes());
        assert_eq!(snap.numa_bytes, m.total_cross_socket_bytes());
        assert_eq!((snap.cache_hits, snap.cache_misses), (1, 1));
        assert_eq!((snap.coalesced, snap.retries), (3, 1));
        assert_eq!((snap.served_requests, snap.served_bytes), (1, 64));
        // The array view lines up with NAMES, name for value.
        let arr = snap.as_array();
        assert_eq!(arr.len(), CounterSnapshot::NAMES.len());
        let idx = CounterSnapshot::NAMES.iter().position(|n| *n == "network_bytes").unwrap();
        assert_eq!(arr[idx], snap.network_bytes);
    }

    #[cfg(debug_assertions)]
    #[test]
    #[should_panic(expected = "inflight gauge underflow")]
    fn unmatched_inflight_end_asserts_in_debug() {
        let m = PartMetrics::default();
        m.record_inflight_end();
    }

    #[cfg(not(debug_assertions))]
    #[test]
    fn unmatched_inflight_end_saturates_in_release() {
        let m = PartMetrics::default();
        m.record_inflight_end();
        assert_eq!(m.inflight(), 0, "gauge must saturate at zero, not wrap");
        m.record_inflight_start();
        assert_eq!(m.inflight(), 1);
    }

    #[test]
    fn failure_counters_accumulate() {
        let m = ClusterMetrics::new(3, 1);
        assert_eq!(m.parts_failed(), 0);
        m.record_part_failed();
        assert_eq!(m.parts_failed(), 1);
        // The counter is shared by clones, like the link matrix.
        assert_eq!(m.clone().parts_failed(), 1);
        m.part(1).record_rerouted(512);
        m.part(2).record_rerouted(100);
        assert_eq!(m.part(1).rerouted_requests(), 1);
        assert_eq!(m.part(1).rerouted_bytes(), 512);
        assert_eq!(m.total_rerouted_requests(), 2);
        assert_eq!(m.total_rerouted_bytes(), 612);
    }

    #[test]
    fn query_counters_are_shared_and_retire() {
        let m = ClusterMetrics::new(2, 1);
        let q = m.query(7);
        q.record_fetch(TrafficClass::CrossMachine, 100, 900);
        q.record_fetch(TrafficClass::CrossSocket, 10, 90);
        q.record_cache_hit();
        q.record_cache_miss();
        q.record_coalesced(5);
        q.record_retry();
        q.record_rerouted(256);
        // A clone resolves the same counters for the same id.
        let same = m.clone().query(7);
        assert_eq!(same.requests(), 2);
        assert_eq!(same.network_bytes(), 1000);
        assert_eq!(same.cross_socket_bytes(), 100);
        assert_eq!(same.cache_hits(), 1);
        assert_eq!(same.cache_misses(), 1);
        assert_eq!(same.coalesced_requests(), 5);
        assert_eq!(same.retries(), 1);
        assert_eq!(same.rerouted_requests(), 1);
        assert_eq!(same.rerouted_bytes(), 256);
        // Distinct ids get distinct counters.
        assert_eq!(m.query(8).requests(), 0);
        // Retiring drops the counters; re-resolving starts fresh.
        m.retire_query(7);
        assert_eq!(m.query(7).requests(), 0);
    }

    #[test]
    fn link_spread_empty_when_no_traffic() {
        assert_eq!(ClusterMetrics::new(2, 1).link_spread(), None);
    }

    #[test]
    fn utilization_bounded() {
        let m = ClusterMetrics::new(2, 1);
        m.part(0).record_fetch(TrafficClass::CrossMachine, 0, 7_000_000);
        let model = crate::NetworkModel::infiniband_56g();
        let u = m.network_utilization(Duration::from_millis(10), &model, 2);
        assert!(u > 0.0 && u <= 1.0, "{u}");
        assert_eq!(m.network_utilization(Duration::ZERO, &model, 2), 0.0);
    }
}
