//! Application-level integration tests.

use gpm_apps::counting::{motif_count, motif_count_noninduced};
use gpm_apps::fsm::{fsm_single, FsmConfig};
use gpm_graph::partition::PartitionedGraph;
use gpm_graph::{gen, GraphBuilder};
use gpm_pattern::plan::PlanOptions;
use gpm_pattern::{interp, iso};
use khuzdul::{Engine, EngineConfig};

fn engine(g: &gpm_graph::Graph, machines: usize) -> Engine {
    Engine::new(PartitionedGraph::new(g, machines, 1), EngineConfig::default())
}

#[test]
fn motif_identity_sum_of_noninduced_counts() {
    // Non-induced count of pattern p == Σ_q copies(p in q) × induced(q):
    // the inclusion–exclusion identity the GraphPi-style route relies on,
    // checked end to end against direct engine counts.
    let g = gen::barabasi_albert(120, 4, 31);
    let e = engine(&g, 3);
    let induced = motif_count(&e, 4, &PlanOptions::automine()).unwrap();
    for p in gpm_pattern::genpat::connected_patterns(4) {
        let plan = gpm_pattern::plan::MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
        let noninduced = e.count(&plan).count;
        let via_identity: u64 = induced
            .per_pattern
            .iter()
            .map(|(q, c)| {
                let mut b = GraphBuilder::new(q.size());
                for (u, v) in q.edges() {
                    b.add_edge(u as u32, v as u32);
                }
                gpm_pattern::oracle::count_subgraphs(&b.build(), &p, false) * c
            })
            .sum();
        assert_eq!(noninduced, via_identity, "identity fails for {p}");
    }
    e.shutdown();
}

#[test]
fn motif_routes_agree_on_five_motifs() {
    let g = gen::erdos_renyi(35, 130, 21);
    let e = engine(&g, 2);
    let direct = motif_count(&e, 5, &PlanOptions::automine()).unwrap();
    let via = motif_count_noninduced(&e, 5, &PlanOptions::graphpi()).unwrap();
    e.shutdown();
    assert_eq!(direct.per_pattern.len(), 21);
    for ((p, a), (_, b)) in direct.per_pattern.iter().zip(&via.per_pattern) {
        assert_eq!(a, b, "5-motif mismatch for {p}");
    }
}

#[test]
fn fsm_results_monotone_in_max_edges() {
    let g = gen::with_random_labels(&gen::erdos_renyi(70, 280, 9), 2, 4);
    let small =
        fsm_single(&g, &FsmConfig { support_threshold: 8, max_edges: 1, ..FsmConfig::default() });
    let large =
        fsm_single(&g, &FsmConfig { support_threshold: 8, max_edges: 3, ..FsmConfig::default() });
    let codes = |r: &gpm_apps::fsm::FsmResult| -> std::collections::HashSet<Vec<u8>> {
        r.frequent.iter().map(|(p, _)| iso::canonical_code(p)).collect()
    };
    assert!(codes(&small).is_subset(&codes(&large)));
    assert!(large.evaluated >= small.evaluated);
}

#[test]
fn fsm_single_edge_patterns_match_direct_counts() {
    // MNI support of a labeled edge (a)-(b), a != b: number of distinct
    // endpoints on the rarer side == min over the two image sets, which
    // can be computed directly from the adjacency.
    let g = gen::with_random_labels(&gen::erdos_renyi(50, 200, 2), 2, 6);
    let res =
        fsm_single(&g, &FsmConfig { support_threshold: 1, max_edges: 1, ..FsmConfig::default() });
    for (p, support) in &res.frequent {
        let [la, lb] = [p.label(0).unwrap(), p.label(1).unwrap()];
        let mut img_a = std::collections::HashSet::new();
        let mut img_b = std::collections::HashSet::new();
        for (u, v) in g.edges() {
            for (x, y) in [(u, v), (v, u)] {
                if g.label(x) == Some(la) && g.label(y) == Some(lb) {
                    img_a.insert(x);
                    img_b.insert(y);
                }
            }
        }
        let expect = img_a.len().min(img_b.len()) as u64;
        assert_eq!(*support, expect, "support mismatch for labels {la},{lb}");
    }
}

#[test]
fn labeled_motifs_through_the_engine() {
    // Vertex-labeled triangle census: sum over ordered label choices of
    // labeled-triangle counts equals the unlabeled triangle count.
    let g = gen::with_random_labels(&gen::erdos_renyi(60, 260, 14), 2, 3);
    let e = engine(&g, 2);
    let total = {
        let plan = gpm_pattern::plan::MatchingPlan::compile(
            &gpm_pattern::Pattern::triangle(),
            &PlanOptions::automine(),
        )
        .unwrap();
        e.count(&plan).count
    };
    let mut labeled_sum = 0u64;
    let mut seen = std::collections::HashSet::new();
    for a in 0..2u16 {
        for b in 0..2u16 {
            for c in 0..2u16 {
                let p = gpm_pattern::Pattern::triangle().with_labels(vec![a, b, c]).unwrap();
                if !seen.insert(iso::canonical_code(&p)) {
                    continue;
                }
                let plan =
                    gpm_pattern::plan::MatchingPlan::compile(&p, &PlanOptions::automine()).unwrap();
                labeled_sum += e.count(&plan).count;
            }
        }
    }
    e.shutdown();
    assert_eq!(labeled_sum, total);
}

#[test]
fn cli_and_library_agree() {
    let g = gen::barabasi_albert(150, 4, 44);
    let dir = std::env::temp_dir().join("gpm_cli_it.txt");
    gpm_graph::io::write_edge_list_text(&g, std::fs::File::create(&dir).unwrap()).unwrap();
    let out = gpm_apps::cli::run(&[
        "--graph".into(),
        dir.to_str().unwrap().into(),
        "--pattern".into(),
        "triangle".into(),
        "--machines".into(),
        "2".into(),
        "--quiet".into(),
    ])
    .unwrap();
    let plan = gpm_pattern::plan::MatchingPlan::compile(
        &gpm_pattern::Pattern::triangle(),
        &PlanOptions::automine(),
    )
    .unwrap();
    assert_eq!(out.trim().parse::<u64>().unwrap(), interp::count_embeddings(&g, &plan));
    let _ = std::fs::remove_file(dir);
}
