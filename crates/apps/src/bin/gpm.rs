//! `gpm` — command-line pattern mining over the simulated cluster.
//!
//! ```text
//! Usage: gpm [OPTIONS]
//!
//!   --graph <path>        load a SNAP text (or .bin) edge list
//!   --gen <spec>          or generate: ba:N,M[,SEED] | er:N,M[,SEED] |
//!                         rmat:SCALE,EF[,SEED] | dataset:ABBR
//!   --pattern <spec>      triangle | clique:K | path:K | cycle:K |
//!                         star:K | house | diamond | edges:0-1,1-2,...
//!   --system <name>       khuzdul-automine (default) | khuzdul-graphpi |
//!                         gthinker | replicated | ctd | single
//!   --machines <N>        simulated machines (default 4)
//!   --sockets <S>         NUMA sockets per machine (default 1)
//!   --threads <T>         compute threads per part (default 2)
//!   --induced             induced (exact) matching
//!   --quiet               print only the count
//! ```
//!
//! Example: `gpm --gen ba:20000,8 --pattern clique:4 --machines 8`

use gpm_apps::cli;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match cli::run(&args) {
        Ok(report) => print!("{report}"),
        Err(e) => {
            eprintln!("error: {e}");
            eprintln!("run with --help for usage");
            std::process::exit(2);
        }
    }
}
