//! GPM applications on top of the Khuzdul engine (the paper's §7.1
//! evaluation workloads).
//!
//! * [`counting`] — Triangle Counting (TC), k-Clique Counting (k-CC,
//!   including the orientation-optimized variant used for the large-graph
//!   study), and k-Motif Counting (k-MC);
//! * [`fsm`] — Frequent Subgraph Mining with minimum-image (MNI) support
//!   over labeled graphs, growing candidate patterns edge by edge up to
//!   three edges (the paper's Table 4 methodology, following Peregrine);
//! * [`dynamic`] — incremental counting under edge insertions (the
//!   Tesseract-style evolving-graph capability the paper's related work
//!   discusses);
//! * [`cli`] — the `gpm` command-line tool.

#![warn(missing_docs)]

pub mod cli;
pub mod counting;
pub mod dynamic;
pub mod fsm;
