//! Implementation of the `gpm` command-line tool: argument parsing,
//! graph/pattern specification grammar, and run reporting.
//!
//! Kept as a library module so the grammar is unit-testable; the `gpm`
//! binary is a thin wrapper over [`run`].

use gpm_baselines::ctd::CtdCluster;
use gpm_baselines::gthinker::{GThinker, GThinkerConfig};
use gpm_baselines::replicated::{ReplicatedCluster, ReplicatedConfig};
use gpm_baselines::single::SingleMachine;
use gpm_graph::datasets::DatasetId;
use gpm_graph::partition::PartitionedGraph;
use gpm_graph::{gen, Graph};
use gpm_obs::{DiffThresholds, Recorder, RunReport, REPORT_SCHEMA_VERSION};
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::Pattern;
use khuzdul::{
    ControlConfig, ControlMode, CrashAt, Engine, EngineConfig, FabricConfig, FaultPlan,
    IncidentConfig, MiningService, ObsConfig, RebalanceConfig, RetryPolicy, RunStats,
    ServiceConfig, StatusConfig, StatusServer, StealConfig,
};
use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Duration;

/// Parsed command line.
#[derive(Debug, Clone, PartialEq)]
pub struct Options {
    /// Where the graph comes from.
    pub graph: GraphSource,
    /// The pattern to mine.
    pub pattern: Pattern,
    /// Which system runs it.
    pub system: System,
    /// Simulated machines.
    pub machines: usize,
    /// NUMA sockets per machine.
    pub sockets: usize,
    /// Compute threads per part.
    pub threads: usize,
    /// Induced matching.
    pub induced: bool,
    /// Print only the count.
    pub quiet: bool,
    /// Per-part in-flight request window of the fetch fabric (1 =
    /// fully serialized transfers, the pre-fabric behaviour).
    pub window: usize,
    /// Maximum fetch attempts before a request times out.
    pub retries: u32,
    /// Fraction of fetch replies to drop (fault injection; 0 = off).
    pub fault_drop: f64,
    /// Scheduled fail-stop crashes: kill part PART after AFTER requests
    /// (`--fault-crash PART@AFTER`, repeatable for chained failures;
    /// Khuzdul systems only).
    pub fault_crash: Vec<(usize, u64)>,
    /// Edge-list replication factor (`--replication N`); with N >= 2 the
    /// engine survives a single fail-stop part failure.
    pub replication: usize,
    /// Declare a part dead as soon as its retry budget is exhausted
    /// instead of surfacing a timeout (`--fail-fast`).
    pub fail_fast: bool,
    /// Write a Chrome trace-event JSON file here (enables tracing).
    pub trace_out: Option<String>,
    /// Write a versioned `RunReport` JSON file here (enables tracing).
    pub report_out: Option<String>,
    /// Cross-part work stealing (Khuzdul systems only). The CLI defaults
    /// it on — interactive runs want the balance — while the library
    /// default stays off for deterministic traffic comparisons.
    pub steal: bool,
    /// Root batch granularity for steals (`--steal-batch`).
    pub steal_batch: usize,
    /// Which carrier coordinates cross-part claims and steals
    /// (`--control shared|msg`; Khuzdul systems only). `shared` is the
    /// in-process atomic ledger, `msg` routes every claim, donation,
    /// retirement, and quiescence vote as typed control messages over
    /// the same fabric that moves edge lists.
    pub control: ControlMode,
    /// Capture incident bundles — crash, deadline-miss, and stall
    /// post-mortems — into this directory (`--incident-dir`; Khuzdul
    /// systems only). Inspect them with `gpm incident list|show|diff`.
    pub incident_dir: Option<String>,
    /// Arm the stall watchdog: a run whose scheduler heartbeat stays
    /// flat this long dumps a bundle of the wedged state (`--stall-ms`;
    /// needs `--incident-dir`).
    pub stall_ms: Option<u64>,
    /// Fraction of *control-plane* replies to drop
    /// (`--control-fault-drop`; needs `--control msg`). Separate from
    /// `--fault-drop`, which only touches data fetches — dropping every
    /// claim reply is how you wedge the scheduler on purpose.
    pub control_fault_drop: f64,
    /// Background re-replication after a part death (`--rebalance
    /// on|off`; Khuzdul systems only, engages with `--replication >= 2`).
    /// On by default: a crashed part's slices are streamed to new
    /// holders so a later crash of a different part still resolves
    /// exactly. `off` reproduces the static-replica envelope, where the
    /// replication factor bounds the total deaths a run survives.
    pub rebalance: bool,
}

/// Graph source.
#[derive(Debug, Clone, PartialEq)]
pub enum GraphSource {
    /// Load from a file path.
    Path(String),
    /// Generate from a spec string.
    Spec(String),
}

/// Selectable system.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
#[allow(missing_docs)]
pub enum System {
    KhuzdulAutomine,
    KhuzdulGraphpi,
    GThinker,
    Replicated,
    Ctd,
    Single,
}

impl System {
    fn parse(s: &str) -> Result<System, String> {
        Ok(match s {
            "khuzdul-automine" | "k-automine" => System::KhuzdulAutomine,
            "khuzdul-graphpi" | "k-graphpi" => System::KhuzdulGraphpi,
            "gthinker" | "g-thinker" => System::GThinker,
            "replicated" | "graphpi" => System::Replicated,
            "ctd" | "adfs" => System::Ctd,
            "single" | "automine-ih" => System::Single,
            other => return Err(format!("unknown system '{other}'")),
        })
    }

    fn name(self) -> &'static str {
        match self {
            System::KhuzdulAutomine => "k-Automine (Khuzdul)",
            System::KhuzdulGraphpi => "k-GraphPi (Khuzdul)",
            System::GThinker => "G-thinker-like",
            System::Replicated => "replicated GraphPi-like",
            System::Ctd => "aDFS-like (computation-to-data)",
            System::Single => "AutomineIH (single machine)",
        }
    }

    /// Stable machine-readable identifier used as `RunReport.system`.
    fn slug(self) -> &'static str {
        match self {
            System::KhuzdulAutomine => "khuzdul-automine",
            System::KhuzdulGraphpi => "khuzdul-graphpi",
            System::GThinker => "gthinker",
            System::Replicated => "replicated",
            System::Ctd => "ctd",
            System::Single => "single",
        }
    }
}

/// Parses the argument list.
///
/// # Errors
///
/// Returns a human-readable message on unknown flags, missing values, or
/// malformed specs. `--help` is reported as an error string containing
/// the usage text.
pub fn parse_args(args: &[String]) -> Result<Options, String> {
    let mut graph: Option<GraphSource> = None;
    let mut pattern: Option<Pattern> = None;
    let mut system = System::KhuzdulAutomine;
    let mut machines = 4usize;
    let mut sockets = 1usize;
    let mut threads = 2usize;
    let mut induced = false;
    let mut quiet = false;
    let fabric_default = FabricConfig::default();
    let mut window = fabric_default.window;
    let mut retries = fabric_default.retry.max_attempts;
    let mut fault_drop = 0.0f64;
    let mut fault_crash: Vec<(usize, u64)> = Vec::new();
    let mut replication = 1usize;
    let mut fail_fast = false;
    let mut trace_out: Option<String> = None;
    let mut report_out: Option<String> = None;
    let mut steal = true;
    let mut steal_batch = StealConfig::default().batch;
    let mut control = ControlMode::default();
    let mut incident_dir: Option<String> = None;
    let mut stall_ms: Option<u64> = None;
    let mut control_fault_drop = 0.0f64;
    let mut rebalance = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--graph" => graph = Some(GraphSource::Path(value()?.to_string())),
            "--gen" => graph = Some(GraphSource::Spec(value()?.to_string())),
            "--pattern" => pattern = Some(parse_pattern(value()?)?),
            "--system" => system = System::parse(value()?)?,
            "--machines" => machines = parse_num(value()?)?,
            "--sockets" => sockets = parse_num(value()?)?,
            "--threads" => threads = parse_num(value()?)?,
            "--induced" => induced = true,
            "--quiet" => quiet = true,
            "--window" => window = parse_num(value()?)?,
            "--retries" => retries = parse_num(value()?)? as u32,
            "--fault-drop" => fault_drop = parse_fraction(value()?)?,
            "--fault-crash" => fault_crash.push(parse_crash(value()?)?),
            "--replication" => replication = parse_num(value()?)?,
            "--fail-fast" => fail_fast = true,
            "--trace-out" => trace_out = Some(value()?.to_string()),
            "--report-out" => report_out = Some(value()?.to_string()),
            "--steal" => {
                steal = match value()? {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--steal takes on|off, not '{other}'")),
                }
            }
            "--steal-batch" => steal_batch = parse_num(value()?)?,
            "--control" => control = parse_control(value()?)?,
            "--incident-dir" => incident_dir = Some(value()?.to_string()),
            "--stall-ms" => stall_ms = Some(parse_num(value()?)? as u64),
            "--control-fault-drop" => control_fault_drop = parse_fraction(value()?)?,
            "--rebalance" => {
                rebalance = match value()? {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--rebalance takes on|off, not '{other}'")),
                }
            }
            "--help" | "-h" => return Err("see the crate docs for usage".into()),
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    if control_fault_drop > 0.0 && control != ControlMode::Msg {
        return Err("--control-fault-drop needs --control msg (shared control has no wire)".into());
    }
    Ok(Options {
        graph: graph.ok_or("one of --graph or --gen is required")?,
        pattern: pattern.ok_or("--pattern is required")?,
        system,
        machines: machines.max(1),
        sockets: sockets.max(1),
        threads: threads.max(1),
        induced,
        quiet,
        window: window.max(1),
        retries: retries.max(1),
        fault_drop,
        fault_crash,
        replication: replication.max(1),
        fail_fast,
        trace_out,
        report_out,
        steal,
        steal_batch: steal_batch.max(1),
        control,
        incident_dir,
        stall_ms,
        control_fault_drop,
        rebalance,
    })
}

/// Parses a `--control` spec: the steal/claim coordination carrier.
fn parse_control(s: &str) -> Result<ControlMode, String> {
    Ok(match s {
        "shared" => ControlMode::Shared,
        "msg" => ControlMode::Msg,
        other => return Err(format!("--control takes shared|msg, not '{other}'")),
    })
}

fn parse_num(s: &str) -> Result<usize, String> {
    s.parse().map_err(|_| format!("'{s}' is not a number"))
}

fn parse_float(s: &str) -> Result<f64, String> {
    let f: f64 = s.parse().map_err(|_| format!("'{s}' is not a number"))?;
    if f.is_nan() || f < 0.0 {
        return Err(format!("'{s}' must be non-negative"));
    }
    Ok(f)
}

/// Parses a `--fault-crash` spec: `PART@AFTER`, e.g. `2@5000` kills
/// part 2 once 5000 requests have targeted it.
fn parse_crash(s: &str) -> Result<(usize, u64), String> {
    let (part, after) = s
        .split_once('@')
        .ok_or_else(|| format!("bad crash spec '{s}' (want PART@AFTER, e.g. 2@5000)"))?;
    let after = after.parse().map_err(|_| format!("'{after}' is not a number"))?;
    Ok((parse_num(part)?, after))
}

fn parse_fraction(s: &str) -> Result<f64, String> {
    let f: f64 = s.parse().map_err(|_| format!("'{s}' is not a number"))?;
    if !(0.0..=1.0).contains(&f) {
        return Err(format!("'{s}' must be a fraction in [0, 1]"));
    }
    Ok(f)
}

/// Parses a pattern spec: `triangle`, `clique:4`, `path:5`, `cycle:4`,
/// `star:5`, `house`, `diamond`, `tailed-triangle`, or
/// `edges:0-1,1-2,2-0`.
pub fn parse_pattern(spec: &str) -> Result<Pattern, String> {
    let (head, arg) = match spec.split_once(':') {
        Some((h, a)) => (h, Some(a)),
        None => (spec, None),
    };
    let k = |a: Option<&str>| -> Result<usize, String> {
        parse_num(a.ok_or_else(|| format!("'{head}' needs a size, e.g. {head}:4"))?)
    };
    match head {
        "triangle" => Ok(Pattern::triangle()),
        "clique" => Ok(Pattern::clique(k(arg)?)),
        "path" => Ok(Pattern::path(k(arg)?)),
        "cycle" => Ok(Pattern::cycle(k(arg)?)),
        "star" => Ok(Pattern::star(k(arg)?)),
        "house" => Ok(Pattern::house()),
        "diamond" => Ok(Pattern::diamond()),
        "tailed-triangle" => Ok(Pattern::tailed_triangle()),
        "edges" => {
            let text = arg.ok_or("edges spec needs pairs, e.g. edges:0-1,1-2")?;
            let mut edges = Vec::new();
            let mut n = 0usize;
            for pair in text.split(',') {
                let (u, v) =
                    pair.split_once('-').ok_or_else(|| format!("bad edge '{pair}' (want U-V)"))?;
                let (u, v) = (parse_num(u)?, parse_num(v)?);
                n = n.max(u + 1).max(v + 1);
                edges.push((u, v));
            }
            Pattern::from_edges(n, &edges).map_err(|e| e.to_string())
        }
        other => Err(format!("unknown pattern '{other}'")),
    }
}

/// Parses a generator spec: `ba:N,M[,SEED]`, `er:N,M[,SEED]`,
/// `rmat:SCALE,EF[,SEED]`, or `dataset:ABBR`.
pub fn parse_gen(spec: &str) -> Result<Graph, String> {
    let (head, args) =
        spec.split_once(':').ok_or_else(|| format!("bad generator spec '{spec}'"))?;
    let nums: Vec<&str> = args.split(',').collect();
    let num = |i: usize| -> Result<usize, String> {
        parse_num(nums.get(i).copied().ok_or("missing generator argument")?)
    };
    let seed = |i: usize| -> u64 { nums.get(i).and_then(|s| s.parse().ok()).unwrap_or(42) };
    match head {
        "ba" => Ok(gen::barabasi_albert(num(0)?, num(1)?, seed(2))),
        "er" => Ok(gen::erdos_renyi(num(0)?, num(1)?, seed(2))),
        "rmat" => Ok(gen::rmat(num(0)? as u32, num(1)?, (0.57, 0.19, 0.19), seed(2))),
        "dataset" => {
            let abbr = nums.first().copied().unwrap_or("");
            DatasetId::ALL
                .iter()
                .find(|d| d.abbr() == abbr)
                .map(|d| d.build())
                .ok_or_else(|| format!("unknown dataset '{abbr}'"))
        }
        other => Err(format!("unknown generator '{other}'")),
    }
}

/// Executes a parsed command line and renders the report.
///
/// The first argument may be a subcommand: `count` (default — mine one
/// pattern), `stats` (graph analysis report), `motifs` (k-motif census),
/// `fsm` (frequent subgraph mining), `serve` (replay a multi-query
/// workload through the resident [`MiningService`]), `top` (live view
/// of a served `--status-addr` endpoint, one-shot or `--watch`),
/// `report-validate` (schema-check a `RunReport` JSON file produced by
/// `--report-out`), `metrics-validate` (syntax-check a saved `/metrics`
/// scrape), `report diff` (thresholded regression gate over two report
/// files), or `incident list|show|diff` (inspect incident bundles
/// captured by `--incident-dir` runs).
///
/// # Errors
///
/// Propagates parse, I/O, and plan-compilation failures as strings.
pub fn run(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("stats") => return run_stats(&args[1..]),
        Some("motifs") => return run_motifs(&args[1..]),
        Some("fsm") => return run_fsm(&args[1..]),
        Some("count") => return run_count(&args[1..]),
        Some("serve") => return run_serve(&args[1..]),
        Some("top") => return run_top(&args[1..]),
        Some("report-validate") => return run_report_validate(&args[1..]),
        Some("metrics-validate") => return run_metrics_validate(&args[1..]),
        Some("report") => return run_report(&args[1..]),
        Some("incident") => return run_incident(&args[1..]),
        _ => {}
    }
    run_count(args)
}

/// One line of a `serve --queries` workload file: a pattern spec plus
/// optional per-query modifiers (`induced`, `graphpi`).
fn parse_query_line(line: &str) -> Result<Option<(Pattern, PlanOptions)>, String> {
    let line = line.trim();
    if line.is_empty() || line.starts_with('#') {
        return Ok(None);
    }
    let mut words = line.split_whitespace();
    let pattern = parse_pattern(words.next().expect("non-empty line has a first word"))?;
    let mut opts = PlanOptions::automine();
    for word in words {
        match word {
            "induced" => opts.induced = true,
            "graphpi" => opts = PlanOptions { induced: opts.induced, ..PlanOptions::graphpi() },
            other => return Err(format!("unknown query modifier '{other}' in line '{line}'")),
        }
    }
    Ok(Some((pattern, opts)))
}

/// `gpm serve --queries FILE`: replays a workload file — one pattern
/// spec per line, `#` comments allowed — as concurrent queries against
/// one resident engine. Queries are admitted in file order (FIFO), run
/// up to `--max-concurrent` at a time on the shared worker pool, and
/// duplicate submissions are served from the memo. Results print in
/// admission order, so a seeded workload replays deterministically.
fn run_serve(args: &[String]) -> Result<String, String> {
    let mut graph: Option<GraphSource> = None;
    let mut queries_path: Option<String> = None;
    let mut machines = 4usize;
    let mut sockets = 1usize;
    let mut threads = 2usize;
    let mut max_concurrent = 2usize;
    let mut root_budget = khuzdul::DEFAULT_ROOT_BUDGET;
    let mut steal = true;
    let mut control = ControlMode::default();
    let mut quiet = false;
    let mut report_out: Option<String> = None;
    let mut status_addr: Option<String> = None;
    let mut slow_query_ms: Option<u64> = None;
    let mut linger_ms = 0u64;
    let mut memo_capacity = ServiceConfig::default().memo_capacity;
    let mut incident_dir: Option<String> = None;
    let mut stall_ms: Option<u64> = None;
    let mut replication = 1usize;
    let mut rebalance = true;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--graph" => graph = Some(GraphSource::Path(value()?.to_string())),
            "--gen" => graph = Some(GraphSource::Spec(value()?.to_string())),
            "--queries" => queries_path = Some(value()?.to_string()),
            "--machines" => machines = parse_num(value()?)?,
            "--sockets" => sockets = parse_num(value()?)?,
            "--threads" => threads = parse_num(value()?)?,
            "--max-concurrent" => max_concurrent = parse_num(value()?)?,
            "--root-budget" => root_budget = parse_num(value()?)? as u64,
            "--steal" => {
                steal = match value()? {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--steal takes on|off, not '{other}'")),
                }
            }
            "--control" => control = parse_control(value()?)?,
            "--quiet" => quiet = true,
            "--report-out" => report_out = Some(value()?.to_string()),
            "--status-addr" => status_addr = Some(value()?.to_string()),
            "--slow-query-ms" => slow_query_ms = Some(parse_num(value()?)? as u64),
            "--status-linger-ms" => linger_ms = parse_num(value()?)? as u64,
            "--memo-capacity" => memo_capacity = parse_num(value()?)?,
            "--incident-dir" => incident_dir = Some(value()?.to_string()),
            "--stall-ms" => stall_ms = Some(parse_num(value()?)? as u64),
            "--replication" => replication = parse_num(value()?)?,
            "--rebalance" => {
                rebalance = match value()? {
                    "on" => true,
                    "off" => false,
                    other => return Err(format!("--rebalance takes on|off, not '{other}'")),
                }
            }
            other => return Err(format!("unknown flag '{other}'")),
        }
    }
    let queries_path = queries_path.ok_or("serve needs --queries <file>")?;
    let text = std::fs::read_to_string(&queries_path)
        .map_err(|e| format!("reading {queries_path}: {e}"))?;
    let mut workload = Vec::new();
    for line in text.lines() {
        if let Some(q) = parse_query_line(line)? {
            workload.push(q);
        }
    }
    if workload.is_empty() {
        return Err(format!("{queries_path}: no queries (every line blank or a comment)"));
    }
    let graph = load(&graph.ok_or("one of --graph or --gen is required")?)?;
    let observe = report_out.is_some();
    let obs = if observe { ObsConfig::enabled() } else { ObsConfig::default() };
    let parts = machines.max(1) * sockets.max(1);
    let engine = Arc::new(Engine::new(
        PartitionedGraph::with_replication(
            &graph,
            machines.max(1),
            sockets.max(1),
            replication.clamp(1, parts),
        ),
        EngineConfig {
            compute_threads: threads.max(1),
            obs,
            steal: StealConfig { enabled: steal, ..StealConfig::default() },
            control: ControlConfig { mode: control, ..ControlConfig::default() },
            incident: IncidentConfig {
                dir: incident_dir.clone().map(Into::into),
                stall: stall_ms.map(Duration::from_millis),
                ..IncidentConfig::default()
            },
            rebalance: RebalanceConfig { enabled: rebalance, ..RebalanceConfig::default() },
            ..EngineConfig::default()
        },
    ));
    let service = Arc::new(MiningService::start(
        engine,
        ServiceConfig {
            max_concurrent: max_concurrent.max(1),
            root_budget,
            memo_capacity,
            slow_query: slow_query_ms.map(Duration::from_millis),
            ..ServiceConfig::default()
        },
    ));
    // The status plane starts before any query is admitted, so scrapers
    // see the workload from its first root claim.
    let status_server = match &status_addr {
        Some(addr) => Some(
            StatusServer::start(
                Arc::clone(&service),
                StatusConfig { addr: addr.clone(), ..StatusConfig::default() },
            )
            .map_err(|e| format!("binding status server on {addr}: {e}"))?,
        ),
        None => None,
    };
    let mut out = String::new();
    if let (Some(s), false) = (&status_server, quiet) {
        let _ =
            writeln!(out, "status plane on http://{}/ (/metrics, /status, /quit)", s.local_addr());
    }
    let handles: Vec<_> =
        workload.iter().map(|(p, o)| service.submit(p, o)).collect::<Result<_, _>>()?;
    for h in &handles {
        h.wait().map_err(|e| format!("query {} ({}): {e}", h.query_id(), h.pattern()))?;
    }
    let outcomes = service.drain();
    if !quiet {
        let _ = writeln!(
            out,
            "serving {} queries over {} machines x {} sockets ({} concurrent)",
            workload.len(),
            machines,
            sockets,
            max_concurrent
        );
    }
    for o in &outcomes {
        let stats = o.result.as_ref().expect("waited queries succeeded");
        if quiet {
            let _ = writeln!(out, "{}", stats.count);
        } else {
            let memo = if o.memoized { " (memoized)" } else { "" };
            let _ =
                writeln!(out, "q{:<3} {:<24} count={}{memo}", o.query_id, o.pattern, stats.count);
        }
    }
    if let (Some(dir), false) = (&incident_dir, quiet) {
        let n = service.engine().incidents().incidents().len();
        if n > 0 {
            let _ = writeln!(out, "{n} incident bundle(s) in {dir}");
        }
    }
    if let Some(path) = &report_out {
        let report = service.report("khuzdul-service");
        report.write_to(path).map_err(|e| format!("writing {path}: {e}"))?;
        if !quiet {
            let _ = writeln!(out, "report written to {path}");
        }
    }
    // Keep the status plane up after the workload (and after the report
    // file exists, so a scraper can reconcile against it); `GET /quit`
    // ends the linger early.
    if let Some(server) = &status_server {
        if linger_ms > 0 {
            let deadline = std::time::Instant::now() + Duration::from_millis(linger_ms);
            while std::time::Instant::now() < deadline && !server.quit_requested() {
                std::thread::sleep(Duration::from_millis(50));
            }
        }
    }
    Ok(out)
}

/// `gpm metrics-validate FILE`: syntax-check a saved Prometheus text
/// exposition (a `/metrics` scrape) and report its sample count.
fn run_metrics_validate(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("metrics-validate needs a file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let samples = gpm_obs::validate_exposition(&text).map_err(|e| format!("{path}: {e}"))?;
    Ok(format!("{path}: valid Prometheus exposition ({samples} samples)\n"))
}

/// `gpm top ADDR [--watch SECS] [--frames N]`: live view of a
/// `gpm serve --status-addr` endpoint — service gauges, in-flight query
/// progress with ETA, recent completions, and the slow-query log,
/// rendered as a table. Without `--watch` it scrapes once; with it, a
/// frame per interval until `--frames` runs out or the server goes away
/// (a `serve --status-linger-ms` window ending, or `GET /quit`).
fn run_top(args: &[String]) -> Result<String, String> {
    let mut addr: Option<&str> = None;
    let mut watch: Option<Duration> = None;
    let mut frames: Option<usize> = None;
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--watch" => watch = Some(Duration::from_secs_f64(parse_float(value()?)?)),
            "--frames" => frames = Some(parse_num(value()?)?.max(1)),
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            other => addr = Some(other),
        }
    }
    let addr = addr.ok_or("top needs the status address, e.g. 127.0.0.1:9090")?;
    if frames.is_some() && watch.is_none() {
        return Err("--frames needs --watch".into());
    }
    let frames = frames.unwrap_or(if watch.is_some() { usize::MAX } else { 1 });
    let mut out = String::new();
    for frame in 0..frames {
        if frame > 0 {
            std::thread::sleep(watch.unwrap_or_default());
        }
        let body = match http_get_body(addr, "/status") {
            Ok(body) => body,
            // A watched server disappearing mid-watch is the normal end
            // of a linger window, not an error; the first scrape failing
            // means there was never anything to watch.
            Err(e) if frame > 0 => {
                let _ = writeln!(out, "server gone: {e}");
                break;
            }
            Err(e) => return Err(e),
        };
        let doc =
            gpm_obs::parse_json(&body).map_err(|e| format!("{addr}: bad /status JSON: {e}"))?;
        if watch.is_some() {
            let _ = writeln!(out, "--- frame {} ---", frame + 1);
        }
        out.push_str(&render_top(addr, &doc)?);
    }
    Ok(out)
}

/// Minimal blocking HTTP GET against the status server.
fn http_get_body(addr: &str, path: &str) -> Result<String, String> {
    use std::io::{Read as _, Write as _};
    let mut stream = std::net::TcpStream::connect(addr).map_err(|e| format!("{addr}: {e}"))?;
    stream
        .set_read_timeout(Some(Duration::from_secs(5)))
        .and_then(|()| stream.set_write_timeout(Some(Duration::from_secs(5))))
        .map_err(|e| format!("{addr}: {e}"))?;
    write!(stream, "GET {path} HTTP/1.1\r\nHost: {addr}\r\nConnection: close\r\n\r\n")
        .map_err(|e| format!("{addr}: {e}"))?;
    let mut response = String::new();
    stream.read_to_string(&mut response).map_err(|e| format!("{addr}: {e}"))?;
    let (_, body) =
        response.split_once("\r\n\r\n").ok_or_else(|| format!("{addr}: malformed response"))?;
    Ok(body.to_string())
}

fn render_top(addr: &str, doc: &serde::Value) -> Result<String, String> {
    use serde::Value;
    let obj = |v: &Value, key: &str| -> Option<Value> {
        let Value::Map(fields) = v else { return None };
        fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone())
    };
    let num = |v: &Value, key: &str| -> f64 {
        match obj(v, key) {
            Some(Value::UInt(u)) => u as f64,
            Some(Value::Int(i)) => i as f64,
            Some(Value::Float(f)) => f,
            _ => 0.0,
        }
    };
    let seq = |v: &Value, key: &str| -> Vec<Value> {
        match obj(v, key) {
            Some(Value::Seq(items)) => items,
            _ => Vec::new(),
        }
    };
    let text = |v: &Value, key: &str| -> String {
        match obj(v, key) {
            Some(Value::Str(s)) => s,
            _ => String::new(),
        }
    };
    let mut out = String::new();
    let _ = writeln!(
        out,
        "khuzdul service @ {addr} — up {:.1}s, {} admitted / {} completed, queue {}, busy {:.0}%",
        num(doc, "uptime_ns") / 1e9,
        num(doc, "admitted"),
        num(doc, "completed"),
        num(doc, "queue_depth"),
        num(doc, "busy_fraction") * 100.0,
    );
    let memo = obj(doc, "memo").unwrap_or(Value::Null);
    let _ = writeln!(
        out,
        "memo: {} entries, {} hits, {} evictions",
        num(&memo, "entries"),
        num(&memo, "hits"),
        num(&memo, "evictions")
    );
    // Replica placement and health. Quiet for an r=1 run with every
    // part alive — the table only earns its lines when there are
    // replicas to track or a death to diagnose.
    if let Some(reb) = obj(doc, "replicas") {
        let parts = seq(&reb, "parts");
        let any_dead = parts.iter().any(|p| obj(p, "alive") == Some(Value::Bool(false)));
        if num(&reb, "configured_replication") >= 2.0 || any_dead {
            let _ = writeln!(
                out,
                "REPLICAS  r={} effective={} epoch={} repaired={} ({} B) lost={}",
                num(&reb, "configured_replication"),
                num(&reb, "min_effective_replication"),
                num(&reb, "routing_epoch"),
                num(&reb, "slices_restored"),
                num(&reb, "bytes"),
                num(&reb, "slices_lost"),
            );
            let _ = writeln!(
                out,
                "  {:>5} {:>6} {:>7} {:>14} {:<}",
                "part", "state", "copies", "rerouted", "hosts"
            );
            for p in &parts {
                let hosts: Vec<String> = seq(p, "hosted_slices")
                    .iter()
                    .map(|s| match s {
                        Value::UInt(u) => u.to_string(),
                        _ => "?".to_string(),
                    })
                    .collect();
                let state =
                    if obj(p, "alive") == Some(Value::Bool(true)) { "live" } else { "DEAD" };
                let _ = writeln!(
                    out,
                    "  {:>5} {:>6} {:>7} {:>12} B {:<}",
                    format!("p{}", num(p, "part")),
                    state,
                    num(p, "live_copies"),
                    num(p, "rerouted_served_bytes"),
                    hosts.join(","),
                );
            }
        }
    }
    let active = seq(doc, "active_queries");
    if !active.is_empty() {
        let _ = writeln!(out, "IN FLIGHT");
        let _ = writeln!(
            out,
            "  {:>5} {:>9} {:>13} {:>9} {:>9}",
            "query", "progress", "roots", "stolen", "eta"
        );
        for q in &active {
            let eta = match obj(q, "eta_ns") {
                Some(Value::UInt(ns)) => format!("{:.1}s", ns as f64 / 1e9),
                _ => "?".to_string(),
            };
            let _ = writeln!(
                out,
                "  {:>5} {:>8.1}% {:>6}/{:<6} {:>9} {:>9}",
                format!("q{}", num(q, "query_id")),
                num(q, "fraction") * 100.0,
                num(q, "completed"),
                num(q, "roots_total"),
                num(q, "stolen"),
                eta
            );
        }
    }
    let completions = seq(doc, "recent_completions");
    if !completions.is_empty() {
        let _ = writeln!(out, "RECENT");
        for c in completions.iter().rev().take(10) {
            let count = match obj(c, "count") {
                Some(Value::UInt(n)) => n.to_string(),
                _ => "failed".to_string(),
            };
            let _ = writeln!(
                out,
                "  q{:<4} {:<24} count={:<12} {:.1}ms",
                num(c, "query_id"),
                text(c, "pattern"),
                count,
                num(c, "elapsed_ns") / 1e6
            );
        }
    }
    let slow = seq(doc, "slow_queries");
    if !slow.is_empty() {
        let _ = writeln!(out, "SLOW");
        for c in &slow {
            let _ = writeln!(
                out,
                "  q{:<4} {:<24} {:.1}ms",
                num(c, "query_id"),
                text(c, "pattern"),
                num(c, "elapsed_ns") / 1e6
            );
        }
    }
    Ok(out)
}

/// `gpm report-validate FILE`: parse and schema-check a `RunReport`.
/// Soft findings (e.g. dropped spans) are reported as warnings without
/// failing validation.
fn run_report_validate(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("report-validate needs a file path")?;
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    let warnings = gpm_obs::validate_report(&text).map_err(|e| format!("{path}: {e}"))?;
    let mut out = String::new();
    for w in &warnings {
        let _ = writeln!(out, "{path}: warning: {w}");
    }
    let _ = writeln!(out, "{path}: valid RunReport (schema v{REPORT_SCHEMA_VERSION})");
    Ok(out)
}

/// `gpm report SUBCOMMAND`: operations over saved `RunReport` files.
fn run_report(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("diff") => run_report_diff(&args[1..]),
        Some(other) => Err(format!("unknown report subcommand '{other}' (expected: diff)")),
        None => Err("report needs a subcommand: diff <baseline.json> <candidate.json>".into()),
    }
}

/// `gpm report diff BASELINE CANDIDATE [threshold flags]`: the perf
/// regression gate. Prints every comparison; returns `Err` (a non-zero
/// exit through the binary) when the candidate regresses past the
/// thresholds. Flags (`--traffic-rel`, `--traffic-abs`,
/// `--hit-rate-abs`, `--imbalance-abs`, `--frac-rel`, `--frac-abs`)
/// loosen or tighten the [`DiffThresholds`] defaults — CI comparing two
/// runs of a stochastic workload wants looser fractions than CI
/// comparing a run against its own report.
fn run_report_diff(args: &[String]) -> Result<String, String> {
    let mut paths: Vec<&str> = Vec::new();
    let mut t = DiffThresholds::default();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--traffic-rel" => t.traffic_rel = parse_float(value()?)?,
            "--traffic-abs" => t.traffic_abs = parse_float(value()?)?,
            "--hit-rate-abs" => t.hit_rate_abs = parse_float(value()?)?,
            "--imbalance-abs" => t.imbalance_abs = parse_float(value()?)?,
            "--frac-rel" => t.frac_rel = parse_float(value()?)?,
            "--frac-abs" => t.frac_abs = parse_float(value()?)?,
            other if other.starts_with("--") => return Err(format!("unknown flag '{other}'")),
            path => paths.push(path),
        }
    }
    let [baseline, candidate] = paths[..] else {
        return Err(format!(
            "report diff needs exactly two files: <baseline.json> <candidate.json> (got {})",
            paths.len()
        ));
    };
    let read = |p: &str| std::fs::read_to_string(p).map_err(|e| format!("reading {p}: {e}"));
    let diff = gpm_obs::diff_reports(&read(baseline)?, &read(candidate)?, &t)?;
    let mut out = String::new();
    for line in &diff.compared {
        let _ = writeln!(out, "  {line}");
    }
    if diff.passed() {
        let _ = writeln!(out, "PASS: {candidate} within thresholds of {baseline}");
        return Ok(out);
    }
    for r in &diff.regressions {
        let _ = writeln!(out, "REGRESSION: {r}");
    }
    let _ = writeln!(out, "FAIL: {} regression(s) against {baseline}", diff.regressions.len());
    Err(out)
}

/// `gpm incident SUBCOMMAND`: operations over incident bundles captured
/// by `--incident-dir` runs.
fn run_incident(args: &[String]) -> Result<String, String> {
    match args.first().map(String::as_str) {
        Some("list") => run_incident_list(&args[1..]),
        Some("show") => run_incident_show(&args[1..]),
        Some("diff") => run_incident_diff(&args[1..]),
        Some(other) => {
            Err(format!("unknown incident subcommand '{other}' (expected: list, show, diff)"))
        }
        None => Err(
            "incident needs a subcommand: list <dir> | show <bundle.json> | diff <a.json> <b.json>"
                .into(),
        ),
    }
}

/// Looks up `key` in a JSON object, `Null` when absent or not an object.
fn json_get(v: &serde::Value, key: &str) -> serde::Value {
    let serde::Value::Map(fields) = v else { return serde::Value::Null };
    fields.iter().find(|(k, _)| k == key).map(|(_, v)| v.clone()).unwrap_or(serde::Value::Null)
}

fn json_u64(v: &serde::Value, key: &str) -> u64 {
    match json_get(v, key) {
        serde::Value::UInt(u) => u,
        serde::Value::Int(i) => i.max(0) as u64,
        _ => 0,
    }
}

fn json_str(v: &serde::Value, key: &str) -> String {
    match json_get(v, key) {
        serde::Value::Str(s) => s,
        _ => String::new(),
    }
}

/// Reads and schema-checks one bundle file.
fn load_bundle(path: &str) -> Result<serde::Value, String> {
    let text = std::fs::read_to_string(path).map_err(|e| format!("reading {path}: {e}"))?;
    khuzdul::validate_bundle(&text).map_err(|e| format!("{path}: {e}"))?;
    gpm_obs::parse_json(&text).map_err(|e| format!("{path}: {e}"))
}

/// `gpm incident list DIR`: one line per bundle, oldest first.
fn run_incident_list(args: &[String]) -> Result<String, String> {
    let dir = args.first().ok_or("incident list needs a directory")?;
    let bundles = khuzdul::list_bundles(std::path::Path::new(dir.as_str()))
        .map_err(|e| format!("{dir}: {e}"))?;
    if bundles.is_empty() {
        return Ok(format!("{dir}: no incident bundles\n"));
    }
    let mut out = String::new();
    for path in &bundles {
        let doc = load_bundle(&path.display().to_string())?;
        let trigger = json_get(&doc, "trigger");
        let _ = writeln!(
            out,
            "{:<32} {:<18} q{:<5} t+{:.3}s  {}",
            json_str(&doc, "id"),
            json_str(&trigger, "kind"),
            json_u64(&trigger, "query_id"),
            json_u64(&trigger, "at_ns") as f64 / 1e9,
            path.display()
        );
    }
    let _ = writeln!(out, "{} bundle(s) in {dir}", bundles.len());
    Ok(out)
}

/// `gpm incident show FILE`: render one bundle — trigger, config,
/// flight-ring slice, progress snapshots, counters, and ledger state.
fn run_incident_show(args: &[String]) -> Result<String, String> {
    let path = args.first().ok_or("incident show needs a bundle file")?;
    let doc = load_bundle(path)?;
    let trigger = json_get(&doc, "trigger");
    let config = json_get(&doc, "config");
    let mut out = String::new();
    let _ = writeln!(out, "incident {}", json_str(&doc, "id"));
    let part = match json_get(&trigger, "part") {
        serde::Value::UInt(p) => format!(" part {p}"),
        _ => String::new(),
    };
    let _ = writeln!(
        out,
        "trigger  {} (query {}{part}, value {}, t+{:.3}s)",
        json_str(&trigger, "kind"),
        json_u64(&trigger, "query_id"),
        json_u64(&trigger, "value"),
        json_u64(&trigger, "at_ns") as f64 / 1e9,
    );
    let _ = writeln!(out, "detail   {}", json_str(&trigger, "detail"));
    let stall = match json_get(&config, "stall_ms") {
        serde::Value::UInt(ms) => format!(", stall watchdog {ms}ms"),
        _ => String::new(),
    };
    let _ = writeln!(out, "config   fingerprint {}{stall}", json_str(&config, "fingerprint"));
    let flight = json_get(&doc, "flight");
    let serde::Value::Seq(events) = json_get(&flight, "events") else {
        return Err(format!("{path}: flight.events is not an array"));
    };
    let _ = writeln!(
        out,
        "flight   {} of {} event(s) retained (capacity {})",
        events.len(),
        json_u64(&flight, "recorded"),
        json_u64(&flight, "capacity"),
    );
    for e in &events {
        let _ = writeln!(
            out,
            "  [{:>6}] t+{:<9.3} {:<15} q{:<5} part={:<20} a={}",
            json_u64(e, "seq"),
            json_u64(e, "at_ns") as f64 / 1e9,
            json_str(e, "kind"),
            json_u64(e, "query"),
            // u64::MAX marks an event that is not part-scoped.
            match json_u64(e, "part") {
                u64::MAX => "-".to_string(),
                p => p.to_string(),
            },
            json_u64(e, "a"),
        );
    }
    if let serde::Value::Seq(progress) = json_get(&doc, "progress") {
        for p in &progress {
            let _ = writeln!(
                out,
                "progress q{}: {}/{} roots completed, {} claimed, {} stolen, {} recovered",
                json_u64(p, "query_id"),
                json_u64(p, "completed"),
                json_u64(p, "roots_total"),
                json_u64(p, "claimed"),
                json_u64(p, "stolen"),
                json_u64(p, "recovered"),
            );
        }
    }
    if let serde::Value::Map(counters) = json_get(&doc, "counters") {
        let _ = writeln!(out, "counters");
        for (name, v) in &counters {
            if let serde::Value::UInt(n) = v {
                let _ = writeln!(out, "  {name:<24} {n}");
            }
        }
    }
    let ledger = json_get(&doc, "ledger");
    if let serde::Value::Map(_) = &ledger {
        let poisoned = match json_get(&ledger, "poisoned") {
            serde::Value::Str(e) => format!(", poisoned: {e}"),
            _ => String::new(),
        };
        let _ = writeln!(
            out,
            "ledger   carrier {}, available {}, quiescent {}{poisoned}",
            json_str(&ledger, "carrier"),
            json_get(&ledger, "available") == serde::Value::Bool(true),
            json_get(&ledger, "quiescent") == serde::Value::Bool(true),
        );
    }
    Ok(out)
}

/// `gpm incident diff A B`: compare two bundles — trigger, config
/// fingerprint, flight-event mix, and counter deltas — to answer "is
/// this the same failure again?".
fn run_incident_diff(args: &[String]) -> Result<String, String> {
    let [a_path, b_path] = args else {
        return Err("incident diff needs exactly two bundle files".into());
    };
    let (a, b) = (load_bundle(a_path)?, load_bundle(b_path)?);
    let mut out = String::new();
    let field = |out: &mut String, label: &str, a: String, b: String| {
        if a == b {
            let _ = writeln!(out, "  {label:<20} {a} (same)");
        } else {
            let _ = writeln!(out, "  {label:<20} {a} -> {b}");
        }
    };
    let _ = writeln!(out, "{} vs {}", json_str(&a, "id"), json_str(&b, "id"));
    let (ta, tb) = (json_get(&a, "trigger"), json_get(&b, "trigger"));
    field(&mut out, "trigger", json_str(&ta, "kind"), json_str(&tb, "kind"));
    field(
        &mut out,
        "query",
        json_u64(&ta, "query_id").to_string(),
        json_u64(&tb, "query_id").to_string(),
    );
    field(
        &mut out,
        "config fingerprint",
        json_str(&json_get(&a, "config"), "fingerprint"),
        json_str(&json_get(&b, "config"), "fingerprint"),
    );
    // Flight mix: events per kind, in either bundle's ring slice.
    let kind_counts = |doc: &serde::Value| -> Vec<(String, u64)> {
        let mut counts: Vec<(String, u64)> = Vec::new();
        if let serde::Value::Seq(events) = json_get(&json_get(doc, "flight"), "events") {
            for e in &events {
                let kind = json_str(e, "kind");
                match counts.iter_mut().find(|(k, _)| *k == kind) {
                    Some((_, n)) => *n += 1,
                    None => counts.push((kind, 1)),
                }
            }
        }
        counts
    };
    let (ka, kb) = (kind_counts(&a), kind_counts(&b));
    let mut kinds: Vec<String> = ka.iter().chain(&kb).map(|(k, _)| k.clone()).collect();
    kinds.sort();
    kinds.dedup();
    for kind in &kinds {
        let get = |c: &[(String, u64)]| c.iter().find(|(k, _)| k == kind).map_or(0, |(_, n)| *n);
        field(&mut out, &format!("flight {kind}"), get(&ka).to_string(), get(&kb).to_string());
    }
    // Counter deltas, where both bundles captured them.
    if let (serde::Value::Map(ca), cb @ serde::Value::Map(_)) =
        (json_get(&a, "counters"), json_get(&b, "counters"))
    {
        for (name, va) in &ca {
            if let serde::Value::UInt(va) = va {
                let vb = json_u64(&cb, name);
                if *va != vb {
                    field(&mut out, name, va.to_string(), vb.to_string());
                }
            }
        }
    }
    Ok(out)
}

fn load(source: &GraphSource) -> Result<Graph, String> {
    match source {
        GraphSource::Path(p) => gpm_graph::io::load_graph(p).map_err(|e| e.to_string()),
        GraphSource::Spec(s) => parse_gen(s),
    }
}

/// Pulls `--graph`/`--gen` plus any `extra` numeric flags out of an
/// argument list, returning the graph and the parsed extras (in order,
/// with defaults).
fn graph_and_flags(
    args: &[String],
    extra: &[(&str, usize)],
) -> Result<(Graph, Vec<usize>), String> {
    let mut graph = None;
    let mut values: Vec<usize> = extra.iter().map(|&(_, d)| d).collect();
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        let mut value =
            || it.next().map(String::as_str).ok_or_else(|| format!("{arg} needs a value"));
        match arg.as_str() {
            "--graph" => graph = Some(GraphSource::Path(value()?.to_string())),
            "--gen" => graph = Some(GraphSource::Spec(value()?.to_string())),
            other => {
                let Some(i) = extra.iter().position(|&(name, _)| name == other) else {
                    return Err(format!("unknown flag '{other}'"));
                };
                values[i] = parse_num(value()?)?;
            }
        }
    }
    let graph = load(&graph.ok_or("one of --graph or --gen is required")?)?;
    Ok((graph, values))
}

/// `gpm stats`: Table-1-style characterization plus skew diagnostics.
fn run_stats(args: &[String]) -> Result<String, String> {
    use gpm_graph::analysis;
    let (g, _) = graph_and_flags(args, &[])?;
    let mut out = String::new();
    let _ = writeln!(out, "vertices        {}", g.vertex_count());
    let _ = writeln!(out, "edges           {}", g.edge_count());
    let _ = writeln!(out, "max degree      {}", g.max_degree());
    let _ = writeln!(out, "size            {} bytes", g.size_bytes());
    let _ = writeln!(out, "degree gini     {:.3}", analysis::degree_gini(&g));
    if let Some(c) = analysis::global_clustering(&g) {
        let _ = writeln!(out, "clustering      {c:.4}");
    }
    let _ = writeln!(out, "largest comp.   {} vertices", analysis::largest_component_size(&g));
    let hist = analysis::degree_histogram_log2(&g);
    let _ = writeln!(out, "degree histogram (log2 buckets):");
    for (i, c) in hist.iter().enumerate() {
        if *c > 0 {
            let _ = writeln!(out, "  2^{i:<2} {c}");
        }
    }
    Ok(out)
}

/// `gpm motifs --k K --machines N`: induced k-motif census.
fn run_motifs(args: &[String]) -> Result<String, String> {
    let (g, vals) = graph_and_flags(args, &[("--k", 3), ("--machines", 4)])?;
    let (k, machines) = (vals[0], vals[1]);
    let engine =
        Engine::new(PartitionedGraph::new(&g, machines.max(1), 1), EngineConfig::default());
    let motifs = gpm_apps_counting_motifs(&engine, k)?;
    engine.shutdown();
    let mut out = String::new();
    let _ = writeln!(out, "{k}-motif census ({machines} machines):");
    for (p, c) in &motifs.per_pattern {
        let _ = writeln!(out, "  {p:<30} {c}");
    }
    let _ = writeln!(out, "total connected {k}-subgraphs: {}", motifs.total);
    let _ = writeln!(out, "elapsed: {:?}", motifs.elapsed);
    Ok(out)
}

fn gpm_apps_counting_motifs(
    engine: &Engine,
    k: usize,
) -> Result<crate::counting::MotifCounts, String> {
    crate::counting::motif_count(engine, k, &PlanOptions::automine())
}

/// `gpm fsm --threshold T --max-edges E --labels L --machines N`.
fn run_fsm(args: &[String]) -> Result<String, String> {
    let (g, vals) = graph_and_flags(
        args,
        &[("--threshold", 100), ("--max-edges", 3), ("--labels", 3), ("--machines", 4)],
    )?;
    let (threshold, max_edges, labels, machines) = (vals[0], vals[1], vals[2], vals[3]);
    let g = if g.is_labeled() {
        g
    } else {
        gpm_graph::gen::with_random_labels(&g, labels as gpm_graph::Label, 7)
    };
    let engine =
        Engine::new(PartitionedGraph::new(&g, machines.max(1), 1), EngineConfig::default());
    let result = crate::fsm::fsm(
        &engine,
        &crate::fsm::FsmConfig {
            support_threshold: threshold as u64,
            max_edges,
            exact_supports: false,
        },
    );
    engine.shutdown();
    let mut out = String::new();
    let _ = writeln!(
        out,
        "fsm: {} candidates evaluated, {} frequent at support >= {threshold} ({:?})",
        result.evaluated,
        result.frequent.len(),
        result.elapsed
    );
    for (p, s) in &result.frequent {
        let labels = p
            .labels()
            .map(|l| l.iter().map(|x| x.to_string()).collect::<Vec<_>>().join(","))
            .unwrap_or_default();
        let _ = writeln!(out, "  {p} [{labels}]  support>={s}");
    }
    Ok(out)
}

fn run_count(args: &[String]) -> Result<String, String> {
    let opts = parse_args(args)?;
    let graph = load(&opts.graph)?;
    let ex = execute(&graph, &opts)?;
    if let Some(path) = &opts.trace_out {
        std::fs::write(path, &ex.trace).map_err(|e| format!("writing {path}: {e}"))?;
    }
    if let Some(path) = &opts.report_out {
        ex.report.write_to(path).map_err(|e| format!("writing {path}: {e}"))?;
    }
    let stats = ex.stats;
    let mut out = String::new();
    if opts.quiet {
        let _ = writeln!(out, "{}", stats.count);
        return Ok(out);
    }
    let _ = writeln!(
        out,
        "graph    {} vertices, {} edges, max degree {}",
        graph.vertex_count(),
        graph.edge_count(),
        graph.max_degree()
    );
    let _ =
        writeln!(out, "pattern  {}{}", opts.pattern, if opts.induced { " (induced)" } else { "" });
    let _ = writeln!(
        out,
        "system   {} ({} machines x {} sockets, {} threads)",
        opts.system.name(),
        opts.machines,
        opts.sockets,
        opts.threads
    );
    let _ = writeln!(out, "count    {}", stats.count);
    let _ = writeln!(out, "elapsed  {:?}", stats.elapsed);
    let _ = writeln!(
        out,
        "traffic  {} bytes in {} fetches ({} coalesced, {} retries)",
        stats.traffic.network_bytes,
        stats.traffic.requests,
        stats.traffic.coalesced,
        stats.traffic.retries
    );
    if stats.failures.parts_failed > 0 {
        let f = &stats.failures;
        let _ = writeln!(
            out,
            "failure  {} part(s) failed; {} fetches re-routed ({} bytes); {} roots re-executed",
            f.parts_failed, f.rerouted_requests, f.rerouted_bytes, f.reexecuted_roots
        );
    }
    let reb = &ex.report.rebalance;
    if reb.transfers > 0 || reb.slices_lost > 0 {
        let _ = writeln!(
            out,
            "rebalance {} slice(s) restored ({} transfers, {} bytes), {} lost; effective r={}; epoch {}",
            reb.slices_restored,
            reb.transfers,
            reb.bytes,
            reb.slices_lost,
            reb.min_effective_replication,
            reb.routing_epoch
        );
    }
    let b = stats.breakdown();
    let _ = writeln!(
        out,
        "split    {:.0}% compute / {:.0}% network / {:.0}% scheduler / {:.0}% cache",
        b.compute * 100.0,
        b.network * 100.0,
        b.scheduler * 100.0,
        b.cache * 100.0
    );
    if let (Some(dir), 1..) = (&opts.incident_dir, ex.incidents) {
        let _ = writeln!(out, "incident {} bundle(s) in {dir}", ex.incidents);
    }
    Ok(out)
}

/// One executed run plus its observability artifacts. The report and
/// trace are always produced (they are cheap skeletons when tracing is
/// off); `run_count` only writes them to disk when the output flags ask.
struct Executed {
    stats: RunStats,
    report: RunReport,
    trace: String,
    /// Incident bundles captured during the run (Khuzdul systems with
    /// `--incident-dir`; always 0 for the baselines).
    incidents: usize,
}

fn execute(graph: &Graph, opts: &Options) -> Result<Executed, String> {
    let base = match opts.system {
        System::KhuzdulGraphpi => PlanOptions::graphpi(),
        _ => PlanOptions::automine(),
    };
    let plan_opts = PlanOptions { induced: opts.induced, ..base.clone() };
    // Tracing is opt-in: either output flag arms the recorder.
    let observe = opts.trace_out.is_some() || opts.report_out.is_some();
    let obs = if observe { ObsConfig::enabled() } else { ObsConfig::default() };
    let slug = opts.system.slug();
    match opts.system {
        System::KhuzdulAutomine | System::KhuzdulGraphpi => {
            let plan = MatchingPlan::compile(&opts.pattern, &plan_opts)?;
            let mut fabric = FabricConfig { window: opts.window, ..FabricConfig::default() };
            fabric.retry.max_attempts = opts.retries;
            fabric.fail_fast = opts.fail_fast;
            if opts.fault_drop > 0.0 || !opts.fault_crash.is_empty() {
                let mut fault = if opts.fault_drop > 0.0 {
                    FaultPlan::drops(opts.fault_drop)
                } else {
                    FaultPlan::default()
                };
                for &(part, after) in &opts.fault_crash {
                    fault.crashes.push(CrashAt { part, after_requests: after });
                }
                fabric.fault = Some(fault);
                // Dropped replies and a crashed part's abandoned requests
                // only resolve via timeout, so the default (generous)
                // timeout would crawl; tighten it.
                fabric.retry.timeout = Duration::from_millis(25);
                fabric.retry.backoff = Duration::from_millis(1);
            }
            let mut control = ControlConfig { mode: opts.control, ..ControlConfig::default() };
            if opts.control_fault_drop > 0.0 {
                // Dropping claim replies wedges the scheduler by design;
                // the generous default timeout would hold the wedge for
                // minutes, so tighten it the same way the fabric does.
                control.fault = Some(FaultPlan::drops(opts.control_fault_drop));
                control.retry = RetryPolicy {
                    max_attempts: opts.retries,
                    timeout: Duration::from_millis(25),
                    backoff: Duration::from_millis(1),
                };
            }
            let parts = opts.machines * opts.sockets;
            let engine = Engine::new(
                PartitionedGraph::with_replication(
                    graph,
                    opts.machines,
                    opts.sockets,
                    opts.replication.min(parts.max(1)),
                ),
                EngineConfig {
                    compute_threads: opts.threads,
                    fabric,
                    obs,
                    steal: StealConfig {
                        enabled: opts.steal,
                        batch: opts.steal_batch,
                        ..StealConfig::default()
                    },
                    control,
                    incident: IncidentConfig {
                        dir: opts.incident_dir.clone().map(Into::into),
                        stall: opts.stall_ms.map(Duration::from_millis),
                        ..IncidentConfig::default()
                    },
                    rebalance: RebalanceConfig { enabled: opts.rebalance, ..RebalanceConfig::default() },
                    ..EngineConfig::default()
                },
            );
            let stats = match engine.try_count(&plan) {
                Ok(stats) => stats,
                Err(e) => {
                    // The bundles are the whole point of a failed chaos
                    // run: point the error at them.
                    let n = engine.incidents().incidents().len();
                    return Err(match (&opts.incident_dir, n) {
                        (Some(dir), 1..) => format!("{e} ({n} incident bundle(s) in {dir})"),
                        _ => e.to_string(),
                    });
                }
            };
            let incidents = engine.incidents().incidents().len();
            let report = engine.report(&stats, slug);
            let trace = engine.chrome_trace();
            engine.shutdown();
            Ok(Executed { stats, report, trace, incidents })
        }
        System::GThinker => {
            let recorder = Recorder::new(&obs);
            let sys = GThinker::new(
                PartitionedGraph::new(graph, opts.machines, opts.sockets),
                GThinkerConfig::default(),
            )
            .with_recorder(Arc::clone(&recorder));
            let stats = sys.count(&opts.pattern, &plan_opts)?;
            let report = sys.report(&stats);
            let trace = recorder.chrome_trace();
            Ok(Executed { stats, report, trace, incidents: 0 })
        }
        System::Replicated => {
            let plan = MatchingPlan::compile(&opts.pattern, &plan_opts)?;
            let sys = ReplicatedCluster::new(
                graph.clone(),
                ReplicatedConfig {
                    machines: opts.machines,
                    threads_per_machine: opts.threads,
                    ..ReplicatedConfig::default()
                },
            );
            let stats = sys.count(&plan);
            // No fetch fabric to instrument: the report carries the
            // counters, the trace is a valid empty event list.
            let report = stats.to_report(slug);
            Ok(Executed { stats, report, trace: gpm_obs::chrome_trace(&[]), incidents: 0 })
        }
        System::Ctd => {
            let recorder = Recorder::new(&obs);
            let sys = CtdCluster::new(PartitionedGraph::new(graph, opts.machines, opts.sockets))
                .with_recorder(Arc::clone(&recorder));
            let stats = sys.count(&opts.pattern, &plan_opts)?;
            let report = sys.report(&stats);
            let trace = recorder.chrome_trace();
            Ok(Executed { stats, report, trace, incidents: 0 })
        }
        System::Single => {
            let sys = SingleMachine::automine_ih(graph.clone(), opts.threads);
            let stats = if opts.induced {
                let plan = MatchingPlan::compile(&opts.pattern, &plan_opts)?;
                sys.count_plan(&plan)
            } else {
                sys.count(&opts.pattern)?
            };
            let report = stats.to_report(slug);
            Ok(Executed { stats, report, trace: gpm_obs::chrome_trace(&[]), incidents: 0 })
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn argv(s: &str) -> Vec<String> {
        s.split_whitespace().map(String::from).collect()
    }

    #[test]
    fn parse_minimal() {
        let o = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(o.machines, 4);
        assert_eq!(o.pattern, Pattern::triangle());
        assert_eq!(o.system, System::KhuzdulAutomine);
    }

    #[test]
    fn parse_full() {
        let o = parse_args(&argv(
            "--gen er:50,100 --pattern clique:4 --system gthinker --machines 2 \
             --sockets 2 --threads 3 --induced --quiet",
        ))
        .unwrap();
        assert_eq!(o.system, System::GThinker);
        assert_eq!((o.machines, o.sockets, o.threads), (2, 2, 3));
        assert!(o.induced && o.quiet);
    }

    #[test]
    fn parse_errors() {
        assert!(parse_args(&argv("--pattern triangle")).is_err()); // no graph
        assert!(parse_args(&argv("--gen ba:100,3")).is_err()); // no pattern
        assert!(parse_args(&argv("--gen ba:100,3 --pattern nope")).is_err());
        assert!(parse_args(&argv("--bogus")).is_err());
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --machines x")).is_err());
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --fault-drop 1.5")).is_err());
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --fault-drop x")).is_err());
    }

    #[test]
    fn parse_fabric_flags() {
        let o = parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --window 8 --retries 6 --fault-drop 0.05",
        ))
        .unwrap();
        assert_eq!(o.window, 8);
        assert_eq!(o.retries, 6);
        assert!((o.fault_drop - 0.05).abs() < 1e-12);
        // Defaults track the fabric's own defaults.
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(d.window, FabricConfig::default().window);
        assert_eq!(d.fault_drop, 0.0);
        // --window 0 is clamped rather than deadlocking the fabric.
        let z = parse_args(&argv("--gen ba:100,3 --pattern triangle --window 0")).unwrap();
        assert_eq!(z.window, 1);
    }

    #[test]
    fn parse_steal_flags() {
        // CLI default: stealing on, batch from StealConfig's default.
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert!(d.steal);
        assert_eq!(d.steal_batch, StealConfig::default().batch);
        let o = parse_args(&argv("--gen ba:100,3 --pattern triangle --steal off --steal-batch 32"))
            .unwrap();
        assert!(!o.steal);
        assert_eq!(o.steal_batch, 32);
        // Batch 0 is clamped, not a claim-nothing livelock.
        let z = parse_args(&argv("--gen ba:100,3 --pattern triangle --steal-batch 0")).unwrap();
        assert_eq!(z.steal_batch, 1);
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --steal maybe")).is_err());
    }

    #[test]
    fn parse_rebalance_flag() {
        // Self-healing is on by default; it only engages with replicas.
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert!(d.rebalance);
        let o =
            parse_args(&argv("--gen ba:100,3 --pattern triangle --rebalance off")).unwrap();
        assert!(!o.rebalance);
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --rebalance maybe")).is_err());
    }

    #[test]
    fn steal_flag_does_not_change_the_count() {
        let on = run(&argv("--gen ba:120,4,9 --pattern triangle --machines 3 --quiet --steal on"))
            .unwrap();
        let off =
            run(&argv("--gen ba:120,4,9 --pattern triangle --machines 3 --quiet --steal off"))
                .unwrap();
        assert_eq!(on.trim(), off.trim());
    }

    #[test]
    fn count_under_fault_injection_still_agrees() {
        let clean =
            run(&argv("--gen er:60,200,3 --pattern triangle --machines 3 --quiet")).unwrap();
        let faulty = run(&argv(
            "--gen er:60,200,3 --pattern triangle --machines 3 --quiet \
             --window 4 --retries 10 --fault-drop 0.05",
        ))
        .unwrap();
        assert_eq!(clean.trim(), faulty.trim());
    }

    #[test]
    fn parse_failure_flags() {
        let o = parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --replication 2 --fault-crash 2@5000 --fail-fast",
        ))
        .unwrap();
        assert_eq!(o.replication, 2);
        assert_eq!(o.fault_crash, vec![(2, 5000)]);
        assert!(o.fail_fast);
        // The flag repeats: chained failures accumulate in order.
        let multi = parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --replication 3 \
             --fault-crash 1@40 --fault-crash 2@90",
        ))
        .unwrap();
        assert_eq!(multi.fault_crash, vec![(1, 40), (2, 90)]);
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(d.replication, 1);
        assert!(d.fault_crash.is_empty());
        assert!(!d.fail_fast);
        // Replication 0 is clamped to the un-replicated baseline.
        let z = parse_args(&argv("--gen ba:100,3 --pattern triangle --replication 0")).unwrap();
        assert_eq!(z.replication, 1);
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --fault-crash 2")).is_err());
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --fault-crash x@5")).is_err());
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --fault-crash 2@y")).is_err());
    }

    #[test]
    fn parse_control_flag() {
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(d.control, ControlMode::Shared, "shared atomics stay the default");
        let m = parse_args(&argv("--gen ba:100,3 --pattern triangle --control msg")).unwrap();
        assert_eq!(m.control, ControlMode::Msg);
        let s = parse_args(&argv("--gen ba:100,3 --pattern triangle --control shared")).unwrap();
        assert_eq!(s.control, ControlMode::Shared);
        let e = parse_args(&argv("--gen ba:100,3 --pattern triangle --control carrier-pigeon"));
        assert!(e.unwrap_err().contains("shared|msg"));
    }

    #[test]
    fn chaos_run_with_replica_agrees_with_clean_run() {
        let clean =
            run(&argv("--gen er:120,500,7 --pattern triangle --machines 3 --quiet")).unwrap();
        // Kill part 1 after a handful of requests; the replica holder
        // serves its slices and the recovery pass restores the count.
        let chaos = run(&argv(
            "--gen er:120,500,7 --pattern triangle --machines 3 --quiet \
             --replication 2 --fault-crash 1@0",
        ))
        .unwrap();
        assert_eq!(clean.trim(), chaos.trim());
        // The verbose report calls the failure out.
        let verbose = run(&argv(
            "--gen er:120,500,7 --pattern triangle --machines 3 \
             --replication 2 --fault-crash 1@0",
        ))
        .unwrap();
        assert!(verbose.contains("failure  1 part(s) failed"), "{verbose}");
        assert!(verbose.contains("re-executed"), "{verbose}");
    }

    #[test]
    fn chaos_run_without_replica_reports_the_loss() {
        let err = run(&argv(
            "--gen er:120,500,7 --pattern triangle --machines 3 --quiet --fault-crash 1@0",
        ))
        .unwrap_err();
        assert!(err.contains("fail-stopped"), "{err}");
        assert!(err.contains("replication"), "{err}");
    }

    #[test]
    fn pattern_grammar() {
        assert_eq!(parse_pattern("clique:5").unwrap(), Pattern::clique(5));
        assert_eq!(parse_pattern("path:3").unwrap(), Pattern::path(3));
        assert_eq!(parse_pattern("edges:0-1,1-2,2-0").unwrap(), Pattern::triangle());
        assert!(parse_pattern("clique").is_err());
        assert!(parse_pattern("edges:0-").is_err());
        assert!(parse_pattern("edges:0-1,5-6").is_err()); // disconnected
    }

    #[test]
    fn generator_grammar() {
        assert_eq!(parse_gen("ba:100,3,7").unwrap().vertex_count(), 100);
        assert_eq!(parse_gen("er:60,90").unwrap().edge_count(), 90);
        assert_eq!(parse_gen("rmat:6,4").unwrap().vertex_count(), 64);
        assert!(parse_gen("dataset:mc").is_ok());
        assert!(parse_gen("dataset:nope").is_err());
        assert!(parse_gen("zzz:1").is_err());
    }

    #[test]
    fn stats_subcommand() {
        let out = run(&argv("stats --gen ba:300,4")).unwrap();
        assert!(out.contains("vertices        300"));
        assert!(out.contains("degree gini"));
        assert!(out.contains("degree histogram"));
    }

    #[test]
    fn motifs_subcommand() {
        let out = run(&argv("motifs --gen er:50,150 --k 3 --machines 2")).unwrap();
        assert!(out.contains("3-motif census"));
        assert!(out.contains("total connected 3-subgraphs"));
    }

    #[test]
    fn fsm_subcommand() {
        let out =
            run(&argv("fsm --gen er:60,200 --threshold 5 --max-edges 2 --machines 2")).unwrap();
        assert!(out.contains("frequent at support >= 5"), "{out}");
    }

    #[test]
    fn subcommand_errors() {
        assert!(run(&argv("stats")).is_err()); // no graph
        assert!(run(&argv("motifs --gen er:30,60 --k x")).is_err());
        assert!(run(&argv("fsm --gen er:30,60 --bogus 3")).is_err());
    }

    #[test]
    fn end_to_end_all_systems_agree() {
        let mut counts = Vec::new();
        for system in
            ["khuzdul-automine", "khuzdul-graphpi", "gthinker", "replicated", "ctd", "single"]
        {
            let out = run(&argv(&format!(
                "--gen er:60,200,3 --pattern triangle --machines 3 --system {system} --quiet"
            )))
            .unwrap();
            counts.push(out.trim().parse::<u64>().unwrap());
        }
        assert!(counts.windows(2).all(|w| w[0] == w[1]), "{counts:?}");
    }

    #[test]
    fn parse_output_flags() {
        let o = parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --trace-out /tmp/t.json --report-out /tmp/r.json",
        ))
        .unwrap();
        assert_eq!(o.trace_out.as_deref(), Some("/tmp/t.json"));
        assert_eq!(o.report_out.as_deref(), Some("/tmp/r.json"));
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(d.trace_out, None);
        assert_eq!(d.report_out, None);
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --trace-out")).is_err());
    }

    /// Every system writes a schema-valid report and trace through the
    /// output flags, and `report-validate` accepts the report file.
    #[test]
    fn output_flags_write_valid_artifacts_for_every_system() {
        let dir = std::env::temp_dir().join(format!("gpm-cli-obs-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        for system in
            ["khuzdul-automine", "khuzdul-graphpi", "gthinker", "replicated", "ctd", "single"]
        {
            let trace = dir.join(format!("{system}.trace.json"));
            let report = dir.join(format!("{system}.report.json"));
            run(&argv(&format!(
                "--gen er:60,200,3 --pattern triangle --machines 3 --quiet --system {system} \
                 --trace-out {} --report-out {}",
                trace.display(),
                report.display()
            )))
            .unwrap();
            let trace_json = std::fs::read_to_string(&trace).unwrap();
            gpm_obs::validate_trace(&trace_json).unwrap_or_else(|e| panic!("{system}: {e}"));
            let out = run(&argv(&format!("report-validate {}", report.display()))).unwrap();
            assert!(out.contains("valid RunReport"), "{system}: {out}");
            let report_json = std::fs::read_to_string(&report).unwrap();
            assert!(report_json.contains(&format!("\"system\": \"{system}\"")), "{system}");
        }
        // Distributed systems actually record spans when the flags are on.
        let khuzdul = std::fs::read_to_string(dir.join("khuzdul-automine.trace.json")).unwrap();
        assert!(khuzdul.contains("resolve"), "khuzdul trace lacks resolve spans:\n{khuzdul}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_validate_rejects_garbage() {
        assert!(run(&argv("report-validate /nonexistent/x.json")).is_err());
        let dir = std::env::temp_dir();
        let bad = dir.join(format!("gpm-cli-bad-{}.json", std::process::id()));
        std::fs::write(&bad, "{\"schema_version\": 99}").unwrap();
        let err = run(&argv(&format!("report-validate {}", bad.display()))).unwrap_err();
        assert!(err.contains(&bad.display().to_string()));
        std::fs::remove_file(&bad).ok();
        assert!(run(&argv("report-validate")).is_err()); // no path
    }

    /// `report diff` as the CI gate uses it: a report self-diffs clean,
    /// a candidate with 10% more fetch-wait fails with non-empty
    /// regression lines, and loosened thresholds let it back through.
    #[test]
    fn report_diff_subcommand_gates_regressions() {
        use gpm_obs::{CriticalPathFractions, CriticalPathSection, PartReport, TrafficTotals};
        let mut base = RunReport {
            schema_version: REPORT_SCHEMA_VERSION,
            system: "khuzdul-automine".into(),
            count: 500,
            elapsed_ns: 1_000_000,
            traffic: TrafficTotals {
                fetch_requests: 900,
                cache_hits: 500,
                cache_misses: 400,
                network_bytes: 1 << 18,
                ..Default::default()
            },
            per_part: (0..4)
                .map(|p| PartReport {
                    part: p,
                    count: 125,
                    compute_ns: 800,
                    network_ns: 400,
                    ..Default::default()
                })
                .collect(),
            critical_path: CriticalPathSection {
                fractions: CriticalPathFractions {
                    compute: 0.6,
                    fetch_wait: 0.3,
                    responder_queue: 0.06,
                    retry_backoff: 0.04,
                },
                per_part: Vec::new(),
            },
            breakdown: Default::default(),
            histograms: Vec::new(),
            series: Vec::new(),
            spans: Default::default(),
            failures: Default::default(),
            rebalance: Default::default(),
            control: Default::default(),
            queries: Vec::new(),
            incidents: Vec::new(),
        };
        let dir = std::env::temp_dir().join(format!("gpm-cli-diff-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let bp = dir.join("base.json");
        let cp = dir.join("cand.json");
        std::fs::write(&bp, base.to_json()).unwrap();
        let self_diff =
            run(&argv(&format!("report diff {} {}", bp.display(), bp.display()))).unwrap();
        assert!(self_diff.contains("PASS"), "{self_diff}");
        assert!(self_diff.contains("critical_path.fetch_wait"), "{self_diff}");
        // Inject the acceptance-criterion regression: +10% fetch wait.
        base.critical_path.fractions.fetch_wait *= 1.10;
        base.critical_path.fractions.compute -= 0.03;
        std::fs::write(&cp, base.to_json()).unwrap();
        let err =
            run(&argv(&format!("report diff {} {}", bp.display(), cp.display()))).unwrap_err();
        assert!(err.contains("REGRESSION"), "{err}");
        assert!(err.contains("fetch_wait"), "{err}");
        // Loosened thresholds (a noisy run-pair comparison) pass it.
        let loose = run(&argv(&format!(
            "report diff {} {} --frac-rel 0.5 --frac-abs 0.1",
            bp.display(),
            cp.display()
        )))
        .unwrap();
        assert!(loose.contains("PASS"), "{loose}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn report_diff_argument_errors() {
        assert!(run(&argv("report")).is_err());
        assert!(run(&argv("report frobnicate")).is_err());
        assert!(run(&argv("report diff only-one.json")).is_err());
        assert!(run(&argv("report diff a.json b.json --bogus 1")).is_err());
        assert!(run(&argv("report diff a.json b.json --frac-rel x")).is_err());
        assert!(run(&argv("report diff /nonexistent/a.json /nonexistent/b.json")).is_err());
    }

    #[test]
    fn verbose_report_mentions_everything() {
        let out = run(&argv("--gen ba:200,4 --pattern clique:4 --machines 2")).unwrap();
        for needle in ["graph", "pattern", "count", "elapsed", "traffic", "split"] {
            assert!(out.contains(needle), "missing {needle} in:\n{out}");
        }
    }

    #[test]
    fn parse_query_lines() {
        assert_eq!(parse_query_line("").unwrap(), None);
        assert_eq!(parse_query_line("  # comment").unwrap(), None);
        let (p, o) = parse_query_line("clique:4 induced").unwrap().unwrap();
        assert_eq!(p, Pattern::clique(4));
        assert!(o.induced);
        let (_, o) = parse_query_line("triangle graphpi").unwrap().unwrap();
        assert_eq!(o.order, PlanOptions::graphpi().order);
        assert!(parse_query_line("triangle frobnicate").is_err());
        assert!(parse_query_line("nope").is_err());
    }

    /// `serve` replays a workload file: counts match solo runs line by
    /// line, the duplicate is memoized, and the aggregate report
    /// validates as schema v4.
    #[test]
    fn serve_replays_a_workload_with_solo_counts() {
        let dir = std::env::temp_dir().join(format!("gpm-cli-serve-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let workload = dir.join("queries.txt");
        std::fs::write(&workload, "# seeded workload\ntriangle\npath:3\ntriangle\ncycle:4\n")
            .unwrap();
        let report = dir.join("service.report.json");
        let out = run(&argv(&format!(
            "serve --gen ba:300,4,11 --queries {} --machines 3 --max-concurrent 3 \
             --report-out {}",
            workload.display(),
            report.display()
        )))
        .unwrap();
        assert!(out.contains("(memoized)"), "duplicate triangle must memoize:\n{out}");
        // Line-by-line: each query's count equals its solo run.
        for (pattern, line) in ["triangle", "path:3", "triangle", "cycle:4"]
            .iter()
            .zip(out.lines().filter(|l| l.starts_with('q')))
        {
            let solo =
                run(&argv(&format!("--gen ba:300,4,11 --pattern {pattern} --machines 3 --quiet")))
                    .unwrap();
            let want = format!("count={}", solo.trim());
            assert!(line.contains(&want), "{pattern}: expected {want} in '{line}'");
        }
        let json = std::fs::read_to_string(&report).unwrap();
        gpm_obs::validate_report(&json).expect("service report must validate");
        assert!(json.contains("\"queries\""), "report lacks per-query sections");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// `serve --status-addr` serves the live plane for the whole run,
    /// `--slow-query-ms 0` logs every query as slow, and `gpm top`
    /// renders the scraped `/status` document.
    #[test]
    fn serve_with_status_plane_and_top() {
        let dir = std::env::temp_dir().join(format!("gpm-cli-status-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let workload = dir.join("queries.txt");
        std::fs::write(&workload, "triangle\npath:3\ntriangle\n").unwrap();
        let out = run(&argv(&format!(
            "serve --gen ba:250,4,11 --queries {} --machines 2 --status-addr 127.0.0.1:0 \
             --slow-query-ms 0 --memo-capacity 8",
            workload.display()
        )))
        .unwrap();
        assert!(out.contains("status plane on http://"), "{out}");
        // The plane is gone with the run; `top` against it must fail
        // cleanly, as must a never-bound port.
        let addr = out
            .lines()
            .find(|l| l.contains("status plane"))
            .and_then(|l| l.split("http://").nth(1))
            .and_then(|l| l.split('/').next())
            .expect("address printed")
            .to_string();
        assert!(run(&argv(&format!("top {addr}"))).is_err());
        // A live server: drive `top` against a real /status document.
        use gpm_graph::partition::PartitionedGraph;
        let g = gen::barabasi_albert(200, 4, 3);
        let engine =
            Arc::new(Engine::new(PartitionedGraph::new(&g, 2, 1), EngineConfig::default()));
        let svc = Arc::new(MiningService::start(
            engine,
            ServiceConfig { slow_query: Some(Duration::ZERO), ..ServiceConfig::default() },
        ));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        let h = svc.submit(&Pattern::triangle(), &PlanOptions::automine()).unwrap();
        h.wait().unwrap();
        let top = run(&argv(&format!("top {}", server.local_addr()))).unwrap();
        assert!(top.contains("khuzdul service @"), "{top}");
        assert!(top.contains("memo:"), "{top}");
        assert!(top.contains("RECENT"), "{top}");
        assert!(top.contains("SLOW"), "{top}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn metrics_validate_subcommand() {
        let dir = std::env::temp_dir();
        let good = dir.join(format!("gpm-cli-metrics-{}.prom", std::process::id()));
        std::fs::write(
            &good,
            "# HELP gpm_up Whether the service is up\n# TYPE gpm_up gauge\ngpm_up 1\n",
        )
        .unwrap();
        let out = run(&argv(&format!("metrics-validate {}", good.display()))).unwrap();
        assert!(out.contains("valid Prometheus exposition (1 samples)"), "{out}");
        let bad = dir.join(format!("gpm-cli-metrics-bad-{}.prom", std::process::id()));
        std::fs::write(&bad, "not a metric line at all!\n").unwrap();
        assert!(run(&argv(&format!("metrics-validate {}", bad.display()))).is_err());
        assert!(run(&argv("metrics-validate")).is_err());
        assert!(run(&argv("metrics-validate /nonexistent/m.prom")).is_err());
        std::fs::remove_file(&good).ok();
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn top_argument_errors() {
        assert!(run(&argv("top")).is_err());
        // Unroutable/closed: connection refused surfaces as a clean error.
        assert!(run(&argv("top 127.0.0.1:1")).is_err());
        assert!(run(&argv("top 127.0.0.1:1 --watch")).is_err());
        assert!(run(&argv("top 127.0.0.1:1 --watch x")).is_err());
        assert!(run(&argv("top 127.0.0.1:1 --frames 2")).is_err()); // needs --watch
        assert!(run(&argv("top 127.0.0.1:1 --bogus 1")).is_err());
    }

    /// `top --watch` renders one frame per interval against a live
    /// server, and ends cleanly (not an error) when the server goes away
    /// mid-watch.
    #[test]
    fn top_watch_renders_bounded_frames() {
        use gpm_graph::partition::PartitionedGraph;
        let g = gen::barabasi_albert(150, 4, 5);
        let engine =
            Arc::new(Engine::new(PartitionedGraph::new(&g, 2, 1), EngineConfig::default()));
        let svc = Arc::new(MiningService::start(engine, ServiceConfig::default()));
        let server = StatusServer::start(Arc::clone(&svc), StatusConfig::default()).unwrap();
        let addr = server.local_addr().to_string();
        svc.submit(&Pattern::triangle(), &PlanOptions::automine()).unwrap().wait().unwrap();
        let out = run(&argv(&format!("top {addr} --watch 0.02 --frames 3"))).unwrap();
        assert_eq!(out.matches("--- frame").count(), 3, "{out}");
        assert_eq!(out.matches("khuzdul service @").count(), 3, "{out}");
        // Kill the server mid-watch: a long watch ends at the frame the
        // connection fails, reporting the disappearance in-band.
        let watcher = std::thread::spawn(move || {
            run(&argv(&format!("top {addr} --watch 0.05 --frames 1000")))
        });
        std::thread::sleep(Duration::from_millis(120));
        drop(server);
        drop(svc);
        let out = watcher.join().unwrap().unwrap();
        assert!(out.contains("server gone"), "{out}");
        assert!(out.matches("--- frame").count() < 1000, "{out}");
    }

    /// The acceptance-criterion chaos flow: a seeded `--fault-crash` run
    /// with a replica captures exactly one `part_failed` bundle, and the
    /// `incident` subcommands list, render, and diff it.
    #[test]
    fn chaos_run_captures_a_bundle_the_incident_commands_render() {
        let dir = std::env::temp_dir().join(format!("gpm-cli-incident-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let out = run(&argv(&format!(
            "--gen er:120,500,7 --pattern triangle --machines 3 \
             --replication 2 --fault-crash 1@0 --incident-dir {}",
            dir.display()
        )))
        .unwrap();
        assert!(out.contains("incident 1 bundle(s)"), "{out}");
        let listed = run(&argv(&format!("incident list {}", dir.display()))).unwrap();
        assert!(listed.contains("part_failed"), "{listed}");
        assert!(listed.contains("1 bundle(s)"), "{listed}");
        let path = listed
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().last())
            .expect("list prints the bundle path")
            .to_string();
        let shown = run(&argv(&format!("incident show {path}"))).unwrap();
        assert!(shown.contains("trigger  part_failed"), "{shown}");
        assert!(shown.contains("part 1"), "{shown}");
        assert!(shown.contains("part_crash"), "the flight slice shows the death:\n{shown}");
        assert!(shown.contains("counters"), "{shown}");
        // A second identical run: the diff of the two bundles reports
        // the same trigger and the same config fingerprint.
        run(&argv(&format!(
            "--gen er:120,500,7 --pattern triangle --machines 3 --quiet \
             --replication 2 --fault-crash 1@0 --incident-dir {}",
            dir.display()
        )))
        .unwrap();
        let listed = run(&argv(&format!("incident list {}", dir.display()))).unwrap();
        assert!(listed.contains("2 bundle(s)"), "{listed}");
        let paths: Vec<&str> =
            listed.lines().take(2).filter_map(|l| l.split_whitespace().last()).collect();
        let diff = run(&argv(&format!("incident diff {} {}", paths[0], paths[1]))).unwrap();
        assert!(diff.contains("trigger"), "{diff}");
        assert!(diff.contains("part_failed (same)"), "{diff}");
        assert!(diff.contains("config fingerprint"), "{diff}");
        assert!(diff.contains("(same)"), "{diff}");
        std::fs::remove_dir_all(&dir).ok();
    }

    /// An unmasked crash errs, but the error points at the bundle dir
    /// and the bundle survives for the post-mortem.
    #[test]
    fn failed_chaos_run_points_at_its_bundles() {
        let dir =
            std::env::temp_dir().join(format!("gpm-cli-incident-lost-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = run(&argv(&format!(
            "--gen er:120,500,7 --pattern triangle --machines 3 --quiet \
             --fault-crash 1@0 --incident-dir {}",
            dir.display()
        )))
        .unwrap_err();
        assert!(err.contains("incident bundle(s)"), "{err}");
        let listed = run(&argv(&format!("incident list {}", dir.display()))).unwrap();
        assert!(listed.contains("part_lost"), "{listed}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn incident_argument_errors() {
        assert!(run(&argv("incident")).is_err());
        assert!(run(&argv("incident frobnicate")).is_err());
        assert!(run(&argv("incident list")).is_err());
        assert!(run(&argv("incident list /nonexistent/dir")).is_err());
        assert!(run(&argv("incident show")).is_err());
        assert!(run(&argv("incident show /nonexistent/b.json")).is_err());
        assert!(run(&argv("incident diff a.json")).is_err());
        // A non-bundle JSON file fails schema validation, not rendering.
        let bad =
            std::env::temp_dir().join(format!("gpm-cli-incident-bad-{}.json", std::process::id()));
        std::fs::write(&bad, "{\"bundle_schema\": 99}").unwrap();
        let err = run(&argv(&format!("incident show {}", bad.display()))).unwrap_err();
        assert!(err.contains(&bad.display().to_string()), "{err}");
        std::fs::remove_file(&bad).ok();
    }

    #[test]
    fn parse_incident_flags() {
        let o = parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --incident-dir /tmp/inc --stall-ms 500",
        ))
        .unwrap();
        assert_eq!(o.incident_dir.as_deref(), Some("/tmp/inc"));
        assert_eq!(o.stall_ms, Some(500));
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(d.incident_dir, None);
        assert_eq!(d.stall_ms, None);
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --incident-dir")).is_err());
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --stall-ms x")).is_err());
    }

    #[test]
    fn parse_control_fault_drop() {
        let o = parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --control msg --control-fault-drop 0.5",
        ))
        .unwrap();
        assert!((o.control_fault_drop - 0.5).abs() < 1e-12);
        let d = parse_args(&argv("--gen ba:100,3 --pattern triangle")).unwrap();
        assert_eq!(d.control_fault_drop, 0.0);
        // The shared ledger has no wire to drop on.
        assert!(parse_args(&argv("--gen ba:100,3 --pattern triangle --control-fault-drop 0.5"))
            .is_err());
        assert!(parse_args(&argv(
            "--gen ba:100,3 --pattern triangle --control msg --control-fault-drop 1.5"
        ))
        .is_err());
    }

    /// The stall-watchdog acceptance flow, end to end from the CLI: a
    /// message-control run whose claim replies all vanish wedges until
    /// the retry budget expires, and the watchdog captures a `stall`
    /// bundle in the meantime.
    #[test]
    fn wedged_run_trips_the_stall_watchdog_from_the_cli() {
        let dir = std::env::temp_dir().join(format!("gpm-cli-wedged-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        let err = run(&argv(&format!(
            "--gen er:100,500,3 --pattern triangle --machines 2 --quiet \
             --control msg --control-fault-drop 1.0 --retries 6 \
             --stall-ms 60 --incident-dir {}",
            dir.display()
        )))
        .unwrap_err();
        assert!(err.contains("incident bundle(s)"), "{err}");
        let listed = run(&argv(&format!("incident list {}", dir.display()))).unwrap();
        // A control-poison bundle may ride along; pick the stall one by
        // its filename.
        let path = listed
            .lines()
            .find(|l| l.contains("stall.json"))
            .and_then(|l| l.split_whitespace().last())
            .unwrap_or_else(|| panic!("list prints the stall bundle path:\n{listed}"))
            .to_string();
        let shown = run(&argv(&format!("incident show {path}"))).unwrap();
        assert!(shown.contains("trigger  stall"), "{shown}");
        assert!(shown.contains("ledger"), "the wedged scheduler state is dumped:\n{shown}");
        std::fs::remove_dir_all(&dir).ok();
    }

    #[test]
    fn serve_argument_errors() {
        assert!(run(&argv("serve --gen ba:100,3")).is_err()); // no --queries
        assert!(run(&argv("serve --queries /nonexistent/q.txt --gen ba:100,3")).is_err());
        assert!(run(&argv("serve --bogus x")).is_err());
        assert!(run(&argv("serve --gen ba:100,3 --rebalance maybe")).is_err());
        let dir = std::env::temp_dir();
        let empty = dir.join(format!("gpm-cli-serve-empty-{}.txt", std::process::id()));
        std::fs::write(&empty, "# nothing\n\n").unwrap();
        let err =
            run(&argv(&format!("serve --gen ba:100,3 --queries {}", empty.display()))).unwrap_err();
        assert!(err.contains("no queries"), "{err}");
        std::fs::remove_file(&empty).ok();
    }

    /// The resident service accepts the failure-model knobs: replicated
    /// hosting leaves every query's count untouched.
    #[test]
    fn serve_with_replication_keeps_counts() {
        let dir = std::env::temp_dir().join(format!("gpm-cli-serve-repl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let workload = dir.join("queries.txt");
        std::fs::write(&workload, "triangle\n").unwrap();
        let solo = run(&argv("--gen ba:200,4,11 --pattern triangle --machines 4 --quiet")).unwrap();
        let out = run(&argv(&format!(
            "serve --gen ba:200,4,11 --queries {} --machines 4 --replication 2",
            workload.display()
        )))
        .unwrap();
        assert!(
            out.contains(&format!("count={}", solo.trim())),
            "replicated serve must match the solo count:\n{out}"
        );
        std::fs::remove_dir_all(&dir).ok();
    }
}
