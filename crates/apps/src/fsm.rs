//! Frequent Subgraph Mining (FSM) with minimum-image (MNI) support.
//!
//! Following the paper's methodology (§7.2, Table 4, after Peregrine):
//! candidate labeled patterns are grown edge by edge from single labeled
//! edges up to `max_edges` (3) edges; a pattern is *frequent* when its MNI
//! support — the minimum, over pattern vertices, of the number of
//! distinct graph vertices that vertex maps to across all embeddings —
//! reaches the user threshold. MNI support is anti-monotone, so only
//! frequent patterns are extended.
//!
//! Because the engine enumerates each subgraph exactly once (symmetry
//! breaking), the image sets are closed under the pattern's automorphism
//! group after each visit, which restores the full MNI definition.

use gpm_graph::{Graph, Label, VertexId};
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::{genpat, interp, iso, Pattern};
use khuzdul::Engine;
use parking_lot::Mutex;
use std::collections::{HashSet, VecDeque};
use std::time::{Duration, Instant};

/// FSM configuration.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FsmConfig {
    /// Minimum MNI support for a pattern to count as frequent.
    pub support_threshold: u64,
    /// Maximum number of pattern edges (the paper mines up to 3).
    pub max_edges: usize,
    /// When `true` (default), supports are computed exactly by full
    /// enumeration. When `false`, enumeration stops early once every
    /// image set reaches the threshold (the Peregrine-style optimization)
    /// — frequent/infrequent *decisions* are identical, reported supports
    /// become lower bounds capped near the threshold.
    pub exact_supports: bool,
}

impl Default for FsmConfig {
    fn default() -> Self {
        FsmConfig { support_threshold: 100, max_edges: 3, exact_supports: true }
    }
}

/// FSM output.
#[derive(Debug, Clone)]
pub struct FsmResult {
    /// Frequent patterns with their MNI supports.
    pub frequent: Vec<(Pattern, u64)>,
    /// Number of candidate patterns whose support was evaluated (the
    /// per-pattern startup cost driver of Table 4).
    pub evaluated: usize,
    /// Total wall time.
    pub elapsed: Duration,
}

/// Runs FSM on the distributed engine.
///
/// # Panics
///
/// Panics if the engine's graph is unlabeled.
pub fn fsm(engine: &Engine, cfg: &FsmConfig) -> FsmResult {
    let labels = engine.partitioned_graph().labels().expect("FSM requires a labeled graph");
    let label_count = distinct_label_bound(&labels);
    run_fsm(cfg, label_count, |pattern| {
        let plan = compile(pattern);
        let images = Mutex::new(vec![HashSet::<VertexId>::new(); pattern.size()]);
        let auts = iso::automorphisms(pattern);
        let order = plan.order().to_vec();
        if cfg.exact_supports {
            engine.enumerate(&plan, |m| {
                let mut sets = images.lock();
                record_images(&mut sets, &order, &auts, m);
            });
        } else {
            let t = cfg.support_threshold;
            engine.enumerate_until(&plan, |m| {
                let mut sets = images.lock();
                record_images(&mut sets, &order, &auts, m);
                !sets.iter().all(|s| s.len() as u64 >= t)
            });
        }
        mni(&images.into_inner())
    })
}

/// Runs FSM single-machine (the AutomineIH column of Table 4).
///
/// # Panics
///
/// Panics if the graph is unlabeled.
pub fn fsm_single(g: &Graph, cfg: &FsmConfig) -> FsmResult {
    let labels = g.labels().expect("FSM requires a labeled graph");
    let label_count = distinct_label_bound(labels);
    run_fsm(cfg, label_count, |pattern| {
        let plan = compile(pattern);
        let mut sets = vec![HashSet::<VertexId>::new(); pattern.size()];
        let auts = iso::automorphisms(pattern);
        let order = plan.order().to_vec();
        if cfg.exact_supports {
            interp::enumerate_embeddings(g, &plan, |m| {
                record_images(&mut sets, &order, &auts, m);
            });
        } else {
            let t = cfg.support_threshold;
            interp::enumerate_embeddings_until(g, &plan, |m| {
                record_images(&mut sets, &order, &auts, m);
                !sets.iter().all(|s| s.len() as u64 >= t)
            });
        }
        mni(&sets)
    })
}

fn compile(pattern: &Pattern) -> MatchingPlan {
    MatchingPlan::compile(pattern, &PlanOptions::automine())
        .expect("FSM candidates are valid patterns")
}

fn distinct_label_bound(labels: &[Label]) -> Label {
    labels.iter().copied().max().map_or(0, |m| m + 1)
}

/// Adds one embedding's images, closed under the automorphism group:
/// `m[i]` is the graph vertex matched at position `i`, `order[i]` the
/// pattern vertex there.
fn record_images(
    sets: &mut [HashSet<VertexId>],
    order: &[usize],
    auts: &[Vec<usize>],
    m: &[VertexId],
) {
    for (pos, &gv) in m.iter().enumerate() {
        let pv = order[pos];
        for a in auts {
            sets[a[pv]].insert(gv);
        }
    }
}

fn mni(sets: &[HashSet<VertexId>]) -> u64 {
    sets.iter().map(|s| s.len() as u64).min().unwrap_or(0)
}

/// The shared level-wise pattern-growth driver; `support` evaluates one
/// candidate's MNI support.
fn run_fsm(
    cfg: &FsmConfig,
    label_count: Label,
    mut support: impl FnMut(&Pattern) -> u64,
) -> FsmResult {
    let t0 = Instant::now();
    let max_vertices = (cfg.max_edges + 1).min(gpm_pattern::MAX_PATTERN_VERTICES);
    let mut frequent = Vec::new();
    let mut evaluated = 0usize;
    let mut seen: HashSet<Vec<u8>> = HashSet::new();
    let mut queue: VecDeque<Pattern> = genpat::labeled_edge_patterns(label_count)
        .into_iter()
        .filter(|p| seen.insert(iso::canonical_code(p)))
        .collect();
    while let Some(pattern) = queue.pop_front() {
        evaluated += 1;
        let s = support(&pattern);
        if s < cfg.support_threshold {
            continue;
        }
        if pattern.edge_count() < cfg.max_edges {
            for ext in genpat::extend_by_edge(&pattern, label_count, max_vertices) {
                if seen.insert(iso::canonical_code(&ext)) {
                    queue.push_back(ext);
                }
            }
        }
        frequent.push((pattern, s));
    }
    FsmResult { frequent, evaluated, elapsed: t0.elapsed() }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::partition::PartitionedGraph;
    use gpm_graph::{gen, GraphBuilder};
    use khuzdul::EngineConfig;

    /// A graph where label-0 vertices form a hub-and-spoke with label-1
    /// leaves: the (0)-(1) edge is frequent, the (1)-(1) edge absent.
    fn star_labeled() -> Graph {
        let mut b = GraphBuilder::new(11);
        for v in 1..11 {
            b.add_edge(0, v);
        }
        let mut labels = vec![1; 11];
        labels[0] = 0;
        b.labels(labels);
        b.build()
    }

    #[test]
    fn single_machine_fsm_on_star() {
        let g = star_labeled();
        // Edge (0,1): center image {0} (size 1), leaf image 10 → MNI 1.
        let res = fsm_single(
            &g,
            &FsmConfig { support_threshold: 1, max_edges: 2, ..FsmConfig::default() },
        );
        assert!(res
            .frequent
            .iter()
            .any(|(p, s)| p.edge_count() == 1 && p.labels() == Some(&[0, 1][..]) && *s == 1));
        // The (1)-(1) edge is infrequent (absent entirely).
        assert!(!res
            .frequent
            .iter()
            .any(|(p, _)| p.edge_count() == 1 && p.labels() == Some(&[1, 1][..])));
        // The wedge 1-0-1 must be found at support 1 (center bound).
        assert!(res.frequent.iter().any(|(p, _)| p.edge_count() == 2));
    }

    #[test]
    fn mni_uses_automorphism_closure() {
        // Path a-b with identical labels: each undirected edge yields one
        // enumerated embedding, but both endpoints must enter both image
        // sets.
        let g = gen::path(2).with_labels(vec![5, 5]);
        let res = fsm_single(
            &g,
            &FsmConfig { support_threshold: 1, max_edges: 1, ..FsmConfig::default() },
        );
        let (_, support) = res
            .frequent
            .iter()
            .find(|(p, _)| p.labels() == Some(&[5, 5][..]))
            .expect("the only edge must be frequent");
        assert_eq!(*support, 2, "automorphism closure should give both endpoints");
    }

    #[test]
    fn engine_fsm_matches_single_machine() {
        let g = gen::with_random_labels(&gen::erdos_renyi(80, 300, 3), 3, 7);
        let cfg = FsmConfig { support_threshold: 8, max_edges: 3, ..FsmConfig::default() };
        let single = fsm_single(&g, &cfg);
        let engine = Engine::new(PartitionedGraph::new(&g, 3, 1), EngineConfig::default());
        let dist = fsm(&engine, &cfg);
        engine.shutdown();
        assert_eq!(single.evaluated, dist.evaluated);
        let norm = |r: &FsmResult| {
            let mut v: Vec<(Vec<u8>, u64)> =
                r.frequent.iter().map(|(p, s)| (iso::canonical_code(p), *s)).collect();
            v.sort();
            v
        };
        assert_eq!(norm(&single), norm(&dist));
    }

    #[test]
    fn threshold_is_anti_monotone_in_results() {
        let g = gen::with_random_labels(&gen::erdos_renyi(60, 250, 2), 2, 3);
        let loose = fsm_single(
            &g,
            &FsmConfig { support_threshold: 2, max_edges: 2, ..FsmConfig::default() },
        );
        let tight = fsm_single(
            &g,
            &FsmConfig { support_threshold: 10, max_edges: 2, ..FsmConfig::default() },
        );
        let codes = |r: &FsmResult| -> HashSet<Vec<u8>> {
            r.frequent.iter().map(|(p, _)| iso::canonical_code(p)).collect()
        };
        assert!(codes(&tight).is_subset(&codes(&loose)));
        // Supports do not depend on the threshold for shared patterns.
        for (p, s) in &tight.frequent {
            let c = iso::canonical_code(p);
            let s2 = loose
                .frequent
                .iter()
                .find(|(q, _)| iso::canonical_code(q) == c)
                .map(|(_, s)| *s)
                .unwrap();
            assert_eq!(*s, s2);
        }
    }

    #[test]
    fn max_edges_limits_growth() {
        let g = gen::with_random_labels(&gen::complete(20), 1, 1);
        let res = fsm_single(
            &g,
            &FsmConfig { support_threshold: 1, max_edges: 3, ..FsmConfig::default() },
        );
        assert!(res.frequent.iter().all(|(p, _)| p.edge_count() <= 3));
        // On a single-label complete graph: edge, wedge, triangle,
        // 3-path, 3-star must all appear.
        assert!(res.frequent.len() >= 5, "found {}", res.frequent.len());
    }

    #[test]
    fn early_exit_mode_keeps_decisions() {
        let g = gen::with_random_labels(&gen::erdos_renyi(70, 280, 4), 2, 5);
        let exact = fsm_single(
            &g,
            &FsmConfig { support_threshold: 10, max_edges: 2, exact_supports: true },
        );
        let fast = fsm_single(
            &g,
            &FsmConfig { support_threshold: 10, max_edges: 2, exact_supports: false },
        );
        let codes = |r: &FsmResult| -> Vec<Vec<u8>> {
            let mut v: Vec<_> = r.frequent.iter().map(|(p, _)| iso::canonical_code(p)).collect();
            v.sort();
            v
        };
        assert_eq!(codes(&exact), codes(&fast), "decisions must match");
        // Early-exit supports are valid lower bounds at/above threshold.
        for (_, s) in &fast.frequent {
            assert!(*s >= 10);
        }
        // Distributed early exit agrees with single-machine decisions.
        let engine = Engine::new(PartitionedGraph::new(&g, 3, 1), EngineConfig::default());
        let dist =
            fsm(&engine, &FsmConfig { support_threshold: 10, max_edges: 2, exact_supports: false });
        engine.shutdown();
        assert_eq!(codes(&exact), codes(&dist));
    }

    #[test]
    #[should_panic(expected = "labeled")]
    fn unlabeled_graph_panics() {
        fsm_single(&gen::complete(4), &FsmConfig::default());
    }
}
