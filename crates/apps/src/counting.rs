//! Counting applications: TC, k-CC, k-MC.

use gpm_pattern::genpat;
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::Pattern;
use khuzdul::{Engine, RunStats};
use std::time::Duration;

/// Counts triangles.
///
/// # Example
///
/// ```
/// use gpm_apps::counting;
/// use gpm_graph::{gen, partition::PartitionedGraph};
/// use gpm_pattern::plan::PlanOptions;
/// use khuzdul::{Engine, EngineConfig};
///
/// let g = gen::complete(5);
/// let engine = Engine::new(PartitionedGraph::new(&g, 2, 1), EngineConfig::default());
/// let run = counting::triangle_count(&engine, &PlanOptions::automine()).unwrap();
/// assert_eq!(run.count, 10);
/// engine.shutdown();
/// ```
pub fn triangle_count(engine: &Engine, opts: &PlanOptions) -> Result<RunStats, String> {
    clique_count(engine, 3, opts)
}

/// Counts k-cliques.
///
/// # Errors
///
/// Returns plan-compilation errors (e.g. `k` above the pattern limit).
pub fn clique_count(engine: &Engine, k: usize, opts: &PlanOptions) -> Result<RunStats, String> {
    let plan = MatchingPlan::compile(&Pattern::clique(k), opts)?;
    Ok(engine.count(&plan))
}

/// The clique plan for **degree-oriented (DAG) graphs**: the orientation
/// preprocessing (Table 5, "orientation optimization") already selects a
/// unique vertex order per clique, so the plan disables symmetry breaking.
///
/// Use with an engine built over `PartitionedGraph::new(&orient_by_degree(g), …)`.
///
/// # Errors
///
/// Returns plan-compilation errors.
pub fn oriented_clique_plan(k: usize, opts: &PlanOptions) -> Result<MatchingPlan, String> {
    let opts = PlanOptions { symmetry_break: false, ..opts.clone() };
    MatchingPlan::compile(&Pattern::clique(k), &opts)
}

/// Per-pattern output of k-motif counting.
#[derive(Debug, Clone, Default)]
pub struct MotifCounts {
    /// `(pattern, induced count)` for every connected size-k pattern, in
    /// the deterministic [`genpat::connected_patterns`] order.
    pub per_pattern: Vec<(Pattern, u64)>,
    /// Sum of all counts (the number of connected induced k-subgraphs).
    pub total: u64,
    /// Total wall time over all patterns.
    pub elapsed: Duration,
    /// Network bytes over all patterns.
    pub network_bytes: u64,
    /// Per-part stats accumulated over all patterns (for work-span
    /// makespan estimation).
    pub per_part: Vec<khuzdul::PartStats>,
}

fn accumulate_parts(acc: &mut Vec<khuzdul::PartStats>, run: &khuzdul::RunStats) {
    if acc.is_empty() {
        acc.clone_from(&run.per_part);
        return;
    }
    for (a, p) in acc.iter_mut().zip(&run.per_part) {
        a.count += p.count;
        a.compute += p.compute;
        a.network += p.network;
        a.scheduler += p.scheduler;
        a.cache += p.cache;
        a.peak_embeddings = a.peak_embeddings.max(p.peak_embeddings);
    }
}

/// k-Motif Counting: counts the **induced** embeddings of every connected
/// size-k pattern (the paper's k-MC application).
///
/// # Errors
///
/// Returns plan-compilation errors.
pub fn motif_count(engine: &Engine, k: usize, opts: &PlanOptions) -> Result<MotifCounts, String> {
    let mut out = MotifCounts::default();
    for p in genpat::connected_patterns(k) {
        let plan_opts = PlanOptions { induced: true, ..opts.clone() };
        let plan = MatchingPlan::compile(&p, &plan_opts)?;
        let run = engine.count(&plan);
        out.elapsed += run.elapsed;
        out.network_bytes += run.traffic.network_bytes;
        accumulate_parts(&mut out.per_part, &run);
        out.per_pattern.push((p, run.count));
    }
    out.total = out.per_pattern.iter().map(|(_, c)| c).sum();
    Ok(out)
}

/// k-Motif Counting the GraphPi way: count every size-k pattern
/// **non-induced** (where the IEP pair shortcut and cheaper filters
/// apply), then recover induced counts by solving the inclusion–exclusion
/// system
///
/// ```text
/// noninduced(p) = Σ_{q ⊇ p, |q| = k}  sub(p, q) · induced(q)
/// ```
///
/// where `sub(p, q)` is the number of copies of `p` inside the pattern
/// `q` — tiny integers computed once with the oracle. The system is
/// triangular in edge-count order, so back-substitution over integers is
/// exact.
///
/// Produces identical results to [`motif_count`]; exists because it is
/// usually faster (the paper attributes k-GraphPi's 3-MC advantage to
/// GraphPi's better matching algorithm).
///
/// # Errors
///
/// Returns plan-compilation errors.
pub fn motif_count_noninduced(
    engine: &Engine,
    k: usize,
    opts: &PlanOptions,
) -> Result<MotifCounts, String> {
    let patterns = genpat::connected_patterns(k);
    let mut elapsed = Duration::ZERO;
    let mut network_bytes = 0u64;
    let mut per_part: Vec<khuzdul::PartStats> = Vec::new();
    // Non-induced counts per pattern.
    let mut raw: Vec<u64> = Vec::with_capacity(patterns.len());
    for p in &patterns {
        let plan_opts = PlanOptions { induced: false, ..opts.clone() };
        let plan = MatchingPlan::compile(p, &plan_opts)?;
        let run = engine.count(&plan);
        elapsed += run.elapsed;
        network_bytes += run.traffic.network_bytes;
        accumulate_parts(&mut per_part, &run);
        raw.push(run.count);
    }
    // Solve: order patterns by decreasing edge count; the densest pattern
    // (k-clique) has noninduced == induced.
    let mut order: Vec<usize> = (0..patterns.len()).collect();
    order.sort_by_key(|&i| std::cmp::Reverse(patterns[i].edge_count()));
    let mut induced = vec![0i128; patterns.len()];
    for &i in &order {
        let mut value = raw[i] as i128;
        for &j in &order {
            if patterns[j].edge_count() > patterns[i].edge_count() {
                let c = copies_inside(&patterns[i], &patterns[j]);
                value -= c as i128 * induced[j];
            }
        }
        induced[i] = value;
    }
    let per_pattern: Vec<(Pattern, u64)> = patterns
        .into_iter()
        .zip(&induced)
        .map(|(p, &c)| {
            debug_assert!(c >= 0, "inclusion–exclusion produced a negative count");
            (p, c as u64)
        })
        .collect();
    let total = per_pattern.iter().map(|(_, c)| c).sum();
    Ok(MotifCounts { per_pattern, total, elapsed, network_bytes, per_part })
}

/// Number of subgraphs of the (tiny) pattern `sup` isomorphic to `sub`.
fn copies_inside(sub: &Pattern, sup: &Pattern) -> u64 {
    let mut b = gpm_graph::GraphBuilder::new(sup.size());
    for (u, v) in sup.edges() {
        b.add_edge(u as u32, v as u32);
    }
    gpm_pattern::oracle::count_subgraphs(&b.build(), sub, false)
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::orient::orient_by_degree;
    use gpm_graph::partition::PartitionedGraph;
    use gpm_graph::{gen, Graph};
    use gpm_pattern::oracle;
    use khuzdul::EngineConfig;

    fn engine_for(g: &Graph, machines: usize) -> Engine {
        Engine::new(PartitionedGraph::new(g, machines, 1), EngineConfig::default())
    }

    #[test]
    fn tc_matches_oracle() {
        let g = gen::erdos_renyi(150, 700, 3);
        let engine = engine_for(&g, 4);
        let run = triangle_count(&engine, &PlanOptions::automine()).unwrap();
        assert_eq!(run.count, oracle::count_subgraphs(&g, &Pattern::triangle(), false));
        engine.shutdown();
    }

    #[test]
    fn kcc_matches_oracle() {
        let g = gen::erdos_renyi(100, 800, 5);
        let engine = engine_for(&g, 3);
        for k in [4usize, 5] {
            let run = clique_count(&engine, k, &PlanOptions::graphpi()).unwrap();
            assert_eq!(
                run.count,
                oracle::count_subgraphs(&g, &Pattern::clique(k), false),
                "k = {k}"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn oriented_clique_counting_agrees() {
        let g = gen::barabasi_albert(200, 6, 7);
        let dag = orient_by_degree(&g);
        let engine = engine_for(&dag, 4);
        for k in [3usize, 4] {
            let plan = oriented_clique_plan(k, &PlanOptions::automine()).unwrap();
            let run = engine.count(&plan);
            assert_eq!(
                run.count,
                oracle::count_subgraphs(&g, &Pattern::clique(k), false),
                "k = {k}"
            );
        }
        engine.shutdown();
    }

    #[test]
    fn three_motifs_partition_connected_triples() {
        let g = gen::erdos_renyi(60, 250, 9);
        let engine = engine_for(&g, 2);
        let motifs = motif_count(&engine, 3, &PlanOptions::automine()).unwrap();
        assert_eq!(motifs.per_pattern.len(), 2);
        for (p, c) in &motifs.per_pattern {
            assert_eq!(*c, oracle::count_subgraphs(&g, p, true), "{p}");
        }
        // Triangles + induced paths = all connected triples.
        let tri = oracle::count_subgraphs(&g, &Pattern::triangle(), false);
        let wedge = oracle::count_subgraphs(&g, &Pattern::path(3), true);
        assert_eq!(motifs.total, tri + wedge);
        engine.shutdown();
    }

    #[test]
    fn noninduced_motif_route_matches_induced_route() {
        let g = gen::erdos_renyi(50, 220, 6);
        let engine = engine_for(&g, 2);
        for k in [3usize, 4] {
            let direct = motif_count(&engine, k, &PlanOptions::automine()).unwrap();
            let via = motif_count_noninduced(&engine, k, &PlanOptions::graphpi()).unwrap();
            assert_eq!(direct.total, via.total, "k = {k}");
            for ((p1, c1), (p2, c2)) in direct.per_pattern.iter().zip(&via.per_pattern) {
                assert_eq!(p1, p2);
                assert_eq!(c1, c2, "pattern {p1}");
            }
        }
        engine.shutdown();
    }

    #[test]
    fn copies_inside_known_values() {
        // A triangle contains 3 wedges; K4 contains 4 triangles and 12
        // wedge subgraphs.
        assert_eq!(copies_inside(&Pattern::path(3), &Pattern::triangle()), 3);
        assert_eq!(copies_inside(&Pattern::triangle(), &Pattern::clique(4)), 4);
        assert_eq!(copies_inside(&Pattern::path(3), &Pattern::clique(4)), 12);
        assert_eq!(copies_inside(&Pattern::clique(4), &Pattern::clique(4)), 1);
    }

    #[test]
    fn four_motifs_match_oracle() {
        let g = gen::erdos_renyi(40, 160, 4);
        let engine = engine_for(&g, 2);
        let motifs = motif_count(&engine, 4, &PlanOptions::automine()).unwrap();
        assert_eq!(motifs.per_pattern.len(), 6);
        for (p, c) in &motifs.per_pattern {
            assert_eq!(*c, oracle::count_subgraphs(&g, p, true), "{p}");
        }
        engine.shutdown();
    }
}
