//! Incremental pattern counting under edge insertions (a Tesseract-style
//! extension).
//!
//! The paper positions Khuzdul against Tesseract, the distributed GPM
//! system for *evolving* graphs (§1). This module adds the corresponding
//! capability at the library level: a [`StreamingCounter`] maintains a
//! pattern's embedding count across edge insertions by counting, per new
//! edge, only the embeddings that *use* that edge — the standard delta
//! rule `Δ = |{e(p) ∋ (u,v)}|` evaluated on the post-insertion graph, so
//! embeddings using several new edges are counted exactly once as their
//! last edge arrives.

use gpm_graph::{Graph, GraphBuilder, VertexId};
use gpm_pattern::{iso, Pattern};

#[cfg(test)]
use gpm_pattern::oracle;

/// Counts the embeddings of `p` in `g` that include the edge `{u, v}`.
///
/// Works by fixing each pattern edge (one representative per
/// automorphism-orbit of directed pattern edges) onto `(u, v)` and
/// counting the completions, dividing by `|Aut(p)|` exactly like the
/// whole-graph subgraph count.
///
/// # Panics
///
/// Panics if `{u, v}` is not an edge of `g`.
pub fn count_containing_edge(g: &Graph, p: &Pattern, u: VertexId, v: VertexId) -> u64 {
    assert!(g.has_edge(u, v), "({u}, {v}) must be an edge of the graph");
    let aut = iso::automorphism_count(p);
    let mut maps = 0u64;
    // Count injective maps where some pattern edge lands exactly on the
    // graph edge, in both directions; each embedding-with-the-edge is hit
    // once per automorphism.
    for (a, b) in p.edges() {
        for (x, y) in [(u, v), (v, u)] {
            maps += count_maps_with_fixed(g, p, a, b, x, y);
        }
    }
    debug_assert_eq!(maps % aut, 0, "maps must divide by |Aut|");
    maps / aut
}

/// Injective maps of `p` into `g` with `f(a) = x`, `f(b) = y`.
fn count_maps_with_fixed(
    g: &Graph,
    p: &Pattern,
    a: usize,
    b: usize,
    x: VertexId,
    y: VertexId,
) -> u64 {
    if x == y {
        return 0;
    }
    // Label feasibility of the fixed pair.
    for (pv, gv) in [(a, x), (b, y)] {
        if let Some(required) = p.label(pv) {
            if g.label(gv) != Some(required) {
                return 0;
            }
        }
    }
    // Build a matching order starting from a, b; remaining vertices in
    // connected-prefix order.
    let n = p.size();
    let mut order = vec![a, b];
    while order.len() < n {
        let next = (0..n)
            .find(|w| !order.contains(w) && order.iter().any(|&o| p.has_edge(o, *w)))
            .expect("pattern is connected");
        order.push(next);
    }
    let mut map = vec![VertexId::MAX; n];
    map[a] = x;
    map[b] = y;
    // The fixed pair must respect pattern adjacency between a and b (they
    // are an edge by construction) — now backtrack over the rest.
    fn descend(g: &Graph, p: &Pattern, order: &[usize], i: usize, map: &mut Vec<VertexId>) -> u64 {
        if i == order.len() {
            return 1;
        }
        let pv = order[i];
        let anchor =
            order[..i].iter().copied().find(|&o| p.has_edge(o, pv)).expect("connected prefix");
        let mut count = 0u64;
        let candidates: Vec<VertexId> = g.neighbors(map[anchor]).to_vec();
        'cand: for cand in candidates {
            if let Some(required) = p.label(pv) {
                if g.label(cand) != Some(required) {
                    continue;
                }
            }
            for &o in &order[..i] {
                let gv = map[o];
                if gv == cand {
                    continue 'cand;
                }
                if p.has_edge(o, pv) && !g.has_edge(gv, cand) {
                    continue 'cand;
                }
            }
            map[pv] = cand;
            count += descend(g, p, order, i + 1, map);
            map[pv] = VertexId::MAX;
        }
        count
    }
    descend(g, p, &order, 2, &mut map)
}

/// Maintains a pattern's (non-induced) embedding count across edge
/// insertions.
///
/// # Example
///
/// ```
/// use gpm_apps::dynamic::StreamingCounter;
/// use gpm_pattern::Pattern;
///
/// let mut sc = StreamingCounter::new(4, Pattern::triangle());
/// sc.insert_edge(0, 1);
/// sc.insert_edge(1, 2);
/// assert_eq!(sc.count(), 0);
/// sc.insert_edge(0, 2); // closes the triangle
/// assert_eq!(sc.count(), 1);
/// ```
#[derive(Debug, Clone)]
pub struct StreamingCounter {
    pattern: Pattern,
    edges: Vec<(VertexId, VertexId)>,
    vertices: usize,
    graph: Graph,
    count: u64,
}

impl StreamingCounter {
    /// An empty graph on `n` vertices tracking `pattern`.
    pub fn new(n: usize, pattern: Pattern) -> Self {
        StreamingCounter {
            pattern,
            edges: Vec::new(),
            vertices: n,
            graph: Graph::empty(n),
            count: 0,
        }
    }

    /// The tracked pattern.
    pub fn pattern(&self) -> &Pattern {
        &self.pattern
    }

    /// Current embedding count.
    pub fn count(&self) -> u64 {
        self.count
    }

    /// The current graph snapshot.
    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    /// Inserts the undirected edge `{u, v}`, returning the number of new
    /// embeddings it created. Duplicate edges and self-loops are no-ops.
    pub fn insert_edge(&mut self, u: VertexId, v: VertexId) -> u64 {
        if u == v || self.graph.has_edge(u, v) {
            return 0;
        }
        self.vertices = self.vertices.max(u.max(v) as usize + 1);
        self.edges.push((u, v));
        let mut b = GraphBuilder::new(self.vertices);
        b.extend_edges(self.edges.iter().copied());
        self.graph = b.build();
        let delta = count_containing_edge(&self.graph, &self.pattern, u, v);
        self.count += delta;
        delta
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpm_graph::gen;
    use rand::rngs::StdRng;
    use rand::{RngExt, SeedableRng};

    #[test]
    fn containing_edge_counts_sum_to_edge_count_times_pattern_edges() {
        // Σ over graph edges of count_containing_edge = |E(p)| × total
        // (each embedding is counted once per pattern edge it uses).
        let g = gen::erdos_renyi(30, 110, 7);
        for p in [Pattern::triangle(), Pattern::path(3), Pattern::clique(4)] {
            let total = oracle::count_subgraphs(&g, &p, false);
            let sum: u64 = g.edges().map(|(u, v)| count_containing_edge(&g, &p, u, v)).sum();
            assert_eq!(sum, total * p.edge_count() as u64, "{p}");
        }
    }

    #[test]
    fn streaming_matches_recount_on_random_insertions() {
        let mut rng = StdRng::seed_from_u64(5);
        for p in [Pattern::triangle(), Pattern::path(3), Pattern::cycle(4)] {
            let mut sc = StreamingCounter::new(20, p.clone());
            for _ in 0..60 {
                let u = rng.random_range(0..20u32);
                let v = rng.random_range(0..20u32);
                sc.insert_edge(u, v);
                let expect = oracle::count_subgraphs(sc.graph(), &p, false);
                assert_eq!(sc.count(), expect, "{p} diverged");
            }
        }
    }

    #[test]
    fn duplicate_and_loop_insertions_are_noops() {
        let mut sc = StreamingCounter::new(3, Pattern::triangle());
        assert_eq!(sc.insert_edge(1, 1), 0);
        sc.insert_edge(0, 1);
        assert_eq!(sc.insert_edge(0, 1), 0);
        assert_eq!(sc.insert_edge(1, 0), 0);
        assert_eq!(sc.count(), 0);
    }

    #[test]
    fn growing_vertex_space() {
        let mut sc = StreamingCounter::new(2, Pattern::triangle());
        sc.insert_edge(0, 1);
        sc.insert_edge(1, 7); // grows the graph
        sc.insert_edge(0, 7);
        assert_eq!(sc.count(), 1);
        assert_eq!(sc.graph().vertex_count(), 8);
    }

    #[test]
    fn labeled_delta_counting() {
        let g = gen::with_random_labels(&gen::erdos_renyi(25, 90, 3), 2, 9);
        let p = Pattern::triangle().with_labels(vec![0, 1, 1]).unwrap();
        let total = oracle::count_subgraphs(&g, &p, false);
        let sum: u64 = g.edges().map(|(u, v)| count_containing_edge(&g, &p, u, v)).sum();
        assert_eq!(sum, total * 3);
    }

    #[test]
    #[should_panic(expected = "must be an edge")]
    fn non_edge_panics() {
        count_containing_edge(&gen::path(3), &Pattern::triangle(), 0, 2);
    }
}
