//! Ablation benches for design choices DESIGN.md calls out beyond the
//! paper's own figures: circulant vs. natural fetch order, mini-batch
//! granularity, the cost of the share-table on unskewed inputs, and the
//! fetch fabric's request-window depth.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gpm_graph::partition::PartitionedGraph;
use gpm_graph::{gen, Graph};
use gpm_pattern::plan::{MatchingPlan, PlanOptions};
use gpm_pattern::Pattern;
use khuzdul::{CacheConfig, Engine, EngineConfig, FabricConfig, StealConfig};

const MACHINES: usize = 4;

fn skewed() -> Graph {
    gen::barabasi_albert(3_000, 8, 0xab)
}

fn flat() -> Graph {
    gen::erdos_renyi(3_000, 24_000, 0xab)
}

fn run(g: &Graph, cfg: EngineConfig, plan: &MatchingPlan) -> u64 {
    let e = Engine::new(PartitionedGraph::new(g, MACHINES, 1), cfg);
    let c = e.count(plan).count;
    e.shutdown();
    c
}

/// Circulant fetch ordering vs. natural owner order (§4.3).
fn circulant_order(c: &mut Criterion) {
    let g = skewed();
    let plan = MatchingPlan::compile(&Pattern::clique(4), &PlanOptions::graphpi()).unwrap();
    let mut grp = c.benchmark_group("ablation_circulant");
    grp.sample_size(10);
    for (name, circulant) in [("circulant", true), ("natural", false)] {
        grp.bench_function(name, |b| {
            b.iter(|| run(&g, EngineConfig { circulant, ..EngineConfig::default() }, &plan))
        });
    }
    grp.finish();
}

/// Work-claim granularity (the paper's 64-embedding mini-batches, §6).
fn mini_batch(c: &mut Criterion) {
    let g = skewed();
    let plan = MatchingPlan::compile(&Pattern::clique(4), &PlanOptions::graphpi()).unwrap();
    let mut grp = c.benchmark_group("ablation_mini_batch");
    grp.sample_size(10);
    for batch in [1usize, 16, 64, 512] {
        grp.bench_with_input(BenchmarkId::from_parameter(batch), &batch, |b, &batch| {
            b.iter(|| {
                run(
                    &g,
                    EngineConfig {
                        mini_batch: batch,
                        compute_threads: 4,
                        ..EngineConfig::default()
                    },
                    &plan,
                )
            })
        });
    }
    grp.finish();
}

/// Horizontal sharing on a flat (ER) graph, where few lists repeat within
/// a chunk: measures pure table overhead (the cost side of §5.2's
/// trade-off).
fn share_table_overhead(c: &mut Criterion) {
    let g = flat();
    let plan = MatchingPlan::compile(&Pattern::clique(4), &PlanOptions::graphpi()).unwrap();
    let mut grp = c.benchmark_group("ablation_share_table_flat_graph");
    grp.sample_size(10);
    for (name, horizontal) in [("with_table", true), ("without_table", false)] {
        grp.bench_function(name, |b| {
            b.iter(|| {
                run(
                    &g,
                    EngineConfig {
                        horizontal_sharing: horizontal,
                        cache: CacheConfig::disabled(),
                        ..EngineConfig::default()
                    },
                    &plan,
                )
            })
        });
    }
    grp.finish();
}

/// Pattern-oblivious vs. pattern-aware enumeration — the paper's §1
/// motivation for building on pattern-aware systems at all.
fn oblivious_vs_aware(c: &mut Criterion) {
    use gpm_baselines::oblivious;
    use gpm_pattern::interp;
    let g = gen::erdos_renyi(300, 1800, 0xcd);
    let mut grp = c.benchmark_group("ablation_oblivious_vs_aware_4motifs");
    grp.sample_size(10);
    grp.bench_function("oblivious_esu_census", |b| {
        b.iter(|| oblivious::induced_census(&g, 4).values().sum::<u64>())
    });
    grp.bench_function("pattern_aware_plans", |b| {
        let plans: Vec<MatchingPlan> = gpm_pattern::genpat::connected_patterns(4)
            .iter()
            .map(|p| {
                MatchingPlan::compile(p, &PlanOptions { induced: true, ..PlanOptions::automine() })
                    .unwrap()
            })
            .collect();
        b.iter(|| plans.iter().map(|p| interp::count_embeddings_fast(&g, p)).sum::<u64>())
    });
    grp.finish();
}

/// Request-window depth of the async fetch fabric: window = 1 serializes
/// every transfer (the pre-fabric blocking RPC), larger windows overlap
/// modelled network delays with integration. Run on an R-MAT stand-in
/// with the paper's 56 Gbps model (plus a fat latency so the overlap is
/// visible at bench scale).
fn request_window(c: &mut Criterion) {
    use gpm_cluster::NetworkModel;
    let g = gen::rmat(11, 12, (0.57, 0.19, 0.19), 0xab);
    let plan = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::automine()).unwrap();
    let mut grp = c.benchmark_group("ablation_request_window");
    grp.sample_size(10);
    for window in [1usize, 2, 4, 8, 16] {
        grp.bench_with_input(BenchmarkId::from_parameter(window), &window, |b, &window| {
            b.iter(|| {
                run(
                    &g,
                    EngineConfig {
                        network: Some(NetworkModel { latency_us: 200.0, bandwidth_gbps: 56.0 }),
                        fabric: FabricConfig { window, ..FabricConfig::default() },
                        ..EngineConfig::default()
                    },
                    &plan,
                )
            })
        });
    }
    grp.finish();
}

/// Cross-part work stealing on/off, power-law vs. Erdős–Rényi. The
/// interesting case is the skewed graph under *range* partitioning
/// (hubs concentrated on part 0): stealing should close the per-part
/// busy-time gap the `RunReport` exposes. The ER graph bounds the cost
/// of the ledger when there is nothing to rebalance. Besides the timing,
/// each variant prints the report's busy-time and queue-depth imbalance
/// ratios once, so a bench run doubles as the balance experiment.
fn steal(c: &mut Criterion) {
    use gpm_graph::partition::Partitioner;
    let plan = MatchingPlan::compile(&Pattern::triangle(), &PlanOptions::automine()).unwrap();
    let mut grp = c.benchmark_group("ablation_steal");
    grp.sample_size(10);
    let graphs: [(&str, Graph, Partitioner); 2] = [
        ("powerlaw_range", gen::rmat(11, 12, (0.57, 0.19, 0.19), 0xab), Partitioner::Range),
        ("erdos_renyi_hash", flat(), Partitioner::Hash),
    ];
    for (gname, g, strategy) in &graphs {
        for (sname, enabled) in [("steal_on", true), ("steal_off", false)] {
            let cfg = || EngineConfig {
                compute_threads: 2,
                steal: StealConfig { enabled, batch: 256, ..StealConfig::default() },
                obs: khuzdul::ObsConfig::enabled(),
                ..EngineConfig::default()
            };
            // One observed run per variant for the balance numbers.
            let e =
                Engine::new(PartitionedGraph::with_partitioner(g, MACHINES, 1, *strategy), cfg());
            let run = e.count(&plan);
            let report = e.report(&run, "khuzdul");
            let stolen: u64 = run.per_part.iter().map(|p| p.roots_stolen).sum();
            eprintln!(
                "ablation_steal/{gname}/{sname}: busy_imbalance={:.3} queue_depth_imbalance={:.3} \
                 roots_stolen={stolen} count={}",
                report.busy_imbalance(),
                report.queue_depth_imbalance(),
                run.count,
            );
            e.shutdown();
            grp.bench_function(format!("{gname}/{sname}"), |b| {
                b.iter(|| {
                    run_with(
                        g,
                        *strategy,
                        EngineConfig { obs: khuzdul::ObsConfig::default(), ..cfg() },
                        &plan,
                    )
                })
            });
        }
    }
    grp.finish();
}

fn run_with(
    g: &Graph,
    strategy: gpm_graph::partition::Partitioner,
    cfg: EngineConfig,
    plan: &MatchingPlan,
) -> u64 {
    let e = Engine::new(PartitionedGraph::with_partitioner(g, MACHINES, 1, strategy), cfg);
    let c = e.count(plan).count;
    e.shutdown();
    c
}

/// Hash vs. range partitioning — why §2.2 insists on hash assignment:
/// BA vertex ids correlate with degree, so ranges concentrate hubs.
fn partitioner_strategy(c: &mut Criterion) {
    use gpm_graph::partition::Partitioner;
    let g = skewed();
    let plan = MatchingPlan::compile(&Pattern::clique(4), &PlanOptions::graphpi()).unwrap();
    let mut grp = c.benchmark_group("ablation_partitioner");
    grp.sample_size(10);
    for (name, strategy) in [("hash", Partitioner::Hash), ("range", Partitioner::Range)] {
        grp.bench_function(name, |b| {
            b.iter(|| {
                let e = Engine::new(
                    PartitionedGraph::with_partitioner(&g, MACHINES, 1, strategy),
                    EngineConfig::default(),
                );
                let c = e.count(&plan).count;
                e.shutdown();
                c
            })
        });
    }
    grp.finish();
}

/// Multi-tenant scaling: 1→8 identical-cost queries sharing one
/// resident engine. Prints each query's wall time and cache hit rate —
/// trailing queries amortize the never-evict cache the leaders warmed —
/// then benches the whole batch's makespan.
fn concurrency(c: &mut Criterion) {
    use khuzdul::{MiningService, ServiceConfig};
    use std::sync::Arc;
    let g = gen::rmat(11, 12, (0.57, 0.19, 0.19), 0xab);
    let pattern = Pattern::clique(4);
    let opts = PlanOptions::automine();
    // Memoization off: every query enumerates, so the measured benefit
    // is shared-cache amortization, not the memo short-circuit.
    let cfg =
        |n: usize| ServiceConfig { max_concurrent: n, memoize: false, ..ServiceConfig::default() };
    let batch = |n: usize| {
        let engine =
            Arc::new(Engine::new(PartitionedGraph::new(&g, MACHINES, 1), EngineConfig::default()));
        let svc = MiningService::start(engine, cfg(n));
        let handles: Vec<_> = (0..n).map(|_| svc.submit(&pattern, &opts).unwrap()).collect();
        for h in &handles {
            h.wait().unwrap();
        }
        svc
    };
    let mut grp = c.benchmark_group("ablation_concurrency");
    grp.sample_size(10);
    for n in [1usize, 2, 4, 8] {
        // One instrumented batch outside the timing loop: per-query wall
        // time and hit rate.
        let svc = batch(n);
        for o in svc.outcomes() {
            let stats = o.result.expect("bench queries succeed");
            let (hits, misses) = (stats.traffic.cache_hits, stats.traffic.cache_misses);
            eprintln!(
                "ablation_concurrency: n={n} q{} wall={:?} cache_hit_rate={:.3}",
                o.query_id,
                o.elapsed,
                hits as f64 / (hits + misses).max(1) as f64
            );
        }
        drop(svc);
        grp.bench_with_input(BenchmarkId::from_parameter(n), &n, |b, &n| {
            b.iter(|| {
                let svc = batch(n);
                svc.outcomes().iter().map(|o| o.result.as_ref().unwrap().count).sum::<u64>()
            })
        });
    }
    grp.finish();
}

criterion_group!(
    benches,
    circulant_order,
    mini_batch,
    share_table_overhead,
    oblivious_vs_aware,
    partitioner_strategy,
    request_window,
    steal,
    concurrency
);
criterion_main!(benches);
